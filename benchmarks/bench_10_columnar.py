"""Columnar core — end-to-end pipeline vs the PR-1 representation.

PR-1 kept the Python object trie canonical: ``load_index`` rebuilt the
trie node by node from the stored arrays, the batch engine was a lazy
per-process freeze back into arrays, and the join decoded lookup-table
entries with per-offset Python loops — twice, because the approximate
join counted all references and then true hits in separate passes. PR-2
makes the flat arrays canonical (:class:`~repro.act.core.ACTCore`).

This benchmark measures both shapes end to end — cold load from ``.npz``
plus a 1M-point approximate join — with the PR-1 shape reproduced
faithfully from the kept build scaffolding
(:meth:`AdaptiveCellTrie.from_arrays`) and a reference implementation of
the old per-offset decode. Asserted: the columnar pipeline is >= 1.5x
the PR-1 end-to-end throughput, and the cold load itself is faster than
just the PR-1 trie rebuild.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro import config
from repro.act import entry as entry_codec
from repro.act.core import ACTCore
from repro.act.lookup_table import LookupTable
from repro.act.serialize import load_index, save_index
from repro.act.trie import AdaptiveCellTrie
from repro.bench import throughput_mpts
from repro.bench.reporting import record_row, record_text
from repro.datasets import nyc, points

_TABLE = "Columnar pipeline: load + 1M-point approximate join"
_COLUMNS = ["pipeline", "load s", "join s", "end-to-end s", "M points/s"]

_NUM_POLYGONS = 120
_PRECISION_M = 30.0
_NUM_POINTS = 1_000_000

_STATE = {}


@pytest.fixture(scope="module")
def index_path(tmp_path_factory):
    """One serialized index shared by every pipeline variant."""
    from repro.act.index import ACTIndex

    polygons = nyc.neighborhoods(_NUM_POLYGONS, seed=5)
    index = ACTIndex.build(polygons, precision_meters=_PRECISION_M)
    path = tmp_path_factory.mktemp("columnar") / "index.npz"
    save_index(index, path)
    return path


@pytest.fixture(scope="module")
def join_workload(index_path):
    n = config.bench_points(_NUM_POINTS)
    lngs, lats = points.taxi_points(n, seed=42)
    # warm page caches and numpy dispatch so the single-round pipeline
    # timings compare fairly regardless of test order
    warm = load_index(index_path)
    warm.executor.count_points(lngs[:10_000], lats[:10_000])
    _pr1_join(warm.core, warm.grid, lngs[:10_000], lats[:10_000],
              warm.num_polygons)
    return lngs, lats


# ----------------------------------------------------------------------
# PR-1 reference pipeline (faithful reproduction of the old shape)
# ----------------------------------------------------------------------
def _pr1_load(path):
    """PR-1 cold load: rebuild the object trie node by node, then freeze
    it back into arrays for the batch engine (as the lazy per-process
    snapshot did on first use). Grid/polygon parsing — identical in both
    pipelines — is deliberately *excluded*, which understates the PR-1
    cost."""
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"].tobytes()).decode("utf-8"))
        nodes = data["nodes"]
        roots = data["roots"]
        lookup = data["lookup"]
    table = LookupTable.from_array(lookup)
    trie = AdaptiveCellTrie.from_arrays(
        nodes, roots, fanout=meta["fanout"],
        num_entries=meta["num_trie_entries"],
    )
    return ACTCore.from_trie(trie, table)


def _pr1_count_hits(table, offset_cache, entries, num_polygons,
                    include_candidates):
    """PR-1 decode: numpy payload tags, per-offset Python loops."""
    counts = np.zeros(num_polygons, dtype=np.int64)
    tags = entries & np.uint64(3)
    mask31 = np.uint64((1 << 31) - 1)

    def count_refs(refs):
        kept = refs if include_candidates else \
            refs[(refs & np.uint64(1)) == 1]
        if kept.size:
            ids = (kept >> np.uint64(1)).astype(np.int64)
            counts[:] = counts + np.bincount(ids, minlength=num_polygons)

    one = entries[tags == np.uint64(entry_codec.TAG_PAYLOAD_1)]
    if one.size:
        count_refs((one >> np.uint64(2)) & mask31)
    two = entries[tags == np.uint64(entry_codec.TAG_PAYLOAD_2)]
    if two.size:
        count_refs((two >> np.uint64(2)) & mask31)
        count_refs((two >> np.uint64(33)) & mask31)
    offsets = entries[tags == np.uint64(entry_codec.TAG_OFFSET)]
    if offsets.size:
        values, freq = np.unique(offsets >> np.uint64(2),
                                 return_counts=True)
        for offset, count in zip(values.tolist(), freq.tolist()):
            cached = offset_cache.get(offset)
            if cached is None:
                cached = table.get(offset)
                offset_cache[offset] = cached
            true_ids, cand_ids = cached
            for pid in true_ids:
                counts[pid] += count
            if include_candidates:
                for pid in cand_ids:
                    counts[pid] += count
    return counts


def _pr1_join(core, grid, lngs, lats, num_polygons):
    """PR-1 ApproximateJoin: one descent, two separate count passes."""
    entries = core.lookup_entries(grid.leaf_cells_batch(lngs, lats))
    cache = {}
    counts = _pr1_count_hits(core.lookup_table, cache, entries,
                             num_polygons, include_candidates=True)
    _pr1_count_hits(core.lookup_table, cache, entries, num_polygons,
                    include_candidates=False)
    return counts


# ----------------------------------------------------------------------
# Benchmarks
# ----------------------------------------------------------------------
def _best_join(fn, rounds=3):
    """Best-of-N wall time for the join leg (loads stay single-shot)."""
    best = float("inf")
    counts = None
    for _ in range(rounds):
        start = time.perf_counter()
        counts = fn()
        best = min(best, time.perf_counter() - start)
    return best, counts


def test_columnar_pipeline(benchmark, index_path, join_workload):
    lngs, lats = join_workload

    def run():
        t0 = time.perf_counter()
        index = load_index(index_path)
        t1 = time.perf_counter()
        join_s, counts = _best_join(
            lambda: index.executor.count_points(lngs, lats))
        _STATE["columnar"] = (t1 - t0, join_s)
        _STATE["columnar_counts"] = counts

    benchmark.pedantic(run, rounds=1, iterations=1)
    load_s, join_s = _STATE["columnar"]
    total = load_s + join_s
    record_row(_TABLE, _COLUMNS, [
        "columnar core (PR 2)", round(load_s, 3), round(join_s, 3),
        round(total, 3), round(throughput_mpts(len(lngs), total), 2),
    ])


def test_pr1_pipeline(benchmark, index_path, join_workload):
    lngs, lats = join_workload
    # num_polygons from the (cheap) real loader; not part of the timing
    num_polygons = load_index(index_path).num_polygons

    grid = load_index(index_path).grid  # untimed cost common to both

    def run():
        t0 = time.perf_counter()
        core = _pr1_load(index_path)
        t1 = time.perf_counter()
        join_s, counts = _best_join(
            lambda: _pr1_join(core, grid, lngs, lats, num_polygons))
        _STATE["pr1"] = (t1 - t0, join_s)
        _STATE["pr1_counts"] = counts

    benchmark.pedantic(run, rounds=1, iterations=1)
    load_s, join_s = _STATE["pr1"]
    total = load_s + join_s
    record_row(_TABLE, _COLUMNS, [
        "PR-1 shape (object trie)", round(load_s, 3), round(join_s, 3),
        round(total, 3), round(throughput_mpts(len(lngs), total), 2),
    ])


def test_columnar_speedup_asserted(join_workload):
    """The acceptance gate: >= 1.5x end-to-end, faster cold loads."""
    if "columnar" not in _STATE or "pr1" not in _STATE:
        pytest.skip("pipeline benchmarks did not run")
    lngs, _ = join_workload
    new_load, new_join = _STATE["columnar"]
    old_load, old_join = _STATE["pr1"]
    assert np.array_equal(_STATE["columnar_counts"], _STATE["pr1_counts"]), \
        "pipelines must agree on the join result"
    speedup = (old_load + old_join) / (new_load + new_join)
    record_text(_TABLE, (
        f"end-to-end speedup {speedup:.2f}x "
        f"(load {old_load / max(new_load, 1e-9):.1f}x, "
        f"join {old_join / max(new_join, 1e-9):.2f}x) over "
        f"{len(lngs):,} points"
    ))
    if config.bench_scale() < 1.0:
        # smoke runs (CI, REPRO_SCALE < 1) exercise both pipelines but a
        # noisy shared runner cannot support wall-clock comparisons
        pytest.skip("timing assertions need REPRO_SCALE >= 1")
    assert new_load < old_load, (
        f"columnar load ({new_load:.3f} s) must beat the PR-1 trie "
        f"rebuild ({old_load:.3f} s)"
    )
    assert speedup >= 1.5, (
        f"columnar pipeline must be >= 1.5x the PR-1 shape end to end, "
        f"got {speedup:.2f}x"
    )
