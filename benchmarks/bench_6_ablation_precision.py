"""Ablation A3 — the precision knob: error bound vs false positives.

Validates the paper's core guarantee empirically across a precision
sweep: the measured worst-case distance of a false-positive join pair
must stay below the configured bound, while the false-positive *rate*
falls as the bound tightens (and cells multiply — the trade the paper's
Table I quantifies).
"""

import pytest

from repro import ACTIndex
from repro.bench import dataset_polygons, workload
from repro.bench.reporting import record_row
from repro.geometry import point_polygon_distance_meters

_COLUMNS = ["bound [m]", "guarantee [m]", "measured max err [m]",
            "false-positive pairs", "fp rate", "indexed cells [M]"]
_TABLE = "Ablation A3: precision sweep (neighborhoods)"

_STATE = {}


def _polygons():
    return _STATE.setdefault("polys", dataset_polygons("neighborhoods"))


@pytest.mark.parametrize("precision", [240.0, 120.0, 60.0, 15.0])
def test_ablation_precision(benchmark, precision):
    polygons = _polygons()
    lngs, lats = workload(30_000, seed=99)

    index = ACTIndex.build(polygons, precision_meters=precision)
    approx = benchmark.pedantic(
        lambda: index.count_points(lngs, lats), rounds=2, iterations=1
    )
    exact = index.count_points(lngs, lats, exact=True)
    fp_pairs = int((approx - exact).sum())
    fp_rate = fp_pairs / max(1, int(approx.sum()))

    # measure actual false-positive distances on a per-point sample
    worst = 0.0
    entries = index.lookup_batch(lngs[:6000], lats[:6000])
    for k, entry in enumerate(entries.tolist()):
        result = index._decode(int(entry))
        if not result.candidates:
            continue
        x = float(lngs[k])
        y = float(lats[k])
        for pid in result.candidates:
            if not polygons[pid].contains(x, y):
                worst = max(worst, point_polygon_distance_meters(
                    polygons[pid], x, y))
    assert worst <= index.guaranteed_precision_meters * 1.001

    record_row(_TABLE, _COLUMNS, [
        precision,
        index.guaranteed_precision_meters,
        worst,
        fp_pairs,
        fp_rate,
        index.stats.indexed_cells / 1e6,
    ])
