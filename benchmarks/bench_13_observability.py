"""Observability overhead — telemetry must be cheap enough to leave on.

The serving stack ships with telemetry enabled by default: counters and
mergeable latency histograms on every request, deterministic 1-in-N
trace sampling, and the slow-query log. That default is only defensible
if the instrumented hot path costs almost nothing — so this benchmark
serves the census point workload at the three telemetry levels (``off``
— every metrics handle is a no-op, ``counters`` — aggregates only,
``full`` — counters plus sampled tracing at the default 1-in-64
interval) and computes the overhead of each level against ``off``.

Methodology: each measurement pass classifies every point once with a
cleared cell cache (the cache fills as traffic arrives, as in a real
deployment — re-looping the same points would make the cache
artificially 100% hot and shrink the denominator to a dict lookup).
Differences this small drown in two noise sources on shared runners,
so the harness removes both structurally: *instance placement bias*
(two service objects can differ by several percent from memory layout
alone) is eliminated by serving every level from **one**
``ACTService`` whose level is flipped in place with
:meth:`~repro.serve.ACTService.set_telemetry`, and *transient stalls*
(CPU steal, interrupts) are filtered by timing each pass in fixed
chunks and keeping the **per-chunk minimum across rounds** — chunk
``i`` replays identical traffic against identical cache state every
round, so its minimum converges on the true cost while a stall only
poisons one chunk of one round. Level order is shuffled per round.
The gated workload is ``exact=True`` census point classification (the
paper's use case); the approximate path is measured and reported
alongside for reference.

The acceptance gate — full telemetry costs < 5% qps at the default
sampling interval — needs stable timing, so it is asserted only when
``REPRO_SCALE >= 1``; smoke runs still measure and record everything.
Results are persisted as ``BENCH_observability.json`` (uploaded as a
CI artifact) so the overhead trajectory is tracked across PRs.
"""

from __future__ import annotations

import random
import time

import pytest

from repro import config
from repro.act.index import ACTIndex
from repro.bench.reporting import record_row, record_text, write_bench_json
from repro.datasets import nyc, points
from repro.serve import ACTService, ServeConfig

_TABLE = "Observability: serving qps by telemetry level (census points)"
_COLUMNS = ["workload", "telemetry", "queries", "qps", "vs off"]

_NUM_POLYGONS = 500
_PRECISION_M = 300.0
_BASE_QUERIES = 20_000
#: The level every measurement is differenced against.
_BASELINE = "off"
_LEVELS = ("off", "counters", "full")
#: Rounds per workload; every chunk keeps its minimum across rounds.
_ROUNDS = 12
#: Queries per timed chunk (per-chunk minima filter transient stalls).
_CHUNK = 1_000

_STATE = {}


@pytest.fixture(scope="module")
def observability_workload():
    """One prebuilt census index plus a query point stream."""
    num = max(100, int(_NUM_POLYGONS * config.bench_scale()))
    index = ACTIndex.build(nyc.census_blocks(num, seed=23),
                           precision_meters=_PRECISION_M)
    n = max(2_000, int(_BASE_QUERIES * config.bench_scale()))
    lngs, lats = points.taxi_points(n, seed=7)
    return index, list(zip(lngs.tolist(), lats.tolist()))


def _one_pass(service, pairs, telemetry: str, exact: bool) -> list:
    """Per-chunk seconds to classify every point once at ``telemetry``.

    The shared service is flipped to the level in place and its cell
    cache cleared, so each pass replays identical traffic against
    identical starting state: a short warmup slice (the first trickle
    of production traffic) seeds the cache, then the timed chunks
    cover the instrumented hit *and* miss paths in their natural
    ratio. Single-threaded, so misses stay inline and the batcher
    never engages.
    """
    service.set_telemetry(telemetry)
    query = service.query
    service.cache.clear()
    for lng, lat in pairs[:max(200, len(pairs) // 20)]:
        query("census", lng, lat, exact=exact)
    service.cache.clear()
    chunks = []
    for c in range(0, len(pairs), _CHUNK):
        chunk = pairs[c:c + _CHUNK]
        start = time.perf_counter()
        for lng, lat in chunk:
            query("census", lng, lat, exact=exact)
        chunks.append(time.perf_counter() - start)
    return chunks


def _measure(index, pairs, exact: bool) -> dict:
    """Chunk-min comparison of all telemetry levels on one service."""
    rng = random.Random(19)
    service = ACTService(config=ServeConfig())
    service.registry.register("census", lambda: index)
    mins = {lvl: None for lvl in _LEVELS}
    try:
        service.query("census", *pairs[0])  # materialize the pin once
        for _ in range(_ROUNDS):
            order = list(_LEVELS)
            rng.shuffle(order)
            for lvl in order:
                chunks = _one_pass(service, pairs, lvl, exact)
                mins[lvl] = chunks if mins[lvl] is None else [
                    min(a, b) for a, b in zip(mins[lvl], chunks)]
    finally:
        service.close()
    totals = {lvl: sum(mins[lvl]) for lvl in _LEVELS}
    overhead = {
        lvl: totals[lvl] / totals[_BASELINE] - 1.0
        for lvl in _LEVELS if lvl != _BASELINE
    }
    qps = {lvl: len(pairs) / totals[lvl] for lvl in _LEVELS}
    return {"overhead": overhead, "qps": qps}


@pytest.mark.parametrize("exact", [False, True],
                         ids=["approx", "exact"])
def test_observability_overhead(benchmark, observability_workload, exact):
    index, pairs = observability_workload
    workload = "exact" if exact else "approx"

    def run():
        _STATE[workload] = _measure(index, pairs, exact)

    benchmark.pedantic(run, rounds=1, iterations=1)
    measured = _STATE[workload]
    for lvl in _LEVELS:
        ratio = measured["overhead"].get(lvl)
        record_row(_TABLE, _COLUMNS, [
            workload, lvl, len(pairs), round(measured["qps"][lvl], 1),
            "baseline" if ratio is None else f"{ratio * 100:+.1f}%",
        ])


def test_observability_overhead_asserted(observability_workload):
    """The acceptance gate: full telemetry costs < 5% qps."""
    if "exact" not in _STATE:
        pytest.skip("observability level benchmarks did not run")
    index, pairs = observability_workload
    exact = _STATE["exact"]
    approx = _STATE.get("approx", exact)
    record_text(_TABLE, (
        f"telemetry overhead vs off (exact census classification): "
        f"counters {exact['overhead']['counters'] * 100:+.1f}%, full "
        f"(sampled tracing) {exact['overhead']['full'] * 100:+.1f}% — "
        f"chunk-min over {len(pairs):,} queries x {_ROUNDS} rounds"
    ))
    write_bench_json("observability", {
        "num_polygons": max(100, int(_NUM_POLYGONS * config.bench_scale())),
        "precision_meters": _PRECISION_M,
        "queries": len(pairs),
        "rounds": _ROUNDS,
        "qps_off": exact["qps"]["off"],
        "qps_counters": exact["qps"]["counters"],
        "qps_full": exact["qps"]["full"],
        "overhead_counters": exact["overhead"]["counters"],
        "overhead_full": exact["overhead"]["full"],
        "qps_off_approx": approx["qps"]["off"],
        "overhead_full_approx": approx["overhead"]["full"],
    })
    if config.bench_scale() < 1.0:
        pytest.skip("timing assertions need REPRO_SCALE >= 1")
    overhead_full = exact["overhead"]["full"]
    for attempt in range(2):
        if overhead_full < 0.05:
            break
        # re-measure before failing: the estimator is robust but a
        # sustained noisy patch on a shared runner can still leak in
        again = _measure(index, pairs, exact=True)
        record_text(_TABLE, (
            f"gate re-measure {attempt + 1}: full "
            f"{again['overhead']['full'] * 100:+.1f}% (previous best "
            f"{overhead_full * 100:+.1f}%)"
        ))
        overhead_full = min(overhead_full, again["overhead"]["full"])
    assert overhead_full < 0.05, (
        f"full telemetry (default sampling) must cost < 5% qps, "
        f"measured {overhead_full * 100:.1f}%"
    )
