#!/usr/bin/env python
"""Validate ``BENCH_*.json`` snapshots against the shared schema.

The machine-readable benchmark snapshots written by
``repro.bench.reporting.write_bench_json`` are uploaded as CI artifacts
to track the performance trajectory across PRs. A benchmark that
bit-rots (crashes half way, emits NaNs, or stops recording metrics)
would otherwise upload garbage that silently poisons the trajectory —
this checker fails the PR instead.

Schema (shared by every ``BENCH_<name>.json``):

* the document is a JSON object with ``"bench"`` (non-empty string
  matching the filename) and ``"scale"`` (finite number > 0);
* it carries at least one *metric*: a numeric value (or numeric
  container) besides the ``bench``/``scale`` envelope — an empty
  snapshot means the benchmark recorded nothing;
* every number anywhere in the document is finite — NaN/Infinity are
  rejected both as JSON literals and as values;
* *trajectory* objects append monotonically: any object whose keys all
  parse as numbers (e.g. ``qps_by_workers: {"1": …, "2": …, "4": …}``)
  must list them in strictly increasing order, so a series is appended
  to, never shuffled or overwritten out of order.

Usage::

    python benchmarks/check_bench_json.py [FILES...]

With no arguments, validates every ``BENCH_*.json`` in the current
directory and fails if there is none (CI runs it after the bench smoke
suite, which must have produced snapshots).
"""

from __future__ import annotations

import glob
import json
import math
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

#: Envelope keys that are not metrics in themselves.
ENVELOPE_KEYS = ("bench", "scale")


def _reject_constant(value: str):
    raise ValueError(f"non-finite JSON literal {value!r}")


def iter_numbers(value, path: str = "$") -> Iterator[Tuple[str, float]]:
    """Yield every ``(json_path, number)`` in a document."""
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        yield path, float(value)
    elif isinstance(value, dict):
        for key, item in value.items():
            yield from iter_numbers(item, f"{path}.{key}")
    elif isinstance(value, list):
        for i, item in enumerate(value):
            yield from iter_numbers(item, f"{path}[{i}]")


def _numeric_key(key: str):
    try:
        return float(key)
    except (TypeError, ValueError):
        return None


def check_trajectories(value, path: str = "$") -> List[str]:
    """Objects keyed entirely by numbers must be strictly increasing.

    JSON objects preserve insertion order, so an out-of-order series
    means the benchmark rewrote (instead of appended to) its
    trajectory.
    """
    problems: List[str] = []
    if isinstance(value, dict):
        keys = [_numeric_key(k) for k in value]
        if len(keys) >= 2 and all(k is not None for k in keys):
            # NaN keys make every ordering comparison vacuously pass —
            # reject them outright instead of letting a shuffled series
            # slip through
            if any(not math.isfinite(k) for k in keys):
                problems.append(
                    f"{path}: trajectory keys {list(value)} contain a "
                    f"non-finite value"
                )
            elif any(b <= a for a, b in zip(keys, keys[1:])):
                problems.append(
                    f"{path}: trajectory keys {list(value)} are not "
                    f"strictly increasing (append-only series expected)"
                )
        for key, item in value.items():
            problems.extend(check_trajectories(item, f"{path}.{key}"))
    elif isinstance(value, list):
        for i, item in enumerate(value):
            problems.extend(check_trajectories(item, f"{path}[{i}]"))
    return problems


def validate_document(document: dict, expected_name: str) -> List[str]:
    """All schema violations in one parsed snapshot (empty = valid)."""
    problems: List[str] = []
    if not isinstance(document, dict):
        return [f"document must be a JSON object, got "
                f"{type(document).__name__}"]
    bench = document.get("bench")
    if not isinstance(bench, str) or not bench:
        problems.append('"bench" must be a non-empty string')
    elif expected_name and bench != expected_name:
        problems.append(
            f'"bench" is {bench!r} but the filename says '
            f'{expected_name!r}'
        )
    scale = document.get("scale")
    if (isinstance(scale, bool) or not isinstance(scale, (int, float))
            or not math.isfinite(scale) or scale <= 0):
        problems.append(f'"scale" must be a finite number > 0, '
                        f'got {scale!r}')
    metrics = {k: v for k, v in document.items() if k not in ENVELOPE_KEYS}
    if not any(True for _ in iter_numbers(metrics)):
        problems.append("no numeric metrics outside the bench/scale "
                        "envelope (empty snapshot)")
    for path, number in iter_numbers(document):
        if not math.isfinite(number):
            problems.append(f"{path}: non-finite value {number!r}")
    problems.extend(check_trajectories(document))
    return problems


def validate_file(path: Path) -> List[str]:
    name = path.name
    expected = ""
    if name.startswith("BENCH_") and name.endswith(".json"):
        expected = name[len("BENCH_"):-len(".json")]
    try:
        document = json.loads(path.read_text(),
                              parse_constant=_reject_constant)
    except (OSError, ValueError) as exc:
        return [f"unreadable: {exc}"]
    return validate_document(document, expected)


def main(argv: List[str]) -> int:
    paths = [Path(p) for p in argv] if argv else \
        sorted(Path(p) for p in glob.glob("BENCH_*.json"))
    if not paths:
        print("check_bench_json: no BENCH_*.json found (did the bench "
              "smoke suite run?)", file=sys.stderr)
        return 1
    failed = False
    for path in paths:
        problems = validate_file(path)
        if problems:
            failed = True
            for problem in problems:
                print(f"{path}: {problem}", file=sys.stderr)
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
