"""Shared fixtures for the benchmark suite.

Indexes are cached per (dataset, precision) across all benchmark files,
and every file records paper-style report rows that are rendered after
the pytest-benchmark summary (see ``pytest_terminal_summary``).

Run with::

    pytest benchmarks/ --benchmark-only

Workload sizes honor ``REPRO_SCALE`` (default 1; 10 approaches the paper's
shape).
"""

from __future__ import annotations

import pytest

from repro.bench import IndexCache, workload
from repro.bench.reporting import drain_reports


@pytest.fixture(scope="session")
def cache():
    return IndexCache()


@pytest.fixture(scope="session")
def join_points():
    """The Figure 3 / Figure 4 point workload (scaled)."""
    return workload(200_000)


@pytest.fixture(scope="session")
def probe_points():
    """Smaller batch for scalar-loop comparisons (R-tree vs scalar ACT)."""
    return workload(20_000, seed=321)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    reports = drain_reports()
    if not reports:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line(
        "################ paper-style report tables ################"
    )
    for text in reports:
        terminalreporter.write_line(text)
