"""Refinement engine — packed-edge kernel vs grouped-per-polygon.

The candidate-heavy regime is where exact-join refinement dominates: a
*low*-precision ACT over many small polygons classifies most references
as candidates, and the grouped path pays one ``contains_batch`` numpy
dispatch per polygon — thousands of tiny calls when each polygon owns a
handful of candidates. The packed-edge engine
(:class:`~repro.geometry.edge_table.PackedEdgeTable`) evaluates every
pair in one vectorized crossing-number pass.

Measured here, on a census-blocks workload built for candidate volume:

* grouped vs packed refinement over the identical candidate pair set
  (asserted: bit-identical verdicts, >= 2x packed speedup at full
  scale);
* cold start from ``.npz`` with and without ``mmap_mode="r"`` (the
  mmap load defers the node pool to first touch).

Results are also persisted as ``BENCH_refinement.json`` (see
:func:`repro.bench.reporting.write_bench_json`) so the perf trajectory
is tracked across PRs.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import config
from repro.act.index import ACTIndex
from repro.act.serialize import load_index, save_index
from repro.bench import throughput_mpts, write_bench_json
from repro.bench.reporting import record_row, record_text
from repro.datasets import nyc, points
from repro.join.executor import dedupe_pairs, refine_pairs

_TABLE = "Refinement engine: grouped vs packed on candidate-heavy joins"
_COLUMNS = ["variant", "pairs", "seconds", "M pairs/s"]
_LOAD_TABLE = "Cold start: eager load vs mmap node pool"
_LOAD_COLUMNS = ["variant", "load s", "first-join s", "total s"]

_NUM_POLYGONS = 2000
_PRECISION_M = 300.0  # deliberately low precision: candidates dominate
_NUM_POINTS = 1_000_000

_STATE = {}


@pytest.fixture(scope="module")
def workload():
    """A low-precision index over many small polygons, plus its
    candidate pair set for a large point batch."""
    num = max(200, int(_NUM_POLYGONS * config.bench_scale()))
    polygons = nyc.census_blocks(num, seed=17)
    index = ACTIndex.build(polygons, precision_meters=_PRECISION_M)
    lngs, lats = points.taxi_points(
        config.bench_points(_NUM_POINTS), seed=42)
    executor = index.executor
    entries = executor.entries(lngs, lats)
    point_idx, polygon_ids = index.core.candidate_pairs(entries)
    _ = executor.edge_table  # built once, outside the timed kernels
    return index, polygons, lngs, lats, point_idx, polygon_ids


def _best(fn, rounds=3):
    best = float("inf")
    out = None
    for _ in range(rounds):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


def test_grouped_refinement(benchmark, workload):
    index, polygons, lngs, lats, point_idx, polygon_ids = workload

    def run():
        seconds, inside = _best(
            lambda: refine_pairs(polygons, point_idx, polygon_ids,
                                 lngs, lats))
        _STATE["grouped"] = (seconds, inside)

    benchmark.pedantic(run, rounds=1, iterations=1)
    seconds, _ = _STATE["grouped"]
    record_row(_TABLE, _COLUMNS, [
        "grouped per polygon", len(point_idx), round(seconds, 4),
        round(throughput_mpts(len(point_idx), seconds), 2),
    ])


def test_packed_refinement(benchmark, workload):
    index, polygons, lngs, lats, point_idx, polygon_ids = workload
    table = index.executor.edge_table

    def run():
        seconds, inside = _best(
            lambda: table.refine(point_idx, polygon_ids, lngs, lats))
        _STATE["packed"] = (seconds, inside)

    benchmark.pedantic(run, rounds=1, iterations=1)
    seconds, _ = _STATE["packed"]
    record_row(_TABLE, _COLUMNS, [
        "packed edge table", len(point_idx), round(seconds, 4),
        round(throughput_mpts(len(point_idx), seconds), 2),
    ])


def test_cold_load_mmap(benchmark, workload, tmp_path_factory):
    """Eager vs mmap cold start: load, then the first exact join."""
    index, polygons, lngs, lats, _, _ = workload
    path = tmp_path_factory.mktemp("refine") / "index.npz"
    save_index(index, path)
    probe = (lngs[:50_000], lats[:50_000])

    def run():
        for variant, mode in (("eager", None), ("mmap", "r")):
            t0 = time.perf_counter()
            loaded = load_index(path, mmap_mode=mode)
            t1 = time.perf_counter()
            loaded.executor.count_points(*probe, exact=True)
            t2 = time.perf_counter()
            _STATE[f"load_{variant}"] = (t1 - t0, t2 - t1)

    benchmark.pedantic(run, rounds=1, iterations=1)
    for variant in ("eager", "mmap"):
        load_s, join_s = _STATE[f"load_{variant}"]
        record_row(_LOAD_TABLE, _LOAD_COLUMNS, [
            variant, round(load_s, 4), round(join_s, 4),
            round(load_s + join_s, 4),
        ])


def test_dedup_never_changes_results(workload):
    """Micro-assert: candidate-pair dedup is invisible in the verdicts.

    A skewed batch (every point repeated several times, as when taxi
    pickups pile onto one terminal) is refined twice — through the
    executor's deduplicating path and through the raw packed kernel on
    the full duplicated pair set — and the verdict vectors must be
    bit-identical. Also pins down the dedup arithmetic itself: the
    unique set must shrink by exactly the duplication factor.
    """
    index, polygons, lngs, lats, point_idx, polygon_ids = workload
    executor = index.executor
    take = min(20_000, point_idx.shape[0])
    repeat = 4
    skew_pts = np.tile(point_idx[:take], repeat)
    skew_ids = np.tile(polygon_ids[:take], repeat)
    unique = dedupe_pairs(skew_pts, skew_ids, lngs, lats)
    assert unique is not None, "tiled pairs must contain duplicates"
    first, inverse = unique
    base = dedupe_pairs(point_idx[:take], polygon_ids[:take], lngs, lats)
    base_unique = take if base is None else base[0].shape[0]
    assert first.shape[0] == base_unique, (
        f"tiling x{repeat} must not invent unique pairs: "
        f"{first.shape[0]} vs {base_unique}")
    deduped = executor.refine_pairs(skew_pts, skew_ids, lngs, lats)
    raw = executor.edge_table.refine(skew_pts, skew_ids, lngs, lats)
    assert deduped.shape == raw.shape
    assert np.array_equal(deduped, raw), \
        "dedup must never change refinement verdicts"
    assert inverse.shape[0] == skew_pts.shape[0]


def test_refinement_speedup_asserted(workload):
    """The acceptance gate: identical verdicts, >= 2x packed speedup."""
    if "grouped" not in _STATE or "packed" not in _STATE:
        pytest.skip("refinement benchmarks did not run")
    index, polygons, lngs, lats, point_idx, polygon_ids = workload
    grouped_s, grouped_inside = _STATE["grouped"]
    packed_s, packed_inside = _STATE["packed"]
    assert np.array_equal(grouped_inside, packed_inside), \
        "packed refinement must be bit-identical to the grouped path"
    speedup = grouped_s / max(packed_s, 1e-9)
    record_text(_TABLE, (
        f"packed speedup {speedup:.2f}x over {len(point_idx):,} candidate "
        f"pairs ({index.num_polygons} polygons, "
        f"precision {_PRECISION_M:g} m)"
    ))
    write_bench_json("refinement", {
        "num_polygons": index.num_polygons,
        "precision_meters": _PRECISION_M,
        "num_points": int(lngs.shape[0]),
        "num_candidate_pairs": int(point_idx.shape[0]),
        "grouped_seconds": grouped_s,
        "packed_seconds": packed_s,
        "packed_speedup": speedup,
        "packed_table_bytes": index.executor.edge_table.size_bytes,
        "load_eager_seconds": _STATE.get("load_eager", (None,))[0],
        "load_mmap_seconds": _STATE.get("load_mmap", (None,))[0],
    })
    if config.bench_scale() < 1.0:
        # smoke runs exercise both kernels; wall-clock gates need the
        # full-scale workload on a quiet machine
        pytest.skip("timing assertions need REPRO_SCALE >= 1")
    assert speedup >= 2.0, (
        f"packed-edge refinement must be >= 2x the grouped path on the "
        f"candidate-heavy workload, got {speedup:.2f}x"
    )
