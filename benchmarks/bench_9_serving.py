"""Serving benchmark — micro-batching + cell cache vs the naive loop.

Simulates sustained point-query traffic against one pinned index: a hot
request stream (distinct taxi-like locations, each queried several times,
shuffled — the repeat traffic a serving cache exists for) is answered
four ways:

* **naive loop** — one ``ACTIndex.query`` per request, single caller,
  the pre-serve status quo of every entry point;
* **served, cache off** — concurrent clients through
  :class:`~repro.serve.service.ACTService` with the cell cache disabled
  (isolates adaptive micro-batching under miss pressure);
* **served, batch+cache** — the full stack, at 1 client and at 8.

Reports sustained qps and p50/p99 per-request latency for each
configuration, plus the cache hit rate; the full stack must beat the
naive loop on sustained throughput (asserted).
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro import config
from repro.bench.reporting import record_row, record_text
from repro.datasets import points
from repro.serve import ACTService, ServeConfig

_TABLE = "Serving: micro-batching + cell cache vs naive per-call loop"
_COLUMNS = ["configuration", "qps", "p50 us", "p99 us", "cache hit rate"]

_NUM_DISTINCT = 2_000
_REPEATS = 25
_NUM_CLIENTS = 8

_STATE = {}


def _request_stream():
    """Hot traffic: distinct locations x repeats, deterministically
    shuffled. Repeat queries on hot cells are what the cell cache
    exploits; the distinct set still spans the whole region."""
    if "requests" not in _STATE:
        distinct = config.bench_points(_NUM_DISTINCT)
        lngs, lats = points.taxi_points(distinct, seed=999)
        lngs = np.tile(lngs, _REPEATS)
        lats = np.tile(lats, _REPEATS)
        order = np.random.default_rng(7).permutation(lngs.size)
        _STATE["requests"] = (lngs[order], lats[order])
    return _STATE["requests"]


def _percentiles_us(latencies):
    arr = np.asarray(latencies, dtype=np.float64) * 1e6
    return round(float(np.percentile(arr, 50)), 1), \
        round(float(np.percentile(arr, 99)), 1)


def test_naive_per_call_loop(benchmark, cache):
    index = cache.get("neighborhoods", 15.0)
    lngs, lats = _request_stream()

    def run():
        latencies = []
        query = index.query
        clock = time.perf_counter
        wall_start = clock()
        for lng, lat in zip(lngs, lats):
            start = clock()
            query(lng, lat)
            latencies.append(clock() - start)
        _STATE["naive"] = (clock() - wall_start, latencies)

    benchmark.pedantic(run, rounds=1, iterations=1)
    wall, latencies = _STATE["naive"]
    qps = lngs.size / wall
    _STATE["naive_qps"] = qps
    p50, p99 = _percentiles_us(latencies)
    record_row(_TABLE, _COLUMNS,
               ["naive per-call loop", round(qps), p50, p99, "-"])


def _run_served(index, lngs, lats, cache_capacity, num_clients):
    service = ACTService(config=ServeConfig(cache_capacity=cache_capacity))
    service.registry.register_index("neighborhoods", index)
    barrier = threading.Barrier(num_clients + 1)

    def client(offset):
        barrier.wait()
        query = service.query
        for lng, lat in zip(lngs[offset::num_clients],
                            lats[offset::num_clients]):
            query("neighborhoods", lng, lat)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(num_clients)]
    for t in threads:
        t.start()
    barrier.wait()
    wall_start = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall_start
    histogram = service.metrics.histogram("queries.latency_seconds")
    p50 = round(histogram.percentile(0.50) * 1e6, 1)
    p99 = round(histogram.percentile(0.99) * 1e6, 1)
    hit_rate = service.cache.hit_rate
    service.close()
    return lngs.size / wall, p50, p99, hit_rate


def test_served_batching_only(benchmark, cache):
    index = cache.get("neighborhoods", 15.0)
    lngs, lats = _request_stream()

    def run():
        _STATE["batch_only"] = _run_served(
            index, lngs, lats, cache_capacity=0, num_clients=_NUM_CLIENTS)

    benchmark.pedantic(run, rounds=1, iterations=1)
    qps, p50, p99, _ = _STATE["batch_only"]
    record_row(_TABLE, _COLUMNS,
               [f"served, cache off ({_NUM_CLIENTS} clients)",
                round(qps), p50, p99, "0.00"])


def test_served_one_client(benchmark, cache):
    index = cache.get("neighborhoods", 15.0)
    lngs, lats = _request_stream()

    def run():
        _STATE["one_client"] = _run_served(
            index, lngs, lats, cache_capacity=1 << 20, num_clients=1)

    benchmark.pedantic(run, rounds=1, iterations=1)
    qps, p50, p99, hit_rate = _STATE["one_client"]
    _STATE.setdefault("served_qps", []).append(qps)
    record_row(_TABLE, _COLUMNS,
               ["served, batch+cache (1 client)",
                round(qps), p50, p99, f"{hit_rate:.2f}"])


def test_served_batching_and_cache(benchmark, cache):
    index = cache.get("neighborhoods", 15.0)
    lngs, lats = _request_stream()

    def run():
        _STATE["full"] = _run_served(
            index, lngs, lats, cache_capacity=1 << 20,
            num_clients=_NUM_CLIENTS)

    benchmark.pedantic(run, rounds=1, iterations=1)
    qps, p50, p99, hit_rate = _STATE["full"]
    _STATE.setdefault("served_qps", []).append(qps)
    record_row(_TABLE, _COLUMNS,
               [f"served, batch+cache ({_NUM_CLIENTS} clients)",
                round(qps), p50, p99, f"{hit_rate:.2f}"])
    naive_qps = _STATE.get("naive_qps")
    if naive_qps is not None:
        best = max(_STATE["served_qps"])
        record_text(_TABLE, f"best served speedup over naive loop: "
                            f"{best / naive_qps:.2f}x sustained qps")
        if config.bench_scale() >= 1.0:
            # wall-clock comparison is meaningless on noisy smoke runs
            assert best > naive_qps, (
                f"serving stack (best {best:,.0f} qps) must beat the "
                f"naive loop ({naive_qps:,.0f} qps) on sustained "
                f"throughput"
            )
