"""Figure 3 — single-threaded join throughput vs the R-tree baseline.

The paper joins taxi points against each polygon dataset and counts
points per polygon, comparing ACT-60m/15m/4m against the boost R-tree's
pure lookup throughput (dashed lines). Here:

* **ACT (vectorized)** — the numpy batch engine, our headline number;
* **ACT (scalar)** — per-point trie descents, the like-for-like
  comparison against the per-point R-tree probe;
* **R-tree lookup** — candidate counting without refinement, exactly the
  paper's baseline measurement.

The report table prints throughput in M points/s plus the ACT/R-tree
factor (the paper reports 3.54x / 5.86x / 10.3x for 4 m).
"""

import pytest

from repro.baselines.rtree import RTreeJoinBaseline
from repro.bench import DATASETS, PRECISIONS, dataset_polygons, throughput_mpts
from repro.bench.reporting import record_row

_COLUMNS = ["dataset", "variant", "M points/s", "vs R-tree"]

#: per-dataset R-tree scalar throughput, filled by the baseline bench
_RTREE_MPTS = {}

_BASELINES = {}


def _rtree(dataset):
    if dataset not in _BASELINES:
        _BASELINES[dataset] = RTreeJoinBaseline(dataset_polygons(dataset))
    return _BASELINES[dataset]


@pytest.mark.parametrize("dataset", DATASETS)
def test_figure3_rtree_baseline(benchmark, probe_points, dataset):
    """The dashed line: R-tree MBR lookups, counting candidates."""
    lngs, lats = probe_points
    baseline = _rtree(dataset)
    result = benchmark.pedantic(
        lambda: baseline.count_points(lngs, lats),
        rounds=2, iterations=1,
    )
    assert result.sum() >= 0
    mpts = throughput_mpts(len(lngs), benchmark.stats.stats.min)
    _RTREE_MPTS[dataset] = mpts
    benchmark.extra_info.update(dataset=dataset, mpts=mpts)
    record_row("Figure 3: throughput", _COLUMNS,
               [dataset, "R-tree lookup (scalar)", mpts, 1.0])


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("precision", PRECISIONS)
def test_figure3_act_scalar(benchmark, cache, probe_points, dataset,
                            precision):
    """Per-point ACT lookups — like-for-like against the R-tree probe."""
    lngs, lats = probe_points
    index = cache.get(dataset, precision)
    core = index.core
    grid = index.grid
    cells = grid.leaf_cells_batch(lngs, lats).tolist()

    def run():
        lookup = core.lookup_entry
        hits = 0
        for cell in cells:
            if cell and lookup(cell):
                hits += 1
        return hits

    benchmark.pedantic(run, rounds=2, iterations=1)
    mpts = throughput_mpts(len(lngs), benchmark.stats.stats.min)
    factor = mpts / _RTREE_MPTS.get(dataset, mpts)
    benchmark.extra_info.update(dataset=dataset, precision_m=precision,
                                mpts=mpts, vs_rtree=factor)
    record_row("Figure 3: throughput", _COLUMNS,
               [dataset, f"ACT-{precision:g}m (scalar)", mpts, factor])


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("precision", PRECISIONS)
def test_figure3_act_vectorized(benchmark, cache, join_points, dataset,
                                precision):
    """The batch engine: count points per polygon over the full workload."""
    lngs, lats = join_points
    index = cache.get(dataset, precision)
    result = benchmark.pedantic(
        lambda: index.count_points(lngs, lats),
        rounds=2, iterations=1,
    )
    assert result.sum() >= 0
    mpts = throughput_mpts(len(lngs), benchmark.stats.stats.min)
    factor = mpts / _RTREE_MPTS.get(dataset, mpts)
    benchmark.extra_info.update(dataset=dataset, precision_m=precision,
                                mpts=mpts, vs_rtree=factor)
    record_row("Figure 3: throughput", _COLUMNS,
               [dataset, f"ACT-{precision:g}m (vectorized)", mpts, factor])
