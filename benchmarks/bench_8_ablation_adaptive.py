"""Ablation A5 — adaptive ACT under a memory budget (paper future work).

Under a strict cell budget, ACT cannot hold the precision level and must
refine candidates. The adaptive index steers its budget toward the
query-point distribution: after a few ``adapt`` rounds on a workload
sample, the fraction of lookups needing a PIP test should fall while the
budget holds — the behaviour sketched in the paper's introduction.
"""

import pytest

from repro.act.adaptive import AdaptiveACTIndex
from repro.bench import dataset_polygons, workload
from repro.bench.reporting import record_row

_COLUMNS = ["budget [cells]", "adapt rounds", "refinement rate",
            "cells used", "trie MB"]
_TABLE = "Ablation A5: adaptive ACT under memory budget"


@pytest.mark.parametrize("budget", [5_000, 20_000, 80_000])
def test_ablation_adaptive(benchmark, budget):
    polygons = dataset_polygons("neighborhoods")
    sample_lngs, sample_lats = workload(20_000, seed=55)
    eval_lngs, eval_lats = workload(20_000, seed=56)

    index = AdaptiveACTIndex(polygons, max_cells=budget,
                             target_precision_meters=15.0)
    before = index.refinement_rate(eval_lngs, eval_lats)
    record_row(_TABLE, _COLUMNS, [
        budget, 0, before, index.num_cells, index.size_bytes / 1e6,
    ])

    def adapt_rounds():
        for _ in range(4):
            index.adapt(sample_lngs, sample_lats)
        return index

    benchmark.pedantic(adapt_rounds, rounds=1, iterations=1)
    after = index.refinement_rate(eval_lngs, eval_lats)
    assert after <= before
    assert index.num_cells <= index.max_cells
    record_row(_TABLE, _COLUMNS, [
        budget, index.adapt_rounds, after, index.num_cells,
        index.size_bytes / 1e6,
    ])
