"""Ablation A4 — execution strategy and grid backend.

Quantifies (a) what the numpy batch engine buys over per-point Python
descents (the paper's C++ enjoys this for free), and (b) the planar grid
vs the S2-like spherical grid as the cell substrate (same trie, different
projection/metrics).
"""


from repro import ACTIndex
from repro.bench import dataset_polygons, throughput_mpts
from repro.bench.reporting import record_row
from repro.grid.s2like import S2LikeGrid

_COLUMNS = ["variant", "M points/s", "indexed cells [M]", "trie MB"]
_TABLE = "Ablation A4: execution strategy & grid backend"

_STATE = {}


def _polygons():
    return _STATE.setdefault("polys", dataset_polygons("boroughs"))


def test_vectorized_lookup(benchmark, cache, probe_points):
    lngs, lats = probe_points
    index = cache.get("boroughs", 15.0)
    benchmark.pedantic(lambda: index.count_points(lngs, lats),
                       rounds=3, iterations=1)
    mpts = throughput_mpts(len(lngs), benchmark.stats.stats.min)
    record_row(_TABLE, _COLUMNS, [
        "planar grid, vectorized", mpts,
        index.stats.indexed_cells / 1e6, index.core.size_bytes / 1e6,
    ])


def test_scalar_lookup(benchmark, cache, probe_points):
    lngs, lats = probe_points
    index = cache.get("boroughs", 15.0)
    grid = index.grid
    core = index.core
    cells = grid.leaf_cells_batch(lngs, lats).tolist()

    def run():
        lookup = core.lookup_entry
        return sum(1 for c in cells if c and lookup(c))

    benchmark.pedantic(run, rounds=2, iterations=1)
    mpts = throughput_mpts(len(lngs), benchmark.stats.stats.min)
    record_row(_TABLE, _COLUMNS, [
        "planar grid, scalar python", mpts,
        index.stats.indexed_cells / 1e6, index.core.size_bytes / 1e6,
    ])


def test_s2like_backend(benchmark, probe_points):
    lngs, lats = probe_points
    index = _STATE.setdefault(
        "s2_index",
        ACTIndex.build(_polygons(), precision_meters=15.0,
                       grid=S2LikeGrid()),
    )
    benchmark.pedantic(lambda: index.count_points(lngs, lats),
                       rounds=2, iterations=1)
    mpts = throughput_mpts(len(lngs), benchmark.stats.stats.min)
    record_row(_TABLE, _COLUMNS, [
        "s2like grid, vectorized", mpts,
        index.stats.indexed_cells / 1e6, index.core.size_bytes / 1e6,
    ])
