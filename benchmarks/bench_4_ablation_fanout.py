"""Ablation A1 — trie fanout: height vs memory vs lookup speed.

Section II of the paper derives the lookup cost model
``c_avg = ceil(k_avg / log2(fanout))`` and argues fanout 256 trades
sparsely occupied nodes (memory) for a shallow tree (speed). This
ablation builds the neighborhoods index at 15 m with fanout 4/16/64/256
and measures exactly that trade-off.
"""

import pytest

from repro import ACTIndex
from repro.act.trie import SUPPORTED_FANOUTS
from repro.bench import dataset_polygons, throughput_mpts
from repro.bench.reporting import record_row

_COLUMNS = ["fanout", "max node accesses", "trie MB", "indexed cells [M]",
            "lookup M points/s"]

_POLYGONS = None


def _polygons():
    global _POLYGONS
    if _POLYGONS is None:
        _POLYGONS = dataset_polygons("neighborhoods")
    return _POLYGONS


@pytest.mark.parametrize("fanout", SUPPORTED_FANOUTS)
def test_ablation_fanout(benchmark, probe_points, fanout):
    index = ACTIndex.build(_polygons(), precision_meters=15.0,
                           fanout=fanout)
    lngs, lats = probe_points
    result = benchmark.pedantic(
        lambda: index.count_points(lngs, lats),
        rounds=2, iterations=1,
    )
    assert result.sum() >= 0
    mpts = throughput_mpts(len(lngs), benchmark.stats.stats.min)
    benchmark.extra_info.update(fanout=fanout, trie_mb=index.core.size_bytes / 1e6)
    record_row("Ablation A1: fanout trade-off", _COLUMNS, [
        fanout,
        index.core.max_steps,
        index.core.size_bytes / 1e6,
        index.stats.indexed_cells / 1e6,
        mpts,
    ])
