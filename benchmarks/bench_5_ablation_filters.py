"""Ablation A2 — the value of true-hit filtering.

Compares exact joins across filter designs on the neighborhoods dataset:

* classic filter+refine (R-tree over MBRs, every candidate refined);
* interior-rectangle true-hit filtering (one inscribed rect per polygon);
* Magellan-style fixed grid (non-hierarchical, with inside flags);
* ACT exact (hierarchical interior coverings; candidates only at the
  precision boundary);
* ACT approximate (no refinement at all — the paper's contribution).

The table reports throughput and, crucially, the number of PIP
refinements each design pays — the quantity ACT's interior coverings
drive to (near) zero.
"""


from repro.baselines import FixedGridIndex, InteriorRectIndex
from repro.bench import dataset_polygons, throughput_mpts
from repro.bench.reporting import record_row
from repro.join import ACTExactJoin, ApproximateJoin, FilterRefineJoin

_COLUMNS = ["variant", "M points/s", "PIP refinements", "result pairs"]
_TABLE = "Ablation A2: true-hit filtering"

_STATE = {}


def _polygons():
    return _STATE.setdefault("polys", dataset_polygons("neighborhoods"))


def _index(cache):
    return cache.get("neighborhoods", 15.0)


def test_filters_classic_filter_refine(benchmark, probe_points):
    lngs, lats = probe_points
    join = FilterRefineJoin(_polygons())
    result = benchmark.pedantic(lambda: join.join(lngs, lats),
                                rounds=1, iterations=1)
    mpts = throughput_mpts(len(lngs), result.stats.seconds)
    record_row(_TABLE, _COLUMNS, [
        "filter+refine (R-tree MBR)", mpts,
        result.stats.num_refined, result.total_pairs,
    ])


def test_filters_interior_rect(benchmark, probe_points):
    lngs, lats = probe_points
    index = InteriorRectIndex(_polygons())

    def run():
        return index.count_points(lngs, lats, exact=True)

    benchmark.pedantic(run, rounds=1, iterations=1)
    mpts = throughput_mpts(len(lngs), benchmark.stats.stats.min)
    # refinements = candidate references that were not true hits
    refinements = 0
    pairs = 0
    for x, y in zip(lngs.tolist(), lats.tolist()):
        true_hits, candidates = index.query(x, y)
        refinements += len(candidates)
        pairs += len(index.query_exact(x, y))
    record_row(_TABLE, _COLUMNS, [
        "interior-rectangle filter", mpts, refinements, pairs,
    ])


def test_filters_fixed_grid(benchmark, probe_points):
    lngs, lats = probe_points
    index = FixedGridIndex(_polygons(), resolution=256)

    benchmark.pedantic(lambda: index.count_points(lngs, lats, exact=True),
                       rounds=1, iterations=1)
    mpts = throughput_mpts(len(lngs), benchmark.stats.stats.min)
    refinements = 0
    pairs = 0
    for x, y in zip(lngs.tolist(), lats.tolist()):
        true_hits, candidates = index.query(x, y)
        refinements += len(candidates)
        pairs += len(index.query_exact(x, y))
    record_row(_TABLE, _COLUMNS, [
        "fixed grid 256x256 (Magellan-style)", mpts, refinements, pairs,
    ])


def test_filters_act_exact(benchmark, cache, probe_points):
    lngs, lats = probe_points
    join = ACTExactJoin(_index(cache))
    result = benchmark.pedantic(lambda: join.join(lngs, lats),
                                rounds=2, iterations=1)
    mpts = throughput_mpts(len(lngs), benchmark.stats.stats.min)
    record_row(_TABLE, _COLUMNS, [
        "ACT-15m exact (refine candidates)", mpts,
        result.stats.num_refined, result.total_pairs,
    ])


def test_filters_act_approximate(benchmark, cache, probe_points):
    lngs, lats = probe_points
    join = ApproximateJoin(_index(cache))
    result = benchmark.pedantic(lambda: join.join(lngs, lats),
                                rounds=2, iterations=1)
    mpts = throughput_mpts(len(lngs), benchmark.stats.stats.min)
    record_row(_TABLE, _COLUMNS, [
        "ACT-15m approximate (no refinement)", mpts,
        0, result.total_pairs,
    ])


def test_filters_act_no_interior(benchmark, probe_points):
    """ACT without interior cells: every hit becomes a candidate."""
    from repro import ACTIndex

    lngs, lats = probe_points
    index = ACTIndex.build(_polygons(), precision_meters=15.0,
                           use_interior=False)
    join = ACTExactJoin(index)
    result = benchmark.pedantic(lambda: join.join(lngs, lats),
                                rounds=1, iterations=1)
    mpts = throughput_mpts(len(lngs), benchmark.stats.stats.min)
    record_row(_TABLE, _COLUMNS, [
        "ACT-15m without interior cells", mpts,
        result.stats.num_refined, result.total_pairs,
    ])
