"""Table I — index metrics per dataset and precision.

Reproduces the paper's Table I rows: indexed cells [M], ACT size [MB],
lookup-table size [MB], and the two build-phase times, for
boroughs / neighborhoods / census at 60 m / 15 m / 4 m.

Each cell of the table is one benchmark (the build runs once; later
benchmark files reuse the cached index). The assembled table prints after
the pytest-benchmark summary.
"""

import pytest

from repro.bench import DATASETS, PRECISIONS
from repro.bench.reporting import record_row

_COLUMNS = [
    "dataset", "precision [m]", "indexed cells [M]", "ACT [MB]",
    "lookup table [MB]", "build coverings [s]", "build super [s]",
    "polygons", "covering cells [M]",
]


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("precision", PRECISIONS)
def test_table1_build(benchmark, cache, dataset, precision):
    benchmark.pedantic(
        lambda: cache.get(dataset, precision), rounds=1, iterations=1
    )
    index = cache.get(dataset, precision)
    stats = index.stats
    benchmark.extra_info.update(
        dataset=dataset,
        precision_m=precision,
        indexed_cells=stats.indexed_cells,
        act_mb=stats.trie_bytes / 1e6,
        lookup_mb=stats.lookup_table_bytes / 1e6,
    )
    record_row("Table I: index metrics", _COLUMNS, [
        dataset,
        precision,
        stats.indexed_cells / 1e6,
        stats.trie_bytes / 1e6,
        stats.lookup_table_bytes / 1e6,
        stats.build_coverings_seconds,
        stats.build_super_seconds,
        stats.num_polygons,
        stats.raw_cells / 1e6,
    ])
