"""Figure 4 — scalability of the ACT-4m join with worker count.

The paper scales C++ threads across 28 physical cores / 56 hyperthreads
and reports near-linear scaling (peak 4.30 B points/s on boroughs),
noting that hyperthread oversubscription helps because lookups are bound
by memory latency.

Python substitution (DESIGN.md): fork-based ``multiprocessing`` workers
over point slices, sharing the built index copy-on-write. The sweep runs
1/2/4/... workers up to twice the visible CPU count; on a single-core
machine the series is expectedly flat, which EXPERIMENTS.md discusses.
"""

import multiprocessing

import pytest

from repro.bench import DATASETS
from repro.bench.reporting import record_row, record_text
from repro.join.parallel import fork_available, parallel_count

_COLUMNS = ["dataset", "workers", "M points/s", "speedup vs 1"]

_PRECISION = 4.0
_BASE_MPTS = {}


def _worker_counts():
    cpus = multiprocessing.cpu_count()
    return [w for w in (1, 2, 4, 8, 16, 32) if w <= max(2, 2 * cpus)]


@pytest.mark.parametrize("workers", _worker_counts())
@pytest.mark.parametrize("dataset", DATASETS)
def test_figure4_scaling(benchmark, cache, join_points, dataset, workers):
    if workers > 1 and not fork_available():
        pytest.skip("fork start method unavailable")
    lngs, lats = join_points
    index = cache.get(dataset, _PRECISION)

    point = benchmark.pedantic(
        lambda: parallel_count(index, lngs, lats, workers=workers),
        rounds=1, iterations=1,
    )
    mpts = point.throughput_mpts
    base = _BASE_MPTS.setdefault(dataset, mpts) if workers == 1 else \
        _BASE_MPTS.get(dataset, mpts)
    benchmark.extra_info.update(dataset=dataset, workers=workers, mpts=mpts)
    record_row("Figure 4: scalability (ACT-4m)", _COLUMNS,
               [dataset, workers, mpts, mpts / base if base else 1.0])
    if workers == 1 and dataset == DATASETS[0]:
        record_text(
            "Figure 4: scalability (ACT-4m)",
            f"[note] machine exposes {multiprocessing.cpu_count()} CPU(s); "
            "the paper's near-linear scaling needs many physical cores.",
        )
