#!/usr/bin/env python3
"""Quickstart: build an ACT index and join points against polygons.

Builds the Adaptive Cell Trie over a small neighborhoods-like partition,
runs single-point queries (approximate and exact), then a vectorized
count-per-polygon join — the paper's core workload — and prints the
precision guarantee actually realized by the index.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ACTIndex
from repro.datasets import neighborhoods, taxi_points


def main() -> None:
    # 1. polygons: a 40-cell neighborhoods-like partition of an NYC-like
    #    region (deterministic synthetic stand-in for the paper's dataset)
    polygons = neighborhoods(40, seed=3)
    print(f"polygons: {len(polygons)} "
          f"(avg {sum(p.num_vertices for p in polygons) // len(polygons)} "
          f"vertices)")

    # 2. build the index with a 15 m precision bound: every approximate
    #    hit is guaranteed to be within 15 m of the reported polygon
    index = ACTIndex.build(polygons, precision_meters=15.0)
    print(f"index: {index}")
    print(f"guaranteed precision: "
          f"{index.guaranteed_precision_meters:.2f} m "
          f"(requested {index.precision_meters:g} m)")
    report = index.memory_report()
    print(f"memory: trie {report['trie_bytes'] / 1e6:.1f} MB in "
          f"{report['trie_nodes']:,} nodes, "
          f"lookup table {report['lookup_table_bytes'] / 1e3:.1f} kB")

    # 3. single-point queries
    lng, lat = polygons[7].centroid
    result = index.query(lng, lat)
    print(f"\nquery({lng:.4f}, {lat:.4f}):")
    print(f"  true hits  : {result.true_hits}   (guaranteed inside)")
    print(f"  candidates : {result.candidates}   (within the bound)")
    print(f"  approximate: {index.query_approx(lng, lat)}")
    print(f"  exact      : {index.query_exact(lng, lat)}")

    # 4. the paper's workload: join a point batch, count points/polygon
    lngs, lats = taxi_points(200_000, seed=1)
    counts = index.count_points(lngs, lats)          # approximate join
    exact = index.count_points(lngs, lats, exact=True)
    print(f"\njoined {len(lngs):,} taxi-like points")
    print(f"  approximate pairs: {int(counts.sum()):,}")
    print(f"  exact pairs      : {int(exact.sum()):,}")
    print(f"  false positives  : {int((counts - exact).sum()):,} "
          f"(each within {index.guaranteed_precision_meters:.1f} m)")
    top = np.argsort(counts)[::-1][:5]
    print("  busiest polygons :",
          ", ".join(f"#{pid}={counts[pid]:,}" for pid in top))


if __name__ == "__main__":
    main()
