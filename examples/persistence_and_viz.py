#!/usr/bin/env python3
"""Persistence + visualization: ship a prebuilt index, render Figure 1.

Builds an index over a neighborhoods-like partition, saves it to disk,
reloads it (as a query node would), verifies the loaded index answers
identically, and renders the paper's Figure 1 (covering + interior
covering) as a standalone SVG.

Run:  python examples/persistence_and_viz.py [output_dir]
"""

import sys
import time
from pathlib import Path

import numpy as np

from repro import ACTIndex
from repro.act.analysis import summarize
from repro.act.serialize import load_index, save_index
from repro.datasets import neighborhoods, taxi_points
from repro.grid.coverer import RegionCoverer
from repro.viz import render_covering


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)

    polygons = neighborhoods(30, seed=12)
    index = ACTIndex.build(polygons, precision_meters=30.0)
    print(f"built {index}")

    # --- persistence roundtrip -----------------------------------------
    path = out_dir / "neighborhoods_30m.act.npz"
    save_index(index, path)
    size_mb = path.stat().st_size / 1e6
    start = time.perf_counter()
    loaded = load_index(path)
    load_ms = (time.perf_counter() - start) * 1e3
    print(f"saved {size_mb:.1f} MB -> {path}; reloaded in {load_ms:.0f} ms")

    lngs, lats = taxi_points(50_000, seed=9)
    assert np.array_equal(loaded.lookup_batch(lngs, lats),
                          index.lookup_batch(lngs, lats))
    print("loaded index answers identically on 50,000 probe points")

    # --- structural introspection ---------------------------------------
    summary = summarize(index)
    print(f"\nindex structure: {summary['indexed_cells']:,} cells across "
          f"levels {summary['levels'][0]}..{summary['levels'][-1]}, "
          f"node occupancy "
          f"{summary['node_occupancy']['occupancy']:.1%}")

    # --- Figure 1 as SVG -------------------------------------------------
    polygon = polygons[0]
    coverer = RegionCoverer(index.grid)
    covering = coverer.cover(polygon, index.boundary_level)
    canvas = render_covering(
        [polygon], index.grid,
        boundary_cells=covering.boundary,
        interior_cells=covering.interior,
    )
    svg_path = out_dir / "figure1a.svg"
    canvas.save(svg_path)
    print(f"\nfigure 1a rendered: {len(covering.boundary)} covering (blue) "
          f"+ {len(covering.interior)} interior (green) cells -> {svg_path}")


if __name__ == "__main__":
    main()
