#!/usr/bin/env python3
"""Geofencing: overlapping product zones with streaming requests.

The paper's motivating use case (Uber-style): passenger requests stream
in and must be mapped to *overlapping* product geofences with low
latency. Overlaps stress the super covering's conflict resolution; the
streaming join reports per-batch latency percentiles.

Run:  python examples/geofencing.py
"""

import numpy as np

from repro import ACTIndex
from repro.datasets import REGION, overlapping_zones, point_stream
from repro.join import StreamingJoin


PRODUCT_NAMES = [
    "ride-x", "ride-xl", "ride-pool", "ride-lux", "ride-green",
    "delivery", "freight", "scooter", "bike", "shuttle",
    "black", "wav", "taxi", "moto", "boat",
]


def main() -> None:
    # overlapping product zones of very different sizes
    zones = overlapping_zones(REGION, len(PRODUCT_NAMES), seed=4)
    index = ACTIndex.build(zones, precision_meters=10.0)
    print(f"index over {len(zones)} overlapping product zones: {index}")
    print(f"conflict cells materialized by overlap resolution: "
          f"{index.stats.conflict_cells:,}")

    # one dispatch decision
    lng, lat = REGION.center
    products = [PRODUCT_NAMES[pid] for pid in index.query_exact(lng, lat)]
    print(f"\nrequest at {(round(lng, 4), round(lat, 4))} -> "
          f"available products: {products or ['(none)']}")

    # stream micro-batches of requests (exact mode: candidates refined,
    # true hits — the vast majority — skip refinement entirely)
    join = StreamingJoin(index, exact=True)
    join.run(point_stream(100_000, batch_size=10_000, seed=8))
    latency = join.latency_stats()
    print(f"\nstreamed {join.num_points:,} requests in "
          f"{latency['batches']} batches")
    print(f"  batch latency p50={latency['p50_ms']:.1f} ms  "
          f"p95={latency['p95_ms']:.1f} ms  p99={latency['p99_ms']:.1f} ms")

    print("\nrequests per product zone:")
    order = np.argsort(join.counts)[::-1]
    for pid in order[:8]:
        print(f"  {PRODUCT_NAMES[pid]:<12} {int(join.counts[pid]):,}")


if __name__ == "__main__":
    main()
