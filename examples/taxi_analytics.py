#!/usr/bin/env python3
"""Taxi analytics: the paper's evaluation workload, miniaturized.

Joins a taxi-like point workload against boroughs / neighborhoods /
census blocks, counting points per polygon — comparing the approximate
ACT join, the exact ACT join (true hits skip refinement), the classic
filter-and-refine join, and the R-tree lookup baseline of the paper's
Figure 3.

Run:  python examples/taxi_analytics.py
"""

import time

import numpy as np

from repro import ACTIndex
from repro.baselines import RTreeJoinBaseline
from repro.datasets import boroughs, census_blocks, neighborhoods, taxi_points
from repro.join import ACTExactJoin, ApproximateJoin, FilterRefineJoin


def run_dataset(name, polygons, lngs, lats, precision=15.0):
    print(f"\n--- {name}: {len(polygons)} polygons, "
          f"{len(lngs):,} points, {precision:g} m precision ---")
    start = time.perf_counter()
    index = ACTIndex.build(polygons, precision_meters=precision)
    print(f"build: {time.perf_counter() - start:.1f} s   "
          f"cells={index.stats.indexed_cells:,}   "
          f"trie={index.core.size_bytes / 1e6:.1f} MB")

    approx = ApproximateJoin(index).join(lngs, lats)
    print(f"ACT approximate : {approx.stats.throughput_mpts:6.2f} M pts/s  "
          f"pairs={approx.total_pairs:,}  refinements=0")

    exact = ACTExactJoin(index).join(lngs, lats)
    print(f"ACT exact       : "
          f"{len(lngs) / exact.stats.seconds / 1e6:6.2f} M pts/s  "
          f"pairs={exact.total_pairs:,}  "
          f"refinements={exact.stats.num_refined:,}")

    sample = slice(0, min(20_000, len(lngs)))
    classic = FilterRefineJoin(polygons).join(lngs[sample], lats[sample])
    print(f"filter+refine   : "
          f"{classic.stats.num_points / classic.stats.seconds / 1e6:6.2f} "
          f"M pts/s  refinements={classic.stats.num_refined:,} "
          f"(on a {classic.stats.num_points:,}-point sample)")

    rtree = RTreeJoinBaseline(polygons)
    start = time.perf_counter()
    rtree.count_points(lngs[sample], lats[sample])
    rtree_seconds = time.perf_counter() - start
    sample_n = sample.stop
    print(f"R-tree lookup   : {sample_n / rtree_seconds / 1e6:6.2f} M pts/s "
          f"(baseline, no precision guarantee)")

    errors = int((approx.counts - exact.counts).sum())
    print(f"approximate error: {errors:,} extra pairs "
          f"({errors / max(1, exact.total_pairs):.3%}), every one within "
          f"{index.guaranteed_precision_meters:.1f} m of its polygon")
    return index


def main() -> None:
    lngs, lats = taxi_points(300_000, seed=42)
    run_dataset("boroughs", boroughs(), lngs, lats)
    run_dataset("neighborhoods", neighborhoods(120), lngs, lats)
    run_dataset("census blocks", census_blocks(400), lngs, lats,
                precision=30.0)


if __name__ == "__main__":
    main()
