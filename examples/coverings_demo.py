#!/usr/bin/env python3
"""Coverings demo: regenerate the paper's Figure 1 as GeoJSON.

Computes the covering (blue, candidate cells) and interior covering
(green, true-hit cells) of a single complex polygon, plus the super
covering of a multi-polygon bay-like area, and writes them as GeoJSON
FeatureCollections you can drop into geojson.io / QGIS.

Run:  python examples/coverings_demo.py [output_dir]
"""

import sys
from pathlib import Path

from repro.act.builder import ACTBuilder
from repro.datasets import neighborhoods
from repro.geometry import geojson
from repro.geometry.polygon import box_polygon
from repro.grid import cellid
from repro.grid.planar import PlanarGrid


def cell_feature(grid, cell, kind):
    return geojson.feature(
        box_polygon(grid.cell_rect(cell)),
        {"kind": kind, "level": cellid.level(cell),
         "cell": cellid.to_token(cell)},
    )


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)

    polygons = neighborhoods(30, seed=12)
    grid = PlanarGrid.for_polygons(polygons)
    builder = ACTBuilder(grid)

    # --- Figure 1a: covering + interior covering of one polygon --------
    polygon = polygons[0]
    level = builder.boundary_level_for(120.0)
    covering = builder._coverer.cover(polygon, boundary_level=level)
    features = [geojson.feature(polygon, {"kind": "polygon"})]
    features += [cell_feature(grid, c, "covering")
                 for c in covering.boundary]
    features += [cell_feature(grid, c, "interior")
                 for c in covering.interior]
    single = out_dir / "figure1a_single_covering.geojson"
    geojson.dump_features(single, features)
    print(f"figure 1a: {len(covering.boundary)} covering + "
          f"{len(covering.interior)} interior cells -> {single}")

    # --- Figure 1b: super covering of several neighborhoods ------------
    group = polygons[:6]
    result = builder.build(group, precision_meters=120.0)
    features = [geojson.feature(p, {"kind": "polygon", "id": pid})
                for pid, p in enumerate(group)]
    for cell, refs in result.super_covering.cells.items():
        interior = all(r & 1 for r in refs)
        features.append(cell_feature(
            grid, cell, "interior" if interior else "covering"
        ))
    multi = out_dir / "figure1b_super_covering.geojson"
    geojson.dump_features(multi, features)
    print(f"figure 1b: {result.super_covering.num_cells} super-covering "
          f"cells ({result.stats.indexed_cells:,} after denormalization) "
          f"-> {multi}")
    print("open the files in geojson.io or QGIS; style by the "
          "'kind' property (covering=blue, interior=green).")


if __name__ == "__main__":
    main()
