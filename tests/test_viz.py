"""Tests for the SVG renderer."""

import xml.etree.ElementTree as ET


from repro.geometry.bbox import Rect
from repro.viz import SvgCanvas, render_covering


class TestSvgCanvas:
    def test_aspect_ratio(self):
        canvas = SvgCanvas(Rect(0, 0, 2, 1), width_px=800,
                           margin_fraction=0.0)
        assert canvas.height_px == 400

    def test_coordinate_mapping_flips_y(self):
        canvas = SvgCanvas(Rect(0, 0, 1, 1), width_px=100,
                           margin_fraction=0.0)
        assert canvas.to_px(0, 1) == (0.0, 0.0)       # top-left
        assert canvas.to_px(1, 0) == (100.0, 100.0)   # bottom-right

    def test_output_is_valid_xml(self, square, donut):
        canvas = SvgCanvas(Rect(-1, -1, 5, 5))
        canvas.add_polygon(square, {"fill": "#aaa"})
        canvas.add_polygon(donut, {"fill": "#bbb"})
        canvas.add_rect(Rect(0, 0, 1, 1), {"fill": "#ccc"})
        canvas.add_point(0.5, 0.5)
        canvas.add_label(0.1, 0.1, "a<b&c")
        root = ET.fromstring(canvas.to_svg())
        assert root.tag.endswith("svg")
        # background + 5 shapes
        assert len(list(root)) == 6

    def test_save(self, tmp_path, square):
        canvas = SvgCanvas(square.bbox)
        canvas.add_polygon(square, {"fill": "#abc"})
        path = tmp_path / "out.svg"
        canvas.save(path)
        assert path.read_text().startswith("<svg")

    def test_hole_renders_as_evenodd_path(self, donut):
        canvas = SvgCanvas(donut.bbox)
        canvas.add_polygon(donut, {"fill": "#abc"})
        svg = canvas.to_svg()
        assert 'fill-rule="evenodd"' in svg
        assert svg.count("Z") >= 2  # shell + hole subpaths


class TestRenderCovering:
    def test_figure1_render(self, nyc_index, nyc_polygons):

        polygon = nyc_polygons[0]
        # take a handful of cells from the live index for the smoke render
        cells = [cell for cell, _ in
                 zip(nyc_index.core.iter_cells(), range(200))]
        boundary = [c for c, _e in cells[:100]]
        canvas = render_covering([polygon], nyc_index.grid,
                                 boundary_cells=boundary,
                                 interior_cells=[])
        root = ET.fromstring(canvas.to_svg())
        assert len(list(root)) == 1 + len(boundary) + 1  # bg + cells + poly
