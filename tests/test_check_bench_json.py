"""Tests for the CI bench-snapshot validator
(``benchmarks/check_bench_json.py``)."""

import importlib.util
import json
from pathlib import Path

import pytest

_MODULE_PATH = (Path(__file__).resolve().parents[1] / "benchmarks"
                / "check_bench_json.py")
_spec = importlib.util.spec_from_file_location("check_bench_json",
                                               _MODULE_PATH)
check_bench_json = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_bench_json)


def _write(tmp_path, name, document):
    path = tmp_path / name
    path.write_text(document if isinstance(document, str)
                    else json.dumps(document))
    return path


def _valid_doc(**extra):
    doc = {"bench": "fleet", "scale": 1.0,
           "qps_by_workers": {"1": 10.0, "2": 19.0, "4": 35.0}}
    doc.update(extra)
    return doc


class TestValidateDocument:
    def test_valid_snapshot_passes(self):
        assert check_bench_json.validate_document(_valid_doc(), "fleet") \
            == []

    def test_missing_bench_and_scale(self):
        problems = check_bench_json.validate_document(
            {"qps": 3.0}, "fleet")
        assert any('"bench"' in p for p in problems)
        assert any('"scale"' in p for p in problems)

    def test_bench_must_match_filename(self):
        problems = check_bench_json.validate_document(
            _valid_doc(bench="refinement"), "fleet")
        assert any("filename" in p for p in problems)

    def test_empty_metrics_rejected(self):
        problems = check_bench_json.validate_document(
            {"bench": "x", "scale": 1.0, "notes": "nothing measured"},
            "x")
        assert any("empty snapshot" in p for p in problems)

    def test_non_finite_numbers_rejected(self):
        problems = check_bench_json.validate_document(
            _valid_doc(p99=float("inf")), "fleet")
        assert any("non-finite" in p for p in problems)
        problems = check_bench_json.validate_document(
            _valid_doc(nested={"deep": [1.0, float("nan")]}), "fleet")
        assert any("non-finite" in p and "deep" in p for p in problems)

    def test_non_monotonic_trajectory_rejected(self):
        doc = _valid_doc()
        doc["qps_by_workers"] = {"1": 10.0, "4": 35.0, "2": 19.0}
        problems = check_bench_json.validate_document(doc, "fleet")
        assert any("strictly increasing" in p for p in problems)

    def test_non_finite_trajectory_keys_rejected(self):
        # NaN keys make every ordering comparison vacuously pass; they
        # must be violations, not a free pass for a shuffled series
        doc = _valid_doc()
        doc["qps_by_workers"] = {"4": 10.0, "nan": 3.0, "1": 9.0}
        problems = check_bench_json.validate_document(doc, "fleet")
        assert any("non-finite" in p and "keys" in p for p in problems)

    def test_mixed_keys_are_not_a_trajectory(self):
        # objects with any non-numeric key are plain records, not series
        doc = _valid_doc(config={"workers": 4, "9": 1.0})
        assert check_bench_json.validate_document(doc, "fleet") == []

    def test_transport_labelled_metrics_accepted(self):
        # the fleet snapshot labels qps per transport arm; string-keyed
        # metric objects are plain records (never trajectory-checked)
        # and their numbers only need to be finite
        doc = _valid_doc(
            transport_qps={"json": 25.9, "binary": 1032.7},
            binary_speedup=39.9,
        )
        assert check_bench_json.validate_document(doc, "fleet") == []

    def test_transport_labelled_non_finite_rejected(self):
        doc = _valid_doc(transport_qps={"json": 0.0,
                                        "binary": float("inf")})
        problems = check_bench_json.validate_document(doc, "fleet")
        assert any("non-finite" in p and "binary" in p for p in problems)

    def test_scale_must_be_positive_finite(self):
        for bad in (0, -1.0, float("nan"), "big", None, True):
            problems = check_bench_json.validate_document(
                _valid_doc(scale=bad), "fleet")
            assert any('"scale"' in p for p in problems), bad


class TestMain:
    def test_ok_files(self, tmp_path, capsys):
        a = _write(tmp_path, "BENCH_fleet.json", _valid_doc())
        assert check_bench_json.main([str(a)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_bad_file_fails_run(self, tmp_path, capsys):
        good = _write(tmp_path, "BENCH_fleet.json", _valid_doc())
        bad = _write(tmp_path, "BENCH_refinement.json",
                     {"bench": "refinement", "scale": 1.0})
        assert check_bench_json.main([str(good), str(bad)]) == 1
        err = capsys.readouterr().err
        assert "BENCH_refinement.json" in err

    def test_json_nan_literal_rejected(self, tmp_path):
        # json.dumps would happily emit NaN; the checker must not
        # accept it back
        path = _write(tmp_path, "BENCH_x.json",
                      '{"bench": "x", "scale": 1.0, "qps": NaN}')
        assert check_bench_json.main([str(path)]) == 1

    def test_unparseable_file_fails(self, tmp_path):
        path = _write(tmp_path, "BENCH_x.json", "{not json")
        assert check_bench_json.main([str(path)]) == 1

    def test_no_files_found_fails(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert check_bench_json.main([]) == 1
        assert "no BENCH_*.json" in capsys.readouterr().err

    def test_repo_snapshots_validate(self, capsys):
        # the committed snapshots must always satisfy the schema the CI
        # gate enforces
        repo = Path(__file__).resolve().parents[1]
        snapshots = sorted(repo.glob("BENCH_*.json"))
        if not snapshots:
            pytest.skip("no committed snapshots")
        assert check_bench_json.main([str(p) for p in snapshots]) == 0
