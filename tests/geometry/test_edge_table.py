"""Tests for the packed-edge refinement engine.

The contract is strict: ``PackedEdgeTable.refine`` must answer exactly
what per-polygon ``contains_batch`` answers — bit for bit — including
polygons with holes, shared/collinear edges, and points sitting exactly
on bounding-box edges. A hypothesis property hammers the equivalence
with adversarial polygon soups and probe points.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.geometry import PackedEdgeTable, Polygon, regular_polygon
from repro.geometry.edge_table import DEFAULT_CHUNK_EDGES


def _grouped_oracle(polygons, point_idx, polygon_ids, lngs, lats):
    """Reference verdicts: one contains_batch per pair's polygon."""
    out = np.zeros(point_idx.shape[0], dtype=bool)
    for n, (k, pid) in enumerate(zip(point_idx.tolist(),
                                     polygon_ids.tolist())):
        out[n] = polygons[pid].contains_batch(
            lngs[k:k + 1], lats[k:k + 1])[0]
    return out


def _all_pairs(num_points, num_polygons):
    point_idx = np.repeat(np.arange(num_points, dtype=np.int64),
                          num_polygons)
    polygon_ids = np.tile(np.arange(num_polygons, dtype=np.int64),
                          num_points)
    return point_idx, polygon_ids


class TestConstruction:
    def test_csr_layout(self, square, donut):
        table = PackedEdgeTable.from_polygons([square, donut])
        assert table.num_polygons == 2
        assert table.indptr.tolist() == [0, 4, 12]  # donut: shell + hole
        assert table.num_edges == 12
        assert table.chunk_edges == DEFAULT_CHUNK_EDGES

    def test_empty_polygon_set(self):
        table = PackedEdgeTable.from_polygons([])
        assert table.num_polygons == 0
        assert table.num_edges == 0

    def test_repr(self, square):
        assert "1 polygons" in repr(PackedEdgeTable.from_polygons([square]))


class TestRefine:
    def test_empty_pairs(self, square):
        table = PackedEdgeTable.from_polygons([square])
        empty = np.empty(0, dtype=np.int64)
        inside = table.refine(empty, empty, np.empty(0), np.empty(0))
        assert inside.shape == (0,)
        assert inside.dtype == bool

    def test_holes_even_odd(self, donut):
        table = PackedEdgeTable.from_polygons([donut])
        lngs = np.array([2.0, 0.5, 2.0, 1.0, 5.0])
        lats = np.array([2.0, 0.5, 0.5, 1.0, 5.0])
        point_idx = np.arange(5, dtype=np.int64)
        polygon_ids = np.zeros(5, dtype=np.int64)
        inside = table.refine(point_idx, polygon_ids, lngs, lats)
        # center of the hole is OUT, ring material is IN, outside is OUT
        want = _grouped_oracle([donut], point_idx, polygon_ids, lngs, lats)
        assert inside.tolist() == want.tolist()
        assert inside.tolist()[:3] == [False, True, True]
        assert inside.tolist()[4] is False

    def test_shared_and_collinear_edges(self):
        # two squares sharing a full edge, plus a degenerate-thin sliver
        left = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        right = Polygon([(1, 0), (2, 0), (2, 1), (1, 1)])
        polygons = [left, right]
        table = PackedEdgeTable.from_polygons(polygons)
        lngs = np.array([0.5, 1.5, 1.0, 0.999999, 2.5])
        lats = np.array([0.5, 0.5, 0.5, 0.5, 0.5])
        point_idx, polygon_ids = _all_pairs(5, 2)
        inside = table.refine(point_idx, polygon_ids, lngs, lats)
        want = _grouped_oracle(polygons, point_idx, polygon_ids,
                               lngs, lats)
        assert inside.tolist() == want.tolist()

    def test_points_exactly_on_bbox(self, square):
        # bbox-edge points must follow contains_batch's closed bbox
        # filter + parity verdict exactly, whatever that verdict is
        table = PackedEdgeTable.from_polygons([square])
        lngs = np.array([0.0, 1.0, 0.5, 0.0, 1.0])
        lats = np.array([0.0, 1.0, 0.0, 0.5, 0.5])
        point_idx = np.arange(5, dtype=np.int64)
        polygon_ids = np.zeros(5, dtype=np.int64)
        inside = table.refine(point_idx, polygon_ids, lngs, lats)
        want = _grouped_oracle([square], point_idx, polygon_ids,
                               lngs, lats)
        assert inside.tolist() == want.tolist()

    def test_pair_order_preserved(self, square, hexagon):
        polygons = [square, hexagon]
        table = PackedEdgeTable.from_polygons(polygons)
        lngs = np.array([0.5, 0.0])
        lats = np.array([0.5, 0.0])
        # deliberately unsorted polygon ids with repeats
        point_idx = np.array([1, 0, 1, 0], dtype=np.int64)
        polygon_ids = np.array([1, 0, 0, 1], dtype=np.int64)
        inside = table.refine(point_idx, polygon_ids, lngs, lats)
        want = _grouped_oracle(polygons, point_idx, polygon_ids,
                               lngs, lats)
        assert inside.tolist() == want.tolist()

    @pytest.mark.parametrize("chunk_edges", [1, 3, 7, 64])
    def test_chunked_driver_identical(self, donut, hexagon, chunk_edges):
        # tiny chunk budgets force many driver iterations; verdicts
        # must not depend on the chunking
        polygons = [donut, hexagon,
                    Polygon([(0, 0), (2, 0), (2, 1), (1, 1), (1, 2),
                             (0, 2)])]
        rng = np.random.default_rng(5)
        lngs = rng.uniform(-2, 5, size=60)
        lats = rng.uniform(-2, 5, size=60)
        point_idx, polygon_ids = _all_pairs(60, 3)
        full = PackedEdgeTable.from_polygons(polygons)
        tiny = PackedEdgeTable.from_polygons(polygons,
                                             chunk_edges=chunk_edges)
        assert tiny.chunk_edges == chunk_edges
        assert np.array_equal(
            tiny.refine(point_idx, polygon_ids, lngs, lats),
            full.refine(point_idx, polygon_ids, lngs, lats),
        )


# adversarial soups: overlapping n-gons (some rotated into collinear
# configurations) and a donut, probed at random points plus every
# polygon's bbox corners
polygon_specs = st.lists(
    st.tuples(
        st.floats(-1.0, 1.0),      # center x
        st.floats(-1.0, 1.0),      # center y
        st.floats(0.05, 1.5),      # radius
        st.integers(3, 9),         # vertex count
        st.floats(0.0, 6.28),      # phase
    ),
    min_size=1, max_size=6,
)

probe_specs = st.lists(
    st.tuples(st.floats(-3.0, 3.0), st.floats(-3.0, 3.0)),
    min_size=1, max_size=25,
)


class TestPropertyEquivalence:
    @given(specs=polygon_specs, probes=probe_specs,
           with_donut=st.booleans())
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_refine_matches_contains_batch(self, specs, probes,
                                           with_donut):
        polygons = [regular_polygon(cx, cy, r, n, phase)
                    for cx, cy, r, n, phase in specs]
        if with_donut:
            polygons.append(Polygon(
                [(-2, -2), (2, -2), (2, 2), (-2, 2)],
                holes=[[(-1, -1), (1, -1), (1, 1), (-1, 1)]],
            ))
        xs = [p[0] for p in probes]
        ys = [p[1] for p in probes]
        for poly in polygons:  # bbox corners are the classic edge case
            xs.extend([poly.bbox.min_x, poly.bbox.max_x])
            ys.extend([poly.bbox.min_y, poly.bbox.max_y])
        lngs = np.asarray(xs, dtype=np.float64)
        lats = np.asarray(ys, dtype=np.float64)
        point_idx, polygon_ids = _all_pairs(len(xs), len(polygons))
        table = PackedEdgeTable.from_polygons(polygons)
        got = table.refine(point_idx, polygon_ids, lngs, lats)
        want = _grouped_oracle(polygons, point_idx, polygon_ids,
                               lngs, lats)
        assert got.tolist() == want.tolist()
