"""Unit tests for repro.geometry.wkt."""

import pytest

from repro.errors import ParseError
from repro.geometry import wkt
from repro.geometry.polygon import MultiPolygon, Polygon


class TestLoads:
    def test_point(self):
        assert wkt.loads("POINT (-73.97 40.75)") == (-73.97, 40.75)

    def test_polygon(self):
        p = wkt.loads("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))")
        assert isinstance(p, Polygon)
        assert p.area == pytest.approx(1.0)

    def test_polygon_with_hole(self):
        p = wkt.loads(
            "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0), (1 1, 3 1, 3 3, 1 3, 1 1))"
        )
        assert len(p.holes) == 1
        assert p.area == pytest.approx(12.0)

    def test_multipolygon(self):
        m = wkt.loads(
            "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)),"
            " ((5 5, 6 5, 6 6, 5 6, 5 5)))"
        )
        assert isinstance(m, MultiPolygon)
        assert len(m) == 2

    def test_case_insensitive_keyword(self):
        assert wkt.loads("point (1 2)") == (1.0, 2.0)

    def test_scientific_notation(self):
        assert wkt.loads("POINT (1e-3 -2.5E2)") == (0.001, -250.0)

    def test_unsupported_type_raises(self):
        with pytest.raises(ParseError):
            wkt.loads("LINESTRING (0 0, 1 1)")

    def test_malformed_raises(self):
        with pytest.raises(ParseError):
            wkt.loads("POLYGON ((0 0, 1 0)")
        with pytest.raises(ParseError):
            wkt.loads("POINT (1)")
        with pytest.raises(ParseError):
            wkt.loads("POINT (1 2) trailing")

    def test_garbage_raises(self):
        with pytest.raises(ParseError):
            wkt.loads("POINT (@ !)")


class TestDumps:
    def test_point_roundtrip(self):
        text = wkt.dumps((-73.97, 40.75))
        assert wkt.loads(text) == (-73.97, 40.75)

    def test_polygon_roundtrip(self, donut):
        parsed = wkt.loads(wkt.dumps(donut))
        assert parsed.area == pytest.approx(donut.area)
        assert len(parsed.holes) == 1

    def test_multipolygon_roundtrip(self, square):
        other = Polygon([(5, 5), (6, 5), (6, 6), (5, 6)])
        multi = MultiPolygon([square, other])
        parsed = wkt.loads(wkt.dumps(multi))
        assert isinstance(parsed, MultiPolygon)
        assert parsed.area == pytest.approx(multi.area)

    def test_dumps_closes_rings(self, square):
        text = wkt.dumps(square)
        body = text[len("POLYGON (("):-2]
        coords = body.split(",")
        assert coords[0].strip() == coords[-1].strip()

    def test_unsupported_geometry_raises(self):
        with pytest.raises(ParseError):
            wkt.dumps([1, 2, 3])
