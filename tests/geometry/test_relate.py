"""Unit tests for repro.geometry.relate — cell/polygon classification."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.bbox import Rect
from repro.geometry.polygon import regular_polygon
from repro.geometry.relate import (
    EdgeClassifier,
    Relation,
    edges_intersect_rect_mask,
    relate_rect,
)


class TestRelateRect:
    def test_within(self, square):
        assert relate_rect(square, Rect(0.4, 0.4, 0.6, 0.6)) == Relation.WITHIN

    def test_disjoint(self, square):
        assert relate_rect(square, Rect(2, 2, 3, 3)) == Relation.DISJOINT

    def test_boundary_intersects(self, square):
        assert relate_rect(square, Rect(0.5, 0.5, 2, 2)) == Relation.INTERSECTS

    def test_rect_containing_polygon_intersects(self, square):
        assert relate_rect(square, Rect(-1, -1, 2, 2)) == Relation.INTERSECTS

    def test_touching_edge_is_intersects(self, square):
        # closed-cell semantics: grazing the boundary counts
        assert relate_rect(square, Rect(1.0, 0.0, 2.0, 1.0)) == \
            Relation.INTERSECTS

    def test_hole_interior_is_disjoint(self, donut):
        assert relate_rect(donut, Rect(1.8, 1.8, 2.2, 2.2)) == \
            Relation.DISJOINT

    def test_ring_between_hole_and_shell_within(self, donut):
        assert relate_rect(donut, Rect(0.2, 0.2, 0.8, 0.8)) == Relation.WITHIN


class TestEdgeClassifier:
    def test_edge_threading(self, l_shape):
        classifier = EdgeClassifier(l_shape)
        relation, edges = classifier.classify_bounds(-1, -1, 3, 3, None)
        assert relation == Relation.INTERSECTS
        assert len(edges) == 6  # every edge touches the big rect
        # sub-rect in the lower arm only sees nearby edges
        relation2, edges2 = classifier.classify_bounds(1.4, -0.1, 1.6, 0.3,
                                                       edges)
        assert relation2 == Relation.INTERSECTS
        assert 0 < len(edges2) < 6

    def test_empty_edge_list_classifies_by_center(self, square):
        classifier = EdgeClassifier(square)
        relation, _ = classifier.classify_bounds(0.4, 0.4, 0.6, 0.6, [])
        assert relation == Relation.WITHIN
        relation, _ = classifier.classify_bounds(0.2, 0.2, 0.4, 0.4, [])
        assert relation == Relation.WITHIN

    def test_scalar_and_numpy_paths_agree(self, rng):
        # polygon large enough to trigger the numpy path at the root
        poly = regular_polygon(0.0, 0.0, 1.0, 96)
        classifier = EdgeClassifier(poly)
        for _ in range(100):
            cx = float(rng.uniform(-1.5, 1.5))
            cy = float(rng.uniform(-1.5, 1.5))
            size = float(rng.uniform(0.01, 0.8))
            rel_all, edges_all = classifier.classify_bounds(
                cx, cy, cx + size, cy + size, None
            )
            # same query through the scalar path (explicit small index list)
            rel_scalar, edges_scalar = classifier.classify_bounds(
                cx, cy, cx + size, cy + size, list(range(96))[:40]
            )
            if rel_all == Relation.INTERSECTS:
                touching_small = [e for e in edges_all if e < 40]
                assert touching_small == list(edges_scalar)

    def test_rect_api_wrapper(self, square):
        classifier = EdgeClassifier(square)
        relation, _ = classifier.classify(Rect(0.4, 0.4, 0.6, 0.6))
        assert relation == Relation.WITHIN


class TestEdgesMask:
    def test_mask_matches_scalar(self, rng):
        xs = rng.uniform(-2, 2, 200)
        ys = rng.uniform(-2, 2, 200)
        xe = xs + rng.uniform(-1, 1, 200)
        ye = ys + rng.uniform(-1, 1, 200)
        rect = Rect(-0.5, -0.5, 0.5, 0.5)
        from repro.geometry.relate import _segment_hits_bounds

        mask = edges_intersect_rect_mask(xs, ys, xe, ye, rect)
        for i in range(200):
            want = _segment_hits_bounds(
                xs[i], ys[i], xe[i], ye[i],
                rect.min_x, rect.min_y, rect.max_x, rect.max_y,
            )
            assert mask[i] == want, i

    def test_degenerate_point_segment(self):
        rect = Rect(0, 0, 1, 1)
        mask = edges_intersect_rect_mask(
            np.array([0.5, 5.0]), np.array([0.5, 5.0]),
            np.array([0.5, 5.0]), np.array([0.5, 5.0]), rect,
        )
        assert mask[0] and not mask[1]


class TestConservativeness:
    """The classification drives ACT's correctness: WITHIN must imply the
    whole rect is inside, DISJOINT must imply no overlap."""

    @given(st.floats(-1.5, 1.5), st.floats(-1.5, 1.5),
           st.floats(0.02, 0.5), st.integers(3, 20))
    @settings(max_examples=150)
    def test_within_and_disjoint_verified_by_sampling(self, cx, cy, size, n):
        poly = regular_polygon(0.0, 0.0, 1.0, n)
        rect = Rect(cx, cy, cx + size, cy + size)
        relation = relate_rect(poly, rect)
        samples = list(rect.sample_grid(4, 4))
        inside = [poly.contains(x, y) for x, y in samples]
        if relation == Relation.WITHIN:
            assert all(inside)
        elif relation == Relation.DISJOINT:
            assert not any(inside)
