"""Unit tests for repro.geometry.bbox."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry.bbox import Rect, union_all

coords = st.floats(-180.0, 180.0, allow_nan=False)


class TestConstruction:
    def test_basic_fields(self, small_rect):
        assert small_rect.min_x == -1.0
        assert small_rect.max_y == 4.0

    def test_degenerate_raises(self):
        with pytest.raises(GeometryError):
            Rect(1.0, 0.0, 0.0, 1.0)
        with pytest.raises(GeometryError):
            Rect(0.0, 1.0, 1.0, 0.0)

    def test_zero_extent_allowed(self):
        r = Rect(1.0, 2.0, 1.0, 2.0)
        assert r.area == 0.0
        assert r.contains_point(1.0, 2.0)

    def test_from_points(self):
        r = Rect.from_points([(3, 1), (-1, 5), (0, 0)])
        assert r == Rect(-1, 0, 3, 5)

    def test_from_points_empty_raises(self):
        with pytest.raises(GeometryError):
            Rect.from_points([])

    def test_from_center(self):
        r = Rect.from_center(1.0, 2.0, 0.5, 1.5)
        assert r == Rect(0.5, 0.5, 1.5, 3.5)


class TestProperties:
    def test_dimensions(self, small_rect):
        assert small_rect.width == 4.0
        assert small_rect.height == 6.0
        assert small_rect.area == 24.0
        assert small_rect.perimeter == 20.0

    def test_center_and_diagonal(self, small_rect):
        assert small_rect.center == (1.0, 1.0)
        assert small_rect.diagonal == pytest.approx(math.hypot(4, 6))

    def test_corners_ccw(self, small_rect):
        c = small_rect.corners()
        assert c[0] == (-1.0, -2.0)
        assert c[2] == (3.0, 4.0)
        assert len(c) == 4


class TestPredicates:
    def test_contains_point_closed(self, small_rect):
        assert small_rect.contains_point(-1.0, -2.0)  # corner
        assert small_rect.contains_point(0.0, 0.0)
        assert not small_rect.contains_point(3.1, 0.0)

    def test_contains_point_open(self, small_rect):
        assert not small_rect.contains_point_open(-1.0, 0.0)
        assert small_rect.contains_point_open(0.0, 0.0)

    def test_contains_rect(self, small_rect):
        assert small_rect.contains_rect(Rect(0, 0, 1, 1))
        assert small_rect.contains_rect(small_rect)
        assert not small_rect.contains_rect(Rect(0, 0, 10, 1))

    def test_intersects_touching(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(1, 1, 2, 2)
        assert a.intersects(b)  # closed semantics: corner touch

    def test_disjoint(self):
        assert not Rect(0, 0, 1, 1).intersects(Rect(2, 2, 3, 3))


class TestCombinators:
    def test_union(self):
        assert Rect(0, 0, 1, 1).union(Rect(2, 2, 3, 3)) == Rect(0, 0, 3, 3)

    def test_intersection(self):
        got = Rect(0, 0, 2, 2).intersection(Rect(1, 1, 3, 3))
        assert got == Rect(1, 1, 2, 2)

    def test_intersection_disjoint_is_none(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(2, 2, 3, 3)) is None

    def test_expanded(self):
        assert Rect(0, 0, 1, 1).expanded(0.5) == Rect(-0.5, -0.5, 1.5, 1.5)

    def test_enlargement(self):
        base = Rect(0, 0, 1, 1)
        assert base.enlargement(Rect(0, 0, 2, 1)) == pytest.approx(1.0)
        assert base.enlargement(Rect(0.2, 0.2, 0.8, 0.8)) == 0.0

    def test_overlap_area(self):
        assert Rect(0, 0, 2, 2).overlap_area(Rect(1, 1, 3, 3)) == 1.0
        assert Rect(0, 0, 1, 1).overlap_area(Rect(5, 5, 6, 6)) == 0.0

    def test_quadrants_partition(self, small_rect):
        quads = small_rect.quadrants()
        assert sum(q.area for q in quads) == pytest.approx(small_rect.area)
        assert union_all(list(quads)) == small_rect

    def test_distance_to_point(self):
        r = Rect(0, 0, 1, 1)
        assert r.distance_to_point(0.5, 0.5) == 0.0
        assert r.distance_to_point(2.0, 0.5) == pytest.approx(1.0)
        assert r.distance_to_point(2.0, 2.0) == pytest.approx(math.sqrt(2))

    def test_sample_grid_inside(self, small_rect):
        pts = list(small_rect.sample_grid(3, 4))
        assert len(pts) == 12
        assert all(small_rect.contains_point_open(x, y) for x, y in pts)

    def test_sample_grid_invalid(self, small_rect):
        with pytest.raises(GeometryError):
            list(small_rect.sample_grid(0, 1))

    def test_union_all_empty_raises(self):
        with pytest.raises(GeometryError):
            union_all([])


class TestPropertyBased:
    @given(coords, coords, coords, coords)
    def test_from_points_contains_inputs(self, x0, y0, x1, y1):
        r = Rect.from_points([(x0, y0), (x1, y1)])
        assert r.contains_point(x0, y0)
        assert r.contains_point(x1, y1)

    @given(coords, coords, coords, coords, coords, coords)
    def test_union_commutative_and_monotone(self, ax, ay, bx, by, cx, cy):
        a = Rect.from_points([(ax, ay), (bx, by)])
        b = Rect.from_points([(bx, by), (cx, cy)])
        assert a.union(b) == b.union(a)
        assert a.union(b).contains_rect(a)
        assert a.union(b).contains_rect(b)

    @given(coords, coords, coords, coords)
    def test_intersection_consistent_with_intersects(self, ax, ay, bx, by):
        a = Rect.from_points([(ax, ay), (bx, by)])
        b = Rect(-10.0, -10.0, 10.0, 10.0)
        inter = a.intersection(b)
        assert (inter is not None) == a.intersects(b)
        if inter is not None:
            assert b.contains_rect(inter)
