"""Tests for polygon structural validation."""


from repro.geometry.polygon import Polygon, Ring, regular_polygon
from repro.geometry.validate import (
    is_valid_polygon,
    ring_is_simple,
    validate_polygon,
)


class TestRingSimplicity:
    def test_convex_simple(self, hexagon):
        assert ring_is_simple(hexagon.shell)

    def test_concave_simple(self, l_shape):
        assert ring_is_simple(l_shape.shell)

    def test_bowtie_not_simple(self):
        bowtie = Ring([(0, 0), (2, 2), (2, 0), (0, 2)])
        assert not ring_is_simple(bowtie)

    def test_large_regular_simple(self):
        poly = regular_polygon(0, 0, 1, 128)
        assert ring_is_simple(poly.shell)


class TestValidatePolygon:
    def test_valid_square(self, square):
        assert validate_polygon(square) == []
        assert is_valid_polygon(square)

    def test_valid_donut(self, donut):
        assert is_valid_polygon(donut)

    def test_self_intersecting_shell(self):
        poly = Polygon([(0, 0), (4, 0), (1, 3), (3, 3)])
        issues = validate_polygon(poly)
        assert any(i.code == "self-intersection" for i in issues)

    def test_hole_outside_shell(self):
        poly = Polygon(
            [(0, 0), (1, 0), (1, 1), (0, 1)],
            holes=[[(5, 5), (6, 5), (6, 6), (5, 6)]],
        )
        issues = validate_polygon(poly)
        assert any(i.code == "hole-outside-shell" for i in issues)

    def test_hole_crossing_shell(self):
        poly = Polygon(
            [(0, 0), (4, 0), (4, 4), (0, 4)],
            holes=[[(3, 1), (6, 1), (6, 3), (3, 3)]],
        )
        issues = validate_polygon(poly)
        assert any(i.code in ("hole-crosses-shell", "hole-outside-shell")
                   for i in issues)

    def test_overlapping_holes(self):
        poly = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[
                [(1, 1), (5, 1), (5, 5), (1, 5)],
                [(3, 3), (7, 3), (7, 7), (3, 7)],
            ],
        )
        issues = validate_polygon(poly)
        assert any(i.code == "hole-overlap" for i in issues)

    def test_issue_str(self):
        poly = Polygon([(0, 0), (4, 0), (1, 3), (3, 3)])
        issue = validate_polygon(poly)[0]
        assert "self-intersection" in str(issue)


class TestDatasetsAreValid:
    def test_synthetic_datasets_valid(self, nyc_polygons):
        for polygon in nyc_polygons[:10]:
            assert is_valid_polygon(polygon)

    def test_census_blocks_valid(self):
        from repro.datasets import census_blocks

        for block in census_blocks(40):
            assert is_valid_polygon(block)
