"""Unit tests for repro.geometry.distance."""

import math

import numpy as np
import pytest

from repro.config import METERS_PER_DEGREE_LAT
from repro.geometry.distance import (
    LocalProjection,
    haversine_meters,
    meters_per_degree,
    point_polygon_distance_meters,
)
from repro.geometry.polygon import MultiPolygon, Polygon


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_meters(-73.9, 40.7, -73.9, 40.7) == 0.0

    def test_one_degree_latitude(self):
        d = haversine_meters(0.0, 0.0, 0.0, 1.0)
        assert d == pytest.approx(METERS_PER_DEGREE_LAT, rel=1e-3)

    def test_symmetry(self):
        a = haversine_meters(-73.9, 40.7, -74.1, 40.9)
        b = haversine_meters(-74.1, 40.9, -73.9, 40.7)
        assert a == pytest.approx(b)

    def test_equator_longitude_degree(self):
        d = haversine_meters(0.0, 0.0, 1.0, 0.0)
        assert d == pytest.approx(METERS_PER_DEGREE_LAT, rel=1e-3)

    def test_antipodal_is_half_circumference(self):
        d = haversine_meters(0.0, 0.0, 180.0, 0.0)
        assert d == pytest.approx(math.pi * 6_371_008.8, rel=1e-6)


class TestMetersPerDegree:
    def test_latitude_scale_constant(self):
        _, k_lat = meters_per_degree(40.0)
        assert k_lat == pytest.approx(METERS_PER_DEGREE_LAT)

    def test_longitude_shrinks_with_latitude(self):
        k_eq, _ = meters_per_degree(0.0)
        k_ny, _ = meters_per_degree(40.7)
        k_pol, _ = meters_per_degree(89.0)
        assert k_eq > k_ny > k_pol > 0


class TestLocalProjection:
    def test_roundtrip(self):
        proj = LocalProjection(40.7)
        x, y = proj.to_xy(-73.97, 40.75)
        lng, lat = proj.to_lnglat(x, y)
        assert (lng, lat) == pytest.approx((-73.97, 40.75))

    def test_matches_haversine_locally(self):
        proj = LocalProjection(40.7)
        x0, y0 = proj.to_xy(-73.97, 40.70)
        x1, y1 = proj.to_xy(-73.96, 40.71)
        planar = math.hypot(x1 - x0, y1 - y0)
        sphere = haversine_meters(-73.97, 40.70, -73.96, 40.71)
        assert planar == pytest.approx(sphere, rel=2e-3)

    def test_batch_matches_scalar(self):
        proj = LocalProjection(40.7)
        lngs = np.array([-73.9, -74.0])
        lats = np.array([40.6, 40.8])
        xs, ys = proj.to_xy_batch(lngs, lats)
        assert (xs[0], ys[0]) == pytest.approx(proj.to_xy(-73.9, 40.6))

    def test_degrees_to_meters(self):
        proj = LocalProjection(0.0)
        d = proj.degrees_to_meters(1.0, 0.0)
        assert d == pytest.approx(METERS_PER_DEGREE_LAT, rel=1e-6)

    def test_meters_to_degrees_inverse(self):
        proj = LocalProjection(40.7)
        assert proj.meters_to_degrees_lng(proj.k_lng) == pytest.approx(1.0)
        assert proj.meters_to_degrees_lat(proj.k_lat) == pytest.approx(1.0)

    def test_for_polygon_uses_bbox_center(self):
        poly = Polygon([(-74, 40), (-73, 40), (-73, 41), (-74, 41)])
        proj = LocalProjection.for_polygon(poly)
        assert proj.lat0 == pytest.approx(40.5)


class TestPointPolygonDistance:
    POLY = Polygon([(-74.0, 40.0), (-73.0, 40.0), (-73.0, 41.0), (-74.0, 41.0)])

    def test_inside_is_zero(self):
        assert point_polygon_distance_meters(self.POLY, -73.5, 40.5) == 0.0

    def test_east_of_polygon(self):
        d = point_polygon_distance_meters(self.POLY, -72.9, 40.5)
        k_lng, _ = meters_per_degree(40.5)
        assert d == pytest.approx(0.1 * k_lng, rel=0.02)

    def test_multipolygon_takes_min(self):
        far = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        multi = MultiPolygon([self.POLY, far])
        d_multi = point_polygon_distance_meters(multi, -72.9, 40.5)
        d_single = point_polygon_distance_meters(self.POLY, -72.9, 40.5)
        assert d_multi == pytest.approx(d_single)

    def test_monotone_in_distance(self):
        d1 = point_polygon_distance_meters(self.POLY, -72.95, 40.5)
        d2 = point_polygon_distance_meters(self.POLY, -72.5, 40.5)
        assert d2 > d1 > 0
