"""Unit tests for repro.geometry.segment."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.bbox import Rect
from repro.geometry.segment import (
    clip_segment_to_rect,
    on_segment,
    orientation,
    point_segment_distance,
    point_segment_distance_sq,
    segment_intersection_point,
    segment_intersects_rect,
    segments_intersect,
)

coords = st.floats(-100.0, 100.0, allow_nan=False)


class TestOrientation:
    def test_ccw(self):
        assert orientation(0, 0, 1, 0, 1, 1) == 1

    def test_cw(self):
        assert orientation(0, 0, 1, 0, 1, -1) == -1

    def test_collinear(self):
        assert orientation(0, 0, 1, 1, 2, 2) == 0

    def test_scale_invariant_collinearity(self):
        # large magnitudes should not flip collinear to a turn
        assert orientation(1e6, 1e6, 2e6, 2e6, 3e6, 3e6) == 0


class TestOnSegment:
    def test_midpoint(self):
        assert on_segment(0.5, 0.5, 0, 0, 1, 1)

    def test_endpoint(self):
        assert on_segment(1, 1, 0, 0, 1, 1)

    def test_beyond(self):
        assert not on_segment(2, 2, 0, 0, 1, 1)


class TestSegmentsIntersect:
    def test_proper_crossing(self):
        assert segments_intersect(0, 0, 2, 2, 0, 2, 2, 0)

    def test_disjoint(self):
        assert not segments_intersect(0, 0, 1, 0, 0, 1, 1, 1)

    def test_touching_endpoint(self):
        assert segments_intersect(0, 0, 1, 1, 1, 1, 2, 0)

    def test_collinear_overlap(self):
        assert segments_intersect(0, 0, 2, 0, 1, 0, 3, 0)

    def test_collinear_disjoint(self):
        assert not segments_intersect(0, 0, 1, 0, 2, 0, 3, 0)

    def test_t_junction(self):
        assert segments_intersect(0, 0, 2, 0, 1, -1, 1, 0)

    @given(coords, coords, coords, coords, coords, coords, coords, coords)
    def test_symmetry(self, ax, ay, bx, by, cx, cy, dx, dy):
        assert segments_intersect(ax, ay, bx, by, cx, cy, dx, dy) == \
            segments_intersect(cx, cy, dx, dy, ax, ay, bx, by)


class TestIntersectionPoint:
    def test_crossing_point(self):
        p = segment_intersection_point(0, 0, 2, 2, 0, 2, 2, 0)
        assert p == pytest.approx((1.0, 1.0))

    def test_parallel_returns_none(self):
        assert segment_intersection_point(0, 0, 1, 0, 0, 1, 1, 1) is None

    def test_non_crossing_returns_none(self):
        assert segment_intersection_point(0, 0, 1, 1, 3, 0, 4, 0) is None


class TestPointSegmentDistance:
    def test_projection_interior(self):
        assert point_segment_distance(1, 1, 0, 0, 2, 0) == pytest.approx(1.0)

    def test_clamped_to_endpoint(self):
        assert point_segment_distance(3, 1, 0, 0, 2, 0) == \
            pytest.approx(math.hypot(1, 1))

    def test_degenerate_segment(self):
        assert point_segment_distance(1, 0, 0, 0, 0, 0) == pytest.approx(1.0)

    def test_on_segment_is_zero(self):
        assert point_segment_distance_sq(1, 0, 0, 0, 2, 0) == 0.0

    @given(coords, coords, coords, coords, coords, coords)
    def test_distance_at_most_endpoint_distance(self, px, py, ax, ay, bx, by):
        d = point_segment_distance(px, py, ax, ay, bx, by)
        assert d <= math.hypot(px - ax, py - ay) + 1e-9
        assert d <= math.hypot(px - bx, py - by) + 1e-9


class TestSegmentRect:
    RECT = Rect(0.0, 0.0, 2.0, 2.0)

    def test_fully_inside(self):
        assert segment_intersects_rect(0.5, 0.5, 1.5, 1.5, self.RECT)

    def test_crossing_through(self):
        assert segment_intersects_rect(-1, 1, 3, 1, self.RECT)

    def test_touching_edge(self):
        assert segment_intersects_rect(-1, 0, 3, 0, self.RECT)

    def test_outside(self):
        assert not segment_intersects_rect(-1, -1, -2, 5, self.RECT)

    def test_diagonal_corner_graze(self):
        assert segment_intersects_rect(-1, 1, 1, 3, self.RECT)  # hits (0,2)

    def test_near_miss(self):
        assert not segment_intersects_rect(-1, 1.5, 1, 3.5, self.RECT)


class TestClipSegment:
    RECT = Rect(0.0, 0.0, 2.0, 2.0)

    def test_clip_crossing(self):
        clipped = clip_segment_to_rect(-1, 1, 3, 1, self.RECT)
        assert clipped is not None
        (x0, y0), (x1, y1) = clipped
        assert (x0, y0) == pytest.approx((0.0, 1.0))
        assert (x1, y1) == pytest.approx((2.0, 1.0))

    def test_clip_inside_unchanged(self):
        clipped = clip_segment_to_rect(0.5, 0.5, 1.0, 1.0, self.RECT)
        assert clipped == ((0.5, 0.5), (1.0, 1.0))

    def test_clip_outside_none(self):
        assert clip_segment_to_rect(3, 3, 4, 4, self.RECT) is None

    @given(coords, coords, coords, coords)
    def test_clip_agrees_with_intersects(self, ax, ay, bx, by):
        rect = Rect(-10, -10, 10, 10)
        clipped = clip_segment_to_rect(ax, ay, bx, by, rect)
        assert (clipped is not None) == \
            segment_intersects_rect(ax, ay, bx, by, rect)
        if clipped is not None:
            for x, y in clipped:
                assert rect.expanded(1e-9).contains_point(x, y)
