"""Unit tests for repro.geometry.geojson."""

import json

import pytest

from repro.errors import ParseError
from repro.geometry import geojson
from repro.geometry.polygon import MultiPolygon, Polygon


class TestGeometryConversion:
    def test_point_roundtrip(self):
        doc = geojson.geometry_to_geojson((-73.9, 40.7))
        assert doc == {"type": "Point", "coordinates": [-73.9, 40.7]}
        assert geojson.geometry_from_geojson(doc) == (-73.9, 40.7)

    def test_polygon_roundtrip(self, donut):
        doc = geojson.polygon_to_geojson(donut)
        assert doc["type"] == "Polygon"
        assert len(doc["coordinates"]) == 2  # shell + hole
        # rings are explicitly closed
        for ring in doc["coordinates"]:
            assert ring[0] == ring[-1]
        parsed = geojson.geometry_from_geojson(doc)
        assert parsed.area == pytest.approx(donut.area)

    def test_multipolygon_roundtrip(self, square):
        other = Polygon([(5, 5), (6, 5), (6, 6), (5, 6)])
        doc = geojson.multipolygon_to_geojson(MultiPolygon([square, other]))
        parsed = geojson.geometry_from_geojson(doc)
        assert isinstance(parsed, MultiPolygon)
        assert len(parsed) == 2

    def test_unknown_type_raises(self):
        with pytest.raises(ParseError):
            geojson.geometry_from_geojson({"type": "LineString",
                                           "coordinates": []})

    def test_malformed_polygon_raises(self):
        with pytest.raises(ParseError):
            geojson.geometry_from_geojson(
                {"type": "Polygon", "coordinates": [[[0, 0], [1, 1]]]}
            )

    def test_3d_coordinates_tolerated(self):
        doc = {"type": "Polygon",
               "coordinates": [[[0, 0, 7], [1, 0, 7], [1, 1, 7], [0, 0, 7]]]}
        parsed = geojson.geometry_from_geojson(doc)
        assert isinstance(parsed, Polygon)


class TestFeatures:
    def test_feature_wraps_properties(self, square):
        feat = geojson.feature(square, {"name": "unit"})
        assert feat["type"] == "Feature"
        assert feat["properties"]["name"] == "unit"

    def test_feature_collection(self, square):
        fc = geojson.feature_collection([geojson.feature(square)])
        assert fc["type"] == "FeatureCollection"
        assert len(fc["features"]) == 1


class TestFileIO:
    def test_dump_and_load_polygons(self, tmp_path, square, donut):
        path = tmp_path / "regions.geojson"
        geojson.dump_features(path, [
            geojson.feature(square, {"id": 0}),
            geojson.feature(donut, {"id": 1}),
            geojson.feature((0.5, 0.5), {"id": "pt"}),  # skipped on load
        ])
        loaded = geojson.load_polygons(path)
        assert len(loaded) == 2
        assert loaded[1].area == pytest.approx(donut.area)

    def test_load_flattens_multipolygons(self, tmp_path, square):
        other = Polygon([(5, 5), (6, 5), (6, 6), (5, 6)])
        path = tmp_path / "multi.geojson"
        geojson.dump_features(path, [
            geojson.feature(MultiPolygon([square, other])),
        ])
        loaded = geojson.load_polygons(path)
        assert len(loaded) == 2

    def test_load_rejects_non_collection(self, tmp_path):
        path = tmp_path / "bad.geojson"
        path.write_text(json.dumps({"type": "Feature"}))
        with pytest.raises(ParseError):
            geojson.load_polygons(path)

    def test_valid_json_output(self, tmp_path, square):
        path = tmp_path / "out.geojson"
        geojson.dump_features(path, [geojson.feature(square)])
        doc = json.loads(path.read_text())
        assert doc["features"][0]["geometry"]["type"] == "Polygon"
