"""Unit tests for repro.geometry.pip — crossing-number vs winding oracle."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.pip import (
    point_in_ring,
    point_in_rings,
    points_in_rings,
    ring_crossings,
    winding_number,
)
from repro.geometry.polygon import regular_polygon
from repro.geometry.segment import point_segment_distance_sq


def _arrays(vertices):
    arr = np.asarray(vertices, dtype=np.float64)
    nxt = np.roll(arr, -1, axis=0)
    return arr[:, 0], arr[:, 1], nxt[:, 0], nxt[:, 1]


SQUARE = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]


class TestRingCrossings:
    def test_inside_square_odd(self):
        xs, ys, xe, ye = _arrays(SQUARE)
        assert ring_crossings(0.5, 0.5, xs, ys, xe, ye) == 1

    def test_outside_square_even(self):
        xs, ys, xe, ye = _arrays(SQUARE)
        assert ring_crossings(-0.5, 0.5, xs, ys, xe, ye) == 2
        assert ring_crossings(1.5, 0.5, xs, ys, xe, ye) == 0

    def test_large_ring_numpy_path(self):
        poly = regular_polygon(0, 0, 1, 128)
        xs, ys, xe, ye = poly.shell.edge_arrays
        assert ring_crossings(0.0, 0.0, xs, ys, xe, ye) % 2 == 1
        assert ring_crossings(2.0, 0.0, xs, ys, xe, ye) % 2 == 0


class TestPointInRing:
    def test_inside(self):
        assert point_in_ring(0.5, 0.5, *_arrays(SQUARE))

    def test_outside(self):
        assert not point_in_ring(1.5, 1.5, *_arrays(SQUARE))

    def test_horizontal_edges_ignored(self):
        # ray passing exactly through a horizontal edge's y must not crash
        assert point_in_ring(0.5, 0.5, *_arrays(
            [(0, 0), (1, 0), (1, 0.5), (2, 0.5), (2, 1), (0, 1)]
        ))


class TestPointInRings:
    def test_hole_parity(self, donut):
        xs, ys, xe, ye = donut.edge_arrays
        assert point_in_rings(0.5, 0.5, xs, ys, xe, ye)
        assert not point_in_rings(2.0, 2.0, xs, ys, xe, ye)


class TestBatch:
    def test_batch_matches_scalar(self, l_shape, rng):
        xs, ys, xe, ye = l_shape.edge_arrays
        px = rng.uniform(-1, 3, 400)
        py = rng.uniform(-1, 3, 400)
        batch = points_in_rings(px, py, xs, ys, xe, ye)
        for i in range(400):
            assert batch[i] == point_in_rings(px[i], py[i], xs, ys, xe, ye)

    def test_batch_empty_points(self, square):
        xs, ys, xe, ye = square.edge_arrays
        out = points_in_rings(np.empty(0), np.empty(0), xs, ys, xe, ye)
        assert out.shape == (0,)


class TestWindingOracle:
    """Crossing-number must agree with the independent winding-number
    implementation on simple (non-self-intersecting) polygons."""

    @given(st.integers(3, 24), st.floats(0.3, 5.0),
           st.floats(-3, 3), st.floats(-3, 3))
    @settings(max_examples=200)
    def test_regular_polygon_agreement(self, n, radius, px, py):
        poly = regular_polygon(0.0, 0.0, radius, n)
        # skip points suspiciously close to the boundary (both algorithms
        # are allowed to disagree within float noise there) — measured
        # against the edges directly, because Polygon.distance is 0 for
        # any point the crossing-number test classifies as inside,
        # including ones sitting exactly on a vertex
        near_sq = min(
            point_segment_distance_sq(px, py, x0, y0, x1, y1)
            for (x0, y0), (x1, y1) in poly.edges()
        )
        if near_sq < 1e-18:
            return
        xs, ys, xe, ye = poly.edge_arrays
        crossing = point_in_rings(px, py, xs, ys, xe, ye)
        winding = winding_number(px, py, poly.shell.vertices) != 0
        assert crossing == winding

    def test_concave_agreement(self, l_shape, rng):
        xs, ys, xe, ye = l_shape.edge_arrays
        for _ in range(300):
            px = float(rng.uniform(-0.5, 2.5))
            py = float(rng.uniform(-0.5, 2.5))
            crossing = point_in_rings(px, py, xs, ys, xe, ye)
            winding = winding_number(px, py, l_shape.shell.vertices) != 0
            assert crossing == winding, (px, py)
