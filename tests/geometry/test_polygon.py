"""Unit tests for repro.geometry.polygon."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidPolygonError
from repro.geometry.bbox import Rect
from repro.geometry.polygon import (
    MultiPolygon,
    Polygon,
    Ring,
    box_polygon,
    regular_polygon,
)


class TestRing:
    def test_requires_three_vertices(self):
        with pytest.raises(InvalidPolygonError):
            Ring([(0, 0), (1, 1)])

    def test_closed_input_normalized(self):
        ring = Ring([(0, 0), (1, 0), (1, 1), (0, 0)])
        assert len(ring) == 3

    def test_signed_area_ccw_positive(self):
        ring = Ring([(0, 0), (1, 0), (1, 1), (0, 1)])
        assert ring.signed_area == pytest.approx(1.0)
        assert ring.is_ccw

    def test_signed_area_cw_negative(self):
        ring = Ring([(0, 0), (0, 1), (1, 1), (1, 0)])
        assert ring.signed_area == pytest.approx(-1.0)
        assert not ring.is_ccw

    def test_reversed_flips_orientation(self):
        ring = Ring([(0, 0), (1, 0), (1, 1)])
        assert ring.is_ccw != ring.reversed().is_ccw
        assert ring.area == pytest.approx(ring.reversed().area)

    def test_bbox(self):
        ring = Ring([(0, 0), (2, -1), (1, 3)])
        assert ring.bbox == Rect(0, -1, 2, 3)

    def test_edges_close_the_ring(self):
        ring = Ring([(0, 0), (1, 0), (0, 1)])
        edges = list(ring.edges())
        assert len(edges) == 3
        assert edges[-1] == ((0, 1), (0, 0))

    def test_edge_arrays_shapes(self):
        ring = Ring([(0, 0), (1, 0), (0, 1)])
        xs, ys, xe, ye = ring.edge_arrays
        assert xs.shape == (3,)
        assert xe[-1] == 0.0 and ye[-1] == 0.0

    def test_perimeter(self):
        ring = Ring([(0, 0), (3, 0), (3, 4)])
        assert ring.perimeter == pytest.approx(3 + 4 + 5)


class TestPolygon:
    def test_shell_normalized_ccw(self):
        p = Polygon([(0, 0), (0, 1), (1, 1), (1, 0)])  # given clockwise
        assert p.shell.is_ccw

    def test_holes_normalized_cw(self, donut):
        assert all(not h.is_ccw for h in donut.holes)

    def test_zero_area_raises(self):
        with pytest.raises(InvalidPolygonError):
            Polygon([(0, 0), (1, 1), (2, 2)])

    def test_area_subtracts_holes(self, donut):
        assert donut.area == pytest.approx(16.0 - 4.0)

    def test_num_vertices(self, donut):
        assert donut.num_vertices == 8

    def test_contains_basic(self, square):
        assert square.contains(0.5, 0.5)
        assert not square.contains(1.5, 0.5)

    def test_contains_concave(self, l_shape):
        assert l_shape.contains(0.5, 1.5)
        assert l_shape.contains(1.5, 0.5)
        assert not l_shape.contains(1.5, 1.5)  # the notch

    def test_contains_hole(self, donut):
        assert donut.contains(0.5, 0.5)
        assert not donut.contains(2.0, 2.0)  # inside the hole
        assert not donut.contains(5.0, 5.0)

    def test_contains_batch_matches_scalar(self, l_shape, rng):
        xs = rng.uniform(-0.5, 2.5, 500)
        ys = rng.uniform(-0.5, 2.5, 500)
        batch = l_shape.contains_batch(xs, ys)
        for i in range(0, 500, 7):
            assert batch[i] == l_shape.contains(xs[i], ys[i])

    def test_distance_zero_inside(self, square):
        assert square.distance(0.5, 0.5) == 0.0

    def test_distance_outside(self, square):
        assert square.distance(2.0, 0.5) == pytest.approx(1.0)
        assert square.distance(2.0, 2.0) == pytest.approx(np.sqrt(2))

    def test_centroid_square(self, square):
        assert square.centroid == pytest.approx((0.5, 0.5))

    def test_centroid_donut_symmetric(self, donut):
        assert donut.centroid == pytest.approx((2.0, 2.0))

    def test_centroid_tiny_polygon_far_from_origin(self):
        """Regression: shoelace cancellation at large coordinates must not
        corrupt the centroid of meter-scale polygons (GPS use case)."""
        tiny = regular_polygon(-73.95, 40.7, 1e-5, 6)
        cx, cy = tiny.centroid
        assert cx == pytest.approx(-73.95, abs=1e-9)
        assert cy == pytest.approx(40.7, abs=1e-9)
        assert tiny.contains(cx, cy)

    def test_any_edge_intersects_rect(self, square):
        assert square.any_edge_intersects_rect(Rect(0.9, 0.9, 2, 2))
        assert not square.any_edge_intersects_rect(Rect(0.4, 0.4, 0.6, 0.6))
        assert not square.any_edge_intersects_rect(Rect(5, 5, 6, 6))

    def test_any_edge_intersects_rect_matches_scalar(self, l_shape,
                                                     donut, rng):
        """The vectorized outcode path must agree with the per-edge
        scalar predicate on every rect, including grazing ones."""
        from repro.geometry.segment import segment_intersects_rect

        for poly in (l_shape, donut):
            for _ in range(200):
                cx, cy = rng.uniform(-1, 5, 2)
                w, h = rng.uniform(0.01, 3, 2)
                rect = Rect(cx, cy, cx + w, cy + h)
                want = poly.bbox.intersects(rect) and any(
                    segment_intersects_rect(x0, y0, x1, y1, rect)
                    for (x0, y0), (x1, y1) in poly.edges()
                )
                assert poly.any_edge_intersects_rect(rect) == want

    def test_rect_through_interior_crossing_edges(self, square):
        # both endpoints of the crossed edges are outside the rect on
        # different sides: the outcode fallback must still detect it
        assert square.any_edge_intersects_rect(
            Rect(-0.5, 0.4, 1.5, 0.6))

    def test_distance_sq_matches_per_edge_loop(self, l_shape, donut,
                                               rng):
        from repro.geometry.segment import point_segment_distance_sq

        for poly in (l_shape, donut):
            for _ in range(100):
                x, y = rng.uniform(-2, 6, 2)
                want = (0.0 if poly.contains(x, y) else min(
                    point_segment_distance_sq(x, y, x0, y0, x1, y1)
                    for (x0, y0), (x1, y1) in poly.edges()
                ))
                assert poly.distance_sq(x, y) == pytest.approx(
                    want, rel=1e-12, abs=1e-15)

    def test_distance_sq_hole_interior(self, donut):
        # a point inside the hole is OUTSIDE the polygon: nearest
        # material is the hole ring
        assert donut.distance_sq(2.0, 2.0) == pytest.approx(1.0)

    def test_equality(self, square):
        other = Polygon([(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)])
        assert square == other


class TestMultiPolygon:
    def test_requires_polygons(self):
        with pytest.raises(InvalidPolygonError):
            MultiPolygon([])

    def test_contains_any(self, square):
        far = Polygon([(10, 10), (11, 10), (11, 11), (10, 11)])
        multi = MultiPolygon([square, far])
        assert multi.contains(0.5, 0.5)
        assert multi.contains(10.5, 10.5)
        assert not multi.contains(5, 5)

    def test_area_and_bbox(self, square):
        far = Polygon([(10, 10), (11, 10), (11, 11), (10, 11)])
        multi = MultiPolygon([square, far])
        assert multi.area == pytest.approx(2.0)
        assert multi.bbox == Rect(0, 0, 11, 11)

    def test_distance_min_over_members(self, square):
        far = Polygon([(10, 0), (11, 0), (11, 1), (10, 1)])
        multi = MultiPolygon([square, far])
        assert multi.distance(2.0, 0.5) == pytest.approx(1.0)


class TestHelpers:
    def test_regular_polygon_area_converges_to_circle(self):
        p = regular_polygon(0, 0, 1.0, 256)
        assert p.area == pytest.approx(np.pi, rel=1e-3)

    def test_regular_polygon_needs_three_sides(self):
        with pytest.raises(InvalidPolygonError):
            regular_polygon(0, 0, 1.0, 2)

    def test_box_polygon_roundtrip(self, small_rect):
        p = box_polygon(small_rect)
        assert p.bbox == small_rect
        assert p.area == pytest.approx(small_rect.area)

    @given(st.floats(-50, 50), st.floats(-50, 50),
           st.floats(0.1, 10), st.integers(3, 32))
    def test_regular_polygon_contains_center(self, cx, cy, radius, n):
        p = regular_polygon(cx, cy, radius, n)
        assert p.contains(cx, cy)
        assert p.area <= np.pi * radius * radius * 1.001
