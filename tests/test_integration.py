"""End-to-end integration scenarios across the whole stack."""


from repro import ACTIndex
from repro.baselines import RTreeJoinBaseline, ScanJoin
from repro.datasets import (
    REGION,
    boroughs,
    census_blocks,
    overlapping_zones,
    taxi_points,
)
from repro.geometry import geojson, point_polygon_distance_meters
from repro.join import ACTExactJoin, ApproximateJoin, StreamingJoin


class TestPaperPipeline:
    """The paper's evaluation pipeline end to end, miniaturized."""

    def test_boroughs_workload(self):
        polys = boroughs(complexity=3)
        index = ACTIndex.build(polys, precision_meters=120.0)
        lngs, lats = taxi_points(5000, seed=11)
        approx = ApproximateJoin(index).join(lngs, lats)
        exact = ACTExactJoin(index).join(lngs, lats)
        scan = ScanJoin(polys).count_points(lngs, lats)
        assert exact.counts.tolist() == scan.tolist()
        assert (approx.counts >= exact.counts).all()
        excess = int((approx.counts - exact.counts).sum())
        assert excess <= 0.02 * exact.counts.sum() + 50

    def test_census_workload(self):
        blocks = census_blocks(150)
        index = ACTIndex.build(blocks, precision_meters=60.0)
        lngs, lats = taxi_points(4000, seed=12)
        exact = index.count_points(lngs, lats, exact=True)
        scan = ScanJoin(blocks).count_points(lngs, lats)
        assert exact.tolist() == scan.tolist()

    def test_act_beats_rtree_on_refinements(self):
        """The structural reason for the paper's Figure 3 speedups."""
        polys = boroughs(complexity=3)
        index = ACTIndex.build(polys, precision_meters=120.0)
        lngs, lats = taxi_points(3000, seed=13)
        act = ACTExactJoin(index).join(lngs, lats)
        rtree = RTreeJoinBaseline(polys)
        rtree_candidates = int(rtree.count_points(lngs, lats).sum())
        assert act.stats.num_refined * 5 < rtree_candidates


class TestGeofencingScenario:
    """The Uber-style use case from the paper's introduction."""

    def test_overlapping_products(self):
        zones = overlapping_zones(REGION, 20, seed=21)
        index = ACTIndex.build(zones, precision_meters=30.0)
        lngs, lats = taxi_points(3000, seed=22)
        scan = ScanJoin(zones)
        for k in range(0, 3000, 37):
            got = sorted(index.query_exact(lngs[k], lats[k]))
            assert got == sorted(scan.query(lngs[k], lats[k]))

    def test_precision_guarantee_empirical(self):
        zones = overlapping_zones(REGION, 8, seed=23)
        index = ACTIndex.build(zones, precision_meters=100.0)
        bound = index.guaranteed_precision_meters
        lngs, lats = taxi_points(2500, seed=24)
        scan = ScanJoin(zones)
        worst = 0.0
        for k in range(2500):
            reported = set(index.query_approx(lngs[k], lats[k]))
            truth = set(scan.query(lngs[k], lats[k]))
            for pid in reported - truth:
                worst = max(worst, point_polygon_distance_meters(
                    zones[pid], lngs[k], lats[k]))
        assert worst <= bound * 1.001


class TestStreamingScenario:
    def test_dispatch_stream(self, nyc_index):
        join = StreamingJoin(nyc_index)
        from repro.datasets import point_stream

        join.run(point_stream(6000, 1000, seed=31))
        assert join.num_points == 6000
        stats = join.latency_stats()
        assert stats["batches"] == 6
        assert stats["p95_ms"] < 1000  # sanity latency ceiling


class TestExportScenario:
    def test_covering_to_geojson(self, tmp_path, nyc_index, nyc_polygons):
        """Figure 1's rendering path: dump covering cells as GeoJSON."""
        from repro.act.builder import ACTBuilder

        builder = ACTBuilder(nyc_index.grid)
        covering = builder._coverer.cover(nyc_polygons[0], boundary_level=9)
        features = [geojson.feature(nyc_polygons[0], {"kind": "polygon"})]
        from repro.geometry.polygon import box_polygon

        for cell in covering.boundary[:50]:
            features.append(geojson.feature(
                box_polygon(nyc_index.grid.cell_rect(cell)),
                {"kind": "boundary"},
            ))
        for cell in covering.interior[:50]:
            features.append(geojson.feature(
                box_polygon(nyc_index.grid.cell_rect(cell)),
                {"kind": "interior"},
            ))
        path = tmp_path / "covering.geojson"
        geojson.dump_features(path, features)
        loaded = geojson.load_polygons(path)
        assert len(loaded) == len(features)


class TestSerializationRoundtrip:
    def test_polygons_survive_wkt(self, nyc_polygons, taxi_batch):
        """Index built from WKT-roundtripped polygons behaves identically."""
        from repro.geometry import wkt

        polys = [wkt.loads(wkt.dumps(p)) for p in nyc_polygons[:6]]
        lngs, lats = taxi_batch
        a = ACTIndex.build(polys, precision_meters=150.0)
        b = ACTIndex.build(nyc_polygons[:6], precision_meters=150.0)
        assert a.count_points(lngs, lats, exact=True).tolist() == \
            b.count_points(lngs, lats, exact=True).tolist()
