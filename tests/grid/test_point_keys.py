"""Batch point_keys must partition exactly like scalar point_key."""

import numpy as np
import pytest

from repro.datasets import taxi_points
from repro.geometry.bbox import Rect
from repro.grid import INVALID_KEY
from repro.grid.planar import PlanarGrid
from repro.grid.s2like import S2LikeGrid


@pytest.fixture(scope="module")
def planar_grid():
    return PlanarGrid(Rect(-74.30, 40.45, -73.65, 40.95))


@pytest.fixture(scope="module")
def mixed_points():
    """Taxi-like points plus a few guaranteed out-of-domain ones."""
    lngs, lats = taxi_points(500, seed=11)
    lngs = np.concatenate([lngs, [-120.0, 10.0, -74.0]])
    lats = np.concatenate([lats, [40.7, 40.7, -60.0]])
    return lngs, lats


class TestPlanar:
    @pytest.mark.parametrize("level", [6, 10, 14, 18])
    def test_matches_scalar(self, planar_grid, mixed_points, level):
        lngs, lats = mixed_points
        keys = planar_grid.point_keys(lngs, lats, level).tolist()
        for k in range(len(lngs)):
            scalar = planar_grid.point_key(float(lngs[k]), float(lats[k]),
                                           level)
            if scalar is None:
                assert keys[k] == int(INVALID_KEY)
            else:
                assert keys[k] == scalar

    def test_same_cell_same_key(self, planar_grid):
        """Two points in one level-10 cell share a key; neighbors don't."""
        keys = planar_grid.point_keys(
            np.array([-74.0, -74.0 + 1e-7, -73.7]),
            np.array([40.7, 40.7 + 1e-7, 40.9]),
            10,
        )
        assert keys[0] == keys[1]
        assert keys[0] != keys[2]


class TestS2Like:
    @pytest.mark.parametrize("level", [6, 12, 20])
    def test_matches_scalar(self, mixed_points, level):
        grid = S2LikeGrid()
        lngs, lats = mixed_points
        keys = grid.point_keys(lngs, lats, level).tolist()
        for k in range(0, len(lngs), 3):
            scalar = grid.point_key(float(lngs[k]), float(lats[k]), level)
            assert keys[k] == scalar  # global grid: never out of domain

    def test_keys_are_parent_cells(self, mixed_points):
        grid = S2LikeGrid()
        lngs, lats = mixed_points
        keys = grid.point_keys(lngs, lats, 8)
        from repro.grid import cellid

        for key in keys[:50].tolist():
            assert cellid.is_valid(key)
            assert cellid.level(key) == 8
