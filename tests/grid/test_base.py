"""Tests for the HierarchicalGrid base utilities (frames, defaults)."""


from repro.geometry.bbox import Rect
from repro.grid import cellid
from repro.grid.base import HierarchicalGrid
from repro.grid.planar import PlanarGrid

GRID = PlanarGrid(Rect(-74.3, 40.45, -73.65, 40.95))


class TestFrames:
    def test_root_frames_match_root_cells(self):
        frames = GRID.root_frames()
        cells = GRID.root_cells()
        assert [GRID.frame_cell(f) for f in frames] == cells

    def test_frame_children_partition_ij_space(self):
        frame = (0, 0, 0, 0)
        children = HierarchicalGrid.frame_children(frame)
        assert len(children) == 4
        half = 1 << (cellid.MAX_LEVEL - 1)
        corners = {(f[1], f[2]) for f in children}
        assert corners == {(0, 0), (half, 0), (0, half), (half, half)}
        assert all(f[3] == 1 for f in children)

    def test_frame_cell_roundtrip_at_depth(self):
        leaf = GRID.leaf_cell(-73.9, 40.7)
        for level in (0, 3, 9, 17, 30):
            cell = cellid.parent(leaf, level)
            frame = GRID.frame_for_cell(cell)
            assert GRID.frame_cell(frame) == cell
            assert frame[3] == level

    def test_frame_children_consistent_with_cell_children(self):
        """The 4 child frames address exactly the 4 child cells (order may
        differ: frames are position-ordered, cells Hilbert-ordered)."""
        leaf = GRID.leaf_cell(-73.9, 40.7)
        cell = cellid.parent(leaf, 7)
        frame = GRID.frame_for_cell(cell)
        from_frames = {GRID.frame_cell(f)
                       for f in HierarchicalGrid.frame_children(frame)}
        assert from_frames == set(cellid.children(cell))


class TestGenericCellRect:
    def test_cell_rect_consistent_with_frame_bounds(self):
        leaf = GRID.leaf_cell(-73.9, 40.7)
        cell = cellid.parent(leaf, 11)
        rect = GRID.cell_rect(cell)
        bounds = GRID.frame_bounds(GRID.frame_for_cell(cell))
        assert (rect.min_x, rect.min_y, rect.max_x, rect.max_y) == bounds

    def test_cell_polygon_corners(self):
        leaf = GRID.leaf_cell(-73.9, 40.7)
        corners = GRID.cell_polygon_corners(cellid.parent(leaf, 10))
        assert len(corners) == 4
