"""Unit tests for CellUnion normalization and queries."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid import cellid
from repro.grid.cellunion import CellUnion

faces = st.integers(0, 5)
ij30 = st.integers(0, (1 << 30) - 1)


def make_cell(face, i, j, level):
    return cellid.parent(cellid.from_face_ij(face, i, j), level)


class TestNormalization:
    def test_drops_contained_cells(self):
        parent = make_cell(0, 100, 100, 8)
        child = cellid.children(parent)[2]
        union = CellUnion([parent, child])
        assert union.cells == [parent]

    def test_merges_complete_sibling_groups(self):
        parent = make_cell(0, 100, 100, 8)
        union = CellUnion(list(cellid.children(parent)))
        assert union.cells == [parent]

    def test_merges_recursively(self):
        grandparent = make_cell(0, 100, 100, 7)
        leaves = []
        for child in cellid.children(grandparent):
            leaves.extend(cellid.children(child))
        union = CellUnion(leaves)
        assert union.cells == [grandparent]

    def test_incomplete_group_not_merged(self):
        parent = make_cell(0, 100, 100, 8)
        kids = list(cellid.children(parent))[:3]
        union = CellUnion(kids)
        assert len(union) == 3

    def test_duplicates_removed(self):
        cell = make_cell(1, 5, 5, 10)
        union = CellUnion([cell, cell, cell])
        assert union.cells == [cell]

    def test_unnormalized_keeps_input(self):
        parent = make_cell(0, 100, 100, 8)
        child = cellid.children(parent)[0]
        union = CellUnion([parent, child], normalize=False)
        assert len(union) == 2


class TestQueries:
    def test_contains_leaf(self):
        cell = make_cell(2, 777, 888, 12)
        union = CellUnion([cell])
        assert union.contains_leaf(cellid.range_min(cell))
        assert union.contains_leaf(cellid.range_max(cell))
        assert not union.contains_leaf(cellid.range_max(cell) + 2)

    def test_contains_cell(self):
        cell = make_cell(2, 777, 888, 12)
        union = CellUnion([cell])
        assert union.contains_cell(cellid.children(cell)[1])
        assert not union.contains_cell(cellid.parent(cell))

    def test_intersects_cell(self):
        cell = make_cell(2, 777, 888, 12)
        union = CellUnion([cell])
        assert union.intersects_cell(cellid.parent(cell))  # coarser overlaps
        assert union.intersects_cell(cellid.children(cell)[0])
        far = make_cell(5, 1, 1, 12)
        assert not union.intersects_cell(far)

    def test_num_leaves(self):
        cell = make_cell(0, 0, 0, 29)
        union = CellUnion([cell])
        assert union.num_leaves() == 4

    @given(st.lists(st.tuples(faces, ij30, ij30, st.integers(4, 30)),
                    min_size=1, max_size=30))
    @settings(max_examples=60)
    def test_normalized_union_equivalent_membership(self, specs):
        cells = [make_cell(*spec) for spec in specs]
        union = CellUnion(cells)
        # membership must be identical to the brute-force check
        probes = [cellid.range_min(c) for c in cells]
        probes += [cellid.range_max(c) for c in cells]
        for leaf in probes:
            brute = any(cellid.contains(c, leaf) for c in cells)
            assert union.contains_leaf(leaf) == brute

    @given(st.lists(st.tuples(faces, ij30, ij30, st.integers(2, 30)),
                    min_size=1, max_size=25))
    @settings(max_examples=60)
    def test_normalized_cells_disjoint_and_sorted(self, specs):
        union = CellUnion([make_cell(*spec) for spec in specs])
        cells = union.cells
        assert cells == sorted(cells)
        ordered = sorted(cells, key=cellid.range_min)
        for a, b in zip(ordered, ordered[1:]):
            assert cellid.range_max(a) < cellid.range_min(b)
