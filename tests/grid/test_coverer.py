"""Tests for the region coverer — the covering invariants ACT relies on."""

import pytest

from repro.errors import CoveringError
from repro.geometry.bbox import Rect
from repro.geometry.polygon import Polygon, regular_polygon
from repro.grid import cellid
from repro.grid.cellunion import CellUnion
from repro.grid.coverer import RegionCoverer
from repro.grid.planar import PlanarGrid
from repro.grid.s2like import S2LikeGrid

BOUNDS = Rect(-74.3, 40.45, -73.65, 40.95)
GRID = PlanarGrid(BOUNDS)
POLY = regular_polygon(-73.95, 40.7, 0.08, 14)
COVERER = RegionCoverer(GRID)
COVERING = COVERER.cover(POLY, boundary_level=11)


class TestCoverInvariants:
    def test_boundary_cells_at_requested_level(self):
        assert COVERING.boundary
        assert all(cellid.level(c) == 11 for c in COVERING.boundary)

    def test_interior_cells_not_deeper_than_boundary(self):
        assert COVERING.interior
        assert all(cellid.level(c) <= 11 for c in COVERING.interior)

    def test_cells_sorted_and_unique(self):
        for cells in (COVERING.boundary, COVERING.interior):
            assert cells == sorted(cells)
            assert len(set(cells)) == len(cells)

    def test_covering_cells_disjoint(self):
        union = CellUnion(COVERING.boundary + COVERING.interior,
                          normalize=False)
        ordered = sorted(union.cells, key=cellid.range_min)
        for a, b in zip(ordered, ordered[1:]):
            assert cellid.range_max(a) < cellid.range_min(b)

    def test_interior_cells_fully_inside(self, rng):
        for cell in COVERING.interior[::max(1, len(COVERING.interior) // 40)]:
            rect = GRID.cell_rect(cell)
            for x, y in rect.sample_grid(3, 3):
                assert POLY.contains(x, y)

    def test_boundary_cells_touch_boundary(self):
        """Every boundary cell must intersect a polygon edge."""
        for cell in COVERING.boundary[::max(1, len(COVERING.boundary) // 40)]:
            assert POLY.any_edge_intersects_rect(GRID.cell_rect(cell))

    def test_covering_covers_polygon(self, rng):
        """No false negatives: every point inside the polygon must hit a
        covering cell."""
        union = CellUnion(COVERING.boundary + COVERING.interior)
        box = POLY.bbox
        hits = 0
        for _ in range(2000):
            x = float(rng.uniform(box.min_x, box.max_x))
            y = float(rng.uniform(box.min_y, box.max_y))
            if not POLY.contains(x, y):
                continue
            hits += 1
            leaf = GRID.leaf_cell(x, y)
            assert union.contains_leaf(leaf), (x, y)
        assert hits > 100  # sanity: the sample actually exercised the test

    def test_interior_majority_of_area(self):
        """The paper: interior cells cover the majority of the polygon.

        At a boundary level well below the polygon size, interior area
        should dominate boundary area."""
        interior_area = sum(GRID.cell_rect(c).area for c in COVERING.interior)
        boundary_area = sum(GRID.cell_rect(c).area for c in COVERING.boundary)
        assert interior_area > boundary_area

    def test_interior_min_level_respected(self):
        covering = COVERER.cover(POLY, boundary_level=11,
                                 interior_min_level=9)
        assert all(cellid.level(c) >= 9 for c in covering.interior)

    def test_max_boundary_diag(self):
        diag = COVERING.max_boundary_level_diag(GRID)
        assert diag == pytest.approx(GRID.max_diag_meters(11))


class TestErrors:
    def test_level_too_deep(self):
        with pytest.raises(CoveringError):
            COVERER.cover(POLY, boundary_level=31)

    def test_polygon_outside_domain(self):
        far = Polygon([(10, 10), (11, 10), (11, 11), (10, 11)])
        with pytest.raises(CoveringError):
            COVERER.cover(far, boundary_level=8)


class TestBudgeted:
    def test_budget_respected(self):
        covering = COVERER.cover_budgeted(POLY, max_cells=64,
                                          boundary_level=14)
        assert covering.num_cells <= 64

    def test_budget_coarser_than_precise(self):
        precise = COVERER.cover(POLY, boundary_level=11)
        budgeted = COVERER.cover_budgeted(POLY, max_cells=64,
                                          boundary_level=11)
        assert budgeted.num_cells < precise.num_cells
        coarsest = min(cellid.level(c) for c in budgeted.boundary)
        assert coarsest < 11

    def test_budget_still_covers_polygon(self, rng):
        covering = COVERER.cover_budgeted(POLY, max_cells=48,
                                          boundary_level=12)
        union = CellUnion(covering.boundary + covering.interior)
        box = POLY.bbox
        for _ in range(500):
            x = float(rng.uniform(box.min_x, box.max_x))
            y = float(rng.uniform(box.min_y, box.max_y))
            if POLY.contains(x, y):
                assert union.contains_leaf(GRID.leaf_cell(x, y))

    def test_generous_budget_reaches_target_level(self):
        covering = COVERER.cover_budgeted(POLY, max_cells=10 ** 6,
                                          boundary_level=10)
        assert all(cellid.level(c) == 10 for c in covering.boundary)

    def test_budget_too_small_raises(self):
        with pytest.raises(CoveringError):
            COVERER.cover_budgeted(POLY, max_cells=0, boundary_level=8)


class TestOnS2Grid:
    def test_covering_on_sphere_covers_polygon(self, rng):
        grid = S2LikeGrid()
        coverer = RegionCoverer(grid)
        poly = regular_polygon(-73.95, 40.7, 0.05, 10)
        covering = coverer.cover(poly, boundary_level=13)
        union = CellUnion(covering.boundary + covering.interior)
        box = poly.bbox
        hits = 0
        for _ in range(800):
            x = float(rng.uniform(box.min_x, box.max_x))
            y = float(rng.uniform(box.min_y, box.max_y))
            if poly.contains(x, y):
                hits += 1
                assert union.contains_leaf(grid.leaf_cell(x, y))
        assert hits > 50

    def test_s2_interior_cells_inside(self):
        grid = S2LikeGrid()
        coverer = RegionCoverer(grid)
        poly = regular_polygon(-73.95, 40.7, 0.05, 10)
        covering = coverer.cover(poly, boundary_level=13)
        assert covering.interior
        for cell in covering.interior[::3]:
            rect = grid.cell_rect(cell)
            cx, cy = rect.center
            assert poly.contains(cx, cy)
