"""Unit tests for the Hilbert-curve lookup tables."""

import numpy as np

from repro.grid.hilbert import (
    IJ_TO_POS,
    INVERT_MASK,
    LOOKUP_IJ,
    LOOKUP_POS,
    LOOKUP_POS_NP,
    POS_TO_IJ,
    POS_TO_ORIENTATION,
    SWAP_MASK,
)


class TestBaseTables:
    def test_pos_to_ij_rows_are_permutations(self):
        for row in POS_TO_IJ:
            assert sorted(row) == [0, 1, 2, 3]

    def test_ij_to_pos_inverts_pos_to_ij(self):
        for orientation in range(4):
            for pos in range(4):
                ij = POS_TO_IJ[orientation][pos]
                assert IJ_TO_POS[orientation][ij] == pos

    def test_canonical_order_is_hilbert_u(self):
        # canonical orientation traverses (0,0),(0,1),(1,1),(1,0)
        assert POS_TO_IJ[0] == (0, 1, 3, 2)

    def test_orientation_masks(self):
        assert SWAP_MASK == 1 and INVERT_MASK == 2
        assert POS_TO_ORIENTATION == (1, 0, 0, 3)


class TestLookupTables:
    def test_tables_are_bijective_per_orientation(self):
        for orientation in range(4):
            seen = set()
            for ij in range(256):
                value = LOOKUP_POS[(ij << 2) | orientation]
                pos = value >> 2
                assert pos not in seen
                seen.add(pos)
            assert len(seen) == 256

    def test_lookup_ij_inverts_lookup_pos(self):
        for orientation in range(4):
            for ij in range(256):
                value = LOOKUP_POS[(ij << 2) | orientation]
                pos = value >> 2
                back = LOOKUP_IJ[(pos << 2) | orientation]
                assert back >> 2 == ij

    def test_orientation_consistency(self):
        # the output orientation must match between the two tables
        for orientation in range(4):
            for ij in range(256):
                value = LOOKUP_POS[(ij << 2) | orientation]
                pos = value >> 2
                assert (value & 3) == (LOOKUP_IJ[(pos << 2) | orientation] & 3)

    def test_numpy_views_match_lists(self):
        assert LOOKUP_POS_NP.dtype == np.uint64
        assert LOOKUP_POS_NP.tolist() == LOOKUP_POS


class TestLocality:
    def test_hilbert_adjacent_positions_are_adjacent_cells(self):
        """Consecutive curve positions differ by one grid step — the
        locality property that makes cache behaviour predictable."""
        from repro.grid import cellid

        # walk 256 consecutive leaf-range positions at level 4 on face 0
        root = cellid.from_face(0)
        level4 = []

        def descend(cell, depth):
            if depth == 4:
                level4.append(cell)
                return
            for child in cellid.children(cell):
                descend(child, depth + 1)

        descend(root, 0)
        assert len(level4) == 256
        coords = []
        for cell in sorted(level4):
            _, i, j = cellid.to_face_ij(cellid.range_min(cell))
            coords.append((i >> 26, j >> 26))
        for (i0, j0), (i1, j1) in zip(coords, coords[1:]):
            assert abs(i0 - i1) + abs(j0 - j1) == 1, "curve must be continuous"
