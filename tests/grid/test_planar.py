"""Unit tests for the planar quadtree grid."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GridError, OutOfBoundsError, PrecisionError
from repro.geometry.bbox import Rect
from repro.grid import cellid
from repro.grid.planar import PlanarGrid

BOUNDS = Rect(-74.3, 40.45, -73.65, 40.95)
GRID = PlanarGrid(BOUNDS)

in_lngs = st.floats(BOUNDS.min_x, BOUNDS.max_x)
in_lats = st.floats(BOUNDS.min_y, BOUNDS.max_y)


class TestConstruction:
    def test_invalid_max_level(self):
        with pytest.raises(GridError):
            PlanarGrid(BOUNDS, max_level=0)
        with pytest.raises(GridError):
            PlanarGrid(BOUNDS, max_level=31)

    def test_degenerate_bounds(self):
        with pytest.raises(GridError):
            PlanarGrid(Rect(0, 0, 0, 1))

    def test_for_polygons_covers_them(self, nyc_polygons):
        grid = PlanarGrid.for_polygons(nyc_polygons)
        for polygon in nyc_polygons:
            assert grid.bounds.contains_rect(polygon.bbox)

    def test_for_polygons_empty_raises(self):
        with pytest.raises(GridError):
            PlanarGrid.for_polygons([])

    def test_name(self):
        assert GRID.name == "planar"


class TestLeafCells:
    @given(in_lngs, in_lats)
    def test_leaf_cell_contains_point(self, lng, lat):
        cell = GRID.leaf_cell(lng, lat)
        assert cell is not None and cellid.is_leaf(cell)
        rect = GRID.cell_rect(cellid.parent(cell, 10))
        assert rect.contains_point(lng, lat)

    def test_out_of_bounds_none(self):
        assert GRID.leaf_cell(0.0, 0.0) is None

    def test_strict_raises(self):
        with pytest.raises(OutOfBoundsError):
            GRID.leaf_cell_strict(0.0, 0.0)

    def test_corner_points_covered(self):
        for x, y in BOUNDS.corners():
            assert GRID.leaf_cell(x, y) is not None

    def test_batch_matches_scalar(self, rng):
        lngs = rng.uniform(BOUNDS.min_x - 0.2, BOUNDS.max_x + 0.2, 400)
        lats = rng.uniform(BOUNDS.min_y - 0.2, BOUNDS.max_y + 0.2, 400)
        batch = GRID.leaf_cells_batch(lngs, lats)
        for k in range(0, 400, 7):
            scalar = GRID.leaf_cell(float(lngs[k]), float(lats[k]))
            assert int(batch[k]) == (scalar if scalar is not None else 0)


class TestCellGeometry:
    @given(in_lngs, in_lats, st.integers(0, 20))
    @settings(max_examples=100)
    def test_cell_rect_nesting(self, lng, lat, level):
        leaf = GRID.leaf_cell(lng, lat)
        cell = cellid.parent(leaf, level)
        rect = GRID.cell_rect(cell)
        child_rect = GRID.cell_rect(cellid.parent(leaf, level + 4))
        assert rect.expanded(1e-12).contains_rect(child_rect)

    def test_root_cell_rect_is_bounds(self):
        rect = GRID.cell_rect(cellid.from_face(0))
        assert rect.min_x == pytest.approx(BOUNDS.min_x)
        assert rect.max_y == pytest.approx(BOUNDS.max_y)

    def test_children_tile_parent(self):
        leaf = GRID.leaf_cell(-73.97, 40.75)
        parent = cellid.parent(leaf, 8)
        parent_rect = GRID.cell_rect(parent)
        kid_area = sum(GRID.cell_rect(k).area for k in cellid.children(parent))
        assert kid_area == pytest.approx(parent_rect.area)

    def test_frame_roundtrip(self):
        leaf = GRID.leaf_cell(-73.97, 40.75)
        cell = cellid.parent(leaf, 13)
        frame = GRID.frame_for_cell(cell)
        assert GRID.frame_cell(frame) == cell

    def test_frame_children_cover_frame(self):
        frame = (0, 0, 0, 3)
        bounds = GRID.frame_bounds(frame)
        for child in GRID.frame_children(frame):
            cb = GRID.frame_bounds(child)
            assert cb[0] >= bounds[0] - 1e-12 and cb[2] <= bounds[2] + 1e-12


class TestMetrics:
    def test_diag_halves_per_level(self):
        for level in range(0, 20):
            ratio = GRID.max_diag_meters(level) / GRID.max_diag_meters(level + 1)
            assert ratio == pytest.approx(2.0)

    def test_level_for_precision_monotone(self):
        l60 = GRID.level_for_precision(60.0)
        l15 = GRID.level_for_precision(15.0)
        l4 = GRID.level_for_precision(4.0)
        assert l60 < l15 < l4
        assert GRID.max_diag_meters(l4) <= 4.0
        assert GRID.max_diag_meters(l4 - 1) > 4.0

    def test_level_for_precision_invalid(self):
        with pytest.raises(PrecisionError):
            GRID.level_for_precision(0.0)
        with pytest.raises(PrecisionError):
            GRID.level_for_precision(1e-9)  # finer than level 30

    def test_diag_metric_is_conservative(self, rng):
        """Measured cell diagonals never exceed the metric's bound."""
        from repro.geometry.distance import LocalProjection

        proj = LocalProjection(BOUNDS.center[1])
        for level in (6, 10, 14):
            bound = GRID.max_diag_meters(level)
            for _ in range(20):
                lng = float(rng.uniform(BOUNDS.min_x, BOUNDS.max_x))
                lat = float(rng.uniform(BOUNDS.min_y, BOUNDS.max_y))
                rect = GRID.cell_rect(
                    cellid.parent(GRID.leaf_cell(lng, lat), level)
                )
                x0, y0 = proj.to_xy(rect.min_x, rect.min_y)
                x1, y1 = proj.to_xy(rect.max_x, rect.max_y)
                measured = float(np.hypot(x1 - x0, y1 - y0))
                assert measured <= bound * 1.0001


class TestPointKey:
    """The serving cache keys points by cell; the planar override must
    induce the exact same partition as the default leaf+parent path."""

    @given(in_lngs, in_lats, in_lngs, in_lats,
           st.integers(min_value=4, max_value=20))
    @settings(max_examples=200, deadline=None)
    def test_override_partition_matches_default(self, lng1, lat1, lng2,
                                                lat2, level):
        fast1 = GRID.point_key(lng1, lat1, level)
        fast2 = GRID.point_key(lng2, lat2, level)
        slow1 = cellid.parent(GRID.leaf_cell(lng1, lat1), level)
        slow2 = cellid.parent(GRID.leaf_cell(lng2, lat2), level)
        assert (fast1 == fast2) == (slow1 == slow2)

    def test_out_of_domain_is_none(self):
        assert GRID.point_key(0.0, 0.0, 10) is None
        assert GRID.point_key(BOUNDS.min_x - 1e-6, BOUNDS.min_y, 10) is None

    def test_same_cell_same_key(self, rng):
        for level in (6, 12, 18):
            lng = float(rng.uniform(BOUNDS.min_x, BOUNDS.max_x))
            lat = float(rng.uniform(BOUNDS.min_y, BOUNDS.max_y))
            rect = GRID.cell_rect(
                cellid.parent(GRID.leaf_cell(lng, lat), level))
            other = (min(rect.max_x, rect.min_x + rect.width * 0.9),
                     min(rect.max_y, rect.min_y + rect.height * 0.9))
            assert (GRID.point_key(lng, lat, level)
                    == GRID.point_key(other[0], other[1], level))
