"""Unit tests for the sphere-to-cube projection pipeline."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid import projection as prj

lngs = st.floats(-179.9, 179.9)
lats = st.floats(-89.9, 89.9)
uv = st.floats(-1.0, 1.0)
sts = st.floats(0.0, 1.0)


class TestXYZ:
    @given(lngs, lats)
    def test_unit_length(self, lng, lat):
        x, y, z = prj.xyz_from_lnglat(lng, lat)
        assert math.hypot(math.hypot(x, y), z) == pytest.approx(1.0)

    @given(lngs, lats)
    def test_roundtrip(self, lng, lat):
        x, y, z = prj.xyz_from_lnglat(lng, lat)
        lng2, lat2 = prj.lnglat_from_xyz(x, y, z)
        assert lat2 == pytest.approx(lat, abs=1e-9)
        assert lng2 == pytest.approx(lng, abs=1e-9)

    def test_cardinal_points(self):
        assert prj.xyz_from_lnglat(0, 0) == pytest.approx((1, 0, 0))
        assert prj.xyz_from_lnglat(90, 0) == pytest.approx((0, 1, 0))
        assert prj.xyz_from_lnglat(0, 90) == pytest.approx((0, 0, 1), abs=1e-12)


class TestFaceUV:
    def test_face_centers(self):
        assert prj.face_from_xyz(1, 0, 0) == 0
        assert prj.face_from_xyz(0, 1, 0) == 1
        assert prj.face_from_xyz(0, 0, 1) == 2
        assert prj.face_from_xyz(-1, 0, 0) == 3
        assert prj.face_from_xyz(0, -1, 0) == 4
        assert prj.face_from_xyz(0, 0, -1) == 5

    @given(lngs, lats)
    def test_uv_in_range(self, lng, lat):
        x, y, z = prj.xyz_from_lnglat(lng, lat)
        _, u, v = prj.face_uv_from_xyz(x, y, z)
        assert -1.0 - 1e-12 <= u <= 1.0 + 1e-12
        assert -1.0 - 1e-12 <= v <= 1.0 + 1e-12

    @given(lngs, lats)
    def test_face_uv_roundtrip(self, lng, lat):
        x, y, z = prj.xyz_from_lnglat(lng, lat)
        f, u, v = prj.face_uv_from_xyz(x, y, z)
        x2, y2, z2 = prj.xyz_from_face_uv(f, u, v)
        # xyz_from_face_uv is unnormalized; compare directions
        norm = math.sqrt(x2 * x2 + y2 * y2 + z2 * z2)
        assert (x2 / norm, y2 / norm, z2 / norm) == pytest.approx(
            (x, y, z), abs=1e-12
        )


class TestSTTransform:
    @given(uv)
    def test_st_uv_roundtrip(self, u):
        assert prj.uv_from_st(prj.st_from_uv(u)) == pytest.approx(u, abs=1e-12)

    def test_st_monotone(self):
        values = [prj.st_from_uv(u) for u in np.linspace(-1, 1, 101)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_st_range(self):
        assert prj.st_from_uv(-1.0) == pytest.approx(0.0)
        assert prj.st_from_uv(0.0) == pytest.approx(0.5)
        assert prj.st_from_uv(1.0) == pytest.approx(1.0)


class TestIJ:
    def test_clamping(self):
        assert prj.ij_from_st(-0.1) == 0
        assert prj.ij_from_st(1.5) == prj.IJ_SIZE - 1

    @given(sts)
    def test_ij_st_near_roundtrip(self, s):
        i = prj.ij_from_st(s)
        assert abs(prj.st_from_ij(i) - s) <= 1.0 / prj.IJ_SIZE

    @given(lngs, lats)
    @settings(max_examples=200)
    def test_full_pipeline_roundtrip_precision(self, lng, lat):
        """Leaf cells are ~cm² — the roundtrip must be centimeter-exact."""
        from repro.geometry.distance import haversine_meters

        f, i, j = prj.face_ij_from_lnglat(lng, lat)
        lng2, lat2 = prj.lnglat_from_face_st(
            f, prj.st_from_ij(i), prj.st_from_ij(j)
        )
        # a leaf cell diagonal is ~1 cm; allow a few cells of slack
        assert haversine_meters(lng, lat, lng2, lat2) < 0.05


class TestBatch:
    @given(st.lists(st.tuples(lngs, lats), min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_batch_matches_scalar(self, points):
        lng_arr = np.asarray([p[0] for p in points])
        lat_arr = np.asarray([p[1] for p in points])
        f, i, j = prj.face_ij_from_lnglat_batch(lng_arr, lat_arr)
        for k, (lng, lat) in enumerate(points):
            assert (int(f[k]), int(i[k]), int(j[k])) == \
                prj.face_ij_from_lnglat(lng, lat)
