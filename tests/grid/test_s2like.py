"""Unit tests for the S2-like spherical grid."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid import cellid
from repro.grid.s2like import S2LikeGrid

GRID = S2LikeGrid()

# covering-safe domain (documented limitation: |lat| < 60, away from ±180)
lngs = st.floats(-170.0, 170.0)
lats = st.floats(-59.0, 59.0)


class TestLeafCells:
    @given(lngs, lats)
    def test_leaf_level_and_validity(self, lng, lat):
        cell = GRID.leaf_cell(lng, lat)
        assert cellid.is_leaf(cell)
        assert cellid.is_valid(cell)

    @given(lngs, lats)
    @settings(max_examples=100)
    def test_cell_rect_contains_point(self, lng, lat):
        leaf = GRID.leaf_cell(lng, lat)
        for level in (4, 8, 12, 16):
            rect = GRID.cell_rect(cellid.parent(leaf, level))
            assert rect.contains_point(lng, lat), level

    def test_batch_matches_scalar(self, rng):
        lng_arr = rng.uniform(-179, 179, 500)
        lat_arr = rng.uniform(-85, 85, 500)
        batch = GRID.leaf_cells_batch(lng_arr, lat_arr)
        for k in range(0, 500, 7):
            assert int(batch[k]) == GRID.leaf_cell(
                float(lng_arr[k]), float(lat_arr[k])
            )

    def test_all_faces_reachable(self, rng):
        lng_arr = rng.uniform(-180, 180, 4000)
        lat_arr = rng.uniform(-90, 90, 4000)
        faces = {
            (int(c) >> cellid.POS_BITS)
            for c in GRID.leaf_cells_batch(lng_arr, lat_arr)
        }
        assert faces == {0, 1, 2, 3, 4, 5}


class TestRectBounds:
    def test_root_frames_are_faces(self):
        frames = GRID.root_frames()
        assert len(frames) == 6
        assert all(f[3] == 0 for f in frames)

    @given(lngs, lats, st.integers(6, 24))
    @settings(max_examples=100)
    def test_rect_bound_contains_sampled_interior(self, lng, lat, level):
        """The rect bound must contain the whole cell: sample interior
        leaf points of the cell and check them."""
        leaf = GRID.leaf_cell(lng, lat)
        cell = cellid.parent(leaf, level)
        rect = GRID.cell_rect(cell)
        from repro.grid.projection import lnglat_from_face_st

        face, i, j = cellid.to_face_ij(cellid.range_min(cell))
        size = 1 << (cellid.MAX_LEVEL - level)
        i0, j0 = i & ~(size - 1), j & ~(size - 1)
        for fx in (0.1, 0.5, 0.9):
            for fy in (0.1, 0.5, 0.9):
                s = (i0 + fx * size) / (1 << cellid.MAX_LEVEL)
                t = (j0 + fy * size) / (1 << cellid.MAX_LEVEL)
                plng, plat = lnglat_from_face_st(face, s, t)
                assert rect.contains_point(plng, plat)

    def test_nested_rects(self):
        leaf = GRID.leaf_cell(-73.97, 40.75)
        outer = GRID.cell_rect(cellid.parent(leaf, 8))
        inner = GRID.cell_rect(cellid.parent(leaf, 14))
        assert outer.intersects(inner)
        assert outer.area > inner.area


class TestMetrics:
    def test_diag_halves_per_level(self):
        for level in range(0, 25):
            ratio = GRID.max_diag_meters(level) / GRID.max_diag_meters(level + 1)
            assert ratio == pytest.approx(2.0)

    def test_leaf_cells_are_subcentimeter(self):
        assert GRID.max_diag_meters(30) < 0.05

    def test_precision_levels_reasonable(self):
        # 60 m should be low twenties at most, 4 m a few levels deeper
        l60 = GRID.level_for_precision(60.0)
        l4 = GRID.level_for_precision(4.0)
        assert 15 <= l60 <= 20
        assert l4 - l60 == pytest.approx(np.log2(60 / 4), abs=1)

    def test_metric_conservative_against_measured_cells(self, rng):
        """Measured rect-bound diagonals stay under the metric."""
        from repro.geometry.distance import LocalProjection

        for level in (8, 12, 16):
            bound = GRID.max_diag_meters(level)
            for _ in range(25):
                lng = float(rng.uniform(-170, 170))
                lat = float(rng.uniform(-55, 55))
                leaf = GRID.leaf_cell(lng, lat)
                rect = GRID.cell_rect(cellid.parent(leaf, level))
                proj = LocalProjection(lat)
                x0, y0 = proj.to_xy(rect.min_x, rect.min_y)
                x1, y1 = proj.to_xy(rect.max_x, rect.max_y)
                measured = float(np.hypot(x1 - x0, y1 - y0))
                assert measured <= bound * 1.01, (level, lng, lat)
