"""Unit and property tests for the 64-bit cell id algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidCellError
from repro.grid import cellid

faces = st.integers(0, 5)
ij30 = st.integers(0, (1 << 30) - 1)
levels = st.integers(0, 30)


def random_cell(face, i, j, level):
    return cellid.parent(cellid.from_face_ij(face, i, j), level)


class TestConstruction:
    def test_from_face_level_zero(self):
        for face in range(6):
            cell = cellid.from_face(face)
            assert cellid.level(cell) == 0
            assert cellid.face(cell) == face
            assert cellid.is_face(cell)

    def test_from_face_invalid(self):
        with pytest.raises(InvalidCellError):
            cellid.from_face(6)

    def test_leaf_is_level_30(self):
        leaf = cellid.from_face_ij(2, 12345, 67890)
        assert cellid.level(leaf) == 30
        assert cellid.is_leaf(leaf)
        assert cellid.is_valid(leaf)

    @given(faces, ij30, ij30)
    def test_face_ij_roundtrip(self, face, i, j):
        leaf = cellid.from_face_ij(face, i, j)
        assert cellid.to_face_ij(leaf) == (face, i, j)

    @given(faces, ij30, ij30, levels)
    def test_from_face_path_consistent_with_parent(self, face, i, j, level):
        leaf = cellid.from_face_ij(face, i, j)
        ancestor = cellid.parent(leaf, level)
        path, bits = cellid.path_key(ancestor)
        assert bits == 2 * level
        assert cellid.from_face_path(face, path, level) == ancestor


class TestStructure:
    @given(faces, ij30, ij30, st.integers(1, 30))
    def test_parent_contains_child(self, face, i, j, level):
        leaf = cellid.from_face_ij(face, i, j)
        cell = cellid.parent(leaf, level)
        parent = cellid.parent(cell)
        assert cellid.level(parent) == level - 1
        assert cellid.contains(parent, cell)
        assert not cellid.contains(cell, parent)

    @given(faces, ij30, ij30, st.integers(0, 29))
    def test_children_partition_parent(self, face, i, j, level):
        cell = random_cell(face, i, j, level)
        kids = cellid.children(cell)
        assert len(set(kids)) == 4
        lo = cellid.range_min(cell)
        for kid in kids:
            assert cellid.parent(kid, level) == cell
            assert cellid.range_min(kid) == lo
            lo = cellid.range_max(kid) + 2
        assert lo - 2 == cellid.range_max(cell)

    def test_children_of_leaf_raises(self):
        leaf = cellid.from_face_ij(0, 0, 0)
        with pytest.raises(InvalidCellError):
            cellid.children(leaf)

    @given(faces, ij30, ij30)
    def test_range_min_max_are_leaves(self, face, i, j):
        cell = random_cell(face, i, j, 10)
        assert cellid.is_leaf(cellid.range_min(cell))
        assert cellid.is_leaf(cellid.range_max(cell))

    @given(faces, ij30, ij30, levels, faces, ij30, ij30, levels)
    @settings(max_examples=300)
    def test_containment_iff_range_nesting(self, f1, i1, j1, l1,
                                           f2, i2, j2, l2):
        a = random_cell(f1, i1, j1, l1)
        b = random_cell(f2, i2, j2, l2)
        ranges_nested = (cellid.range_min(a) <= cellid.range_min(b)
                         and cellid.range_max(b) <= cellid.range_max(a))
        assert cellid.contains(a, b) == ranges_nested
        assert cellid.intersects(a, b) == (
            cellid.contains(a, b) or cellid.contains(b, a)
        )

    @given(faces, ij30, ij30, st.integers(1, 30))
    def test_child_position_recovers_path(self, face, i, j, level):
        cell = random_cell(face, i, j, level)
        rebuilt = cellid.from_face(face)
        for lvl in range(1, level + 1):
            rebuilt = cellid.child(rebuilt, cellid.child_position(cell, lvl))
        assert rebuilt == cell


class TestValidity:
    def test_zero_invalid(self):
        assert not cellid.is_valid(0)

    def test_bad_face_invalid(self):
        leaf = cellid.from_face_ij(0, 5, 5)
        assert not cellid.is_valid(leaf | (7 << cellid.POS_BITS))

    def test_even_trailing_zero_required(self):
        leaf = cellid.from_face_ij(0, 5, 5)
        assert not cellid.is_valid(leaf << 1)  # odd trailing zeros

    @given(faces, ij30, ij30, levels)
    def test_all_constructed_cells_valid(self, face, i, j, level):
        assert cellid.is_valid(random_cell(face, i, j, level))


class TestDenormalize:
    @given(faces, ij30, ij30, st.integers(0, 26))
    @settings(max_examples=100)
    def test_denormalize_partitions_range(self, face, i, j, level):
        cell = random_cell(face, i, j, level)
        target = min(30, level + 2)
        descendants = cellid.denormalize(cell, target)
        assert len(descendants) == 4 ** (target - level)
        assert descendants == sorted(descendants)
        lo = cellid.range_min(cell)
        for d in descendants:
            assert cellid.level(d) == target
            assert cellid.range_min(d) == lo
            lo = cellid.range_max(d) + 2
        assert lo - 2 == cellid.range_max(cell)

    def test_denormalize_same_level_identity(self):
        cell = random_cell(1, 99, 77, 8)
        assert cellid.denormalize(cell, 8) == [cell]

    def test_denormalize_up_raises(self):
        cell = random_cell(1, 99, 77, 8)
        with pytest.raises(InvalidCellError):
            cellid.denormalize(cell, 7)

    def test_expand_to_level(self):
        cells = [random_cell(0, 1, 1, 4), random_cell(0, 900000, 5, 5)]
        out = cellid.expand_to_level(cells, 6)
        assert len(out) == 16 + 4


class TestTokens:
    @given(faces, ij30, ij30, levels)
    def test_token_roundtrip(self, face, i, j, level):
        cell = random_cell(face, i, j, level)
        assert cellid.from_token(cellid.to_token(cell)) == cell

    def test_zero_token(self):
        assert cellid.to_token(0) == "X"
        assert cellid.from_token("X") == 0

    def test_bad_token_raises(self):
        with pytest.raises(InvalidCellError):
            cellid.from_token("not-hex!")
        with pytest.raises(InvalidCellError):
            cellid.from_token("0" * 17)


class TestBatchOps:
    def test_from_face_ij_batch_matches_scalar(self, rng):
        faces_arr = rng.integers(0, 6, 500)
        i = rng.integers(0, 1 << 30, 500)
        j = rng.integers(0, 1 << 30, 500)
        batch = cellid.from_face_ij_batch(faces_arr, i, j)
        for k in range(0, 500, 11):
            assert int(batch[k]) == cellid.from_face_ij(
                int(faces_arr[k]), int(i[k]), int(j[k])
            )

    def test_level_batch_matches_scalar(self, rng):
        cells = []
        for _ in range(200):
            leaf = cellid.from_face_ij(
                int(rng.integers(0, 6)),
                int(rng.integers(0, 1 << 30)),
                int(rng.integers(0, 1 << 30)),
            )
            cells.append(cellid.parent(leaf, int(rng.integers(0, 31))))
        arr = np.asarray(cells, dtype=np.uint64)
        lv = cellid.level_batch(arr)
        assert lv.tolist() == [cellid.level(c) for c in cells]

    def test_parent_batch_matches_scalar(self, rng):
        leaves = cellid.from_face_ij_batch(
            rng.integers(0, 6, 300),
            rng.integers(0, 1 << 30, 300),
            rng.integers(0, 1 << 30, 300),
        )
        parents = cellid.parent_batch(leaves, 12)
        for k in range(0, 300, 13):
            assert int(parents[k]) == cellid.parent(int(leaves[k]), 12)
