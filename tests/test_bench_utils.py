"""Tests for the benchmark harness utilities and report rendering."""

import pytest

from repro.bench.harness import (
    DATASETS,
    PRECISIONS,
    IndexCache,
    dataset_polygons,
    throughput_mpts,
    time_callable,
    workload,
)
from repro.bench.reporting import (
    drain_reports,
    format_value,
    record_row,
    record_text,
    render_comparison,
    render_series,
    render_table,
    write_bench_json,
)


class TestReporting:
    def test_format_value(self):
        assert format_value(0.0) == "0"
        assert format_value(1234.5) == "1234"
        assert format_value(3.14159) == "3.14"
        assert format_value(0.00123) == "0.00123"
        assert format_value("abc") == "abc"
        assert format_value(42) == "42"

    def test_render_table_alignment(self):
        text = render_table("T", ["a", "longcol"], [[1, 2.5], [300, 4]])
        lines = text.splitlines()
        assert lines[0] == ""  # leading blank separates from pytest output
        assert "=== T ===" in lines[1]
        assert len(lines) == 6
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1  # header/rule/rows padded to equal width

    def test_render_series(self):
        text = render_series("S", "x", {"act": {1: 10.0, 2: 20.0}}, [1, 2])
        assert "act" in text and "10" in text and "20" in text

    def test_render_comparison(self):
        text = render_comparison("C", "base", 2.0, {"fast": 8.0})
        assert "4" in text  # 8/2 = 4x factor

    def test_write_bench_json(self, tmp_path):
        import json

        path = write_bench_json("demo", {"speedup": 2.5},
                                directory=tmp_path)
        assert path == tmp_path / "BENCH_demo.json"
        doc = json.loads(path.read_text())
        assert doc["bench"] == "demo"
        assert doc["speedup"] == 2.5
        assert "scale" in doc

    def test_write_bench_json_env_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        path = write_bench_json("envdir", {})
        assert path.parent == tmp_path
        assert path.exists()

    def test_record_and_drain(self):
        record_row("tbl", ["c1"], [1])
        record_row("tbl", ["c1"], [1])  # duplicate rows collapse
        record_row("tbl", ["c1"], [2])
        record_text("tbl", "[note] hello")
        reports = drain_reports()
        assert len(reports) == 2  # table + note
        assert "tbl" in reports[0]
        assert drain_reports() == []  # drained


class TestHarness:
    def test_paper_constants(self):
        assert DATASETS == ("boroughs", "neighborhoods", "census")
        assert PRECISIONS == (60.0, 15.0, 4.0)

    def test_dataset_polygons(self):
        assert len(dataset_polygons("boroughs")) == 5
        with pytest.raises(ValueError):
            dataset_polygons("mars")

    def test_workload_scaled(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.01")
        lngs, lats = workload(10_000)
        assert len(lngs) == 100

    def test_throughput(self):
        assert throughput_mpts(2_000_000, 1.0) == pytest.approx(2.0)
        assert throughput_mpts(1, 0.0) == float("inf")

    def test_time_callable(self):
        calls = []
        seconds = time_callable(lambda: calls.append(1), repeats=3)
        assert len(calls) == 3
        assert seconds >= 0.0

    def test_index_cache_reuses(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        cache = IndexCache()
        a = cache.get("census", 120.0)
        b = cache.get("census", 120.0)
        assert a is b
        assert ("census", 120.0) in cache.build_seconds
        cache.evict("census", 120.0)
        c = cache.get("census", 120.0)
        assert c is not a
