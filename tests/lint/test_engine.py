"""Engine-level behavior: baseline lifecycle, CLI contract, output."""

import json
from pathlib import Path

from repro.lint.__main__ import main
from repro.lint.baseline import Baseline
from repro.lint.engine import rule_catalog_key, run
from repro.lint.rules import all_rules

FIXTURES = Path(__file__).parent / "fixtures"


class TestBaseline:
    def test_baselined_findings_do_not_fail_the_gate(self, tmp_path):
        result = run([FIXTURES / "rl001_violation.py"], root=FIXTURES)
        assert result.gate_failures()
        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings(result.findings).save(baseline_path)

        rerun = run([FIXTURES / "rl001_violation.py"], root=FIXTURES,
                    baseline=Baseline.load(baseline_path))
        assert rerun.gate_failures() == []
        assert all(f.baselined for f in rerun.findings)
        # still *reported*, just grandfathered
        assert len(rerun.findings) == len(result.findings)

    def test_fingerprint_survives_line_shifts(self, tmp_path):
        original = (FIXTURES / "rl006_violation.py").read_text()
        target = tmp_path / "mod.py"
        target.write_text(original)
        baseline = Baseline.from_findings(
            run([target], root=tmp_path).findings)

        # shift every finding by two lines: same (rule, path, message)
        target.write_text("# shifted\n# shifted again\n" + original)
        rerun = run([target], root=tmp_path, baseline=baseline)
        assert rerun.findings and all(f.baselined for f in rerun.findings)

    def test_new_findings_still_fail_a_baselined_run(self, tmp_path):
        result = run([FIXTURES / "rl001_violation.py"], root=FIXTURES)
        baseline = Baseline.from_findings(result.findings)
        both = run([FIXTURES / "rl001_violation.py",
                    FIXTURES / "rl006_violation.py"],
                   root=FIXTURES, baseline=baseline)
        failures = both.gate_failures()
        assert failures and {f.rule for f in failures} == {"RL006"}

    def test_missing_baseline_file_is_empty(self, tmp_path):
        assert len(Baseline.load(tmp_path / "nope.json")) == 0


class TestCLI:
    def test_exit_codes(self, tmp_path, capsys):
        assert main([str(FIXTURES / "rl001_clean.py"),
                     "--root", str(FIXTURES)]) == 0
        assert main([str(FIXTURES / "rl001_violation.py"),
                     "--root", str(FIXTURES)]) == 1
        assert main([]) == 2  # no paths
        capsys.readouterr()

    def test_warnings_only_fail_under_strict(self, tmp_path, capsys):
        # a fixture whose only finding is the time.time() warning
        source = "def query(lngs):\n    import time\n    return time.time()\n"
        target = tmp_path / "warn_only.py"
        target.write_text(source)
        args = [str(target), "--root", str(tmp_path)]
        assert main(args) == 0
        assert main(args + ["--strict"]) == 1
        capsys.readouterr()

    def test_json_output_shape(self, capsys):
        code = main([str(FIXTURES / "rl004_violation.py"),
                     "--root", str(FIXTURES), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["files_checked"] == 1
        assert payload["summary"]["errors"] == 2
        assert payload["catalog_key"] == rule_catalog_key()
        finding = payload["findings"][0]
        assert set(finding) == {"rule", "path", "line", "severity",
                                "message", "baselined"}

    def test_write_baseline_roundtrip(self, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        args = [str(FIXTURES / "rl006_violation.py"),
                "--root", str(FIXTURES),
                "--baseline", str(baseline_path)]
        assert main(args) == 1
        assert main(args + ["--write-baseline"]) == 0
        assert main(args) == 0  # grandfathered now
        capsys.readouterr()

    def test_list_rules_covers_catalog(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.id in out

    def test_parse_failure_fails_the_gate(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        assert main([str(bad), "--root", str(tmp_path)]) == 1
        assert "PARSE" in capsys.readouterr().out


def test_catalog_key_tracks_rule_versions():
    key = rule_catalog_key()
    for rule in all_rules():
        assert f"{rule.id}={rule.version}" in key
