"""Golden-fixture tests: every rule, one violating + one clean fixture.

Each violating fixture pins the exact finding locations; each clean
fixture proves the rule's documented escapes (lock blocks, `_locked`
naming, executor delegation, raise/except-site formatting, cross-file
registration, taxonomy subclasses, the `__main__` guard) stay silent.
The pragma tests prove every rule is *live*: the gate fails on the
pristine fixture and passes once each finding line carries its
``# repro-lint: ignore[rule-id]`` pragma.
"""

from pathlib import Path

import pytest

from repro.lint.engine import run

FIXTURES = Path(__file__).parent / "fixtures"

#: rule id -> (violating fixture relpath, {line: severity}).
VIOLATIONS = {
    "RL001": ("rl001_violation.py",
              {12: "error", 15: "error", 20: "error"}),
    "RL002": ("rl002_violation.py",
              {7: "error", 8: "error", 9: "error", 14: "error",
               15: "error"}),
    "RL003": ("rl003_violation.py",
              {8: "error", 9: "error", 10: "error", 12: "error",
               14: "warning"}),
    "RL004": ("rl004_violation.py", {5: "error", 6: "error"}),
    "RL005": ("src/repro/serve/rl005_violation.py",
              {8: "error", 10: "error", 16: "error"}),
    "RL006": ("rl006_violation.py",
              {6: "error", 7: "error", 12: "error"}),
}

CLEAN = {
    "RL001": "rl001_clean.py",
    "RL002": "rl002_clean.py",
    "RL003": "rl003_clean.py",
    "RL004": "rl004_clean.py",
    "RL005": "src/repro/serve/rl005_clean.py",
    "RL006": "rl006_clean.py",
}


def lint(relpaths, root=FIXTURES):
    return run([root / rel for rel in relpaths], root=root)


@pytest.mark.parametrize("rule_id", sorted(VIOLATIONS))
def test_violating_fixture_exact_locations(rule_id):
    relpath, expected = VIOLATIONS[rule_id]
    result = lint([relpath])
    found = {f.line: f.severity for f in result.findings
             if f.rule == rule_id}
    assert found == expected
    off_rule = [f for f in result.findings if f.rule != rule_id]
    assert off_rule == [], off_rule
    for finding in result.findings:
        assert finding.path == relpath


@pytest.mark.parametrize("rule_id", sorted(CLEAN))
def test_clean_fixture_is_silent(rule_id):
    result = lint([CLEAN[rule_id]])
    assert result.findings == []


def test_rl004_registration_in_another_file_satisfies_use():
    # same lazy uses as the violation test, plus a registrar module:
    # the cross-file pass must see the pair as clean
    result = lint(["rl004_violation.py", "rl004_registrar.py"])
    assert result.findings == []


@pytest.mark.parametrize("rule_id", sorted(VIOLATIONS))
def test_rule_is_live_and_pragma_suppresses(rule_id, tmp_path):
    relpath, expected = VIOLATIONS[rule_id]
    source = (FIXTURES / relpath).read_text()

    # pristine fixture: the gate fails (the rule is live)
    pristine = tmp_path / "pristine" / relpath
    pristine.parent.mkdir(parents=True)
    pristine.write_text(source)
    result = run([pristine], root=tmp_path / "pristine")
    assert result.gate_failures(strict=True), rule_id

    # same content with a pragma on every finding line: gate passes
    lines = source.splitlines()
    for line_no in expected:
        lines[line_no - 1] += f"  # repro-lint: ignore[{rule_id}]"
    suppressed = tmp_path / "suppressed" / relpath
    suppressed.parent.mkdir(parents=True)
    suppressed.write_text("\n".join(lines) + "\n")
    result = run([suppressed], root=tmp_path / "suppressed")
    assert result.findings == []


def test_pragma_only_suppresses_the_named_rule(tmp_path):
    relpath, expected = VIOLATIONS["RL006"]
    source = (FIXTURES / relpath).read_text()
    lines = source.splitlines()
    for line_no in expected:
        lines[line_no - 1] += "  # repro-lint: ignore[RL001]"
    target = tmp_path / relpath
    target.write_text("\n".join(lines) + "\n")
    result = run([target], root=tmp_path)
    assert {f.rule for f in result.findings} == {"RL006"}
