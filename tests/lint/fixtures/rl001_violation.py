"""RL001 fixture: unlocked writes to guarded shared state."""
import threading


class IndexRegistry:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}
        self.generation = 0

    def add(self, name, value):
        self._entries[name] = value      # line 12: unlocked write

    def bump(self):
        self.generation += 1             # line 15: unlocked write

    def drop(self, name):
        with self._lock:
            del self._entries[name]      # locked: clean
        self._entries.pop(name, None)    # line 20: mutator outside lock
