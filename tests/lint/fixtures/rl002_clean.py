"""RL002 fixture: coroutines that stay on the event loop."""
import asyncio
import time


async def tick(loop, path):
    await asyncio.sleep(0.1)
    return await loop.run_in_executor(None, _read, path)


def _read(path):
    # sync helper: blocking here is fine, it runs on the executor
    with open(path) as fp:
        return fp.read()


async def nested_sync_def_is_exempt():
    def warmup():
        time.sleep(0.01)  # runs when *called*, a call-site question
    return warmup
