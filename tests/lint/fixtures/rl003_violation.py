"""RL003 fixture: hot-path hygiene violations in a hot function."""
import json
import logging
import time


def query(name, lngs, lats):
    logging.info("query for %s", name)      # line 8: logging
    payload = json.dumps({"name": name})    # line 9: json
    label = f"query:{name}"                 # line 10: eager f-string
    out = []
    for lng in lngs:                        # line 12: loop over param
        out.append(lng)
    started = time.time()                   # line 14: warning
    return payload, label, out, started


def helper(lngs):
    # not a hot function: identical shapes are out of scope
    label = "helper:{}".format(len(lngs))
    for lng in lngs:
        logging.info("point %s", lng)
    return label
