"""RL004 fixture: lazy uses backed by eager registration sites."""


class Front:
    def __init__(self, metrics):
        self._metrics = metrics
        # eager sites: a register() call and a non-chained factory call
        self._metrics.register(counters=("fixture.hits",))
        self._metrics.histogram("fixture.latency")

    def record_hit(self):
        self._metrics.counter("fixture.hits").inc()
        self._metrics.histogram("fixture.latency").observe(0.001)

    def record_dynamic(self, name):
        # non-constant names are out of scope (aggregator's business)
        self._metrics.counter(name).inc()
