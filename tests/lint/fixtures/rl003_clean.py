"""RL003 fixture: a hygienic hot function."""
import time

import numpy as np


def query_batch(name, lngs, lats):
    started = time.perf_counter()
    arr = np.asarray(lngs) + np.asarray(lats)   # vectorised, no loop
    if arr.size == 0:
        # raise-site formatting only runs on the cold error path
        raise ValueError(f"empty batch for {name!r}")
    try:
        total = float(arr.sum())
    except (TypeError, OverflowError) as exc:
        # except-handler formatting is the cold path too
        detail = f"bad batch: {exc}"
        raise ValueError(detail) from exc
    for _ in range(3):   # loop over a literal, not an array parameter
        total += 0.0
    return total, time.perf_counter() - started
