"""RL006 fixture: construction deferred past import (fork-safe)."""
import socket
import threading


def prewarm():
    # post-fork seam: each worker builds its own resources
    watcher = threading.Thread(target=print, daemon=True)
    sock = socket.socket()
    return watcher, sock


if __name__ == "__main__":
    # the main guard never runs on import: exempt
    _MAIN_THREAD = threading.Thread(target=print, daemon=True)
