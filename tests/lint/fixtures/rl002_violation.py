"""RL002 fixture: blocking calls inside coroutines."""
import socket
import time


async def tick(lock, path):
    time.sleep(0.1)                      # line 7: blocking sleep
    lock.acquire()                       # line 8: blocking acquire
    with open(path) as fp:               # line 9: blocking file I/O
        return fp.read()


async def dial(host):
    sock = socket.create_connection((host, 80))   # line 14: sync socket
    sock.sendall(b"ping")                         # line 15: sync send
    return sock
