"""RL004 fixture: a registration site in a *different* file.

Paired with ``rl004_violation.py`` in the cross-file test: the lazy
uses there are satisfied by the eager sites here, proving the pass
looks project-wide rather than per-file.
"""


def set_telemetry(metrics):
    metrics.register(counters=("fixture.hits",),
                     histograms=("fixture.latency",))
