"""RL001 fixture: every shared write is locked or conventionally exempt."""
import threading


class IndexRegistry:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}
        self.generation = 0

    def add(self, name, value):
        with self._lock:
            self._entries[name] = value
            self.generation += 1

    def _replace_locked(self, name, value):
        # caller-holds-lock convention: the `_locked` suffix exempts it
        self._entries[name] = value

    def swap(self, name, value):
        with self._lock:
            self._replace_locked(name, value)


class Unguarded:
    """Not a guarded class: writes here are out of RL001's scope."""

    def __init__(self):
        self.state = {}

    def poke(self, key):
        self.state[key] = True
