"""RL005 fixture: taxonomy raises and exempt shapes in serve/ scope."""

from repro.errors import InvalidRequestError, ServeError


class FrameError(ServeError):
    """A local subclass of a taxonomy class is fine."""


def parse(raw):
    if raw is None:
        raise InvalidRequestError("raw must not be None")
    if not isinstance(raw, str):
        raise FrameError("raw must be a string")
    try:
        return int(raw)
    except ValueError:
        raise   # bare re-raise is fine


def todo():
    raise NotImplementedError("programmer error, not a wire failure")
