"""RL005 fixture: builtin raises in (a path shaped like) the serving
layer — the fixture root makes this file's relpath
``src/repro/serve/rl005_violation.py``, inside the rule's scope."""


def parse(raw):
    if raw is None:
        raise ValueError("raw must not be None")        # line 8
    if not isinstance(raw, str):
        raise Exception("raw must be a string")         # line 10
    return raw


def read(path):
    if not path:
        raise OSError("no path")                        # line 16
    return path
