"""RL006 fixture: import-time thread/socket/Manager construction."""
import multiprocessing
import socket
import threading

_WATCHER = threading.Thread(target=print, daemon=True)   # line 6
_SOCKET = socket.socket()                                 # line 7


class Shared:
    # class bodies evaluate at import time too
    manager = multiprocessing.Manager()                   # line 12
