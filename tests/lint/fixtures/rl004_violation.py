"""RL004 fixture: lazy metric uses with no registration site."""


def record_hit(metrics):
    metrics.counter("fixture.hits").inc()                    # line 5
    metrics.histogram("fixture.latency").observe(0.001)      # line 6
