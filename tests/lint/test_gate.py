"""The repo gate: ``src/`` must lint clean, with an empty baseline.

This is the pytest face of the CI ``lint-deep`` job — the suite fails
the moment a change re-introduces any of the invariant classes the
rules encode, without waiting for CI.
"""

from pathlib import Path

from repro.lint.baseline import Baseline
from repro.lint.engine import run

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE_PATH = REPO_ROOT / ".repro-lint-baseline.json"


def test_src_lints_clean():
    result = run([REPO_ROOT / "src"], root=REPO_ROOT,
                 baseline=Baseline.load(BASELINE_PATH))
    failures = result.gate_failures()
    assert failures == [], "\n".join(f.render() for f in failures)


def test_shipped_baseline_is_empty():
    # the acceptance bar for this repo: genuine violations get fixed,
    # not grandfathered — a non-empty baseline needs a written-down
    # reason, at which point this assertion is the review prompt
    assert len(Baseline.load(BASELINE_PATH)) == 0
