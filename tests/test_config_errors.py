"""Tests for configuration helpers and the exception hierarchy."""

import pytest

from repro import config, errors


class TestConfig:
    def test_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert config.bench_scale() == 1.0

    def test_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert config.bench_scale() == 2.5

    def test_scale_invalid_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "banana")
        assert config.bench_scale() == 1.0
        monkeypatch.setenv("REPRO_SCALE", "-3")
        assert config.bench_scale() == 1.0

    def test_bench_points(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.001")
        assert config.bench_points(100) == 1  # floor of 1 point

    def test_paper_constants(self):
        assert config.PRECISION_PRESETS_METERS == (60.0, 15.0, 4.0)
        assert config.PAPER_NUM_NEIGHBORHOODS == 289
        assert config.PAPER_NUM_CENSUS_BLOCKS == 39_184
        assert config.MAX_LEVEL == 30
        assert config.DEFAULT_FANOUT == 256


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        errors.GeometryError, errors.InvalidPolygonError, errors.ParseError,
        errors.GridError, errors.InvalidCellError, errors.OutOfBoundsError,
        errors.CoveringError, errors.ACTError, errors.BuildError,
        errors.CapacityError, errors.PrecisionError, errors.JoinError,
        errors.DatasetError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_specific_parents(self):
        assert issubclass(errors.InvalidPolygonError, errors.GeometryError)
        assert issubclass(errors.BuildError, errors.ACTError)
        assert issubclass(errors.OutOfBoundsError, errors.GridError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.CapacityError("too big")
