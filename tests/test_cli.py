"""Tests for the repro-act command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info_defaults(self):
        args = build_parser().parse_args(["info"])
        assert args.dataset == "neighborhoods"
        assert args.precision == 15.0

    def test_query_requires_coords(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "--lng", "1.0"])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0


class TestCommands:
    def test_info_runs(self, capsys):
        code = main(["info", "--dataset", "neighborhoods", "--size", "12",
                     "--precision", "300"])
        assert code == 0
        out = capsys.readouterr().out
        assert "indexed cells" in out
        assert "ACT size" in out

    def test_query_runs(self, capsys):
        code = main(["query", "--dataset", "neighborhoods", "--size", "12",
                     "--precision", "300", "--lng", "-73.97",
                     "--lat", "40.75"])
        assert code == 0
        out = capsys.readouterr().out
        assert "approximate" in out and "exact" in out

    def test_join_runs(self, capsys):
        code = main(["join", "--dataset", "neighborhoods", "--size", "12",
                     "--precision", "300", "--points", "5000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "M points/s" in out

    def test_join_exact_mode(self, capsys):
        code = main(["join", "--dataset", "neighborhoods", "--size", "12",
                     "--precision", "300", "--points", "2000", "--exact"])
        assert code == 0
        assert "exact join" in capsys.readouterr().out

    def test_unknown_dataset_exits(self):
        with pytest.raises(SystemExit):
            main(["info", "--dataset", "mars"])

    def test_census_dataset(self, capsys):
        code = main(["info", "--dataset", "census", "--size", "50",
                     "--precision", "120"])
        assert code == 0

    def test_boroughs_query(self, capsys):
        code = main(["query", "--dataset", "boroughs",
                     "--precision", "300", "--lng", "-73.97",
                     "--lat", "40.75"])
        assert code == 0
