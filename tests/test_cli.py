"""Tests for the repro-act command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info_defaults(self):
        args = build_parser().parse_args(["info"])
        assert args.dataset == "neighborhoods"
        assert args.precision == 15.0

    def test_query_requires_coords(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "--lng", "1.0"])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_unknown_dataset_fails_at_parse_time(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["info", "--dataset", "mars"])
        assert exc.value.code == 2  # argparse usage error
        assert "invalid choice" in capsys.readouterr().err

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.dataset == "neighborhoods"
        assert args.port == 8080
        assert args.max_batch == 512
        assert args.max_wait_ms == 0.0
        assert args.inline_miss_threshold == 2
        assert args.cache_capacity == 65536
        assert args.budget_ms is None
        assert args.func.__name__ == "cmd_serve"

    def test_serve_accepts_index_file(self):
        args = build_parser().parse_args(
            ["serve", "--index-file", "idx.npz", "--port", "0"])
        assert args.index_file == "idx.npz"
        assert args.port == 0

    def test_serve_workers_flag(self):
        assert build_parser().parse_args(["serve"]).workers == 1
        args = build_parser().parse_args(["serve", "--workers", "4"])
        assert args.workers == 4


class TestCommands:
    def test_info_runs(self, capsys):
        code = main(["info", "--dataset", "neighborhoods", "--size", "12",
                     "--precision", "300"])
        assert code == 0
        out = capsys.readouterr().out
        assert "indexed cells" in out
        assert "ACT size" in out

    def test_query_runs(self, capsys):
        code = main(["query", "--dataset", "neighborhoods", "--size", "12",
                     "--precision", "300", "--lng", "-73.97",
                     "--lat", "40.75"])
        assert code == 0
        out = capsys.readouterr().out
        assert "approximate" in out and "exact" in out

    def test_join_runs(self, capsys):
        code = main(["join", "--dataset", "neighborhoods", "--size", "12",
                     "--precision", "300", "--points", "5000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "M points/s" in out

    def test_join_exact_mode(self, capsys):
        code = main(["join", "--dataset", "neighborhoods", "--size", "12",
                     "--precision", "300", "--points", "2000", "--exact"])
        assert code == 0
        assert "exact join" in capsys.readouterr().out

    def test_unknown_dataset_exits(self):
        with pytest.raises(SystemExit):
            main(["info", "--dataset", "mars"])

    def test_census_dataset(self, capsys):
        code = main(["info", "--dataset", "census", "--size", "50",
                     "--precision", "120"])
        assert code == 0

    def test_boroughs_query(self, capsys):
        code = main(["query", "--dataset", "boroughs",
                     "--precision", "300", "--lng", "-73.97",
                     "--lat", "40.75"])
        assert code == 0
