"""Mergeable-histogram properties: merging == concatenating samples."""

import math
import random

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BOUNDS,
    MergeableHistogram,
    log_bounds,
    merge_histogram_snapshots,
    quantile_from_buckets,
)


class TestLogBounds:
    def test_default_ladder_spans_10us_to_100s(self):
        assert DEFAULT_LATENCY_BOUNDS[0] == pytest.approx(1e-5)
        assert DEFAULT_LATENCY_BOUNDS[-1] == pytest.approx(100.0)
        # 7 decades x 5 per decade, inclusive of both endpoints
        assert len(DEFAULT_LATENCY_BOUNDS) == 36

    def test_strictly_increasing(self):
        bounds = log_bounds(1e-4, 10.0, per_decade=7)
        assert all(b > a for a, b in zip(bounds, bounds[1:]))

    def test_json_round_trip_compares_equal(self):
        import json

        bounds = log_bounds()
        assert tuple(json.loads(json.dumps(list(bounds)))) == bounds

    def test_invalid_ranges(self):
        with pytest.raises(ValueError):
            log_bounds(0.0, 1.0)
        with pytest.raises(ValueError):
            log_bounds(1.0, 1.0)
        with pytest.raises(ValueError):
            log_bounds(1e-5, 100.0, per_decade=0)


class TestMergeProperty:
    def _samples(self, seed, n):
        rng = random.Random(seed)
        out = []
        for _ in range(n):
            # span the whole ladder including the +Inf overflow
            out.append(10 ** rng.uniform(-6, 3))
        return out

    def test_merged_equals_concatenated(self):
        """The load-bearing property: bucket-wise merge of per-worker
        snapshots is *exactly* the histogram of all workers' samples
        concatenated — count, sum, max, and every bucket."""
        per_worker = [self._samples(seed, 500) for seed in (1, 2, 3)]
        workers = []
        for samples in per_worker:
            h = MergeableHistogram()
            for s in samples:
                h.observe(s)
            workers.append(h)
        reference = MergeableHistogram()
        for samples in per_worker:
            for s in samples:
                reference.observe(s)

        merged = merge_histogram_snapshots(
            [h.snapshot() for h in workers])
        want = reference.snapshot()
        assert merged["bucket_counts"] == want["bucket_counts"]
        assert merged["count"] == want["count"]
        assert merged["sum"] == pytest.approx(want["sum"])
        assert merged["max"] == pytest.approx(want["max"])
        for q in ("p50", "p90", "p99", "p999"):
            assert merged[q] == pytest.approx(want[q])

    def test_merge_is_associative_on_buckets(self):
        a, b, c = (MergeableHistogram() for _ in range(3))
        for h, seed in ((a, 10), (b, 11), (c, 12)):
            for s in self._samples(seed, 200):
                h.observe(s)
        left = merge_histogram_snapshots([
            merge_histogram_snapshots([a.snapshot(), b.snapshot()]),
            c.snapshot(),
        ])
        right = merge_histogram_snapshots([
            a.snapshot(),
            merge_histogram_snapshots([b.snapshot(), c.snapshot()]),
        ])
        assert left["bucket_counts"] == right["bucket_counts"]
        assert left["sum"] == pytest.approx(right["sum"])

    def test_mismatched_bounds_raise(self):
        a = MergeableHistogram()
        b = MergeableHistogram(bounds=log_bounds(1e-4, 10.0))
        a.observe(0.1)
        b.observe(0.1)
        with pytest.raises(ValueError):
            merge_histogram_snapshots([a.snapshot(), b.snapshot()])

    def test_bucketless_snapshots_are_skipped(self):
        # an old-format worker mid-rolling-upgrade publishes p50/p99
        # only; the merge must not be poisoned by it
        h = MergeableHistogram()
        h.observe(0.5)
        merged = merge_histogram_snapshots(
            [{"p50": 0.1, "p99": 0.2}, h.snapshot()])
        assert merged["count"] == 1

    def test_empty_merge_is_none(self):
        assert merge_histogram_snapshots([]) is None
        assert merge_histogram_snapshots([{"p99": 1.0}]) is None


class TestQuantileFromBuckets:
    def test_interpolates_within_bucket(self):
        bounds = (1.0, 2.0, 4.0)
        counts = [0, 100, 0, 0]  # all mass in (1, 2]
        q50 = quantile_from_buckets(0.5, bounds, counts, observed_max=2.0)
        assert 1.0 <= q50 <= 2.0

    def test_overflow_answers_with_observed_max(self):
        bounds = (1.0, 2.0)
        counts = [0, 0, 5]
        assert quantile_from_buckets(
            0.99, bounds, counts, observed_max=77.0) == 77.0

    def test_never_exceeds_observed_max(self):
        h = MergeableHistogram()
        h.observe(0.011)  # lands in a bucket reaching up to ~0.016
        assert h.percentile(0.99) <= 0.011
        assert not math.isinf(h.percentile(0.99))

    def test_empty_is_zero(self):
        assert quantile_from_buckets(0.5, (1.0,), [0, 0]) == 0.0
