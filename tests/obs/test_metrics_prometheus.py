"""Prometheus text-exposition rendering, parsing, and validation."""

import math

import pytest

from repro.obs import (
    MergeableHistogram,
    PrometheusRenderer,
    parse_exposition,
    validate_exposition,
)


class TestRenderer:
    def test_counter_gets_total_suffix_once(self):
        renderer = PrometheusRenderer(namespace="repro")
        renderer.counter("queries.total", 4)
        renderer.counter("cache_hits", 2)
        text = renderer.render()
        assert "repro_queries_total 4" in text
        assert "repro_queries_total_total" not in text
        assert "repro_cache_hits_total 2" in text

    def test_dotted_names_are_sanitized(self):
        renderer = PrometheusRenderer(namespace="repro")
        renderer.gauge("cache.size", 10)
        assert "repro_cache_size 10" in renderer.render()

    def test_labels_sorted_and_escaped(self):
        renderer = PrometheusRenderer(namespace="")
        renderer.gauge("g", 1.0, labels={"b": 'say "hi"\n', "a": "x"})
        line = [ln for ln in renderer.render().splitlines()
                if ln.startswith("g{")][0]
        assert line.startswith('g{a="x",b="say \\"hi\\"\\n"}')

    def test_histogram_buckets_are_cumulative(self):
        h = MergeableHistogram(bounds=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.05, 0.5, 5.0):
            h.observe(v)
        renderer = PrometheusRenderer(namespace="repro")
        renderer.histogram("latency_seconds", h.snapshot())
        families = parse_exposition(renderer.render())
        fam = families["repro_latency_seconds"]
        buckets = {
            labels["le"]: value
            for name, labels, value in fam["samples"]
            if name.endswith("_bucket")
        }
        assert buckets == {"0.01": 1, "0.1": 3, "1": 4, "+Inf": 5}
        values = {
            name: value for name, labels, value in fam["samples"]
            if not name.endswith("_bucket")
        }
        assert values["repro_latency_seconds_count"] == 5
        assert values["repro_latency_seconds_sum"] == \
            pytest.approx(5.605)

    def test_conflicting_family_kind_rejected(self):
        renderer = PrometheusRenderer()
        renderer.gauge("lat", 1.0)
        h = MergeableHistogram()
        h.observe(0.1)
        with pytest.raises(ValueError):
            renderer.histogram("lat", h.snapshot())

    def test_golden_render_is_valid_exposition(self):
        h = MergeableHistogram()
        h.observe(0.01)
        renderer = PrometheusRenderer(namespace="repro")
        renderer.counter("queries.total", 7,
                         labels={"worker": "0"},
                         help_text="Total queries")
        renderer.gauge("uptime_seconds", 12.5)
        renderer.histogram("queries.latency_seconds", h.snapshot(),
                           labels={"worker": "0"})
        assert validate_exposition(renderer.render()) == []


class TestParser:
    def test_round_trip(self):
        text = (
            "# HELP demo_total A demo counter\n"
            "# TYPE demo_total counter\n"
            'demo_total{worker="1"} 42\n'
        )
        families = parse_exposition(text)
        assert families["demo_total"]["type"] == "counter"
        assert families["demo_total"]["help"] == "A demo counter"
        (sample,) = families["demo_total"]["samples"]
        assert sample == ("demo_total", {"worker": "1"}, 42.0)

    def test_histogram_series_group_under_base_family(self):
        text = (
            "# TYPE lat histogram\n"
            'lat_bucket{le="0.1"} 1\n'
            'lat_bucket{le="+Inf"} 2\n'
            "lat_sum 0.7\n"
            "lat_count 2\n"
        )
        families = parse_exposition(text)
        assert set(families) == {"lat"}
        assert len(families["lat"]["samples"]) == 4

    def test_inf_values_parse(self):
        families = parse_exposition("# TYPE g gauge\ng +Inf\n")
        assert families["g"]["samples"][0][2] == math.inf

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_exposition("not a metric line at all!\n")
        with pytest.raises(ValueError):
            parse_exposition("# TYPE x frobnicator\nx 1\n")


class TestValidator:
    def test_untyped_samples_flagged(self):
        problems = validate_exposition("mystery 4\n")
        assert any("without a # TYPE" in p for p in problems)

    def test_negative_counter_flagged(self):
        problems = validate_exposition(
            "# TYPE bad_total counter\nbad_total -1\n")
        assert any("negative" in p for p in problems)

    def test_non_cumulative_buckets_flagged(self):
        text = (
            "# TYPE lat histogram\n"
            'lat_bucket{le="0.1"} 5\n'
            'lat_bucket{le="1"} 3\n'
            'lat_bucket{le="+Inf"} 5\n'
            "lat_sum 1.0\n"
            "lat_count 5\n"
        )
        problems = validate_exposition(text)
        assert any("cumulative" in p for p in problems)

    def test_inf_bucket_must_equal_count(self):
        text = (
            "# TYPE lat histogram\n"
            'lat_bucket{le="0.1"} 1\n'
            'lat_bucket{le="+Inf"} 2\n'
            "lat_sum 1.0\n"
            "lat_count 3\n"
        )
        problems = validate_exposition(text)
        assert any("_count" in p for p in problems)

    def test_missing_sum_flagged(self):
        text = (
            "# TYPE lat histogram\n"
            'lat_bucket{le="+Inf"} 1\n'
            "lat_count 1\n"
        )
        problems = validate_exposition(text)
        assert any("_sum" in p for p in problems)

    def test_empty_scrape_flagged(self):
        assert validate_exposition("") == \
            ["no metric families in exposition"]
