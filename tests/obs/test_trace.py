"""Request IDs, stage traces, the sampler, and the slow-query log."""

import os
import time

import pytest

from repro.obs import SlowQueryLog, Trace, Tracer, mint_request_id


class TestRequestIds:
    def test_unique_and_pid_prefixed(self):
        ids = {mint_request_id() for _ in range(1000)}
        assert len(ids) == 1000
        assert all(i.startswith(f"{os.getpid():x}-") for i in ids)


class TestTrace:
    def test_stages_tile_wall_clock(self):
        trace = Trace(mint_request_id())
        time.sleep(0.01)
        trace.stamp("admission")
        time.sleep(0.02)
        trace.stamp("descent")
        out = trace.to_dict()
        total = out["total_ms"]
        stage_sum = out["stage_sum_ms"]
        # stamps tile the request wall-clock by construction, so the
        # per-stage sum tracks end-to-end latency (within the tiny tail
        # spent after the last stamp)
        assert stage_sum <= total
        assert stage_sum == pytest.approx(total, rel=0.10, abs=0.5)
        assert [s["stage"] for s in out["stages"]] == \
            ["admission", "descent"]
        assert out["stages"][1]["ms"] > out["stages"][0]["ms"]

    def test_add_deposits_cross_thread_stage(self):
        trace = Trace("r-1", kind="query")
        trace.add("batch_wait", 0.005)
        trace.stamp("refine")
        names = [s["stage"] for s in trace.to_dict()["stages"]]
        assert names == ["batch_wait", "refine"]

    def test_mark_excludes_deposited_interval(self):
        trace = Trace("r-2")
        time.sleep(0.01)
        trace.mark()  # another thread accounted for this interval
        trace.stamp("serialize")
        (stage,) = trace.to_dict()["stages"]
        assert stage["ms"] < 5.0

    def test_budget_marks_in_dict(self):
        trace = Trace("r-3")
        trace.note_budget("admission", 0.2)
        out = trace.to_dict()
        assert out["budget_remaining_ms"] == [
            {"hop": "admission", "ms": pytest.approx(200.0)}]
        assert out["request_id"] == "r-3"
        assert out["kind"] == "query"


class TestTracer:
    def test_deterministic_interval(self):
        tracer = Tracer(sample_interval=10)
        traces = [tracer.sample() for _ in range(100)]
        assert sum(t is not None for t in traces) == 10
        # every 10th admission exactly
        assert all((t is not None) == ((i + 1) % 10 == 0)
                   for i, t in enumerate(traces))

    def test_zero_disables_sampling_but_not_force(self):
        tracer = Tracer(sample_interval=0)
        assert all(tracer.sample() is None for _ in range(50))
        forced = tracer.sample(request_id="want-trace", force=True)
        assert forced is not None
        assert forced.request_id == "want-trace"

    def test_force_does_not_consume_phase(self):
        tracer = Tracer(sample_interval=2)
        tracer.sample(force=True)
        assert tracer.sample() is None
        assert tracer.sample() is not None

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_interval=-1)


class TestSlowQueryLog:
    def test_threshold_filters(self):
        log = SlowQueryLog(threshold_s=0.1, capacity=8)
        assert not log.maybe_record(0.05, "query", request_id="fast")
        assert log.maybe_record(0.15, "query", request_id="slow")
        (entry,) = log.entries()
        assert entry["request_id"] == "slow"
        assert entry["total_ms"] == pytest.approx(150.0)
        assert entry["pid"] == os.getpid()

    def test_zero_threshold_disables(self):
        log = SlowQueryLog(threshold_s=0.0)
        assert not log.maybe_record(100.0, "query")
        assert log.entries() == []

    def test_ring_keeps_most_recent(self):
        log = SlowQueryLog(threshold_s=0.0001, capacity=3)
        for i in range(10):
            log.maybe_record(0.001 * (i + 1), "query", request_id=str(i))
        ids = [e["request_id"] for e in log.entries()]
        assert ids == ["7", "8", "9"]
        stats = log.stats()
        assert stats["recorded"] == 10
        assert stats["dropped"] == 7
        assert stats["size"] == 3

    def test_sampled_entry_carries_stage_breakdown(self):
        log = SlowQueryLog(threshold_s=0.0001)
        trace = Trace("slow-1")
        trace.stamp("descent")
        log.maybe_record(0.5, "query", trace=trace,
                         extra={"shed": True})
        (entry,) = log.entries()
        assert entry["request_id"] == "slow-1"
        assert entry["shed"] is True
        assert [s["stage"] for s in entry["stages"]] == ["descent"]

    def test_clear(self):
        log = SlowQueryLog(threshold_s=0.0001)
        log.maybe_record(1.0, "query")
        assert log.clear() == 1
        assert log.entries() == []

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)
