"""Tests that the vectorized batch engine agrees with scalar lookups."""

import numpy as np
import pytest

from repro.act import entry as codec
from repro.act.vectorized import VectorizedACT


class TestLookupEntries:
    def test_matches_scalar_trie(self, nyc_index, taxi_batch):
        lngs, lats = taxi_batch
        cells = nyc_index.grid.leaf_cells_batch(lngs, lats)
        vect = nyc_index.vectorized
        entries = vect.lookup_entries(cells)
        for k in range(0, len(lngs), 5):
            cell = int(cells[k])
            want = (nyc_index.trie.lookup_entry(cell) if cell else 0)
            assert int(entries[k]) == want, k

    def test_invalid_cells_miss(self, nyc_index):
        entries = nyc_index.vectorized.lookup_entries(
            np.zeros(5, dtype=np.uint64)
        )
        assert (entries == 0).all()

    def test_empty_batch(self, nyc_index):
        entries = nyc_index.vectorized.lookup_entries(
            np.empty(0, dtype=np.uint64)
        )
        assert entries.shape == (0,)


class TestCountHits:
    def test_counts_match_decoded_entries(self, nyc_index, taxi_batch):
        lngs, lats = taxi_batch
        entries = nyc_index.lookup_batch(lngs, lats)
        counts = nyc_index.vectorized.count_hits(
            entries, nyc_index.num_polygons, include_candidates=True
        )
        # brute-force decode per entry
        want = np.zeros(nyc_index.num_polygons, dtype=np.int64)
        for e in entries.tolist():
            result = nyc_index._decode(int(e))
            for pid in result.all_ids:
                want[pid] += 1
        assert counts.tolist() == want.tolist()

    def test_true_only_counts(self, nyc_index, taxi_batch):
        lngs, lats = taxi_batch
        entries = nyc_index.lookup_batch(lngs, lats)
        true_counts = nyc_index.vectorized.count_hits(
            entries, nyc_index.num_polygons, include_candidates=False
        )
        all_counts = nyc_index.vectorized.count_hits(
            entries, nyc_index.num_polygons, include_candidates=True
        )
        assert (true_counts <= all_counts).all()
        want = np.zeros(nyc_index.num_polygons, dtype=np.int64)
        for e in entries.tolist():
            for pid in nyc_index._decode(int(e)).true_hits:
                want[pid] += 1
        assert true_counts.tolist() == want.tolist()


class TestPairs:
    def test_pairs_match_decoded(self, overlap_index, taxi_batch):
        lngs, lats = taxi_batch
        entries = overlap_index.lookup_batch(lngs, lats)
        vect = overlap_index.vectorized
        for want_true in (True, False):
            pts, pids = vect.pairs(entries, want_true=want_true)
            got = sorted(zip(pts.tolist(), pids.tolist()))
            want = []
            for k, e in enumerate(entries.tolist()):
                result = overlap_index._decode(int(e))
                ids = result.true_hits if want_true else result.candidates
                want.extend((k, pid) for pid in ids)
            assert got == sorted(want)

    def test_candidate_pairs_alias(self, nyc_index, taxi_batch):
        lngs, lats = taxi_batch
        entries = nyc_index.lookup_batch(lngs[:500], lats[:500])
        a = nyc_index.vectorized.candidate_pairs(entries)
        b = nyc_index.vectorized.pairs(entries, want_true=False)
        assert a[0].tolist() == b[0].tolist()
        assert a[1].tolist() == b[1].tolist()

    def test_no_pairs_on_empty(self, nyc_index):
        pts, pids = nyc_index.vectorized.pairs(
            np.zeros(4, dtype=np.uint64), want_true=False
        )
        assert pts.shape == (0,) and pids.shape == (0,)


class TestOffsetEntries:
    def test_offset_decoding_through_table(self, overlap_index, taxi_batch):
        """Overlapping zones produce cells with 3+ refs — offset entries."""
        lngs, lats = taxi_batch
        entries = overlap_index.lookup_batch(lngs, lats)
        tags = entries & np.uint64(3)
        has_offsets = bool((tags == np.uint64(codec.TAG_OFFSET)).any())
        # the overlap fixture is designed to produce shared cells
        assert has_offsets, "expected >=3-ref cells in overlapping zones"
        counts = overlap_index.vectorized.count_hits(
            entries, overlap_index.num_polygons, include_candidates=True
        )
        assert counts.sum() > 0

    def test_offset_cache_reused(self, overlap_index, taxi_batch):
        lngs, lats = taxi_batch
        vect = overlap_index.vectorized
        entries = vect.lookup_entries(
            overlap_index.grid.leaf_cells_batch(lngs, lats)
        )
        vect.count_hits(entries, overlap_index.num_polygons)
        cache_size = len(vect._offset_cache)
        vect.count_hits(entries, overlap_index.num_polygons)
        assert len(vect._offset_cache) == cache_size
