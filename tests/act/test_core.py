"""Tests of the columnar core: scalar and batch engines must agree."""

import numpy as np

from repro.act import entry as codec


class TestScalarLookup:
    def test_scalar_matches_batch(self, nyc_index, taxi_batch):
        lngs, lats = taxi_batch
        cells = nyc_index.grid.leaf_cells_batch(lngs, lats)
        entries = nyc_index.core.lookup_entries(cells)
        for k in range(0, len(lngs), 5):
            cell = int(cells[k])
            want = nyc_index.core.lookup_entry(cell) if cell else 0
            assert int(entries[k]) == want, k

    def test_node_accesses_bounded(self, nyc_index, taxi_batch):
        lngs, lats = taxi_batch
        core = nyc_index.core
        for k in range(0, 200, 7):
            leaf = nyc_index.grid.leaf_cell(lngs[k], lats[k])
            if leaf is None:
                continue
            assert 0 <= core.node_accesses(leaf) <= core.max_steps


class TestLookupEntries:
    def test_invalid_cells_miss(self, nyc_index):
        entries = nyc_index.core.lookup_entries(
            np.zeros(5, dtype=np.uint64)
        )
        assert (entries == 0).all()

    def test_empty_batch(self, nyc_index):
        entries = nyc_index.core.lookup_entries(
            np.empty(0, dtype=np.uint64)
        )
        assert entries.shape == (0,)


class TestCountHits:
    def test_counts_match_decoded_entries(self, nyc_index, taxi_batch):
        lngs, lats = taxi_batch
        entries = nyc_index.lookup_batch(lngs, lats)
        counts = nyc_index.core.count_hits(
            entries, nyc_index.num_polygons, include_candidates=True
        )
        # brute-force decode per entry
        want = np.zeros(nyc_index.num_polygons, dtype=np.int64)
        for e in entries.tolist():
            result = nyc_index._decode(int(e))
            for pid in result.all_ids:
                want[pid] += 1
        assert counts.tolist() == want.tolist()

    def test_true_only_counts(self, nyc_index, taxi_batch):
        lngs, lats = taxi_batch
        entries = nyc_index.lookup_batch(lngs, lats)
        true_counts = nyc_index.core.count_hits(
            entries, nyc_index.num_polygons, include_candidates=False
        )
        all_counts = nyc_index.core.count_hits(
            entries, nyc_index.num_polygons, include_candidates=True
        )
        assert (true_counts <= all_counts).all()
        want = np.zeros(nyc_index.num_polygons, dtype=np.int64)
        for e in entries.tolist():
            for pid in nyc_index._decode(int(e)).true_hits:
                want[pid] += 1
        assert true_counts.tolist() == want.tolist()

    def test_hit_counts_single_pass(self, overlap_index, taxi_batch):
        """hit_counts returns both classifications from one decode."""
        lngs, lats = taxi_batch
        entries = overlap_index.lookup_batch(lngs, lats)
        true_counts, cand_counts = overlap_index.core.hit_counts(
            entries, overlap_index.num_polygons
        )
        assert true_counts.tolist() == overlap_index.core.count_hits(
            entries, overlap_index.num_polygons, include_candidates=False
        ).tolist()
        assert (true_counts + cand_counts).tolist() == \
            overlap_index.core.count_hits(
                entries, overlap_index.num_polygons,
                include_candidates=True,
            ).tolist()


class TestPairs:
    def test_pairs_match_decoded(self, overlap_index, taxi_batch):
        lngs, lats = taxi_batch
        entries = overlap_index.lookup_batch(lngs, lats)
        core = overlap_index.core
        for want_true in (True, False):
            pts, pids = core.pairs(entries, want_true=want_true)
            got = sorted(zip(pts.tolist(), pids.tolist()))
            want = []
            for k, e in enumerate(entries.tolist()):
                result = overlap_index._decode(int(e))
                ids = result.true_hits if want_true else result.candidates
                want.extend((k, pid) for pid in ids)
            assert got == sorted(want)

    def test_candidate_pairs_alias(self, nyc_index, taxi_batch):
        lngs, lats = taxi_batch
        entries = nyc_index.lookup_batch(lngs[:500], lats[:500])
        a = nyc_index.core.candidate_pairs(entries)
        b = nyc_index.core.pairs(entries, want_true=False)
        assert a[0].tolist() == b[0].tolist()
        assert a[1].tolist() == b[1].tolist()

    def test_no_pairs_on_empty(self, nyc_index):
        pts, pids = nyc_index.core.pairs(
            np.zeros(4, dtype=np.uint64), want_true=False
        )
        assert pts.shape == (0,) and pids.shape == (0,)


class TestOffsetEntries:
    def test_offset_decoding_through_table(self, overlap_index, taxi_batch):
        """Overlapping zones produce cells with 3+ refs — offset entries."""
        lngs, lats = taxi_batch
        entries = overlap_index.lookup_batch(lngs, lats)
        tags = entries & np.uint64(3)
        has_offsets = bool((tags == np.uint64(codec.TAG_OFFSET)).any())
        # the overlap fixture is designed to produce shared cells
        assert has_offsets, "expected >=3-ref cells in overlapping zones"
        counts = overlap_index.core.count_hits(
            entries, overlap_index.num_polygons, include_candidates=True
        )
        assert counts.sum() > 0

    def test_csr_index_covers_lookup_table(self, overlap_index):
        """The CSR decode must reproduce every interned reference set."""
        core = overlap_index.core
        table = core.lookup_table
        for row, offset in enumerate(core._set_starts.tolist()):
            true_ids, cand_ids = table.get(offset)
            got_true = core._true_ids[
                core._true_indptr[row]:core._true_indptr[row + 1]
            ]
            got_cand = core._cand_ids[
                core._cand_indptr[row]:core._cand_indptr[row + 1]
            ]
            assert tuple(got_true.tolist()) == true_ids
            assert tuple(got_cand.tolist()) == cand_ids

    def test_offset_cache_reused(self, overlap_index, taxi_batch):
        lngs, lats = taxi_batch
        core = overlap_index.core
        entries = core.lookup_entries(
            overlap_index.grid.leaf_cells_batch(lngs, lats)
        )
        for e in entries.tolist():
            core.decode_entry(int(e))
        cache_size = len(core._offset_cache)
        for e in entries.tolist():
            core.decode_entry(int(e))
        assert len(core._offset_cache) == cache_size


class TestIterCells:
    def test_iter_cells_roundtrips_lookups(self, nyc_index):
        """Every yielded (cell, entry) must be what a lookup finds."""
        from repro.grid import cellid

        for (cell, entry), _ in zip(nyc_index.core.iter_cells(), range(300)):
            leaf = cellid.range_min(cell)
            assert nyc_index.core.lookup_entry(leaf) == entry
