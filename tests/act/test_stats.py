"""Tests for IndexStats accounting."""

import pytest

from repro.act.stats import IndexStats


class TestIndexStats:
    def test_derived_totals(self):
        stats = IndexStats(raw_boundary_cells=10, raw_interior_cells=5,
                           trie_bytes=1000, lookup_table_bytes=24,
                           build_coverings_seconds=1.0,
                           build_super_seconds=0.5,
                           build_trie_seconds=0.25)
        assert stats.raw_cells == 15
        assert stats.total_bytes == 1024
        assert stats.build_seconds == pytest.approx(1.75)

    def test_table_row_units(self):
        stats = IndexStats(precision_meters=15.0, indexed_cells=2_000_000,
                           trie_bytes=50_000_000,
                           lookup_table_bytes=1_000_000)
        row = stats.as_table_row()
        assert row["indexed cells [M]"] == pytest.approx(2.0)
        assert row["ACT [MB]"] == pytest.approx(50.0)
        assert row["lookup table [MB]"] == pytest.approx(1.0)

    def test_str_contains_key_numbers(self):
        stats = IndexStats(num_polygons=7, precision_meters=4.0,
                           indexed_cells=1234)
        text = str(stats)
        assert "7" in text and "4" in text and "1,234" in text

    def test_extra_dict_isolated(self):
        a = IndexStats()
        b = IndexStats()
        a.extra["x"] = 1.0
        assert b.extra == {}
