"""Unit tests for the deduplicated lookup table."""

import numpy as np
import pytest

from repro.act import entry as codec
from repro.act.lookup_table import LookupTable
from repro.errors import CapacityError


class TestIntern:
    def test_encoding_layout(self):
        table = LookupTable()
        offset = table.intern([3, 1], [7])
        # [n_true, true..., n_cand, cand...] with sorted ids
        assert table.as_array().tolist() == [2, 1, 3, 1, 7]
        assert offset == 0

    def test_get_roundtrip(self):
        table = LookupTable()
        offset = table.intern([5, 2, 9], [1, 4])
        true_ids, cand_ids = table.get(offset)
        assert true_ids == (2, 5, 9)
        assert cand_ids == (1, 4)

    def test_deduplication(self):
        table = LookupTable()
        a = table.intern([1, 2], [3])
        b = table.intern([2, 1], [3])  # same set, different order
        assert a == b
        assert table.num_unique_sets == 1

    def test_distinct_sets_get_new_offsets(self):
        table = LookupTable()
        a = table.intern([1], [2, 3])
        b = table.intern([1, 2], [3])  # same ids, different split
        assert a != b
        assert table.num_unique_sets == 2

    def test_empty_sides_allowed(self):
        table = LookupTable()
        offset = table.intern([], [4, 5, 6])
        assert table.get(offset) == ((), (4, 5, 6))

    def test_size_bytes(self):
        table = LookupTable()
        table.intern([1], [2, 3])
        assert table.size_bytes == 4 * len(table)
        assert len(table) == 5

    def test_get_out_of_range(self):
        table = LookupTable()
        with pytest.raises(CapacityError):
            table.get(0)
        table.intern([1], [])
        with pytest.raises(CapacityError):
            table.get(99)


class TestInternRefs:
    def test_splits_by_flag(self):
        table = LookupTable()
        refs = [codec.make_ref(4, True), codec.make_ref(2, False),
                codec.make_ref(7, True)]
        offset = table.intern_refs(refs)
        true_ids, cand_ids = table.get(offset)
        assert true_ids == (4, 7)
        assert cand_ids == (2,)

    def test_matches_manual_intern(self):
        table = LookupTable()
        refs = [codec.make_ref(4, True), codec.make_ref(2, False)]
        a = table.intern_refs(refs)
        b = table.intern([4], [2])
        assert a == b


class TestArray:
    def test_uint32_dtype(self):
        table = LookupTable()
        table.intern([1, 2, 3], [4])
        arr = table.as_array()
        assert arr.dtype == np.uint32
        assert arr.shape == (6,)
