"""Tests for super covering merge and conflict resolution."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.act.supercovering import SuperCovering
from repro.errors import BuildError
from repro.grid import cellid
from repro.grid.coverer import Covering


def make_cell(face, i, j, level):
    return cellid.parent(cellid.from_face_ij(face, i, j), level)


def merge(pairs, g=4, max_level=28):
    """pairs: list of (polygon_id, boundary_cells, interior_cells)."""
    coverings = [(pid, Covering(sorted(b), sorted(i))) for pid, b, i in pairs]
    return SuperCovering.merge(coverings, g, max_level)


def refs_of(sc, cell):
    return sorted(set(sc.cells[cell]))


class TestDedup:
    def test_identical_cells_merge_refs(self):
        cell = make_cell(0, 100, 100, 12)
        sc = merge([(0, [cell], []), (1, [cell], [])])
        assert sc.num_cells == 1
        assert refs_of(sc, cell) == [0 << 1, 1 << 1]

    def test_true_and_candidate_flags_preserved(self):
        cell = make_cell(0, 100, 100, 12)
        sc = merge([(0, [cell], []), (1, [], [cell])])
        assert refs_of(sc, cell) == [0 << 1, (1 << 1) | 1]

    def test_disjoint_cells_pass_through(self):
        a = make_cell(0, 0, 0, 12)
        b = make_cell(3, 500, 500, 12)
        sc = merge([(0, [a], []), (1, [b], [])])
        assert sc.num_cells == 2
        assert sc.num_conflict_cells == 0


class TestConflicts:
    def test_ancestor_descendant_pushdown(self):
        parent = make_cell(0, 64, 64, 10)
        child = cellid.children(parent)[2]
        sc = merge([(0, [], [parent]), (1, [child], [])])
        sc.validate_prefix_free()
        # the child cell must carry both refs
        assert (0 << 1) | 1 in sc.cells[child]
        assert (1 << 1) in sc.cells[child]
        # the other three siblings carry only the parent's ref
        for sibling in cellid.children(parent):
            if sibling == child:
                continue
            assert refs_of(sc, sibling) == [(0 << 1) | 1]
        assert sc.num_conflict_cells > 0

    def test_deep_conflict_tiles_remainder(self):
        top = make_cell(0, 0, 0, 8)
        deep = make_cell(0, 0, 0, 12)  # shares the min corner, 4 levels down
        assert cellid.contains(top, deep)
        sc = merge([(0, [], [top]), (1, [deep], [])])
        sc.validate_prefix_free()
        # every emitted cell is within the top cell and refs are complete:
        total_leaves = 0
        for cell, refs in sc.cells.items():
            assert cellid.contains(top, cell)
            assert (0 << 1) | 1 in refs
            total_leaves += 1 << (2 * (cellid.MAX_LEVEL - cellid.level(cell)))
        assert total_leaves == (
            1 << (2 * (cellid.MAX_LEVEL - cellid.level(top)))
        )

    def test_three_level_chain(self):
        a = make_cell(0, 0, 0, 6)
        b = make_cell(0, 0, 0, 9)
        c = make_cell(0, 0, 0, 12)
        sc = merge([(0, [], [a]), (1, [], [b]), (2, [c], [])])
        sc.validate_prefix_free()
        assert sorted(set(sc.cells[c])) == [0 << 1 | 1, 1 << 1 | 1, 2 << 1]

    def test_validate_detects_overlap(self):
        parent = make_cell(0, 64, 64, 10)
        child = cellid.children(parent)[0]
        sc = SuperCovering({parent: [0], child: [2]}, 4, 28, 0)
        with pytest.raises(BuildError):
            sc.validate_prefix_free()

    def test_too_deep_cell_rejected(self):
        deep = make_cell(0, 1, 1, 30)
        with pytest.raises(BuildError):
            merge([(0, [deep], [])])


class TestMassConservation:
    """Push-down must preserve exactly which leaves see which references."""

    @settings(max_examples=50, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 3),          # polygon id
                  st.integers(0, 255),        # i seed (small area -> overlap)
                  st.integers(0, 255),        # j seed
                  st.integers(4, 10),         # level
                  st.booleans()),             # interior flag
        min_size=1, max_size=12,
    ))
    def test_leaf_reference_sets_preserved(self, specs):
        per_polygon = {}
        cells_in = []
        for pid, i, j, level, interior in specs:
            cell = make_cell(0, i << 12, j << 12, level)
            cells_in.append((pid, cell, interior))
            per_polygon.setdefault(pid, ([], []))[
                1 if interior else 0].append(cell)
        # skip inputs where the same polygon overlaps itself (coverer
        # never produces that; merge may legally drop duplicated claims)
        for group in per_polygon.values():
            own = group[0] + group[1]
            own_sorted = sorted(own, key=cellid.range_min)
            for a, b in zip(own_sorted, own_sorted[1:]):
                if cellid.range_max(a) >= cellid.range_min(b):
                    return

        pairs = [(pid, b, i) for pid, (b, i) in per_polygon.items()]
        sc = merge(pairs)
        sc.validate_prefix_free()

        # probe leaves: corners of every input cell
        probes = set()
        for _, cell, _ in cells_in:
            probes.add(cellid.range_min(cell))
            probes.add(cellid.range_max(cell))
            probes.add(((cellid.range_min(cell)
                         + cellid.range_max(cell)) // 2) | 1)
        out_cells = sorted(sc.cells, key=cellid.range_min)
        for leaf in probes:
            want = set()
            for pid, cell, interior in cells_in:
                if cellid.contains(cell, leaf):
                    want.add((pid << 1) | (1 if interior else 0))
            got = set()
            for cell in out_cells:
                if cellid.contains(cell, leaf):
                    got.update(sc.cells[cell])
            assert got == want, f"leaf {leaf:#x}"
