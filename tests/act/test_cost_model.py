"""Validation of the paper's lookup cost model.

Section II: ``c_avg = ceil(k_avg / log2(fanout))`` node accesses, bounded
by ``ceil(k_max / log2(fanout))`` — with fanout 256 and 60 key bits, at
most ``ceil(60/8) = 8`` accesses (the face dispatch counts as the first
in the paper's accounting; our count excludes it, giving 7).
"""

import numpy as np
import pytest

from repro import ACTIndex
from repro.act.trie import KEY_BITS, SUPPORTED_FANOUTS


class TestAccessBounds:
    @pytest.mark.parametrize("fanout", SUPPORTED_FANOUTS)
    def test_max_accesses_formula(self, nyc_polygons, taxi_batch, fanout):
        index = ACTIndex.build(nyc_polygons[:6], precision_meters=250.0,
                               fanout=fanout)
        bits = index.core.bits_per_step
        bound = KEY_BITS // bits
        lngs, lats = taxi_batch
        worst = 0
        for k in range(0, 1000, 3):
            leaf = index.grid.leaf_cell(lngs[k], lats[k])
            if leaf is None:
                continue
            worst = max(worst, index.core.node_accesses(leaf))
        assert 0 < worst <= bound

    def test_bigger_fanout_fewer_accesses(self, nyc_polygons, taxi_batch):
        lngs, lats = taxi_batch
        avgs = {}
        for fanout in (4, 256):
            index = ACTIndex.build(nyc_polygons[:6],
                                   precision_meters=250.0, fanout=fanout)
            accesses = []
            for k in range(0, 1000, 3):
                leaf = index.grid.leaf_cell(lngs[k], lats[k])
                if leaf is not None:
                    accesses.append(index.core.node_accesses(leaf))
            avgs[fanout] = float(np.mean(accesses))
        # log2(256)/log2(4) = 4x fewer accesses at equal key depth
        assert avgs[256] < avgs[4] / 2

    def test_interior_hits_resolve_shallow(self, nyc_polygons):
        """The paper's boroughs observation: points deep inside polygons
        hit coarse interior cells indexed in upper trie levels."""
        index = ACTIndex.build(nyc_polygons[:6], precision_meters=60.0)
        deep_inside = []
        near_border = []
        for polygon in nyc_polygons[:6]:
            cx, cy = polygon.centroid
            if polygon.contains(cx, cy):
                leaf = index.grid.leaf_cell(cx, cy)
                deep_inside.append(index.core.node_accesses(leaf))
            vx, vy = polygon.shell.vertices[0]
            leaf = index.grid.leaf_cell(vx, vy)
            if leaf is not None:
                near_border.append(index.core.node_accesses(leaf))
        assert deep_inside and near_border
        assert np.mean(deep_inside) <= np.mean(near_border)

    def test_memory_fanout_tradeoff(self, nyc_polygons):
        """Fanout 256 buys shallow lookups with more bytes (paper: 'a
        fanout of 256 results in sparsely occupied trie nodes and thus in
        a high space consumption')."""
        small = ACTIndex.build(nyc_polygons[:6], precision_meters=250.0,
                               fanout=4)
        large = ACTIndex.build(nyc_polygons[:6], precision_meters=250.0,
                               fanout=256)
        assert large.core.size_bytes > small.core.size_bytes
        assert large.core.max_steps < small.core.max_steps
