"""End-to-end tests of ACTIndex — the paper's headline guarantees.

The three invariants (DESIGN.md Section 4):

1. no false negatives — a point inside polygon P is always reported;
2. precision guarantee — an approximate hit that is NOT inside P lies
   within the precision bound of P;
3. true hits are exact — a true-hit report implies containment.
"""

import numpy as np
import pytest

from repro import ACTIndex
from repro.baselines import ScanJoin
from repro.errors import BuildError
from repro.geometry import point_polygon_distance_meters, regular_polygon
from repro.grid.planar import PlanarGrid
from repro.grid.s2like import S2LikeGrid


class TestBuildBasics:
    def test_empty_polygons_raises(self):
        with pytest.raises(BuildError):
            ACTIndex.build([], precision_meters=60.0)

    def test_repr_and_stats(self, nyc_index, nyc_polygons):
        assert "ACTIndex" in repr(nyc_index)
        stats = nyc_index.stats
        assert stats.num_polygons == len(nyc_polygons)
        assert stats.indexed_cells == nyc_index.core.num_entries
        assert stats.trie_bytes == nyc_index.core.size_bytes
        assert stats.build_seconds > 0

    def test_guarantee_not_looser_than_requested(self, nyc_index):
        assert nyc_index.guaranteed_precision_meters <= \
            nyc_index.precision_meters

    def test_memory_report_consistent(self, nyc_index):
        report = nyc_index.memory_report()
        assert report["total_bytes"] == (
            report["trie_bytes"] + report["lookup_table_bytes"]
        )

    def test_grid_defaults_to_planar_fit(self, nyc_polygons):
        index = ACTIndex.build(nyc_polygons[:3], precision_meters=200.0)
        assert isinstance(index.grid, PlanarGrid)
        for polygon in nyc_polygons[:3]:
            assert index.grid.bounds.contains_rect(polygon.bbox)


class TestCoreGuarantees:
    def _check_guarantees(self, index, polygons, lngs, lats):
        bound = index.guaranteed_precision_meters
        scan = ScanJoin(polygons)
        checked_fp = 0
        for x, y in zip(lngs.tolist(), lats.tolist()):
            result = index.query(x, y)
            truth = set(scan.query(x, y))
            reported = set(result.all_ids)
            # 1. no false negatives
            assert truth <= reported, (x, y, truth, reported)
            # 3. true hits are exact
            for pid in result.true_hits:
                assert pid in truth, (x, y, pid)
            # 2. precision bound on false positives
            for pid in reported - truth:
                dist = point_polygon_distance_meters(polygons[pid], x, y)
                assert dist <= bound * 1.001, (x, y, pid, dist, bound)
                checked_fp += 1
        return checked_fp

    def test_guarantees_on_partition(self, nyc_index, nyc_polygons,
                                     taxi_batch):
        lngs, lats = taxi_batch
        self._check_guarantees(nyc_index, nyc_polygons,
                               lngs[:800], lats[:800])

    def test_guarantees_on_overlapping_zones(self, overlap_index,
                                             overlap_polygons, taxi_batch):
        lngs, lats = taxi_batch
        self._check_guarantees(overlap_index, overlap_polygons,
                               lngs[:800], lats[:800])

    def test_boundary_points_see_false_positives_within_bound(
            self, nyc_polygons):
        """Sample points near polygon borders (the hard case) and verify
        the distance bound is what saves them."""
        index = ACTIndex.build(nyc_polygons[:6], precision_meters=250.0)
        rng = np.random.default_rng(5)
        polygon = nyc_polygons[0]
        verts = polygon.shell.vertices
        lngs = []
        lats = []
        for _ in range(300):
            k = int(rng.integers(0, len(verts)))
            vx, vy = verts[k]
            lngs.append(vx + float(rng.normal(0, 1e-4)))
            lats.append(vy + float(rng.normal(0, 1e-4)))
        fp = self._check_guarantees(
            index, nyc_polygons[:6], np.asarray(lngs), np.asarray(lats)
        )
        assert fp > 0, "boundary sampling should produce false positives"


class TestQueries:
    def test_query_exact_matches_scan(self, nyc_index, nyc_polygons,
                                      taxi_batch):
        lngs, lats = taxi_batch
        scan = ScanJoin(nyc_polygons)
        for k in range(0, 600, 3):
            got = sorted(nyc_index.query_exact(lngs[k], lats[k]))
            assert got == sorted(scan.query(lngs[k], lats[k]))

    def test_query_outside_domain(self, nyc_index):
        result = nyc_index.query(50.0, 50.0)
        assert not result.is_hit
        assert nyc_index.query_exact(50.0, 50.0) == ()

    def test_query_result_fields(self, nyc_index, nyc_polygons):
        centroid = nyc_polygons[3].centroid
        result = nyc_index.query(*centroid)
        assert 3 in result.all_ids
        assert result.is_hit

    def test_count_points_exact_matches_scan(self, nyc_index, nyc_polygons,
                                             taxi_batch):
        lngs, lats = taxi_batch
        exact = nyc_index.count_points(lngs, lats, exact=True)
        scan = ScanJoin(nyc_polygons).count_points(lngs, lats)
        assert exact.tolist() == scan.tolist()

    def test_count_points_approx_superset(self, nyc_index, taxi_batch):
        lngs, lats = taxi_batch
        approx = nyc_index.count_points(lngs, lats)
        exact = nyc_index.count_points(lngs, lats, exact=True)
        assert (approx >= exact).all()

    def test_query_batch_matches_scalar(self, nyc_index, taxi_batch):
        lngs, lats = taxi_batch
        results = nyc_index.query_batch(lngs[:200], lats[:200])
        for k in range(200):
            scalar = nyc_index.query(lngs[k], lats[k])
            assert sorted(results[k].all_ids) == sorted(scalar.all_ids)
            assert sorted(results[k].true_hits) == sorted(scalar.true_hits)


class TestPrecisionSweep:
    def test_tighter_precision_fewer_false_positives(self, nyc_polygons,
                                                     taxi_batch):
        lngs, lats = taxi_batch
        polys = nyc_polygons[:8]
        fps = []
        for precision in (500.0, 120.0, 30.0):
            index = ACTIndex.build(polys, precision_meters=precision)
            approx = index.count_points(lngs, lats)
            exact = index.count_points(lngs, lats, exact=True)
            fps.append(int((approx - exact).sum()))
        assert fps[0] >= fps[1] >= fps[2]
        assert fps[2] < fps[0]  # strictly better across the sweep

    def test_cells_grow_with_precision(self, nyc_polygons):
        polys = nyc_polygons[:4]
        stats = [
            ACTIndex.build(polys, precision_meters=p).stats
            for p in (500.0, 120.0, 30.0)
        ]
        # pre-denormalization covering cells grow strictly with precision
        raw = [s.raw_cells for s in stats]
        assert raw[0] < raw[1] < raw[2]
        # post-denormalization slot counts are only monotone across larger
        # spans (granularity alignment makes neighbors non-monotone)
        assert stats[0].indexed_cells < stats[2].indexed_cells


class TestGridAndFanoutVariants:
    @pytest.mark.parametrize("fanout", [4, 16, 64, 256])
    def test_fanouts_agree(self, nyc_polygons, taxi_batch, fanout):
        lngs, lats = taxi_batch
        polys = nyc_polygons[:5]
        index = ACTIndex.build(polys, precision_meters=250.0, fanout=fanout)
        exact = index.count_points(lngs[:1500], lats[:1500], exact=True)
        scan = ScanJoin(polys).count_points(lngs[:1500], lats[:1500])
        assert exact.tolist() == scan.tolist()

    def test_s2like_grid_backend(self, taxi_batch):
        lngs, lats = taxi_batch
        polys = [regular_polygon(-73.95, 40.7, 0.05, 9),
                 regular_polygon(-74.1, 40.6, 0.04, 7)]
        index = ACTIndex.build(polys, precision_meters=120.0,
                               grid=S2LikeGrid())
        exact = index.count_points(lngs, lats, exact=True)
        scan = ScanJoin(polys).count_points(lngs, lats)
        assert exact.tolist() == scan.tolist()
        approx = index.count_points(lngs, lats)
        assert (approx >= exact).all()

    def test_no_interior_ablation_still_exact(self, nyc_polygons,
                                              taxi_batch):
        lngs, lats = taxi_batch
        polys = nyc_polygons[:5]
        index = ACTIndex.build(polys, precision_meters=250.0,
                               use_interior=False)
        # without interior cells nothing is a true hit...
        assert index.count_points(lngs, lats, exact=False).sum() >= 0
        for k in range(0, 400, 7):
            result = index.query(lngs[k], lats[k])
            assert result.true_hits == ()
        # ...but exact joins still work (everything refined)
        exact = index.count_points(lngs, lats, exact=True)
        scan = ScanJoin(polys).count_points(lngs, lats)
        assert exact.tolist() == scan.tolist()

    def test_budgeted_build_exact_queries(self, nyc_polygons, taxi_batch):
        lngs, lats = taxi_batch
        polys = nyc_polygons[:5]
        index = ACTIndex.build(polys, precision_meters=60.0,
                               max_cells_per_polygon=64)
        exact = index.count_points(lngs, lats, exact=True)
        scan = ScanJoin(polys).count_points(lngs, lats)
        assert exact.tolist() == scan.tolist()
        # the budget keeps the covering small
        assert index.stats.raw_cells <= 64 * len(polys)
        unbudgeted = ACTIndex.build(polys, precision_meters=60.0)
        assert index.stats.indexed_cells < unbudgeted.stats.indexed_cells
