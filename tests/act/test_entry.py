"""Unit tests for the tagged 8-byte entry codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.act import entry as codec
from repro.errors import CapacityError

polygon_ids = st.integers(0, codec.MAX_POLYGON_ID)


class TestRefs:
    @given(polygon_ids, st.booleans())
    def test_ref_roundtrip(self, pid, true_hit):
        ref = codec.make_ref(pid, true_hit)
        assert ref < (1 << 31)
        assert codec.ref_polygon_id(ref) == pid
        assert codec.ref_is_true_hit(ref) == true_hit

    def test_ref_overflow(self):
        with pytest.raises(CapacityError):
            codec.make_ref(1 << 30, True)
        with pytest.raises(CapacityError):
            codec.make_ref(-1, False)

    def test_flag_in_lsb(self):
        assert codec.make_ref(5, True) & 1 == 1
        assert codec.make_ref(5, False) & 1 == 0


class TestEntries:
    def test_sentinel_is_zero_pointer(self):
        assert codec.SENTINEL == 0
        assert codec.tag(codec.SENTINEL) == codec.TAG_POINTER
        assert codec.is_sentinel(codec.SENTINEL)

    @given(st.integers(0, 2 ** 40))
    def test_pointer_roundtrip(self, index):
        entry = codec.make_pointer(index)
        assert codec.tag(entry) == codec.TAG_POINTER
        assert not codec.is_sentinel(entry)
        assert codec.pointer_index(entry) == index

    @given(polygon_ids, st.booleans())
    def test_payload1_roundtrip(self, pid, flag):
        ref = codec.make_ref(pid, flag)
        entry = codec.make_payload_1(ref)
        assert codec.tag(entry) == codec.TAG_PAYLOAD_1
        assert codec.payload_refs(entry) == (ref,)

    @given(polygon_ids, polygon_ids, st.booleans(), st.booleans())
    def test_payload2_roundtrip(self, pid_a, pid_b, fa, fb):
        ref_a = codec.make_ref(pid_a, fa)
        ref_b = codec.make_ref(pid_b, fb)
        entry = codec.make_payload_2(ref_a, ref_b)
        assert codec.tag(entry) == codec.TAG_PAYLOAD_2
        assert codec.payload_refs(entry) == (ref_a, ref_b)
        assert entry < (1 << 64)

    @given(st.integers(0, codec.MAX_OFFSET))
    def test_offset_roundtrip(self, offset):
        entry = codec.make_offset(offset)
        assert codec.tag(entry) == codec.TAG_OFFSET
        assert codec.offset_value(entry) == offset

    def test_offset_overflow(self):
        with pytest.raises(CapacityError):
            codec.make_offset(codec.MAX_OFFSET + 1)

    def test_payload_refs_on_pointer_raises(self):
        with pytest.raises(CapacityError):
            codec.payload_refs(codec.make_pointer(3))


class TestEncodeRefs:
    def test_empty_is_sentinel(self):
        assert codec.encode_refs([], lambda refs: 0) == codec.SENTINEL

    def test_one_inlined(self):
        ref = codec.make_ref(7, True)
        entry = codec.encode_refs([ref], lambda refs: 0)
        assert codec.tag(entry) == codec.TAG_PAYLOAD_1

    def test_two_inlined(self):
        refs = [codec.make_ref(7, True), codec.make_ref(9, False)]
        entry = codec.encode_refs(refs, lambda r: 0)
        assert codec.tag(entry) == codec.TAG_PAYLOAD_2

    def test_three_use_table(self):
        refs = [codec.make_ref(p, False) for p in (1, 2, 3)]
        calls = []

        def alloc(r):
            calls.append(list(r))
            return 42

        entry = codec.encode_refs(refs, alloc)
        assert codec.tag(entry) == codec.TAG_OFFSET
        assert codec.offset_value(entry) == 42
        assert calls == [refs]
