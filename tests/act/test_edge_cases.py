"""Degenerate and adversarial inputs for the full ACT stack."""

import numpy as np
import pytest

from repro import ACTIndex
from repro.baselines import ScanJoin
from repro.errors import CoveringError, PrecisionError, ReproError
from repro.geometry import Polygon, Rect, regular_polygon
from repro.grid.planar import PlanarGrid


class TestTinyPolygons:
    def test_polygon_smaller_than_boundary_cell(self):
        """A polygon smaller than one precision-level cell: everything is
        candidate, nothing interior — still correct."""
        tiny = regular_polygon(-73.95, 40.7, 1e-5, 6)  # ~1 m radius
        grid = PlanarGrid(Rect(-74.3, 40.45, -73.65, 40.95))
        index = ACTIndex.build([tiny], precision_meters=120.0, grid=grid)
        cx, cy = tiny.centroid
        assert 0 in index.query_approx(cx, cy)
        assert index.query_exact(cx, cy) == (0,)
        # far away: no hit
        assert not index.query(-74.2, 40.9).is_hit

    def test_sliver_polygon(self):
        """Extremely thin polygon (road-like sliver)."""
        sliver = Polygon([(-74.0, 40.70), (-73.8, 40.7001),
                          (-73.8, 40.7002), (-74.0, 40.7001)])
        index = ACTIndex.build([sliver], precision_meters=60.0)
        rng = np.random.default_rng(3)
        lngs = rng.uniform(-74.0, -73.8, 3000)
        lats = rng.uniform(40.6995, 40.7007, 3000)
        exact = index.count_points(lngs, lats, exact=True)
        brute = int(sliver.contains_batch(lngs, lats).sum())
        assert exact[0] == brute


class TestManyPolygons:
    def test_hundreds_of_polygons_inline_capacity(self):
        """Ids beyond two digits still round-trip through payload/offset
        encodings."""
        polys = []
        for k in range(300):
            cx = -74.25 + (k % 20) * 0.03
            cy = 40.50 + (k // 20) * 0.03
            polys.append(regular_polygon(cx, cy, 0.01, 5))
        index = ACTIndex.build(polys, precision_meters=300.0)
        for pid in (0, 150, 299):
            cx, cy = polys[pid].centroid
            assert pid in index.query_exact(cx, cy)


class TestPointsOnStructure:
    def test_points_on_grid_bounds(self, nyc_index):
        b = nyc_index.grid.bounds
        for x, y in b.corners():
            result = nyc_index.query(x, y)  # must not raise
            assert isinstance(result.all_ids, tuple)

    def test_points_on_polygon_vertices(self, nyc_index, nyc_polygons):
        """Vertex-exact probes: reported set must still be within the
        guarantee (either side of the boundary is acceptable)."""
        scan = ScanJoin(nyc_polygons)
        bound = nyc_index.guaranteed_precision_meters
        from repro.geometry import point_polygon_distance_meters

        for vx, vy in nyc_polygons[2].shell.vertices[:10]:
            reported = set(nyc_index.query_approx(vx, vy))
            truth = set(scan.query(vx, vy))
            assert truth <= reported
            for pid in reported - truth:
                assert point_polygon_distance_meters(
                    nyc_polygons[pid], vx, vy) <= bound * 1.01

    def test_nan_free_for_extreme_coordinates(self, nyc_index):
        result = nyc_index.query(179.999, 89.0)
        assert not result.is_hit


class TestPrecisionLimits:
    def test_precision_too_fine_for_fanout(self, nyc_polygons):
        with pytest.raises(ReproError):
            ACTIndex.build(nyc_polygons[:2], precision_meters=1e-6)

    def test_negative_precision(self, nyc_polygons):
        with pytest.raises(PrecisionError):
            ACTIndex.build(nyc_polygons[:2], precision_meters=-5.0)

    def test_huge_precision_still_correct(self, nyc_polygons, taxi_batch):
        """A kilometer-scale bound yields a coarse but still sound index."""
        lngs, lats = taxi_batch
        index = ACTIndex.build(nyc_polygons[:5], precision_meters=5000.0)
        exact = index.count_points(lngs, lats, exact=True)
        scan = ScanJoin(nyc_polygons[:5]).count_points(lngs, lats)
        assert exact.tolist() == scan.tolist()


class TestGridMismatch:
    def test_polygon_outside_grid_raises(self):
        grid = PlanarGrid(Rect(0.0, 0.0, 1.0, 1.0))
        far = regular_polygon(50.0, 50.0, 1.0, 6)
        with pytest.raises(CoveringError):
            ACTIndex.build([far], precision_meters=1000.0, grid=grid)

    def test_points_outside_grid_are_misses(self, nyc_index):
        lngs = np.array([100.0, -150.0, 0.0])
        lats = np.array([10.0, -80.0, 0.0])
        counts = nyc_index.count_points(lngs, lats)
        assert counts.sum() == 0


class TestEmptyBatches:
    def test_count_points_empty(self, nyc_index):
        counts = nyc_index.count_points(np.empty(0), np.empty(0))
        assert counts.shape == (nyc_index.num_polygons,)
        assert counts.sum() == 0

    def test_count_points_exact_empty(self, nyc_index):
        counts = nyc_index.count_points(np.empty(0), np.empty(0), exact=True)
        assert counts.sum() == 0

    def test_query_batch_empty(self, nyc_index):
        assert nyc_index.query_batch(np.empty(0), np.empty(0)) == []
