"""Tests for the memory-budgeted adaptive ACT."""

import numpy as np
import pytest

from repro.act.adaptive import AdaptiveACTIndex
from repro.baselines import ScanJoin
from repro.errors import ACTError


@pytest.fixture(scope="module")
def adaptive(nyc_polygons):
    return AdaptiveACTIndex(nyc_polygons[:10], max_cells=4000,
                            target_precision_meters=30.0)


class TestConstruction:
    def test_budget_respected_at_build(self, adaptive):
        assert adaptive.num_cells <= adaptive.max_cells

    def test_too_small_budget_raises(self, nyc_polygons):
        with pytest.raises(ACTError):
            AdaptiveACTIndex(nyc_polygons[:10], max_cells=10)

    def test_size_accounting(self, adaptive):
        assert adaptive.size_bytes == (
            adaptive.core.size_bytes + adaptive.lookup_table.size_bytes
        )


class TestExactness:
    def test_exact_queries_match_scan(self, adaptive, nyc_polygons,
                                      taxi_batch):
        lngs, lats = taxi_batch
        scan = ScanJoin(nyc_polygons[:10])
        for k in range(0, 1200, 7):
            got = sorted(adaptive.query_exact(lngs[k], lats[k]))
            assert got == sorted(scan.query(lngs[k], lats[k])), k

    def test_out_of_domain_query(self, adaptive):
        assert adaptive.query_exact(120.0, 10.0) == ()


class TestAdaptation:
    def test_adapt_reduces_refinement_rate(self, nyc_polygons, taxi_batch):
        lngs, lats = taxi_batch
        index = AdaptiveACTIndex(nyc_polygons[:10], max_cells=6000,
                                 target_precision_meters=30.0)
        before = index.refinement_rate(lngs, lats)
        total_splits = 0
        for _ in range(4):
            total_splits += index.adapt(lngs[:2000], lats[:2000])
        after = index.refinement_rate(lngs, lats)
        assert total_splits > 0
        assert after < before
        assert index.num_cells <= index.max_cells

    def test_exactness_preserved_after_adaptation(self, nyc_polygons,
                                                  taxi_batch):
        lngs, lats = taxi_batch
        index = AdaptiveACTIndex(nyc_polygons[:10], max_cells=6000,
                                 target_precision_meters=30.0)
        index.adapt(lngs[:2000], lats[:2000])
        scan = ScanJoin(nyc_polygons[:10])
        for k in range(0, 1000, 11):
            got = sorted(index.query_exact(lngs[k], lats[k]))
            assert got == sorted(scan.query(lngs[k], lats[k])), k

    def test_adapt_without_candidates_is_noop(self, nyc_polygons):
        index = AdaptiveACTIndex(nyc_polygons[:10], max_cells=6000,
                                 target_precision_meters=30.0)
        # points far outside the domain never hit candidate cells
        lngs = np.full(100, 120.0)
        lats = np.full(100, 10.0)
        assert index.adapt(lngs, lats) == 0

    def test_max_splits_limits_work(self, nyc_polygons, taxi_batch):
        lngs, lats = taxi_batch
        index = AdaptiveACTIndex(nyc_polygons[:10], max_cells=6000,
                                 target_precision_meters=30.0)
        splits = index.adapt(lngs[:2000], lats[:2000], max_splits=3)
        assert 0 <= splits <= 3

    def test_adapt_rounds_counter(self, nyc_polygons, taxi_batch):
        lngs, lats = taxi_batch
        index = AdaptiveACTIndex(nyc_polygons[:10], max_cells=6000,
                                 target_precision_meters=30.0)
        assert index.adapt_rounds == 0
        if index.adapt(lngs[:2000], lats[:2000]) > 0:
            assert index.adapt_rounds == 1
