"""Unit and property tests for the Adaptive Cell Trie structure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.act import entry as codec
from repro.act.trie import KEY_BITS, SUPPORTED_FANOUTS, AdaptiveCellTrie
from repro.errors import BuildError
from repro.grid import cellid

faces = st.integers(0, 5)
ij30 = st.integers(0, (1 << 30) - 1)


def make_cell(face, i, j, level):
    return cellid.parent(cellid.from_face_ij(face, i, j), level)


def entry_for(pid):
    return codec.make_payload_1(codec.make_ref(pid, True))


class TestConstruction:
    def test_unsupported_fanout(self):
        with pytest.raises(BuildError):
            AdaptiveCellTrie(fanout=8)
        with pytest.raises(BuildError):
            AdaptiveCellTrie(fanout=512)

    @pytest.mark.parametrize("fanout", SUPPORTED_FANOUTS)
    def test_geometry_parameters(self, fanout):
        trie = AdaptiveCellTrie(fanout)
        assert trie.fanout == fanout
        assert 2 ** trie.bits_per_step == fanout
        assert trie.max_steps == KEY_BITS // trie.bits_per_step
        assert trie.max_cell_level == trie.max_steps * trie.levels_per_step

    def test_paper_default_parameters(self):
        """Fanout 256: 8 bits per node, ceil(60/8)=8 accesses incl. face."""
        trie = AdaptiveCellTrie(256)
        assert trie.levels_per_step == 4
        assert trie.max_steps == 7
        assert trie.max_cell_level == 28

    def test_empty_trie_metrics(self):
        trie = AdaptiveCellTrie()
        assert trie.num_nodes == 0
        assert trie.size_bytes == 0
        assert trie.num_entries == 0


class TestInsertLookup:
    def test_single_cell(self):
        trie = AdaptiveCellTrie()
        cell = make_cell(1, 1000, 2000, 12)
        trie.insert(cell, entry_for(5))
        leaf = cellid.range_min(cell)
        assert trie.lookup_entry(leaf) == entry_for(5)
        assert trie.lookup_entry(cellid.range_max(cell)) == entry_for(5)

    def test_miss_outside_cell(self):
        trie = AdaptiveCellTrie()
        cell = make_cell(1, 1000, 2000, 12)
        trie.insert(cell, entry_for(5))
        outside = cellid.range_max(cell) + 2
        assert trie.lookup_entry(outside) == codec.SENTINEL
        assert trie.lookup_entry(cellid.from_face_ij(4, 0, 0)) == codec.SENTINEL

    def test_face_root_cell(self):
        trie = AdaptiveCellTrie()
        trie.insert(cellid.from_face(3), entry_for(9))
        leaf = cellid.from_face_ij(3, 123, 456)
        assert trie.lookup_entry(leaf) == entry_for(9)
        assert trie.lookup_entry(cellid.from_face_ij(2, 0, 0)) == 0

    def test_duplicate_insert_raises(self):
        trie = AdaptiveCellTrie()
        cell = make_cell(0, 5, 5, 8)
        trie.insert(cell, entry_for(1))
        with pytest.raises(BuildError):
            trie.insert(cell, entry_for(2))

    def test_ancestor_conflict_raises(self):
        trie = AdaptiveCellTrie()
        cell = make_cell(0, 5, 5, 8)
        trie.insert(cell, entry_for(1))
        with pytest.raises(BuildError):
            trie.insert(cellid.children(cell)[0], entry_for(2))

    def test_descendant_conflict_raises(self):
        trie = AdaptiveCellTrie()
        cell = make_cell(0, 5, 5, 8)
        trie.insert(cellid.children(cell)[0], entry_for(1))
        with pytest.raises(BuildError):
            trie.insert(cell, entry_for(2))

    def test_pointer_entry_rejected(self):
        trie = AdaptiveCellTrie()
        with pytest.raises(BuildError):
            trie.insert(make_cell(0, 1, 1, 8), codec.make_pointer(3))

    def test_too_deep_cell_rejected(self):
        trie = AdaptiveCellTrie(256)
        with pytest.raises(BuildError):
            trie.insert(make_cell(0, 1, 1, 29), entry_for(1))

    def test_siblings_do_not_conflict(self):
        trie = AdaptiveCellTrie()
        parent = make_cell(0, 77, 77, 10)
        for k, child in enumerate(cellid.children(parent)):
            trie.insert(child, entry_for(k))
        for k, child in enumerate(cellid.children(parent)):
            assert trie.lookup_entry(cellid.range_min(child)) == entry_for(k)


class TestDenormalization:
    def test_unaligned_cell_entry_count(self):
        """A level-9 cell in a fanout-256 trie denormalizes to 4^3 slots."""
        trie = AdaptiveCellTrie(256)
        trie.insert(make_cell(0, 50, 60, 9), entry_for(3))
        assert trie.num_entries == 4 ** 3

    def test_unaligned_lookup_hits_everywhere(self, rng):
        trie = AdaptiveCellTrie(256)
        cell = make_cell(2, 123456, 654321, 13)
        trie.insert(cell, entry_for(7))
        lo = cellid.range_min(cell)
        hi = cellid.range_max(cell)
        for _ in range(50):
            leaf = (int(rng.integers(lo, hi + 1)) | 1)
            assert trie.lookup_entry(leaf) == entry_for(7)
        assert trie.lookup_entry(hi + 2) == codec.SENTINEL
        assert trie.lookup_entry(lo - 2) == codec.SENTINEL

    def test_denormalized_range_conflict_detected(self):
        trie = AdaptiveCellTrie(256)
        cell = make_cell(0, 99, 99, 9)
        trie.insert(cellid.children(cell)[1], entry_for(1))  # level 10
        with pytest.raises(BuildError):
            trie.insert(cell, entry_for(2))

    def test_denormalization_adds_no_nodes(self):
        """The paper trade-off: denormalization replicates payloads but the
        descendants share one node."""
        trie_aligned = AdaptiveCellTrie(256)
        trie_aligned.insert(make_cell(0, 4096, 4096, 12), entry_for(1))
        trie_unaligned = AdaptiveCellTrie(256)
        trie_unaligned.insert(make_cell(0, 4096, 4096, 13), entry_for(1))
        assert trie_unaligned.num_nodes == trie_aligned.num_nodes + 1


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(faces, ij30, ij30, st.integers(0, 16)),
                min_size=1, max_size=40),
       st.sampled_from(SUPPORTED_FANOUTS))
def test_trie_equals_bruteforce_cell_map(specs, fanout):
    """ACT lookup == brute-force 'which inserted cell contains this leaf'.

    Inserted cells are made prefix-free first (mirroring the super
    covering contract); lookups of range endpoints and midpoints must
    agree with the brute-force scan for every inserted cell.
    """
    cells = {}
    for face, i, j, level in specs:
        cell = make_cell(face, i, j, min(level, 16))
        cells[cell] = None
    # drop cells nested inside others (prefix-free family)
    unique = sorted(cells, key=cellid.range_min)
    kept = []
    for cell in unique:
        if kept and cellid.range_max(kept[-1]) >= cellid.range_min(cell):
            continue
        kept.append(cell)

    trie = AdaptiveCellTrie(fanout)
    expected = {}
    for pid, cell in enumerate(kept):
        trie.insert(cell, entry_for(pid))
        expected[cell] = entry_for(pid)

    probes = []
    for cell in kept:
        lo = cellid.range_min(cell)
        hi = cellid.range_max(cell)
        probes.extend([(lo, expected[cell]), (hi, expected[cell]),
                       (((lo + hi) // 2) | 1, expected[cell])])
        probes.append((hi + 2 if hi + 2 < (1 << 64) else lo - 2, None))
    for leaf, want in probes:
        if not cellid.is_valid(leaf) or not cellid.is_leaf(leaf):
            continue
        got = trie.lookup_entry(leaf)
        if want is None:
            brute = next((expected[c] for c in kept
                          if cellid.contains(c, leaf)), codec.SENTINEL)
            assert got == brute
        else:
            assert got == want


class TestIntrospection:
    def test_iter_cells_roundtrip_aligned(self):
        trie = AdaptiveCellTrie(256)
        inserted = {
            make_cell(0, 10, 10, 8): entry_for(0),
            make_cell(1, 99, 3, 12): entry_for(1),
            make_cell(5, 7, 7, 4): entry_for(2),
        }
        for cell, entry in inserted.items():
            trie.insert(cell, entry)
        recovered = dict(trie.iter_cells())
        assert recovered == inserted

    def test_iter_cells_expands_denormalized(self):
        trie = AdaptiveCellTrie(256)
        trie.insert(make_cell(0, 10, 10, 9), entry_for(0))
        recovered = list(trie.iter_cells())
        assert len(recovered) == 64  # enumerated post-denormalization
        assert all(cellid.level(c) == 12 for c, _ in recovered)

    def test_node_accesses_bounded(self):
        trie = AdaptiveCellTrie(256)
        cell = make_cell(0, 10, 10, 16)
        trie.insert(cell, entry_for(0))
        accesses = trie.node_accesses(cellid.range_min(cell))
        assert 1 <= accesses <= trie.max_steps

    def test_export_arrays_shapes(self):
        trie = AdaptiveCellTrie(256)
        trie.insert(make_cell(0, 10, 10, 8), entry_for(0))
        table, roots = trie.export_arrays()
        assert table.shape == (trie.num_nodes, 256)
        assert roots.shape == (6,)

    def test_size_bytes_layout(self):
        trie = AdaptiveCellTrie(256)
        trie.insert(make_cell(0, 10, 10, 8), entry_for(0))
        assert trie.size_bytes == trie.num_nodes * 256 * 8
