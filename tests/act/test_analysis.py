"""Tests for index introspection — the paper's structural claims."""


from repro.act.analysis import (
    interior_area_fraction,
    level_histogram,
    node_occupancy,
    summarize,
)
from repro.act.core import ACTCore
from repro.act.lookup_table import LookupTable
from repro.act.trie import AdaptiveCellTrie
from repro.grid.coverer import RegionCoverer


def _empty_core() -> ACTCore:
    return ACTCore.from_trie(AdaptiveCellTrie(), LookupTable())


class TestLevelHistogram:
    def test_totals_match_entries(self, nyc_index):
        histogram = level_histogram(nyc_index.core)
        total = sum(t + c for t, c in histogram.values())
        assert total == nyc_index.core.num_entries

    def test_boundary_slots_at_deepest_levels(self, nyc_index):
        """Candidate cells concentrate at/near the precision level."""
        histogram = level_histogram(nyc_index.core)
        deepest = max(histogram)
        _, cand_deepest = histogram[deepest]
        assert cand_deepest > 0
        assert deepest >= nyc_index.boundary_level

    def test_interior_cells_at_coarse_levels(self, nyc_index):
        histogram = level_histogram(nyc_index.core)
        coarse_true = sum(
            t for level, (t, _) in histogram.items()
            if level < nyc_index.boundary_level
        )
        assert coarse_true > 0

    def test_empty_core(self):
        assert level_histogram(_empty_core()) == {}


class TestNodeOccupancy:
    def test_sparse_fanout_256(self, nyc_index):
        """Paper: fanout 256 nodes are sparsely occupied."""
        stats = node_occupancy(nyc_index.core)
        assert stats["nodes"] == nyc_index.core.num_nodes
        assert 0 < stats["mean"] <= 256
        assert stats["occupancy"] < 0.9

    def test_empty_core(self):
        stats = node_occupancy(_empty_core())
        assert stats["nodes"] == 0


class TestInteriorAreaFraction:
    def test_majority_of_interior_covered(self, nyc_index, nyc_polygons):
        """The paper's headline structural claim."""
        coverer = RegionCoverer(nyc_index.grid)
        polygon = nyc_polygons[0]
        covering = coverer.cover(polygon, nyc_index.boundary_level)
        fraction = interior_area_fraction(covering, polygon, nyc_index.grid)
        assert fraction > 0.5

    def test_finer_boundary_more_interior(self, nyc_index, nyc_polygons):
        coverer = RegionCoverer(nyc_index.grid)
        polygon = nyc_polygons[1]
        coarse = coverer.cover(polygon, 8)
        fine = coverer.cover(polygon, 12)
        f_coarse = interior_area_fraction(coarse, polygon, nyc_index.grid)
        f_fine = interior_area_fraction(fine, polygon, nyc_index.grid)
        assert f_fine >= f_coarse


class TestSummarize:
    def test_summary_fields(self, nyc_index):
        summary = summarize(nyc_index)
        assert summary["indexed_cells"] == nyc_index.stats.indexed_cells
        assert 0.0 <= summary["true_slot_fraction"] <= 1.0
        assert summary["boundary_level"] == nyc_index.boundary_level
        assert summary["bytes_per_indexed_cell"] > 0
        assert summary["levels"] == sorted(summary["levels"])

    def test_partition_mostly_true_slots_area_wise(self, nyc_index):
        """On a partition most indexed *slots* near the boundary are
        candidates, but true slots must exist at coarse levels."""
        summary = summarize(nyc_index)
        assert summary["coarse_true_slots"] > 0
