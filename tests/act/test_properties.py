"""Full-stack property-based tests of the ACT guarantees.

Hypothesis generates random polygon sets and probe points; for every
combination the three paper guarantees must hold (no false negatives,
precision-bounded false positives, exact true hits). These complement the
fixed-dataset tests in test_index.py with adversarial shapes.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ACTIndex
from repro.act.trie import SUPPORTED_FANOUTS
from repro.geometry import point_polygon_distance_meters, regular_polygon
from repro.grid.s2like import S2LikeGrid

# polygons live in a small NYC-like window so builds stay fast
_LNG0, _LAT0 = -74.0, 40.7

polygon_specs = st.lists(
    st.tuples(
        st.floats(-0.08, 0.08),   # center lng offset
        st.floats(-0.08, 0.08),   # center lat offset
        st.floats(0.004, 0.05),   # radius (degrees)
        st.integers(3, 12),       # vertex count
        st.floats(0.0, 6.28),     # phase
    ),
    min_size=1, max_size=5,
)

probe_offsets = st.lists(
    st.tuples(st.floats(-0.12, 0.12), st.floats(-0.12, 0.12)),
    min_size=1, max_size=30,
)


def _build_polygons(specs):
    return [
        regular_polygon(_LNG0 + dx, _LAT0 + dy, r, n, phase)
        for dx, dy, r, n, phase in specs
    ]


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(polygon_specs, probe_offsets)
def test_guarantees_hold_for_random_inputs(specs, probes):
    polygons = _build_polygons(specs)
    index = ACTIndex.build(polygons, precision_meters=150.0)
    bound = index.guaranteed_precision_meters
    for dx, dy in probes:
        x = _LNG0 + dx
        y = _LAT0 + dy
        reported = set(index.query_approx(x, y))
        true_hits = set(index.query(x, y).true_hits)
        truth = {pid for pid, p in enumerate(polygons) if p.contains(x, y)}
        assert truth <= reported                       # no false negatives
        assert true_hits <= truth                      # true hits exact
        for pid in reported - truth:                   # precision bound
            dist = point_polygon_distance_meters(polygons[pid], x, y)
            assert dist <= bound * 1.001


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(polygon_specs)
def test_exact_join_equals_bruteforce(specs):
    polygons = _build_polygons(specs)
    index = ACTIndex.build(polygons, precision_meters=200.0)
    rng = np.random.default_rng(7)
    lngs = rng.uniform(_LNG0 - 0.15, _LNG0 + 0.15, 400)
    lats = rng.uniform(_LAT0 - 0.15, _LAT0 + 0.15, 400)
    exact = index.count_points(lngs, lats, exact=True)
    for pid, polygon in enumerate(polygons):
        brute = int(polygon.contains_batch(lngs, lats).sum())
        assert exact[pid] == brute


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(polygon_specs, st.sampled_from([400.0, 150.0, 60.0]))
def test_vectorized_equals_scalar_for_random_inputs(specs, precision):
    polygons = _build_polygons(specs)
    index = ACTIndex.build(polygons, precision_meters=precision)
    rng = np.random.default_rng(13)
    lngs = rng.uniform(_LNG0 - 0.15, _LNG0 + 0.15, 200)
    lats = rng.uniform(_LAT0 - 0.15, _LAT0 + 0.15, 200)
    entries = index.lookup_batch(lngs, lats)
    for k in range(200):
        leaf = index.grid.leaf_cell(float(lngs[k]), float(lats[k]))
        want = index.core.lookup_entry(leaf) if leaf is not None else 0
        assert int(entries[k]) == want


@pytest.mark.parametrize("grid_kind", ["planar", "s2like"])
@pytest.mark.parametrize("fanout", SUPPORTED_FANOUTS)
def test_scalar_query_equals_batch_across_grids_and_fanouts(
        grid_kind, fanout, nyc_polygons):
    """Scalar ``ACTIndex.query`` ≡ vectorized ``lookup_batch`` for every
    supported (grid, fanout) combination — one lookup engine, one truth."""
    polygons = nyc_polygons[:6]
    grid = S2LikeGrid() if grid_kind == "s2like" else None
    index = ACTIndex.build(polygons, precision_meters=250.0, grid=grid,
                           fanout=fanout)
    rng = np.random.default_rng(20180416 + fanout)
    lngs = rng.uniform(-74.35, -73.60, 300)
    lats = rng.uniform(40.40, 41.00, 300)
    entries = index.lookup_batch(lngs, lats)
    for k in range(300):
        scalar = index.query(float(lngs[k]), float(lats[k]))
        batched = index.decode_entry(int(entries[k]))
        assert scalar == batched, (grid_kind, fanout, k)
