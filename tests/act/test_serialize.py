"""Tests for index persistence (save/load roundtrip)."""

import json
import shutil
import struct
import zipfile

import numpy as np
import pytest

from repro import ACTIndex
from repro.act.serialize import (load_index, quarantine_artifact, save_index,
                                 verify_artifact)
from repro.errors import ACTError, ArtifactCorruptError
from repro.geometry import regular_polygon
from repro.grid.s2like import S2LikeGrid


@pytest.fixture(scope="module")
def saved(tmp_path_factory, nyc_polygons):
    index = ACTIndex.build(nyc_polygons[:8], precision_meters=150.0)
    path = tmp_path_factory.mktemp("idx") / "index.npz"
    save_index(index, path)
    return index, path


class TestRoundtrip:
    def test_lookups_identical(self, saved, taxi_batch):
        original, path = saved
        loaded = load_index(path)
        lngs, lats = taxi_batch
        a = original.lookup_batch(lngs, lats)
        b = loaded.lookup_batch(lngs, lats)
        assert np.array_equal(a, b)

    def test_counts_identical(self, saved, taxi_batch):
        original, path = saved
        loaded = load_index(path)
        lngs, lats = taxi_batch
        assert loaded.count_points(lngs, lats).tolist() == \
            original.count_points(lngs, lats).tolist()
        assert loaded.count_points(lngs, lats, exact=True).tolist() == \
            original.count_points(lngs, lats, exact=True).tolist()

    def test_scalar_queries_identical(self, saved, taxi_batch):
        original, path = saved
        loaded = load_index(path)
        lngs, lats = taxi_batch
        for k in range(0, 500, 17):
            assert loaded.query(lngs[k], lats[k]) == \
                original.query(lngs[k], lats[k])

    def test_stats_preserved(self, saved):
        original, path = saved
        loaded = load_index(path)
        assert loaded.stats.indexed_cells == original.stats.indexed_cells
        assert loaded.stats.precision_meters == \
            original.stats.precision_meters
        assert loaded.boundary_level == original.boundary_level
        assert loaded.core.fanout == original.core.fanout

    def test_polygons_preserved(self, saved):
        original, path = saved
        loaded = load_index(path)
        assert len(loaded.polygons) == len(original.polygons)
        for a, b in zip(loaded.polygons, original.polygons):
            assert a.area == pytest.approx(b.area)

    def test_lookup_table_still_interns(self, saved):
        """The dedup map must survive so post-load interning works."""
        original, path = saved
        loaded = load_index(path)
        if loaded.lookup_table.num_unique_sets:
            true_ids, cand_ids = loaded.lookup_table.get(0)
            offset = loaded.lookup_table.intern(true_ids, cand_ids)
            assert offset == 0


class TestColumnarLoad:
    def test_load_never_constructs_a_trie(self, saved, monkeypatch):
        """Cold loads materialize the ACTCore straight from the .npz
        arrays; instantiating build scaffolding is a regression."""
        from repro.act.trie import AdaptiveCellTrie

        _, path = saved

        def _forbidden(self, *args, **kwargs):
            raise AssertionError(
                "load_index constructed an AdaptiveCellTrie"
            )

        monkeypatch.setattr(AdaptiveCellTrie, "__init__", _forbidden)
        monkeypatch.setattr(
            AdaptiveCellTrie, "from_arrays",
            classmethod(lambda cls, *a, **k: _forbidden(None)),
        )
        loaded = load_index(path)
        assert loaded.core.num_nodes > 0

    def test_loaded_core_arrays_match(self, saved):
        """The stored arrays ARE the canonical representation."""
        original, path = saved
        loaded = load_index(path)
        assert np.array_equal(loaded.core.nodes, original.core.nodes)
        assert np.array_equal(loaded.core.roots, original.core.roots)
        assert loaded.core.num_entries == original.core.num_entries


class TestMmapLoad:
    def test_answers_identical_to_eager(self, saved, taxi_batch):
        original, path = saved
        mapped = load_index(path, mmap_mode="r")
        lngs, lats = taxi_batch
        assert np.array_equal(mapped.lookup_batch(lngs, lats),
                              original.lookup_batch(lngs, lats))
        assert mapped.count_points(lngs, lats).tolist() == \
            original.count_points(lngs, lats).tolist()
        assert mapped.count_points(lngs, lats, exact=True).tolist() == \
            original.count_points(lngs, lats, exact=True).tolist()
        for k in range(0, 500, 29):
            assert mapped.query(lngs[k], lats[k]) == \
                original.query(lngs[k], lats[k])

    def test_node_pool_is_file_backed_not_copied(self, saved):
        """The acceptance gate: mmap loads never copy the node pool."""
        import mmap as mmap_module

        original, path = saved
        mapped = load_index(path, mmap_mode="r")
        nodes = mapped.core.nodes
        assert nodes.base is not None, "node pool must not own its data"
        base = nodes
        while isinstance(base, np.ndarray) and base.base is not None:
            if isinstance(base.base, np.ndarray):
                assert np.shares_memory(nodes, base.base)
            base = base.base
        assert isinstance(base, mmap_module.mmap), (
            "core.nodes must bottom out at a file mapping, not an "
            "in-memory copy"
        )
        assert np.array_equal(np.asarray(nodes), original.core.nodes)

    def test_mmap_load_never_constructs_a_trie(self, saved, monkeypatch):
        from repro.act.trie import AdaptiveCellTrie

        _, path = saved

        def _forbidden(self, *args, **kwargs):
            raise AssertionError(
                "load_index constructed an AdaptiveCellTrie"
            )

        monkeypatch.setattr(AdaptiveCellTrie, "__init__", _forbidden)
        monkeypatch.setattr(
            AdaptiveCellTrie, "from_arrays",
            classmethod(lambda cls, *a, **k: _forbidden(None)),
        )
        mapped = load_index(path, mmap_mode="r")
        assert mapped.core.num_nodes > 0

    def test_copy_on_write_mode(self, saved, taxi_batch):
        original, path = saved
        mapped = load_index(path, mmap_mode="c")
        lngs, lats = taxi_batch
        assert np.array_equal(mapped.lookup_batch(lngs[:200], lats[:200]),
                              original.lookup_batch(lngs[:200], lats[:200]))

    def test_invalid_mode_rejected(self, saved):
        _, path = saved
        with pytest.raises(ACTError):
            load_index(path, mmap_mode="w+")

    def test_node_member_is_stored_uncompressed(self, saved):
        """The zip layout that makes the mapping possible."""
        import zipfile

        _, path = saved
        with zipfile.ZipFile(path) as archive:
            assert archive.getinfo("nodes.npy").compress_type == \
                zipfile.ZIP_STORED
            # the small members still compress
            assert archive.getinfo("polygons.npy").compress_type == \
                zipfile.ZIP_DEFLATED


class TestVariants:
    def test_s2like_grid_roundtrip(self, tmp_path, taxi_batch):
        polys = [regular_polygon(-73.95, 40.7, 0.05, 8)]
        index = ACTIndex.build(polys, precision_meters=150.0,
                               grid=S2LikeGrid())
        path = tmp_path / "s2.npz"
        save_index(index, path)
        loaded = load_index(path)
        lngs, lats = taxi_batch
        assert np.array_equal(loaded.lookup_batch(lngs, lats),
                              index.lookup_batch(lngs, lats))

    def test_small_fanout_roundtrip(self, tmp_path, nyc_polygons,
                                    taxi_batch):
        index = ACTIndex.build(nyc_polygons[:3], precision_meters=250.0,
                               fanout=16)
        path = tmp_path / "f16.npz"
        save_index(index, path)
        loaded = load_index(path)
        lngs, lats = taxi_batch
        assert np.array_equal(loaded.lookup_batch(lngs[:500], lats[:500]),
                              index.lookup_batch(lngs[:500], lats[:500]))

    def test_donut_polygon_roundtrip(self, tmp_path, donut):
        # polygon with a hole survives the GeoJSON leg
        shifted = donut  # donut is in unit coordinates; grid fits to it
        index = ACTIndex.build([shifted], precision_meters=50_000.0)
        path = tmp_path / "donut.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert len(loaded.polygons[0].holes) == 1

    def test_bad_version_rejected(self, tmp_path, saved, monkeypatch):
        import repro.act.serialize as ser

        original, _ = saved
        path = tmp_path / "vx.npz"
        monkeypatch.setattr(ser, "FORMAT_VERSION", 999)
        save_index(original, path)
        monkeypatch.setattr(ser, "FORMAT_VERSION", 1)
        with pytest.raises(ACTError):
            load_index(path)


class TestAtomicWrites:
    """Generation-suffixed atomic writes (the reload side-artifact path)."""

    def test_generation_path_naming(self):
        from pathlib import Path

        from repro.act.serialize import generation_path

        assert generation_path("idx.npz", 7) == Path("idx.gen000007.npz")
        assert generation_path("/a/b/nyc.npz", 12).name == \
            "nyc.gen000012.npz"
        # suffix-less names still get a readable generation tag
        assert generation_path("bare", 3).name == "bare.gen000003.npz"

    def test_atomic_save_roundtrips_and_leaves_no_temp(self, tmp_path,
                                                      saved, taxi_batch):
        from repro.act.serialize import save_index_atomic

        original, _ = saved
        path = tmp_path / "atomic.npz"
        save_index_atomic(original, path)
        assert [p.name for p in tmp_path.iterdir()] == ["atomic.npz"]
        loaded = load_index(path)
        lngs, lats = taxi_batch
        assert np.array_equal(original.lookup_batch(lngs, lats),
                              loaded.lookup_batch(lngs, lats))

    def test_replace_keeps_existing_mmap_valid(self, tmp_path, saved,
                                               nyc_polygons, taxi_batch):
        # the zero-downtime contract: os.replace() over a file another
        # process (or this one) has memory-mapped must leave the old
        # map fully readable — the old inode survives until unmapped
        from repro.act.serialize import save_index_atomic

        original, _ = saved
        path = tmp_path / "swap.npz"
        save_index_atomic(original, path)
        mapped_old = load_index(path, mmap_mode="r")
        lngs, lats = taxi_batch
        before = mapped_old.count_points(lngs, lats)

        replacement = ACTIndex.build(nyc_polygons[8:16],
                                     precision_meters=150.0)
        save_index_atomic(replacement, path)
        # the old map still answers bit-identically post-replace...
        assert mapped_old.count_points(lngs, lats).tolist() == \
            before.tolist()
        # ...and a fresh load sees the replacement
        fresh = load_index(path, mmap_mode="r")
        assert fresh.num_polygons == replacement.num_polygons
        assert fresh.count_points(lngs, lats).tolist() == \
            replacement.count_points(lngs, lats).tolist()


def _member_data_span(path, member):
    """(data_offset, payload_size) of one member's bytes in the zip."""
    with zipfile.ZipFile(path) as archive:
        info = archive.getinfo(member)
    with open(path, "rb") as fp:
        fp.seek(info.header_offset + 26)
        name_len, extra_len = struct.unpack("<HH", fp.read(4))
    start = info.header_offset + 30 + name_len + extra_len
    return start, info.compress_size


def _flip_byte(path, offset):
    with open(path, "r+b") as fp:
        fp.seek(offset)
        byte = fp.read(1)[0]
        fp.seek(offset)
        fp.write(bytes([byte ^ 0xFF]))


class TestIntegrity:
    """The embedded integrity manifest: verification on load,
    standalone audits, and quarantine of artifacts that flunk."""

    @pytest.fixture
    def copy(self, saved, tmp_path):
        _, path = saved
        target = tmp_path / "copy.npz"
        shutil.copyfile(path, target)
        return target

    def test_manifest_covers_every_member(self, saved):
        _, path = saved
        with np.load(path) as data:
            manifest = json.loads(bytes(data["manifest"].tobytes()))
        assert manifest["algo"] == "crc32"
        assert set(manifest["members"]) == {
            "nodes", "roots", "lookup", "grid_params", "meta", "polygons"}
        for entry in manifest["members"].values():
            assert set(entry) == {"crc32", "bytes", "dtype", "shape"}

    def test_full_verify_roundtrip(self, saved, taxi_batch):
        original, path = saved
        lngs, lats = taxi_batch
        for mmap_mode in (None, "r"):
            loaded = load_index(path, mmap_mode=mmap_mode, verify="full")
            assert np.array_equal(original.lookup_batch(lngs, lats),
                                  loaded.lookup_batch(lngs, lats))

    def test_node_pool_bitflip_caught_by_full_verify(self, copy):
        start, size = _member_data_span(copy, "nodes.npy")
        _flip_byte(copy, start + size - 4)  # inside the array data
        with pytest.raises(ArtifactCorruptError, match="checksum"):
            load_index(copy, mmap_mode="r", verify="full")
        # header mode deliberately never touches the mapped pool's
        # bytes (that is what keeps cold loads lazy) — documented gap
        load_index(copy, mmap_mode="r", verify="header")

    def test_node_pool_bitflip_caught_eagerly(self, copy):
        # an eager (non-mmap) read goes through the zip layer, whose
        # own CRC catches the flip even in header mode
        start, size = _member_data_span(copy, "nodes.npy")
        _flip_byte(copy, start + size - 4)
        with pytest.raises(ArtifactCorruptError):
            load_index(copy, verify="header")

    def test_small_member_bitflip_caught_in_header_mode(self, copy):
        # small members are checksummed in every mode, mmap included
        start, size = _member_data_span(copy, "roots.npy")
        _flip_byte(copy, start + size // 2)
        with pytest.raises(ArtifactCorruptError):
            load_index(copy, mmap_mode="r", verify="header")

    def test_truncated_archive_rejected(self, copy):
        size = copy.stat().st_size
        with open(copy, "r+b") as fp:
            fp.truncate(int(size * 0.6))
        with pytest.raises(ArtifactCorruptError):
            load_index(copy, verify="header")
        with pytest.raises(ArtifactCorruptError):
            load_index(copy, mmap_mode="r", verify="full")

    def test_verify_off_skips_the_manifest(self, copy, taxi_batch):
        # corruption in the pool goes unnoticed when asked not to look
        start, size = _member_data_span(copy, "nodes.npy")
        _flip_byte(copy, start + size - 4)
        loaded = load_index(copy, mmap_mode="r", verify="off")
        lngs, lats = taxi_batch
        loaded.lookup_batch(lngs, lats)  # serves (possibly garbage)

    def test_invalid_verify_mode_rejected(self, saved):
        _, path = saved
        with pytest.raises(ACTError, match="verify"):
            load_index(path, verify="paranoid")

    def test_pre_manifest_archive(self, copy, tmp_path):
        # archives written before the manifest existed: tolerated in
        # header mode, refused under verify="full" and verify_artifact
        legacy = tmp_path / "legacy.npz"
        with zipfile.ZipFile(copy) as src, \
                zipfile.ZipFile(legacy, "w", allowZip64=True) as dst:
            for info in src.infolist():
                if info.filename == "manifest.npy":
                    continue
                out = zipfile.ZipInfo(info.filename,
                                      date_time=(1980, 1, 1, 0, 0, 0))
                out.compress_type = info.compress_type
                with dst.open(out, "w") as fp:
                    fp.write(src.read(info.filename))
        load_index(legacy, mmap_mode="r", verify="header")
        with pytest.raises(ArtifactCorruptError, match="pre-manifest"):
            load_index(legacy, verify="full")
        with pytest.raises(ArtifactCorruptError, match="pre-manifest"):
            verify_artifact(legacy)

    def test_verify_artifact_returns_manifest_and_raises(self, copy):
        manifest = verify_artifact(copy, full=True)
        assert set(manifest["members"]) >= {"nodes", "meta"}
        start, size = _member_data_span(copy, "nodes.npy")
        _flip_byte(copy, start + size - 4)
        # header-level audit never reads the pool's bytes...
        verify_artifact(copy, full=False)
        # ...the full audit does (the zip layer's own CRC trips first)
        with pytest.raises(ArtifactCorruptError):
            verify_artifact(copy, full=True)

    def test_quarantine_layout_and_collisions(self, copy, tmp_path):
        first = quarantine_artifact(copy)
        assert first == tmp_path / "copy.npz.quarantine" / "copy.npz"
        assert first.exists() and not copy.exists()
        copy.write_bytes(b"second failure")
        second = quarantine_artifact(copy)
        assert second.name == "copy.npz.1"
        assert second.parent == first.parent
        assert not copy.exists()
