"""Tests for index persistence (save/load roundtrip)."""

import numpy as np
import pytest

from repro import ACTIndex
from repro.act.serialize import load_index, save_index
from repro.errors import ACTError
from repro.geometry import regular_polygon
from repro.grid.s2like import S2LikeGrid


@pytest.fixture(scope="module")
def saved(tmp_path_factory, nyc_polygons):
    index = ACTIndex.build(nyc_polygons[:8], precision_meters=150.0)
    path = tmp_path_factory.mktemp("idx") / "index.npz"
    save_index(index, path)
    return index, path


class TestRoundtrip:
    def test_lookups_identical(self, saved, taxi_batch):
        original, path = saved
        loaded = load_index(path)
        lngs, lats = taxi_batch
        a = original.lookup_batch(lngs, lats)
        b = loaded.lookup_batch(lngs, lats)
        assert np.array_equal(a, b)

    def test_counts_identical(self, saved, taxi_batch):
        original, path = saved
        loaded = load_index(path)
        lngs, lats = taxi_batch
        assert loaded.count_points(lngs, lats).tolist() == \
            original.count_points(lngs, lats).tolist()
        assert loaded.count_points(lngs, lats, exact=True).tolist() == \
            original.count_points(lngs, lats, exact=True).tolist()

    def test_scalar_queries_identical(self, saved, taxi_batch):
        original, path = saved
        loaded = load_index(path)
        lngs, lats = taxi_batch
        for k in range(0, 500, 17):
            assert loaded.query(lngs[k], lats[k]) == \
                original.query(lngs[k], lats[k])

    def test_stats_preserved(self, saved):
        original, path = saved
        loaded = load_index(path)
        assert loaded.stats.indexed_cells == original.stats.indexed_cells
        assert loaded.stats.precision_meters == \
            original.stats.precision_meters
        assert loaded.boundary_level == original.boundary_level
        assert loaded.core.fanout == original.core.fanout

    def test_polygons_preserved(self, saved):
        original, path = saved
        loaded = load_index(path)
        assert len(loaded.polygons) == len(original.polygons)
        for a, b in zip(loaded.polygons, original.polygons):
            assert a.area == pytest.approx(b.area)

    def test_lookup_table_still_interns(self, saved):
        """The dedup map must survive so post-load interning works."""
        original, path = saved
        loaded = load_index(path)
        if loaded.lookup_table.num_unique_sets:
            true_ids, cand_ids = loaded.lookup_table.get(0)
            offset = loaded.lookup_table.intern(true_ids, cand_ids)
            assert offset == 0


class TestColumnarLoad:
    def test_load_never_constructs_a_trie(self, saved, monkeypatch):
        """Cold loads materialize the ACTCore straight from the .npz
        arrays; instantiating build scaffolding is a regression."""
        from repro.act.trie import AdaptiveCellTrie

        _, path = saved

        def _forbidden(self, *args, **kwargs):
            raise AssertionError(
                "load_index constructed an AdaptiveCellTrie"
            )

        monkeypatch.setattr(AdaptiveCellTrie, "__init__", _forbidden)
        monkeypatch.setattr(
            AdaptiveCellTrie, "from_arrays",
            classmethod(lambda cls, *a, **k: _forbidden(None)),
        )
        loaded = load_index(path)
        assert loaded.core.num_nodes > 0

    def test_loaded_core_arrays_match(self, saved):
        """The stored arrays ARE the canonical representation."""
        original, path = saved
        loaded = load_index(path)
        assert np.array_equal(loaded.core.nodes, original.core.nodes)
        assert np.array_equal(loaded.core.roots, original.core.roots)
        assert loaded.core.num_entries == original.core.num_entries


class TestMmapLoad:
    def test_answers_identical_to_eager(self, saved, taxi_batch):
        original, path = saved
        mapped = load_index(path, mmap_mode="r")
        lngs, lats = taxi_batch
        assert np.array_equal(mapped.lookup_batch(lngs, lats),
                              original.lookup_batch(lngs, lats))
        assert mapped.count_points(lngs, lats).tolist() == \
            original.count_points(lngs, lats).tolist()
        assert mapped.count_points(lngs, lats, exact=True).tolist() == \
            original.count_points(lngs, lats, exact=True).tolist()
        for k in range(0, 500, 29):
            assert mapped.query(lngs[k], lats[k]) == \
                original.query(lngs[k], lats[k])

    def test_node_pool_is_file_backed_not_copied(self, saved):
        """The acceptance gate: mmap loads never copy the node pool."""
        import mmap as mmap_module

        original, path = saved
        mapped = load_index(path, mmap_mode="r")
        nodes = mapped.core.nodes
        assert nodes.base is not None, "node pool must not own its data"
        base = nodes
        while isinstance(base, np.ndarray) and base.base is not None:
            if isinstance(base.base, np.ndarray):
                assert np.shares_memory(nodes, base.base)
            base = base.base
        assert isinstance(base, mmap_module.mmap), (
            "core.nodes must bottom out at a file mapping, not an "
            "in-memory copy"
        )
        assert np.array_equal(np.asarray(nodes), original.core.nodes)

    def test_mmap_load_never_constructs_a_trie(self, saved, monkeypatch):
        from repro.act.trie import AdaptiveCellTrie

        _, path = saved

        def _forbidden(self, *args, **kwargs):
            raise AssertionError(
                "load_index constructed an AdaptiveCellTrie"
            )

        monkeypatch.setattr(AdaptiveCellTrie, "__init__", _forbidden)
        monkeypatch.setattr(
            AdaptiveCellTrie, "from_arrays",
            classmethod(lambda cls, *a, **k: _forbidden(None)),
        )
        mapped = load_index(path, mmap_mode="r")
        assert mapped.core.num_nodes > 0

    def test_copy_on_write_mode(self, saved, taxi_batch):
        original, path = saved
        mapped = load_index(path, mmap_mode="c")
        lngs, lats = taxi_batch
        assert np.array_equal(mapped.lookup_batch(lngs[:200], lats[:200]),
                              original.lookup_batch(lngs[:200], lats[:200]))

    def test_invalid_mode_rejected(self, saved):
        _, path = saved
        with pytest.raises(ACTError):
            load_index(path, mmap_mode="w+")

    def test_node_member_is_stored_uncompressed(self, saved):
        """The zip layout that makes the mapping possible."""
        import zipfile

        _, path = saved
        with zipfile.ZipFile(path) as archive:
            assert archive.getinfo("nodes.npy").compress_type == \
                zipfile.ZIP_STORED
            # the small members still compress
            assert archive.getinfo("polygons.npy").compress_type == \
                zipfile.ZIP_DEFLATED


class TestVariants:
    def test_s2like_grid_roundtrip(self, tmp_path, taxi_batch):
        polys = [regular_polygon(-73.95, 40.7, 0.05, 8)]
        index = ACTIndex.build(polys, precision_meters=150.0,
                               grid=S2LikeGrid())
        path = tmp_path / "s2.npz"
        save_index(index, path)
        loaded = load_index(path)
        lngs, lats = taxi_batch
        assert np.array_equal(loaded.lookup_batch(lngs, lats),
                              index.lookup_batch(lngs, lats))

    def test_small_fanout_roundtrip(self, tmp_path, nyc_polygons,
                                    taxi_batch):
        index = ACTIndex.build(nyc_polygons[:3], precision_meters=250.0,
                               fanout=16)
        path = tmp_path / "f16.npz"
        save_index(index, path)
        loaded = load_index(path)
        lngs, lats = taxi_batch
        assert np.array_equal(loaded.lookup_batch(lngs[:500], lats[:500]),
                              index.lookup_batch(lngs[:500], lats[:500]))

    def test_donut_polygon_roundtrip(self, tmp_path, donut):
        # polygon with a hole survives the GeoJSON leg
        shifted = donut  # donut is in unit coordinates; grid fits to it
        index = ACTIndex.build([shifted], precision_meters=50_000.0)
        path = tmp_path / "donut.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert len(loaded.polygons[0].holes) == 1

    def test_bad_version_rejected(self, tmp_path, saved, monkeypatch):
        import repro.act.serialize as ser

        original, _ = saved
        path = tmp_path / "vx.npz"
        monkeypatch.setattr(ser, "FORMAT_VERSION", 999)
        save_index(original, path)
        monkeypatch.setattr(ser, "FORMAT_VERSION", 1)
        with pytest.raises(ACTError):
            load_index(path)


class TestAtomicWrites:
    """Generation-suffixed atomic writes (the reload side-artifact path)."""

    def test_generation_path_naming(self):
        from pathlib import Path

        from repro.act.serialize import generation_path

        assert generation_path("idx.npz", 7) == Path("idx.gen000007.npz")
        assert generation_path("/a/b/nyc.npz", 12).name == \
            "nyc.gen000012.npz"
        # suffix-less names still get a readable generation tag
        assert generation_path("bare", 3).name == "bare.gen000003.npz"

    def test_atomic_save_roundtrips_and_leaves_no_temp(self, tmp_path,
                                                      saved, taxi_batch):
        from repro.act.serialize import save_index_atomic

        original, _ = saved
        path = tmp_path / "atomic.npz"
        save_index_atomic(original, path)
        assert [p.name for p in tmp_path.iterdir()] == ["atomic.npz"]
        loaded = load_index(path)
        lngs, lats = taxi_batch
        assert np.array_equal(original.lookup_batch(lngs, lats),
                              loaded.lookup_batch(lngs, lats))

    def test_replace_keeps_existing_mmap_valid(self, tmp_path, saved,
                                               nyc_polygons, taxi_batch):
        # the zero-downtime contract: os.replace() over a file another
        # process (or this one) has memory-mapped must leave the old
        # map fully readable — the old inode survives until unmapped
        from repro.act.serialize import save_index_atomic

        original, _ = saved
        path = tmp_path / "swap.npz"
        save_index_atomic(original, path)
        mapped_old = load_index(path, mmap_mode="r")
        lngs, lats = taxi_batch
        before = mapped_old.count_points(lngs, lats)

        replacement = ACTIndex.build(nyc_polygons[8:16],
                                     precision_meters=150.0)
        save_index_atomic(replacement, path)
        # the old map still answers bit-identically post-replace...
        assert mapped_old.count_points(lngs, lats).tolist() == \
            before.tolist()
        # ...and a fresh load sees the replacement
        fresh = load_index(path, mmap_mode="r")
        assert fresh.num_polygons == replacement.num_polygons
        assert fresh.count_points(lngs, lats).tolist() == \
            replacement.count_points(lngs, lats).tolist()
