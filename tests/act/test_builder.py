"""Tests for ACTBuilder pipeline pieces and stats."""

import pytest

from repro.act.builder import ACTBuilder
from repro.errors import BuildError
from repro.grid.planar import PlanarGrid


@pytest.fixture(scope="module")
def builder(nyc_polygons):
    grid = PlanarGrid.for_polygons(nyc_polygons)
    return ACTBuilder(grid)


class TestBoundaryLevel:
    def test_monotone_in_precision(self, builder):
        levels = [builder.boundary_level_for(p) for p in (500, 120, 30, 8)]
        assert levels == sorted(levels)

    def test_matches_grid_level(self, builder):
        level = builder.boundary_level_for(60.0)
        assert builder.grid.max_diag_meters(level) <= 60.0

    def test_too_fine_precision_raises(self, builder):
        # fanout-256 tries index up to level 28; sub-millimeter precision
        # on a city-scale grid needs deeper levels
        with pytest.raises(Exception):
            builder.boundary_level_for(1e-7)


class TestBuildResult:
    def test_timings_populated(self, nyc_polygons, builder):
        result = builder.build(nyc_polygons[:4], precision_meters=300.0)
        stats = result.stats
        assert stats.build_coverings_seconds > 0
        assert stats.build_super_seconds > 0
        assert stats.build_trie_seconds > 0
        assert stats.raw_cells == stats.raw_boundary_cells + \
            stats.raw_interior_cells
        assert stats.raw_cells == sum(c.num_cells for c in result.coverings)

    def test_super_covering_prefix_free(self, nyc_polygons, builder):
        result = builder.build(nyc_polygons[:4], precision_meters=300.0)
        result.super_covering.validate_prefix_free()

    def test_indexed_cells_at_least_raw(self, nyc_polygons, builder):
        """Denormalization only replicates; indexed >= pre-denorm cells."""
        result = builder.build(nyc_polygons[:4], precision_meters=300.0)
        assert result.stats.indexed_cells >= result.super_covering.num_cells

    def test_table_row_columns(self, nyc_polygons, builder):
        result = builder.build(nyc_polygons[:3], precision_meters=300.0)
        row = result.stats.as_table_row()
        assert set(row) == {
            "precision [m]", "indexed cells [M]", "ACT [MB]",
            "lookup table [MB]", "build individual coverings [s]",
            "build super covering [s]",
        }

    def test_zero_polygons_raises(self, builder):
        with pytest.raises(BuildError):
            builder.build([], precision_meters=60.0)


class TestLookupTableUsage:
    def test_partition_rarely_needs_table(self, nyc_polygons, builder):
        """Disjoint partitions mostly inline 1-2 refs (paper: 'In most
        cases, cells reference one or two polygons')."""
        result = builder.build(nyc_polygons, precision_meters=300.0)
        assert result.lookup_table.size_bytes <= \
            0.05 * result.trie.size_bytes

    def test_overlaps_populate_table(self, overlap_polygons):
        grid = PlanarGrid.for_polygons(overlap_polygons)
        result = ACTBuilder(grid).build(overlap_polygons,
                                        precision_meters=300.0)
        assert result.lookup_table.num_unique_sets > 0
