"""Shared fixtures for the test suite.

Heavy artifacts (indexes, datasets) are session-scoped so the suite stays
fast; tests must not mutate them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ACTIndex
from repro.datasets import neighborhoods, overlapping_zones, taxi_points
from repro.datasets.nyc import REGION
from repro.geometry import Polygon, Rect, regular_polygon


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(20180416)  # ICDE'18 week


@pytest.fixture(scope="session")
def square():
    """Unit square at the origin."""
    return Polygon([(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)])


@pytest.fixture(scope="session")
def l_shape():
    """Concave L-shaped polygon."""
    return Polygon([(0, 0), (2, 0), (2, 1), (1, 1), (1, 2), (0, 2)])


@pytest.fixture(scope="session")
def donut():
    """Square with a square hole."""
    return Polygon(
        [(0, 0), (4, 0), (4, 4), (0, 4)],
        holes=[[(1, 1), (3, 1), (3, 3), (1, 3)]],
    )


@pytest.fixture(scope="session")
def nyc_polygons():
    """A small neighborhoods-like partition of the NYC region."""
    return neighborhoods(24, seed=3, complexity=1)


@pytest.fixture(scope="session")
def overlap_polygons():
    """Overlapping geofence zones (conflict-resolution stress)."""
    return overlapping_zones(REGION, 10, seed=9)


@pytest.fixture(scope="session")
def nyc_index(nyc_polygons):
    """ACT over the small partition at a coarse, fast precision."""
    return ACTIndex.build(nyc_polygons, precision_meters=120.0)


@pytest.fixture(scope="session")
def overlap_index(overlap_polygons):
    return ACTIndex.build(overlap_polygons, precision_meters=120.0)


@pytest.fixture(scope="session")
def taxi_batch():
    """A deterministic taxi-like point batch over the NYC region."""
    return taxi_points(4000, seed=77)


@pytest.fixture(scope="session")
def region():
    return REGION


@pytest.fixture(scope="session")
def small_rect():
    return Rect(-1.0, -2.0, 3.0, 4.0)


@pytest.fixture(scope="session")
def hexagon():
    return regular_polygon(0.0, 0.0, 1.0, 6)
