"""Tests for the approximate join operator."""

import numpy as np

from repro.baselines.scan import ScanJoin
from repro.join.approximate import ApproximateJoin


class TestApproximateJoin:
    def test_counts_match_index_counts(self, nyc_index, taxi_batch):
        lngs, lats = taxi_batch
        result = ApproximateJoin(nyc_index).join(lngs, lats)
        direct = nyc_index.count_points(lngs, lats)
        assert result.counts.tolist() == direct.tolist()

    def test_stats_consistency(self, nyc_index, taxi_batch):
        lngs, lats = taxi_batch
        result = ApproximateJoin(nyc_index).join(lngs, lats)
        stats = result.stats
        assert stats.num_points == len(lngs)
        assert stats.num_refined == 0
        assert stats.num_result_pairs == result.total_pairs
        assert stats.num_true_hits + stats.num_candidate_refs == \
            stats.num_result_pairs
        assert stats.seconds > 0
        assert stats.throughput_mpts > 0

    def test_no_false_negatives_vs_scan(self, nyc_index, nyc_polygons,
                                        taxi_batch):
        lngs, lats = taxi_batch
        result = ApproximateJoin(nyc_index).join(lngs, lats)
        scan = ScanJoin(nyc_polygons).count_points(lngs, lats)
        assert (result.counts >= scan).all()

    def test_join_pairs_complete(self, nyc_index, taxi_batch):
        lngs, lats = taxi_batch
        join = ApproximateJoin(nyc_index)
        pairs = list(join.join_pairs(lngs[:400], lats[:400]))
        # pair multiset must reproduce the counts
        counts = np.zeros(nyc_index.num_polygons, dtype=np.int64)
        for _, pid in pairs:
            counts[pid] += 1
        direct = nyc_index.count_points(lngs[:400], lats[:400])
        assert counts.tolist() == direct.tolist()
        # per-point agreement with scalar queries
        by_point = {}
        for point_idx, pid in pairs:
            by_point.setdefault(point_idx, []).append(pid)
        for k in range(0, 400, 17):
            want = sorted(nyc_index.query_approx(lngs[k], lats[k]))
            assert sorted(by_point.get(k, [])) == want

    def test_top_k(self, nyc_index, taxi_batch):
        lngs, lats = taxi_batch
        result = ApproximateJoin(nyc_index).join(lngs, lats)
        top = result.top_k(3)
        assert len(top) <= 3
        values = list(top.values())
        assert values == sorted(values, reverse=True)
        assert all(result.counts[pid] == count for pid, count in top.items())

    def test_true_hit_ratio_high_on_partition(self, nyc_index, taxi_batch):
        """Paper claim: interior cells resolve the vast majority of hits."""
        lngs, lats = taxi_batch
        result = ApproximateJoin(nyc_index).join(lngs, lats)
        assert result.stats.true_hit_ratio > 0.9
