"""Tests for filter-and-refine joins and the refinement-savings claim."""


from repro.baselines.scan import ScanJoin
from repro.join.filter_refine import ACTExactJoin, FilterRefineJoin


class TestFilterRefine:
    def test_exact_counts(self, nyc_polygons, taxi_batch):
        lngs, lats = taxi_batch
        result = FilterRefineJoin(nyc_polygons).join(lngs, lats)
        scan = ScanJoin(nyc_polygons).count_points(lngs, lats)
        assert result.counts.tolist() == scan.tolist()

    def test_every_candidate_refined(self, nyc_polygons, taxi_batch):
        lngs, lats = taxi_batch
        result = FilterRefineJoin(nyc_polygons).join(lngs, lats)
        assert result.stats.num_refined == result.stats.num_candidate_refs
        assert result.stats.num_refined >= result.stats.num_result_pairs
        assert result.stats.num_true_hits == 0

    def test_scalar_query(self, nyc_polygons, taxi_batch):
        lngs, lats = taxi_batch
        join = FilterRefineJoin(nyc_polygons)
        scan = ScanJoin(nyc_polygons)
        for k in range(0, 400, 13):
            assert sorted(join.query(lngs[k], lats[k])) == \
                sorted(scan.query(lngs[k], lats[k]))


class TestACTExactJoin:
    def test_exact_counts(self, nyc_index, nyc_polygons, taxi_batch):
        lngs, lats = taxi_batch
        result = ACTExactJoin(nyc_index).join(lngs, lats)
        scan = ScanJoin(nyc_polygons).count_points(lngs, lats)
        assert result.counts.tolist() == scan.tolist()

    def test_true_hits_skip_refinement(self, nyc_index, nyc_polygons,
                                       taxi_batch):
        """ACT refines orders of magnitude fewer pairs than plain
        filter+refine — the paper's true-hit-filtering payoff."""
        lngs, lats = taxi_batch
        act = ACTExactJoin(nyc_index).join(lngs, lats)
        classic = FilterRefineJoin(nyc_polygons).join(lngs, lats)
        assert act.stats.num_refined * 10 < classic.stats.num_refined
        assert act.counts.tolist() == classic.counts.tolist()

    def test_works_on_overlaps(self, overlap_index, overlap_polygons,
                               taxi_batch):
        lngs, lats = taxi_batch
        result = ACTExactJoin(overlap_index).join(lngs, lats)
        scan = ScanJoin(overlap_polygons).count_points(lngs, lats)
        assert result.counts.tolist() == scan.tolist()


class TestPluggableFilter:
    def test_rtree_and_act_filters_agree(self, nyc_index, nyc_polygons,
                                         taxi_batch):
        lngs, lats = taxi_batch
        classic = FilterRefineJoin(nyc_polygons).join(lngs[:800], lats[:800])
        act = ACTExactJoin(nyc_index).join(lngs[:800], lats[:800])
        assert classic.counts.tolist() == act.counts.tolist()
