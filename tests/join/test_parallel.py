"""Tests for the multiprocessing scaling harness."""

import pytest

from repro.join.parallel import (
    ScalingPoint,
    fork_available,
    parallel_count,
    parallel_counts_array,
    scaling_sweep,
)

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="fork start method unavailable")


class TestScalingPoint:
    def test_throughput(self):
        point = ScalingPoint(workers=2, seconds=0.5, num_points=1_000_000)
        assert point.throughput_mpts == pytest.approx(2.0)

    def test_zero_seconds(self):
        assert ScalingPoint(1, 0.0, 10).throughput_mpts == 0.0


class TestParallelCount:
    def test_single_worker_path(self, nyc_index, taxi_batch):
        lngs, lats = taxi_batch
        point = parallel_count(nyc_index, lngs, lats, workers=1)
        assert point.workers == 1
        assert point.num_points == len(lngs)
        assert point.seconds > 0

    @needs_fork
    def test_multiworker_counts_match_serial(self, nyc_index, taxi_batch):
        lngs, lats = taxi_batch
        serial = nyc_index.count_points(lngs, lats)
        for workers in (2, 3, 4):
            parallel = parallel_counts_array(nyc_index, lngs, lats,
                                             workers=workers)
            assert parallel.tolist() == serial.tolist(), workers

    @needs_fork
    def test_multiworker_exact_counts(self, nyc_index, taxi_batch):
        lngs, lats = taxi_batch
        serial = nyc_index.count_points(lngs, lats, exact=True)
        parallel = parallel_counts_array(nyc_index, lngs, lats,
                                         workers=2, exact=True)
        assert parallel.tolist() == serial.tolist()

    @needs_fork
    def test_mmap_index_forks_without_rereading(self, nyc_index,
                                                taxi_batch, tmp_path,
                                                monkeypatch):
        """Workers inherit the file-backed node pool through fork; no
        process re-opens the .npz after the parent's load."""
        import repro.act.serialize as ser
        from repro.act.serialize import load_index, save_index

        path = tmp_path / "index.npz"
        save_index(nyc_index, path)
        mapped = load_index(path, mmap_mode="r")

        calls = {"n": 0}
        real = ser.load_index

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(ser, "load_index", counting)
        lngs, lats = taxi_batch
        serial = nyc_index.count_points(lngs, lats, exact=True)
        parallel = parallel_counts_array(mapped, lngs, lats, workers=2,
                                         exact=True)
        assert parallel.tolist() == serial.tolist()
        assert calls["n"] == 0, "fork must share the load, not repeat it"

    @needs_fork
    def test_uneven_splits(self, nyc_index, taxi_batch):
        lngs, lats = taxi_batch
        # 4000 points, 7 workers -> uneven slices
        parallel = parallel_counts_array(nyc_index, lngs, lats, workers=7)
        serial = nyc_index.count_points(lngs, lats)
        assert parallel.tolist() == serial.tolist()


class TestSweep:
    @needs_fork
    def test_sweep_shape(self, nyc_index, taxi_batch):
        lngs, lats = taxi_batch
        points = scaling_sweep(nyc_index, lngs, lats, worker_counts=[1, 2])
        assert [p.workers for p in points] == [1, 2]
        assert all(p.num_points == len(lngs) for p in points)
