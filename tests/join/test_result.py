"""Unit tests for join result containers."""

import numpy as np
import pytest

from repro.join.result import JoinResult, JoinStats


class TestJoinStats:
    def test_throughput(self):
        stats = JoinStats(num_points=2_000_000, seconds=2.0)
        assert stats.throughput_mpts == pytest.approx(1.0)

    def test_throughput_zero_seconds(self):
        assert JoinStats(num_points=10).throughput_mpts == float("inf")

    def test_true_hit_ratio(self):
        stats = JoinStats(num_true_hits=9, num_result_pairs=10)
        assert stats.true_hit_ratio == pytest.approx(0.9)

    def test_true_hit_ratio_no_pairs(self):
        assert JoinStats().true_hit_ratio == 1.0

    def test_merged(self):
        a = JoinStats(num_points=10, num_true_hits=5, num_candidate_refs=2,
                      num_refined=1, num_result_pairs=6, seconds=0.5)
        b = JoinStats(num_points=20, num_true_hits=15, num_candidate_refs=4,
                      num_refined=3, num_result_pairs=16, seconds=1.5)
        merged = a.merged(b)
        assert merged.num_points == 30
        assert merged.num_true_hits == 20
        assert merged.num_refined == 4
        assert merged.seconds == pytest.approx(2.0)


class TestJoinResult:
    def test_total_pairs(self):
        result = JoinResult(np.array([3, 0, 7]))
        assert result.total_pairs == 10

    def test_top_k_skips_zeros(self):
        result = JoinResult(np.array([0, 5, 0, 2]))
        assert result.top_k(4) == {1: 5, 3: 2}

    def test_top_k_ordering(self):
        result = JoinResult(np.array([1, 9, 4]))
        assert list(result.top_k(2)) == [1, 2]
