"""Tests of the columnar JoinExecutor — the one engine every join uses."""

import numpy as np

from repro.baselines.scan import ScanJoin
from repro.geometry.edge_table import PackedEdgeTable
from repro.join.executor import (
    JoinExecutor,
    refine_pairs,
    refine_pairs_packed,
)


class TestCountPoints:
    def test_approximate_matches_decoded(self, nyc_index, taxi_batch):
        lngs, lats = taxi_batch
        counts = nyc_index.executor.count_points(lngs, lats)
        want = np.zeros(nyc_index.num_polygons, dtype=np.int64)
        for e in nyc_index.lookup_batch(lngs, lats).tolist():
            for pid in nyc_index._decode(int(e)).all_ids:
                want[pid] += 1
        assert counts.tolist() == want.tolist()

    def test_exact_matches_bruteforce(self, overlap_index, overlap_polygons,
                                      taxi_batch):
        lngs, lats = taxi_batch
        counts = overlap_index.executor.count_points(lngs, lats, exact=True)
        scan = ScanJoin(overlap_polygons).count_points(lngs, lats)
        assert counts.tolist() == scan.tolist()

    def test_index_delegates_to_executor(self, nyc_index, taxi_batch):
        lngs, lats = taxi_batch
        assert nyc_index.count_points(lngs, lats).tolist() == \
            nyc_index.executor.count_points(lngs, lats).tolist()

    def test_executor_is_cached(self, nyc_index):
        assert nyc_index.executor is nyc_index.executor

    def test_empty_batch(self, nyc_index):
        counts = nyc_index.executor.count_points(
            np.empty(0), np.empty(0), exact=True)
        assert counts.tolist() == [0] * nyc_index.num_polygons


class TestRefinedCounts:
    def test_accounting(self, overlap_index, taxi_batch):
        lngs = np.asarray(taxi_batch[0], dtype=np.float64)
        lats = np.asarray(taxi_batch[1], dtype=np.float64)
        executor = overlap_index.executor
        entries = executor.entries(lngs, lats)
        counts, true_pairs, refined = executor.refined_counts(
            entries, lngs, lats)
        want_true = overlap_index.core.count_hits(
            entries, overlap_index.num_polygons, include_candidates=False)
        assert true_pairs == int(want_true.sum())
        cand_pts, _ = overlap_index.core.candidate_pairs(entries)
        assert refined == int(cand_pts.shape[0])
        # exact results never exceed approximate ones
        approx = overlap_index.core.count_hits(
            entries, overlap_index.num_polygons, include_candidates=True)
        assert (counts <= approx).all()


class TestPairs:
    def test_exact_pairs_match_scalar(self, overlap_index, taxi_batch):
        lngs, lats = taxi_batch
        pts, pids = overlap_index.executor.pairs(
            lngs[:300], lats[:300], exact=True)
        got = sorted(zip(pts.tolist(), pids.tolist()))
        want = []
        for k in range(300):
            for pid in overlap_index.query_exact(float(lngs[k]),
                                                 float(lats[k])):
                want.append((k, pid))
        assert got == sorted(want)


class TestRefinePairs:
    def test_grouped_refinement_matches_per_pair(self, nyc_polygons,
                                                 taxi_batch):
        lngs = np.asarray(taxi_batch[0][:500], dtype=np.float64)
        lats = np.asarray(taxi_batch[1][:500], dtype=np.float64)
        rng = np.random.default_rng(99)
        point_idx = rng.integers(0, 500, size=200)
        polygon_ids = rng.integers(0, len(nyc_polygons), size=200)
        inside = refine_pairs(nyc_polygons, point_idx, polygon_ids,
                              lngs, lats)
        for n, (k, pid) in enumerate(zip(point_idx.tolist(),
                                         polygon_ids.tolist())):
            want = nyc_polygons[pid].contains(float(lngs[k]),
                                              float(lats[k]))
            assert bool(inside[n]) == bool(want)

    def test_empty_pairs(self, nyc_polygons):
        empty = np.empty(0, dtype=np.int64)
        inside = refine_pairs(nyc_polygons, empty, empty,
                              np.empty(0), np.empty(0))
        assert inside.shape == (0,)


class TestPackedRefinement:
    def test_executor_routes_through_packed_table(self, overlap_index,
                                                  taxi_batch):
        executor = overlap_index.executor
        table = executor.edge_table
        assert isinstance(table, PackedEdgeTable)
        assert executor.edge_table is table  # built once, cached
        lngs = np.asarray(taxi_batch[0], dtype=np.float64)
        lats = np.asarray(taxi_batch[1], dtype=np.float64)
        entries = executor.entries(lngs, lats)
        point_idx, polygon_ids = overlap_index.core.candidate_pairs(
            entries)
        got = executor.refine_pairs(point_idx, polygon_ids, lngs, lats)
        want = refine_pairs(overlap_index.polygons, point_idx,
                            polygon_ids, lngs, lats)
        assert np.array_equal(got, want)

    def test_huge_fanout_fallback_identical(self, nyc_polygons,
                                            taxi_batch):
        """Pairs over the chunk budget take the grouped path; the split
        must be seamless."""
        lngs = np.asarray(taxi_batch[0][:400], dtype=np.float64)
        lats = np.asarray(taxi_batch[1][:400], dtype=np.float64)
        rng = np.random.default_rng(7)
        point_idx = rng.integers(0, 400, size=300)
        polygon_ids = rng.integers(0, len(nyc_polygons), size=300)
        # a budget below every polygon's edge count forces the grouped
        # path for all pairs; a mixed budget splits the batch
        counts = [len(list(p.edges())) for p in nyc_polygons]
        for chunk_edges in (1, int(np.median(counts))):
            table = PackedEdgeTable.from_polygons(
                nyc_polygons, chunk_edges=chunk_edges)
            got = refine_pairs_packed(table, nyc_polygons, point_idx,
                                      polygon_ids, lngs, lats)
            want = refine_pairs(nyc_polygons, point_idx, polygon_ids,
                                lngs, lats)
            assert np.array_equal(got, want), chunk_edges

    def test_exact_join_identical_to_grouped(self, overlap_index,
                                             overlap_polygons,
                                             taxi_batch):
        """End to end: packed-refined exact counts == grouped counts."""
        lngs = np.asarray(taxi_batch[0], dtype=np.float64)
        lats = np.asarray(taxi_batch[1], dtype=np.float64)
        executor = overlap_index.executor
        entries = executor.entries(lngs, lats)
        counts, _, _ = executor.refined_counts(entries, lngs, lats)
        grouped = overlap_index.core.count_hits(
            entries, overlap_index.num_polygons,
            include_candidates=False)
        pt, pid = overlap_index.core.candidate_pairs(entries)
        inside = refine_pairs(overlap_polygons, pt, pid, lngs, lats)
        grouped += np.bincount(
            pid[inside], minlength=overlap_index.num_polygons)
        assert counts.tolist() == grouped.tolist()


class TestSortedDescent:
    def test_sorted_entries_identical(self, nyc_index, taxi_batch):
        lngs, lats = taxi_batch
        cells = nyc_index.grid.leaf_cells_batch(
            np.asarray(lngs, dtype=np.float64),
            np.asarray(lats, dtype=np.float64))
        plain = nyc_index.core.lookup_entries(cells)
        sorted_ = nyc_index.core.lookup_entries(cells, sort_by_cell=True)
        assert np.array_equal(plain, sorted_)

    def test_executor_flag_changes_nothing_observable(self, nyc_index,
                                                      taxi_batch):
        lngs, lats = taxi_batch
        fast = JoinExecutor(nyc_index, sorted_descent=True)
        slow = JoinExecutor(nyc_index, sorted_descent=False)
        assert np.array_equal(fast.count_points(lngs, lats),
                              slow.count_points(lngs, lats))
        assert np.array_equal(
            fast.count_points(lngs, lats, exact=True),
            slow.count_points(lngs, lats, exact=True))
