"""Tests for count aggregation across batches."""

import numpy as np
import pytest

from repro.errors import JoinError
from repro.join.aggregate import (
    CountAggregator,
    count_points_per_polygon,
    count_stream,
)


class TestCountAggregator:
    def test_requires_positive_size(self):
        with pytest.raises(JoinError):
            CountAggregator(0)

    def test_update_accumulates(self):
        agg = CountAggregator(3)
        agg.update(np.array([1, 0, 2]), 5)
        agg.update(np.array([0, 1, 1]), 5)
        assert agg.counts.tolist() == [1, 1, 3]
        assert agg.num_points == 10
        assert agg.num_batches == 2

    def test_shape_mismatch_raises(self):
        agg = CountAggregator(3)
        with pytest.raises(JoinError):
            agg.update(np.zeros(4, dtype=np.int64), 1)

    def test_merge(self):
        a = CountAggregator(2)
        a.update(np.array([1, 2]), 3)
        b = CountAggregator(2)
        b.update(np.array([10, 0]), 4)
        merged = a.merge(b)
        assert merged.counts.tolist() == [11, 2]
        assert merged.num_points == 7

    def test_top_k_and_dict(self):
        agg = CountAggregator(4)
        agg.update(np.array([5, 0, 9, 1]), 15)
        assert list(agg.top_k(2)) == [2, 0]
        assert agg.as_dict() == {0: 5, 2: 9, 3: 1}


class TestChunkedCounting:
    def test_chunked_equals_single_shot(self, nyc_index, taxi_batch):
        lngs, lats = taxi_batch
        whole = nyc_index.count_points(lngs, lats)
        chunked = count_points_per_polygon(nyc_index, lngs, lats,
                                           batch_size=700)
        assert chunked.tolist() == whole.tolist()

    def test_chunked_exact_mode(self, nyc_index, taxi_batch):
        lngs, lats = taxi_batch
        whole = nyc_index.count_points(lngs, lats, exact=True)
        chunked = count_points_per_polygon(nyc_index, lngs, lats,
                                           exact=True, batch_size=1000)
        assert chunked.tolist() == whole.tolist()


class TestStreamCounting:
    def test_stream_totals(self, nyc_index):
        from repro.datasets import point_stream

        agg = count_stream(nyc_index, point_stream(2500, 600, seed=3))
        assert agg.num_points == 2500
        assert agg.num_batches == 5  # 600*4 + 100
