"""Tests for the streaming micro-batch join."""

import numpy as np

from repro.datasets import point_stream
from repro.join.streaming import StreamingJoin


class TestStreamingJoin:
    def test_batches_accumulate(self, nyc_index):
        join = StreamingJoin(nyc_index)
        total = np.zeros(nyc_index.num_polygons, dtype=np.int64)
        for lngs, lats in point_stream(3000, 750, seed=4):
            total += join.process_batch(lngs, lats)
        assert join.counts.tolist() == total.tolist()
        assert join.num_points == 3000

    def test_run_equals_manual_loop(self, nyc_index):
        a = StreamingJoin(nyc_index)
        a.run(point_stream(2000, 500, seed=8))
        b = StreamingJoin(nyc_index)
        for lngs, lats in point_stream(2000, 500, seed=8):
            b.process_batch(lngs, lats)
        assert a.counts.tolist() == b.counts.tolist()

    def test_streaming_equals_batch(self, nyc_index, taxi_batch):
        lngs, lats = taxi_batch
        join = StreamingJoin(nyc_index)
        for start in range(0, len(lngs), 512):
            join.process_batch(lngs[start:start + 512],
                               lats[start:start + 512])
        whole = nyc_index.count_points(lngs, lats)
        assert join.counts.tolist() == whole.tolist()

    def test_exact_mode(self, nyc_index, taxi_batch):
        lngs, lats = taxi_batch
        join = StreamingJoin(nyc_index, exact=True)
        join.process_batch(lngs, lats)
        assert join.counts.tolist() == \
            nyc_index.count_points(lngs, lats, exact=True).tolist()

    def test_latency_stats(self, nyc_index):
        join = StreamingJoin(nyc_index)
        assert join.latency_stats() == {"batches": 0}
        join.run(point_stream(2000, 400, seed=2))
        stats = join.latency_stats()
        assert stats["batches"] == 5
        assert 0 < stats["p50_ms"] <= stats["p95_ms"] <= stats["max_ms"]
