"""Tests for the fixed (Magellan-style) grid baseline."""

import pytest

from repro.baselines.fixed_grid import FixedGridIndex
from repro.baselines.scan import ScanJoin
from repro.errors import JoinError


@pytest.fixture(scope="module")
def grid_index(nyc_polygons):
    return FixedGridIndex(nyc_polygons, resolution=96)


class TestConstruction:
    def test_requires_polygons(self):
        with pytest.raises(JoinError):
            FixedGridIndex([], resolution=16)

    def test_invalid_resolution(self, nyc_polygons):
        with pytest.raises(JoinError):
            FixedGridIndex(nyc_polygons[:2], resolution=0)

    def test_bounds_cover_polygons(self, grid_index, nyc_polygons):
        for polygon in nyc_polygons:
            assert grid_index.bounds.contains_rect(polygon.bbox)

    def test_cell_refs_populated(self, grid_index):
        assert grid_index.num_cell_refs > 0
        assert grid_index.size_bytes > 0


class TestQueries:
    def test_exact_matches_scan(self, grid_index, nyc_polygons, taxi_batch):
        lngs, lats = taxi_batch
        exact = grid_index.count_points(lngs[:1500], lats[:1500], exact=True)
        scan = ScanJoin(nyc_polygons).count_points(lngs[:1500], lats[:1500])
        assert exact.tolist() == scan.tolist()

    def test_true_hits_are_exact(self, grid_index, nyc_polygons, taxi_batch):
        lngs, lats = taxi_batch
        for k in range(0, 800, 13):
            true_hits, _ = grid_index.query(lngs[k], lats[k])
            for pid in true_hits:
                assert nyc_polygons[pid].contains(lngs[k], lats[k])

    def test_no_false_negatives(self, grid_index, nyc_polygons, taxi_batch):
        lngs, lats = taxi_batch
        scan = ScanJoin(nyc_polygons)
        for k in range(0, 800, 13):
            truth = set(scan.query(lngs[k], lats[k]))
            true_hits, candidates = grid_index.query(lngs[k], lats[k])
            assert truth <= set(true_hits) | set(candidates)

    def test_out_of_bounds_point(self, grid_index):
        assert grid_index.query(120.0, 10.0) == ([], [])
        assert grid_index.query_exact(120.0, 10.0) == []


class TestResolutionTradeoff:
    def test_finer_grid_more_true_hits(self, nyc_polygons, taxi_batch):
        """Higher resolution -> more fully-inside cells -> fewer PIP tests.

        This is the knob a non-hierarchical grid must turn globally,
        paying memory everywhere — the weakness ACT's hierarchy fixes."""
        lngs, lats = taxi_batch
        coarse = FixedGridIndex(nyc_polygons, resolution=24)
        fine = FixedGridIndex(nyc_polygons, resolution=192)

        def true_hit_pairs(index):
            total = 0
            for k in range(0, 1200, 3):
                true_hits, _ = index.query(lngs[k], lats[k])
                total += len(true_hits)
            return total

        assert true_hit_pairs(fine) > true_hit_pairs(coarse)
        assert fine.size_bytes > coarse.size_bytes
