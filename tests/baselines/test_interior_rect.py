"""Tests for the interior-rectangle true-hit filtering baseline."""

import pytest

from repro.baselines.interior_rect import (
    InteriorRectIndex,
    maximal_inscribed_rect,
)
from repro.baselines.scan import ScanJoin


class TestInscribedRect:
    def test_rect_inside_polygon(self, hexagon):
        rect = maximal_inscribed_rect(hexagon)
        assert rect is not None
        for x, y in rect.sample_grid(5, 5):
            assert hexagon.contains(x, y)

    def test_rect_nontrivial_area(self, hexagon):
        rect = maximal_inscribed_rect(hexagon)
        assert rect.area > 0.3 * hexagon.area

    def test_concave_polygon(self, l_shape):
        rect = maximal_inscribed_rect(l_shape)
        assert rect is not None
        for x, y in rect.sample_grid(5, 5):
            assert l_shape.contains(x, y)

    def test_donut_rect_avoids_hole(self, donut):
        rect = maximal_inscribed_rect(donut)
        assert rect is not None
        for x, y in rect.sample_grid(6, 6):
            assert donut.contains(x, y)


class TestIndex:
    @pytest.fixture(scope="class")
    def index(self, nyc_polygons):
        return InteriorRectIndex(nyc_polygons)

    def test_true_hits_exact(self, index, nyc_polygons, taxi_batch):
        lngs, lats = taxi_batch
        for k in range(0, 800, 11):
            true_hits, _ = index.query(lngs[k], lats[k])
            for pid in true_hits:
                assert nyc_polygons[pid].contains(lngs[k], lats[k])

    def test_exact_matches_scan(self, index, nyc_polygons, taxi_batch):
        lngs, lats = taxi_batch
        exact = index.count_points(lngs[:1200], lats[:1200], exact=True)
        scan = ScanJoin(nyc_polygons).count_points(lngs[:1200], lats[:1200])
        assert exact.tolist() == scan.tolist()

    def test_true_hit_rate_between_zero_and_one(self, index, taxi_batch):
        lngs, lats = taxi_batch
        rate = index.true_hit_rate(lngs[:600], lats[:600])
        assert 0.0 <= rate <= 1.0

    def test_single_rect_weaker_than_act(self, nyc_polygons, taxi_batch):
        """The paper's claim: interior coverings beat single inner
        rectangles at true-hit filtering."""
        from repro import ACTIndex
        from repro.join import ApproximateJoin

        lngs, lats = taxi_batch
        index = InteriorRectIndex(nyc_polygons)
        rect_rate = index.true_hit_rate(lngs[:800], lats[:800])

        act = ACTIndex.build(nyc_polygons, precision_meters=120.0)
        result = ApproximateJoin(act).join(lngs[:800], lats[:800])
        act_rate = result.stats.true_hit_ratio
        assert act_rate > rect_rate
