"""Tests for the R*-tree baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.rtree import RStarTree, RTreeJoinBaseline
from repro.baselines.scan import ScanJoin
from repro.errors import JoinError
from repro.geometry.bbox import Rect

coords = st.floats(-10.0, 10.0)
rect_strategy = st.tuples(coords, coords, coords, coords).map(
    lambda t: Rect(min(t[0], t[2]), min(t[1], t[3]),
                   max(t[0], t[2]), max(t[1], t[3]))
)


class TestStructure:
    def test_min_max_entries(self):
        with pytest.raises(JoinError):
            RStarTree(max_entries=2)

    def test_empty_tree_queries(self):
        tree = RStarTree()
        assert tree.query_point(0, 0) == []
        assert tree.query_rect(Rect(0, 0, 1, 1)) == []
        assert len(tree) == 0

    def test_len_tracks_inserts(self, rng):
        tree = RStarTree()
        for k in range(50):
            x, y = rng.uniform(-5, 5, 2)
            tree.insert(Rect(x, y, x + 0.1, y + 0.1), k)
        assert len(tree) == 50

    def test_fill_invariants(self, rng):
        """No node overflows; non-root nodes hold >= 2 entries."""
        tree = RStarTree(max_entries=8)
        for k in range(300):
            x, y = rng.uniform(-5, 5, 2)
            tree.insert(Rect(x, y, x + rng.uniform(0, 1),
                             y + rng.uniform(0, 1)), k)
        stack = [(tree._root, True)]
        while stack:
            node, is_root = stack.pop()
            assert node.fill() <= 8
            if not is_root:
                assert node.fill() >= 2
            if not node.is_leaf:
                stack.extend((child, False) for child in node.children)

    def test_mbrs_contain_children(self, rng):
        tree = RStarTree(max_entries=8)
        for k in range(200):
            x, y = rng.uniform(-5, 5, 2)
            tree.insert(Rect(x, y, x + 0.2, y + 0.2), k)
        stack = [tree._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for rect, _ in node.entries:
                    assert node.mbr.contains_rect(rect)
            else:
                for child in node.children:
                    assert node.mbr.contains_rect(child.mbr)
                    stack.append(child)

    def test_height_grows_logarithmically(self, rng):
        tree = RStarTree(max_entries=8)
        for k in range(500):
            x, y = rng.uniform(-5, 5, 2)
            tree.insert(Rect(x, y, x + 0.01, y + 0.01), k)
        assert 2 <= tree.height <= 6

    def test_size_bytes_positive(self, rng):
        tree = RStarTree()
        tree.insert(Rect(0, 0, 1, 1), 0)
        assert tree.size_bytes > 0
        assert tree.num_nodes >= 1


class TestQueryCorrectness:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(rect_strategy, min_size=1, max_size=80),
           st.lists(st.tuples(coords, coords), min_size=1, max_size=20))
    def test_point_query_equals_bruteforce(self, rects, points):
        tree = RStarTree.build(rects)
        for x, y in points:
            want = sorted(i for i, r in enumerate(rects)
                          if r.contains_point(x, y))
            assert sorted(tree.query_point(x, y)) == want

    @settings(max_examples=30, deadline=None)
    @given(st.lists(rect_strategy, min_size=1, max_size=60), rect_strategy)
    def test_rect_query_equals_bruteforce(self, rects, window):
        tree = RStarTree.build(rects)
        want = sorted(i for i, r in enumerate(rects) if r.intersects(window))
        assert sorted(tree.query_rect(window)) == want

    def test_count_points(self, rng):
        rects = [Rect(0, 0, 1, 1), Rect(0.5, 0.5, 2, 2)]
        tree = RStarTree.build(rects)
        lngs = np.array([0.25, 0.75, 1.5, 5.0])
        lats = np.array([0.25, 0.75, 1.5, 5.0])
        counts = tree.count_points(lngs, lats, 2)
        assert counts.tolist() == [2, 2]


class TestJoinBaseline:
    def test_candidates_superset_of_exact(self, nyc_polygons, taxi_batch):
        lngs, lats = taxi_batch
        baseline = RTreeJoinBaseline(nyc_polygons)
        approx = baseline.count_points(lngs[:1000], lats[:1000])
        exact = baseline.count_points(lngs[:1000], lats[:1000], exact=True)
        assert (approx >= exact).all()

    def test_exact_matches_scan(self, nyc_polygons, taxi_batch):
        lngs, lats = taxi_batch
        baseline = RTreeJoinBaseline(nyc_polygons)
        exact = baseline.count_points(lngs[:1000], lats[:1000], exact=True)
        scan = ScanJoin(nyc_polygons).count_points(lngs[:1000], lats[:1000])
        assert exact.tolist() == scan.tolist()

    def test_query_exact_scalar(self, nyc_polygons, taxi_batch):
        lngs, lats = taxi_batch
        baseline = RTreeJoinBaseline(nyc_polygons)
        scan = ScanJoin(nyc_polygons)
        for k in range(0, 300, 7):
            assert sorted(baseline.query_exact(lngs[k], lats[k])) == \
                sorted(scan.query(lngs[k], lats[k]))

    def test_small_memory_footprint(self, nyc_polygons):
        """The paper: R-tree over MBRs is tiny (376 B .. 3.5 MB); ours
        must be orders of magnitude smaller than ACT."""
        from repro import ACTIndex

        baseline = RTreeJoinBaseline(nyc_polygons)
        index = ACTIndex.build(nyc_polygons, precision_meters=120.0)
        assert baseline.size_bytes * 50 < index.memory_report()["total_bytes"]
