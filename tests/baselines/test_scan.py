"""Tests for the brute-force scan oracle itself."""

import numpy as np

from repro.baselines.scan import ScanJoin


class TestScan:
    def test_query_lists_all_containers(self, overlap_polygons):
        scan = ScanJoin(overlap_polygons)
        # centroid of each polygon must report at least that polygon
        for pid, polygon in enumerate(overlap_polygons):
            cx, cy = polygon.centroid
            if polygon.contains(cx, cy):  # centroid of a convex zone
                assert pid in scan.query(cx, cy)

    def test_count_matches_membership_matrix(self, nyc_polygons, taxi_batch):
        lngs, lats = taxi_batch
        scan = ScanJoin(nyc_polygons)
        counts = scan.count_points(lngs[:500], lats[:500])
        matrix = scan.membership_matrix(lngs[:500], lats[:500])
        assert counts.tolist() == matrix.sum(axis=0).tolist()

    def test_matrix_row_is_query(self, nyc_polygons, taxi_batch):
        lngs, lats = taxi_batch
        scan = ScanJoin(nyc_polygons)
        matrix = scan.membership_matrix(lngs[:100], lats[:100])
        for k in range(0, 100, 9):
            assert sorted(np.flatnonzero(matrix[k]).tolist()) == \
                sorted(scan.query(lngs[k], lats[k]))

    def test_empty_points(self, nyc_polygons):
        scan = ScanJoin(nyc_polygons)
        counts = scan.count_points(np.empty(0), np.empty(0))
        assert counts.sum() == 0
