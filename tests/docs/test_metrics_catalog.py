"""CI gate: the OPERATIONS.md metrics catalog matches the code.

The catalog's contract is exhaustiveness — an operator paging through
an incident must be able to trust that every family the serving stack
eagerly registers has a row, and that no row describes a metric that
no longer exists. So this test builds the authoritative name set the
same way production does (constructing each component and reading the
registry back) and diffs it against the names parsed out of the
catalog tables.

Gauges and per-index families are derived at scrape time rather than
registered up front, so the catalog (and this gate) covers counters
and histograms — the families the RL004 eager-registration rule
governs.
"""

import re
import socket
import threading
from pathlib import Path

from repro.serve import IndexRegistry
from repro.serve.aserver import BinaryFrontend
from repro.serve.lifecycle import FleetLifecycle
from repro.serve.router import ShardedACTService
from repro.serve.server import ACTHTTPServer
from repro.serve.shard import plan_shard_map

OPERATIONS = (Path(__file__).resolve().parents[2]
              / "docs" / "OPERATIONS.md")

_ROW = re.compile(r"^\|\s*`([a-z_.]+)`\s*\|")


def _catalog_names():
    """Backticked first-column names from the catalog's tables."""
    text = OPERATIONS.read_text(encoding="utf-8")
    start = text.index("## Metrics catalog")
    end = text.find("\n## ", start + 1)
    section = text[start:end if end != -1 else None]
    names = set()
    for line in section.splitlines():
        match = _ROW.match(line.strip())
        if match and match.group(1) != "name":
            names.add(match.group(1))
    return names


def _registered_names(nyc_index):
    """Every counter/histogram family the serving stack registers
    eagerly, collected exactly the way production wires up: one
    sharded service with all fronts and the lifecycle attached."""
    registry = IndexRegistry()
    registry.register_index("nyc", nyc_index)
    shard_map = plan_shard_map({"nyc": nyc_index}, 1)
    service = ShardedACTService(registry=registry, shard_map=shard_map,
                                slot=0)
    try:
        BinaryFrontend(service)  # never started: ctor registers
        http = ACTHTTPServer(("127.0.0.1", 0), service,
                             bind_and_activate=False)
        http.server_close()
        FleetLifecycle(control={}, op_lock=threading.Lock(),
                       identity="catalog", workers=1, service=service)
        snapshot = service.metrics.snapshot()
        return (set(snapshot["counters"]) | set(snapshot["histograms"]))
    finally:
        service.close()


def test_catalog_matches_registered_names(nyc_index):
    documented = _catalog_names()
    registered = _registered_names(nyc_index)
    missing_rows = registered - documented
    stale_rows = documented - registered
    assert not missing_rows, (
        f"metrics registered but missing from the OPERATIONS.md "
        f"catalog: {sorted(missing_rows)}")
    assert not stale_rows, (
        f"OPERATIONS.md catalog rows with no registration site: "
        f"{sorted(stale_rows)}")


def test_catalog_is_nonempty():
    assert len(_catalog_names()) > 20
