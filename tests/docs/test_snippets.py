"""CI gate: the docs' python snippets actually run.

Every fenced python block in ``docs/*.md`` tagged with a
``<!-- doctest -->`` comment on the line above it is extracted and
executed in a fresh namespace. Untagged blocks (shell transcripts,
fragments that need a live server) are ignored — tag only
self-contained snippets.

Each snippet is its own parametrized test so a failure names the
document and block that rotted.
"""

import re
from pathlib import Path

import pytest

DOCS_DIR = Path(__file__).resolve().parents[2] / "docs"

_BLOCK = re.compile(r"<!-- doctest -->\n```python\n(.*?)```", re.S)


def _collect():
    cases = []
    for doc in sorted(DOCS_DIR.glob("*.md")):
        text = doc.read_text(encoding="utf-8")
        for i, match in enumerate(_BLOCK.finditer(text)):
            line = text[:match.start()].count("\n") + 2
            cases.append(pytest.param(
                doc.name, line, match.group(1),
                id=f"{doc.name}:{line}"))
    return cases


_CASES = _collect()


def test_docs_have_doctest_snippets():
    """The gate is only meaningful while the docs carry tagged
    snippets; an empty sweep must fail loudly, not pass silently."""
    assert len(_CASES) >= 3


@pytest.mark.parametrize(("doc", "line", "source"), _CASES)
def test_snippet_executes(doc, line, source):
    code = compile(source, f"docs/{doc}:{line}", "exec")
    exec(code, {"__name__": f"doctest_{doc}_{line}"})
