"""Tests for the taxi-like point generators."""

import numpy as np
import pytest

from repro.datasets.nyc import REGION
from repro.datasets.points import point_stream, taxi_points, uniform_points
from repro.errors import DatasetError


class TestTaxiPoints:
    def test_count_and_shapes(self):
        lngs, lats = taxi_points(1000, seed=1)
        assert lngs.shape == lats.shape == (1000,)

    def test_deterministic(self):
        a = taxi_points(500, seed=9)
        b = taxi_points(500, seed=9)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_seed_changes_points(self):
        a = taxi_points(500, seed=1)
        b = taxi_points(500, seed=2)
        assert not np.array_equal(a[0], b[0])

    def test_noise_fraction_outside_region(self):
        lngs, lats = taxi_points(20000, noise_fraction=0.1, seed=3)
        outside = sum(1 for x, y in zip(lngs, lats)
                      if not REGION.contains_point(x, y))
        assert 0.05 * 20000 < outside < 0.15 * 20000

    def test_zero_noise_all_inside(self):
        lngs, lats = taxi_points(5000, noise_fraction=0.0, seed=3)
        assert all(REGION.contains_point(x, y) for x, y in zip(lngs, lats))

    def test_hotspots_create_clustering(self):
        """Hotspot points concentrate mass: the densest 1% of the region
        holds far more than 1% of points."""
        lngs, _ = taxi_points(20000, hotspot_fraction=0.9,
                              noise_fraction=0.0, seed=4)
        hist, _ = np.histogram(lngs, bins=100)
        assert hist.max() > 3 * (20000 / 100)

    def test_uniform_has_no_strong_clustering(self):
        lngs, _ = taxi_points(20000, hotspot_fraction=0.0,
                              noise_fraction=0.0, seed=4)
        hist, _ = np.histogram(lngs, bins=50)
        assert hist.max() < 2.0 * (20000 / 50)

    def test_invalid_params(self):
        with pytest.raises(DatasetError):
            taxi_points(0)
        with pytest.raises(DatasetError):
            taxi_points(10, hotspot_fraction=1.5)


class TestUniformPoints:
    def test_inside_bounds(self):
        lngs, lats = uniform_points(2000, seed=5)
        assert all(REGION.contains_point(x, y) for x, y in zip(lngs, lats))

    def test_invalid_count(self):
        with pytest.raises(DatasetError):
            uniform_points(0)


class TestPointStream:
    def test_total_and_batching(self):
        batches = list(point_stream(2300, 500, seed=6))
        sizes = [len(b[0]) for b in batches]
        assert sizes == [500, 500, 500, 500, 300]

    def test_batches_differ(self):
        batches = list(point_stream(1000, 500, seed=6))
        assert not np.array_equal(batches[0][0], batches[1][0])

    def test_invalid_batch_size(self):
        with pytest.raises(DatasetError):
            list(point_stream(100, 0))
