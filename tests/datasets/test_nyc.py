"""Tests for the NYC-like polygon datasets."""

import pytest

from repro.config import PAPER_NUM_BOROUGHS, PAPER_NUM_NEIGHBORHOODS
from repro.datasets.nyc import REGION, boroughs, census_blocks, neighborhoods
from repro.errors import DatasetError


class TestBoroughs:
    def test_default_count(self):
        assert len(boroughs()) == PAPER_NUM_BOROUGHS

    def test_high_complexity(self):
        """The paper: boroughs are few but significantly more complex."""
        b = boroughs()
        n = neighborhoods(60)
        avg_borough_verts = sum(p.num_vertices for p in b) / len(b)
        avg_neighborhood_verts = sum(p.num_vertices for p in n) / len(n)
        assert avg_borough_verts > 3 * avg_neighborhood_verts

    def test_in_region(self):
        for polygon in boroughs():
            assert REGION.expanded(REGION.width * 0.2).contains_rect(
                polygon.bbox
            )

    def test_deterministic(self):
        first = boroughs()
        second = boroughs()
        assert all(a == b for a, b in zip(first, second))


class TestNeighborhoods:
    def test_custom_count(self):
        assert len(neighborhoods(50)) == 50

    def test_paper_count_default(self):
        import inspect

        default = inspect.signature(neighborhoods).parameters["num"].default
        assert default == PAPER_NUM_NEIGHBORHOODS

    def test_tiles_region(self):
        cells = neighborhoods(40)
        total = sum(p.area for p in cells)
        # rough borders wiggle area around the exact partition
        assert total == pytest.approx(REGION.area, rel=0.05)


class TestCensusBlocks:
    def test_count(self):
        assert len(census_blocks(300)) == 300

    def test_blocks_small_and_disjoint(self):
        blocks = census_blocks(200)
        areas = [b.area for b in blocks]
        assert max(areas) < REGION.area / 100
        for i, a in enumerate(blocks[:50]):
            for b in blocks[i + 1:50]:
                assert not a.bbox.intersects(b.bbox)

    def test_invalid_count(self):
        with pytest.raises(DatasetError):
            census_blocks(0)


class TestSizeOrdering:
    def test_polygon_size_hierarchy(self):
        """boroughs >> neighborhoods >> census blocks by average area."""
        b = boroughs()
        n = neighborhoods(100)
        c = census_blocks(500)
        avg = lambda ps: sum(p.area for p in ps) / len(ps)
        assert avg(b) > 10 * avg(n) > 10 * avg(c)
