"""Tests for the synthetic region generators."""

import pytest

from repro.datasets.synthetic import (
    densify_polygon,
    displace_edge,
    overlapping_zones,
    street_grid_blocks,
    voronoi_partition,
)
from repro.errors import DatasetError
from repro.geometry.bbox import Rect

BOUNDS = Rect(0.0, 0.0, 10.0, 8.0)


class TestVoronoi:
    def test_cell_count(self):
        cells = voronoi_partition(BOUNDS, 25, seed=1)
        assert len(cells) == 25

    def test_single_cell_is_bounds(self):
        cells = voronoi_partition(BOUNDS, 1, seed=1)
        assert cells[0].area == pytest.approx(BOUNDS.area)

    def test_partition_tiles_bounds(self):
        cells = voronoi_partition(BOUNDS, 20, seed=2)
        assert sum(c.area for c in cells) == pytest.approx(BOUNDS.area,
                                                           rel=1e-6)

    def test_cells_stay_in_bounds(self):
        for cell in voronoi_partition(BOUNDS, 15, seed=3):
            assert BOUNDS.expanded(1e-9).contains_rect(cell.bbox)

    def test_deterministic(self):
        a = voronoi_partition(BOUNDS, 10, seed=5)
        b = voronoi_partition(BOUNDS, 10, seed=5)
        assert all(pa == pb for pa, pb in zip(a, b))

    def test_invalid_count(self):
        with pytest.raises(DatasetError):
            voronoi_partition(BOUNDS, 0)

    def test_seamless_no_overlaps(self, rng):
        """Random points fall into exactly one Voronoi cell (or touch a
        border)."""
        cells = voronoi_partition(BOUNDS, 12, seed=4)
        inside_counts = []
        for _ in range(400):
            x = float(rng.uniform(0.2, 9.8))
            y = float(rng.uniform(0.2, 7.8))
            inside_counts.append(sum(c.contains(x, y) for c in cells))
        assert inside_counts.count(1) > 390  # borders may report 0 or 2


class TestDisplaceEdge:
    def test_direction_consistency(self):
        """Shared edges displace identically regardless of direction —
        the property that keeps partitions seamless."""
        p0, p1 = (0.0, 0.0), (4.0, 2.0)
        forward = displace_edge(p0, p1, depth=3, amplitude=0.2)
        backward = displace_edge(p1, p0, depth=3, amplitude=0.2)
        assert forward[0] == p0 and backward[0] == p1
        assert forward[1:] == list(reversed(backward[1:]))

    def test_point_count(self):
        pts = displace_edge((0, 0), (1, 0), depth=3)
        assert len(pts) == 2 ** 3  # p0 + 7 interior midpoints

    def test_zero_depth(self):
        assert displace_edge((0, 0), (1, 0), depth=0) == [(0, 0)]

    def test_salt_changes_shape(self):
        a = displace_edge((0, 0), (4, 2), depth=3, salt=0)
        b = displace_edge((0, 0), (4, 2), depth=3, salt=1)
        assert a != b


class TestDensify:
    def test_vertex_multiplication(self, hexagon):
        dense = densify_polygon(hexagon, depth=3)
        assert len(dense.shell) == 6 * 8

    def test_rough_partition_stays_seamless(self, rng):
        """Densifying a partition edge-consistently must keep coverage:
        nearly every interior point is in exactly one rough cell."""
        cells = voronoi_partition(BOUNDS, 8, seed=6)
        rough = [densify_polygon(c, depth=2, amplitude=0.06, salt=9)
                 for c in cells]
        exactly_one = 0
        for _ in range(300):
            x = float(rng.uniform(0.5, 9.5))
            y = float(rng.uniform(0.5, 7.5))
            if sum(c.contains(x, y) for c in rough) == 1:
                exactly_one += 1
        assert exactly_one > 290

    def test_preserves_holes(self, donut):
        dense = densify_polygon(donut, depth=2, amplitude=0.02)
        assert len(dense.holes) == 1


class TestStreetGrid:
    def test_block_count(self):
        blocks = street_grid_blocks(BOUNDS, rows=5, cols=7, seed=1)
        assert len(blocks) == 35

    def test_blocks_disjoint(self):
        blocks = street_grid_blocks(BOUNDS, rows=4, cols=4,
                                    street_fraction=0.2, seed=2)
        for i, a in enumerate(blocks):
            for b in blocks[i + 1:]:
                assert not a.bbox.intersects(b.bbox)

    def test_blocks_inside_bounds(self):
        for block in street_grid_blocks(BOUNDS, 3, 3, seed=0):
            assert BOUNDS.contains_rect(block.bbox)

    def test_invalid_params(self):
        with pytest.raises(DatasetError):
            street_grid_blocks(BOUNDS, 0, 3)
        with pytest.raises(DatasetError):
            street_grid_blocks(BOUNDS, 3, 3, street_fraction=0.95)


class TestOverlappingZones:
    def test_zone_count_and_validity(self):
        zones = overlapping_zones(BOUNDS, 12, seed=1)
        assert len(zones) == 12
        assert all(z.area > 0 for z in zones)

    def test_zones_actually_overlap(self, rng):
        zones = overlapping_zones(BOUNDS, 12, seed=1)
        overlapping_points = 0
        for _ in range(500):
            x = float(rng.uniform(*BOUNDS.center) if False
                      else rng.uniform(BOUNDS.min_x, BOUNDS.max_x))
            y = float(rng.uniform(BOUNDS.min_y, BOUNDS.max_y))
            if sum(z.contains(x, y) for z in zones) >= 2:
                overlapping_points += 1
        assert overlapping_points > 20

    def test_invalid_count(self):
        with pytest.raises(DatasetError):
            overlapping_zones(BOUNDS, 0)
