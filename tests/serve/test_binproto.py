"""Codec tests for the zero-copy binary batch protocol
(:mod:`repro.serve.binproto`) — framing, strict bounds checking, and
the fatal/non-fatal error taxonomy, all without a live server."""

import numpy as np
import pytest

from repro.act.core import QueryResult
from repro.errors import (
    BudgetExceededError,
    InvalidRequestError,
    ServeError,
    UnknownIndexError,
)
from repro.serve import binproto


def _payload(frame: bytes) -> bytes:
    return frame[binproto.HEADER_SIZE:]


class TestHeader:
    def test_round_trip(self):
        frame = binproto.encode_header(binproto.OP_QUERY,
                                       binproto.FLAG_EXACT, 77, 160)
        assert len(frame) == binproto.HEADER_SIZE == 24
        op, flags, request_id, payload_len = \
            binproto.try_parse_header(frame)
        assert op == binproto.OP_QUERY
        assert flags == binproto.FLAG_EXACT
        assert request_id == 77
        assert payload_len == 160

    def test_short_buffer_waits(self):
        frame = binproto.encode_ping(1)
        for cut in range(binproto.HEADER_SIZE):
            assert binproto.try_parse_header(frame[:cut]) is None

    def test_offset_parse(self):
        frame = binproto.encode_ping(9)
        buf = b"\x00" * 5 + frame
        assert binproto.try_parse_header(buf, 5)[2] == 9

    @pytest.mark.parametrize("mutate, fragment", [
        (lambda f: b"XXXB" + f[4:], "magic"),
        (lambda f: f[:4] + bytes([99]) + f[5:], "version"),
    ])
    def test_fatal_header_violations(self, mutate, fragment):
        frame = mutate(binproto.encode_ping(1))
        with pytest.raises(binproto.FrameError) as excinfo:
            binproto.try_parse_header(frame)
        assert excinfo.value.fatal
        assert fragment in str(excinfo.value)

    def test_oversized_declared_payload_is_fatal(self):
        frame = binproto.encode_header(
            binproto.OP_QUERY, 0, 1, binproto.MAX_FRAME_BYTES + 1)
        with pytest.raises(binproto.FrameError) as excinfo:
            binproto.try_parse_header(frame)
        assert excinfo.value.fatal
        assert "frame limit" in str(excinfo.value)

    def test_max_payload_is_not_fatal(self):
        frame = binproto.encode_header(
            binproto.OP_QUERY, 0, 1, binproto.MAX_FRAME_BYTES)
        assert binproto.try_parse_header(frame)[3] == \
            binproto.MAX_FRAME_BYTES


class TestPointsRequest:
    def test_round_trip_zero_copy(self):
        lngs = np.linspace(-74.1, -73.8, 33)
        lats = np.linspace(40.6, 40.9, 33)
        frame = binproto.encode_points_request(
            binproto.OP_QUERY, "nyc", lngs, lats, exact=True,
            budget_ms=12.5, request_id=5)
        op, flags, request_id, payload_len = \
            binproto.try_parse_header(frame)
        assert (op, flags, request_id) == (binproto.OP_QUERY,
                                           binproto.FLAG_EXACT, 5)
        payload = _payload(frame)
        assert len(payload) == payload_len
        name, got_lngs, got_lats, budget_ms = \
            binproto.decode_points_request(payload)
        assert name == "nyc"
        assert budget_ms == 12.5
        np.testing.assert_array_equal(got_lngs, lngs)
        np.testing.assert_array_equal(got_lats, lats)
        # zero-copy: the decoded columns are views into the payload
        assert got_lngs.base is not None
        assert got_lats.base is not None

    def test_columns_are_8_aligned_in_frame(self):
        # alignment holds for any name length thanks to the pad
        for name in ("a", "ab", "abc", "abcdefg", "x" * 13, "né"):
            frame = binproto.encode_points_request(
                binproto.OP_QUERY, name, np.zeros(3), np.zeros(3))
            name_bytes = len(name.encode("utf-8"))
            arrays_at = binproto.HEADER_SIZE + binproto._REQ.size + \
                name_bytes + ((-(binproto._REQ.size + name_bytes)) % 8)
            assert arrays_at % 8 == 0
            decoded = binproto.decode_points_request(_payload(frame))
            assert decoded[0] == name

    def test_no_budget_is_none(self):
        frame = binproto.encode_points_request(
            binproto.OP_JOIN, "n", np.zeros(1), np.zeros(1))
        assert binproto.decode_points_request(_payload(frame))[3] is None

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(InvalidRequestError):
            binproto.encode_points_request(
                binproto.OP_QUERY, "n", np.zeros(3), np.zeros(4))

    def test_truncated_payload_is_non_fatal(self):
        frame = binproto.encode_points_request(
            binproto.OP_QUERY, "nyc", np.zeros(10), np.zeros(10))
        with pytest.raises(binproto.FrameError) as excinfo:
            binproto.decode_points_request(_payload(frame)[:40])
        assert not excinfo.value.fatal
        assert excinfo.value.status == binproto.STATUS_BAD_REQUEST

    def test_overlong_name_length_is_non_fatal(self):
        frame = binproto.encode_points_request(
            binproto.OP_QUERY, "nyc", np.zeros(2), np.zeros(2))
        payload = bytearray(_payload(frame))
        payload[0:2] = (60_000).to_bytes(2, "little")  # name overruns
        with pytest.raises(binproto.FrameError) as excinfo:
            binproto.decode_points_request(bytes(payload))
        assert not excinfo.value.fatal

    def test_bad_utf8_name_is_non_fatal(self):
        frame = binproto.encode_points_request(
            binproto.OP_QUERY, "ab", np.zeros(1), np.zeros(1))
        payload = bytearray(_payload(frame))
        payload[binproto._REQ.size] = 0xFF  # invalid UTF-8 start byte
        with pytest.raises(binproto.FrameError) as excinfo:
            binproto.decode_points_request(bytes(payload))
        assert "UTF-8" in str(excinfo.value)


class TestResults:
    def test_round_trip(self):
        results = [
            QueryResult((1, 2), (7,)),
            QueryResult((), ()),
            QueryResult((5,), (0, 3, 9)),
        ]
        frame = binproto.encode_results(results, request_id=11)
        decoded = binproto.decode_results(_payload(frame))
        assert decoded == results

    def test_empty_batch(self):
        assert binproto.decode_results(
            _payload(binproto.encode_results([]))) == []

    def test_byte_budget_mismatch_rejected(self):
        frame = binproto.encode_results([QueryResult((1,), (2,))])
        with pytest.raises(binproto.FrameError):
            binproto.decode_results(_payload(frame)[:-8])

    def test_count_total_mismatch_rejected(self):
        frame = binproto.encode_results([QueryResult((1,), ())])
        payload = bytearray(_payload(frame))
        # bump the per-point true count without touching the total
        payload[binproto._RES.size] += 1
        with pytest.raises(binproto.FrameError) as excinfo:
            binproto.decode_results(bytes(payload))
        assert "disagree" in str(excinfo.value)


class TestCountsAndErrors:
    def test_counts_round_trip(self):
        ids = np.array([3, 17, 250], dtype=np.int64)
        counts = np.array([1, 40, 7], dtype=np.int64)
        frame = binproto.encode_counts(ids, counts, request_id=2)
        assert binproto.decode_counts(_payload(frame)) == \
            {3: 1, 17: 40, 250: 7}

    def test_counts_length_mismatch_rejected(self):
        frame = binproto.encode_counts(np.array([1]), np.array([2]))
        with pytest.raises(binproto.FrameError):
            binproto.decode_counts(_payload(frame) + b"\x00" * 8)

    def test_error_round_trip(self):
        frame = binproto.encode_error(404, "no index 'x'", request_id=9)
        status, message = binproto.decode_error(_payload(frame))
        assert (status, message) == (404, "no index 'x'")

    @pytest.mark.parametrize("status, exc", [
        (binproto.STATUS_NOT_FOUND, UnknownIndexError),
        (binproto.STATUS_SHED, BudgetExceededError),
        (binproto.STATUS_BAD_REQUEST, InvalidRequestError),
        (binproto.STATUS_INTERNAL, ServeError),
    ])
    def test_raise_for_error_mapping(self, status, exc):
        frame = binproto.encode_error(status, "boom")
        with pytest.raises(exc, match="boom"):
            binproto.raise_for_error(_payload(frame))
