"""Codec tests for the zero-copy binary batch protocol
(:mod:`repro.serve.binproto`) — framing, strict bounds checking, and
the fatal/non-fatal error taxonomy, all without a live server."""

import numpy as np
import pytest

from repro.act.core import QueryResult
from repro.errors import (
    BudgetExceededError,
    InvalidRequestError,
    ServeError,
    UnknownIndexError,
)
from repro.serve import binproto


def _payload(frame: bytes) -> bytes:
    return frame[binproto.HEADER_SIZE:]


class TestHeader:
    def test_round_trip(self):
        frame = binproto.encode_header(binproto.OP_QUERY,
                                       binproto.FLAG_EXACT, 77, 160)
        assert len(frame) == binproto.HEADER_SIZE == 24
        op, flags, request_id, payload_len = \
            binproto.try_parse_header(frame)
        assert op == binproto.OP_QUERY
        assert flags == binproto.FLAG_EXACT
        assert request_id == 77
        assert payload_len == 160

    def test_short_buffer_waits(self):
        frame = binproto.encode_ping(1)
        for cut in range(binproto.HEADER_SIZE):
            assert binproto.try_parse_header(frame[:cut]) is None

    def test_offset_parse(self):
        frame = binproto.encode_ping(9)
        buf = b"\x00" * 5 + frame
        assert binproto.try_parse_header(buf, 5)[2] == 9

    @pytest.mark.parametrize("mutate, fragment", [
        (lambda f: b"XXXB" + f[4:], "magic"),
        (lambda f: f[:4] + bytes([99]) + f[5:], "version"),
    ])
    def test_fatal_header_violations(self, mutate, fragment):
        frame = mutate(binproto.encode_ping(1))
        with pytest.raises(binproto.FrameError) as excinfo:
            binproto.try_parse_header(frame)
        assert excinfo.value.fatal
        assert fragment in str(excinfo.value)

    def test_oversized_declared_payload_is_fatal(self):
        frame = binproto.encode_header(
            binproto.OP_QUERY, 0, 1, binproto.MAX_FRAME_BYTES + 1)
        with pytest.raises(binproto.FrameError) as excinfo:
            binproto.try_parse_header(frame)
        assert excinfo.value.fatal
        assert "frame limit" in str(excinfo.value)

    def test_max_payload_is_not_fatal(self):
        frame = binproto.encode_header(
            binproto.OP_QUERY, 0, 1, binproto.MAX_FRAME_BYTES)
        assert binproto.try_parse_header(frame)[3] == \
            binproto.MAX_FRAME_BYTES


class TestPointsRequest:
    def test_round_trip_zero_copy(self):
        lngs = np.linspace(-74.1, -73.8, 33)
        lats = np.linspace(40.6, 40.9, 33)
        frame = binproto.encode_points_request(
            binproto.OP_QUERY, "nyc", lngs, lats, exact=True,
            budget_ms=12.5, request_id=5)
        op, flags, request_id, payload_len = \
            binproto.try_parse_header(frame)
        assert (op, flags, request_id) == (binproto.OP_QUERY,
                                           binproto.FLAG_EXACT, 5)
        payload = _payload(frame)
        assert len(payload) == payload_len
        name, got_lngs, got_lats, budget_ms = \
            binproto.decode_points_request(payload)
        assert name == "nyc"
        assert budget_ms == 12.5
        np.testing.assert_array_equal(got_lngs, lngs)
        np.testing.assert_array_equal(got_lats, lats)
        # zero-copy: the decoded columns are views into the payload
        assert got_lngs.base is not None
        assert got_lats.base is not None

    def test_columns_are_8_aligned_in_frame(self):
        # alignment holds for any name length thanks to the pad
        for name in ("a", "ab", "abc", "abcdefg", "x" * 13, "né"):
            frame = binproto.encode_points_request(
                binproto.OP_QUERY, name, np.zeros(3), np.zeros(3))
            name_bytes = len(name.encode("utf-8"))
            arrays_at = binproto.HEADER_SIZE + binproto._REQ.size + \
                name_bytes + ((-(binproto._REQ.size + name_bytes)) % 8)
            assert arrays_at % 8 == 0
            decoded = binproto.decode_points_request(_payload(frame))
            assert decoded[0] == name

    def test_no_budget_is_none(self):
        frame = binproto.encode_points_request(
            binproto.OP_JOIN, "n", np.zeros(1), np.zeros(1))
        assert binproto.decode_points_request(_payload(frame))[3] is None

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(InvalidRequestError):
            binproto.encode_points_request(
                binproto.OP_QUERY, "n", np.zeros(3), np.zeros(4))

    def test_truncated_payload_is_non_fatal(self):
        frame = binproto.encode_points_request(
            binproto.OP_QUERY, "nyc", np.zeros(10), np.zeros(10))
        with pytest.raises(binproto.FrameError) as excinfo:
            binproto.decode_points_request(_payload(frame)[:40])
        assert not excinfo.value.fatal
        assert excinfo.value.status == binproto.STATUS_BAD_REQUEST

    def test_overlong_name_length_is_non_fatal(self):
        frame = binproto.encode_points_request(
            binproto.OP_QUERY, "nyc", np.zeros(2), np.zeros(2))
        payload = bytearray(_payload(frame))
        payload[0:2] = (60_000).to_bytes(2, "little")  # name overruns
        with pytest.raises(binproto.FrameError) as excinfo:
            binproto.decode_points_request(bytes(payload))
        assert not excinfo.value.fatal

    def test_bad_utf8_name_is_non_fatal(self):
        frame = binproto.encode_points_request(
            binproto.OP_QUERY, "ab", np.zeros(1), np.zeros(1))
        payload = bytearray(_payload(frame))
        payload[binproto._REQ.size] = 0xFF  # invalid UTF-8 start byte
        with pytest.raises(binproto.FrameError) as excinfo:
            binproto.decode_points_request(bytes(payload))
        assert "UTF-8" in str(excinfo.value)


class TestResults:
    def test_round_trip(self):
        results = [
            QueryResult((1, 2), (7,)),
            QueryResult((), ()),
            QueryResult((5,), (0, 3, 9)),
        ]
        frame = binproto.encode_results(results, request_id=11)
        decoded = binproto.decode_results(_payload(frame))
        assert decoded == results

    def test_empty_batch(self):
        assert binproto.decode_results(
            _payload(binproto.encode_results([]))) == []

    def test_byte_budget_mismatch_rejected(self):
        frame = binproto.encode_results([QueryResult((1,), (2,))])
        with pytest.raises(binproto.FrameError):
            binproto.decode_results(_payload(frame)[:-8])

    def test_count_total_mismatch_rejected(self):
        frame = binproto.encode_results([QueryResult((1,), ())])
        payload = bytearray(_payload(frame))
        # bump the per-point true count without touching the total
        payload[binproto._RES.size] += 1
        with pytest.raises(binproto.FrameError) as excinfo:
            binproto.decode_results(bytes(payload))
        assert "disagree" in str(excinfo.value)


class TestCountsAndErrors:
    def test_counts_round_trip(self):
        ids = np.array([3, 17, 250], dtype=np.int64)
        counts = np.array([1, 40, 7], dtype=np.int64)
        frame = binproto.encode_counts(ids, counts, request_id=2)
        assert binproto.decode_counts(_payload(frame)) == \
            {3: 1, 17: 40, 250: 7}

    def test_counts_length_mismatch_rejected(self):
        frame = binproto.encode_counts(np.array([1]), np.array([2]))
        with pytest.raises(binproto.FrameError):
            binproto.decode_counts(_payload(frame) + b"\x00" * 8)

    def test_error_round_trip(self):
        frame = binproto.encode_error(404, "no index 'x'", request_id=9)
        status, message = binproto.decode_error(_payload(frame))
        assert (status, message) == (404, "no index 'x'")

    @pytest.mark.parametrize("status, exc", [
        (binproto.STATUS_NOT_FOUND, UnknownIndexError),
        (binproto.STATUS_SHED, BudgetExceededError),
        (binproto.STATUS_BAD_REQUEST, InvalidRequestError),
        (binproto.STATUS_INTERNAL, ServeError),
    ])
    def test_raise_for_error_mapping(self, status, exc):
        frame = binproto.encode_error(status, "boom")
        with pytest.raises(exc, match="boom"):
            binproto.raise_for_error(_payload(frame))


# ---------------------------------------------------------------------
# Client fault tolerance against a scripted raw-socket server
# ---------------------------------------------------------------------

import socket
import threading

from repro.errors import ConnectionLostError


class _ConnReader:
    """Incremental frame reader for scripted server connections."""

    def __init__(self, conn):
        self.conn = conn
        self.buf = bytearray()

    def frame(self):
        """``(op, request_id)`` of the next request, or ``None`` on
        EOF. Handles several pipelined frames per ``recv``."""
        while True:
            header = binproto.try_parse_header(self.buf)
            if header is not None:
                op, _, request_id, payload_len = header
                total = binproto.HEADER_SIZE + payload_len
                if len(self.buf) >= total:
                    del self.buf[:total]
                    return op, request_id
            try:
                chunk = self.conn.recv(1 << 16)
            except OSError:
                return None
            if not chunk:
                return None
            self.buf += chunk


class _ScriptedServer:
    """Raw-socket server whose per-connection behavior is scripted.

    Connection *k* runs ``scripts[k]`` (the last script repeats), which
    lets a test express "drop the first connection mid-pipeline, serve
    the second normally" deterministically.
    """

    def __init__(self, scripts):
        self.scripts = list(scripts)
        self.connections = 0
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self._sock.settimeout(0.1)
        self.port = self._sock.getsockname()[1]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            script = self.scripts[
                min(self.connections, len(self.scripts) - 1)]
            self.connections += 1
            try:
                script(conn, self._stop)
            except OSError:
                pass
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self._stop.set()
        try:
            self._sock.close()
        except OSError:
            pass
        self._thread.join(timeout=5.0)


def _stall_mid_frame(conn, stop):
    """Answer with *half* a pong header, then go silent."""
    got = _ConnReader(conn).frame()
    if got is not None:
        pong = binproto.encode_header(binproto.OP_PONG, 0, got[1], 0)
        conn.sendall(pong[:10])
        stop.wait(30.0)


def _drop_after_read(conn, stop):
    """Read one request and close without answering."""
    _ConnReader(conn).frame()


def _echo_pongs(conn, stop):
    reader = _ConnReader(conn)
    while True:
        got = reader.frame()
        if got is None:
            return
        conn.sendall(binproto.encode_header(
            binproto.OP_PONG, 0, got[1], 0))


def _answer_one_query_then_drop(conn, stop):
    got = _ConnReader(conn).frame()
    if got is not None:
        conn.sendall(_canned_results(got[1]))


def _echo_query_results(conn, stop):
    reader = _ConnReader(conn)
    while True:
        got = reader.frame()
        if got is None:
            return
        conn.sendall(_canned_results(got[1]))


def _canned_results(request_id):
    # a per-request-id payload so tests can prove which answer is whose
    return binproto.encode_results(
        [QueryResult((int(request_id),), ())], request_id=request_id)


class TestClientResilience:
    def test_timeout_mid_frame_never_desyncs(self):
        # regression: a receive timeout used to leave the half-received
        # frame in the buffer, desynchronizing every later response
        with _ScriptedServer([_stall_mid_frame]) as server:
            client = binproto.Client("127.0.0.1", server.port,
                                     timeout=0.4, retries=0)
            with pytest.raises(ConnectionLostError,
                               match="partial frame") as excinfo:
                client.ping()
            # typed (a ServeError subclass) so existing handlers catch it
            assert isinstance(excinfo.value, ServeError)
            # the untrustworthy tail was dropped with the connection …
            assert client._buf == bytearray()
            # … and with reconnection disabled the broken stream
            # refuses further use rather than misframe
            with pytest.raises(ConnectionLostError, match="disabled"):
                client.ping()

    def test_reconnect_replays_unacknowledged_ping(self):
        with _ScriptedServer([_drop_after_read, _echo_pongs]) as server:
            client = binproto.Client("127.0.0.1", server.port,
                                     timeout=10.0, retries=3,
                                     backoff_s=0.01)
            assert client.ping() is True  # survives the dropped conn
            assert client.reconnects == 1
            assert client._pending == {}
            assert client.ping() is True  # the new stream is healthy
            client.close()

    def test_reconnect_replays_pipeline_in_order(self):
        lngs, lats = [0.0], [0.0]
        with _ScriptedServer([_answer_one_query_then_drop,
                              _echo_query_results]) as server:
            client = binproto.Client("127.0.0.1", server.port,
                                     timeout=10.0, retries=3,
                                     backoff_s=0.01)
            sent = [client.send_query("idx", lngs, lats)
                    for _ in range(3)]
            got = [client.recv_results() for _ in range(3)]
            client.close()
        # the dead connection owed responses 2 and 3; replay produced
        # exactly those, in pipeline order, each with its own answer
        assert [rid for rid, _ in got] == sent
        for rid, results in got:
            assert results == [QueryResult((rid,), ())]
        assert client.reconnects == 1

    def test_closed_client_refuses_reconnect(self):
        with _ScriptedServer([_echo_pongs]) as server:
            client = binproto.Client("127.0.0.1", server.port,
                                     timeout=5.0, retries=2)
            assert client.ping() is True
            client.close()
            with pytest.raises(ConnectionLostError, match="closed"):
                client.ping()
        assert client._pending == {}

    def test_retries_zero_send_failure_is_typed(self):
        with _ScriptedServer([_drop_after_read]) as server:
            client = binproto.Client("127.0.0.1", server.port,
                                     timeout=0.5, retries=0)
            with pytest.raises(ConnectionLostError):
                client.ping()
            client.close()
