"""Tests for the cell-keyed LRU result cache.

Includes the correctness property the cache relies on: ACT answers are
constant within a boundary-level grid cell.
"""

import numpy as np

from repro.act.index import QueryResult
from repro.grid import cellid
from repro.serve import CellResultCache


def _result(*ids):
    return QueryResult(tuple(ids), ())


class TestLRUBehavior:
    def test_get_miss_then_hit(self):
        cache = CellResultCache(capacity=4)
        key = ("idx", 1, 123)
        assert cache.get(key) is None
        cache.put(key, _result(1))
        assert cache.get(key) == _result(1)
        assert cache.hits == 1 and cache.misses == 1

    def test_eviction_drops_least_recently_used(self):
        cache = CellResultCache(capacity=2)
        cache.put(("i", 1, 1), _result(1))
        cache.put(("i", 1, 2), _result(2))
        cache.get(("i", 1, 1))          # 1 becomes most recent
        cache.put(("i", 1, 3), _result(3))  # evicts 2
        assert cache.get(("i", 1, 2)) is None
        assert cache.get(("i", 1, 1)) == _result(1)
        assert cache.get(("i", 1, 3)) == _result(3)
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_zero_capacity_disables(self):
        cache = CellResultCache(capacity=0)
        cache.put(("i", 1, 1), _result(1))
        assert cache.get(("i", 1, 1)) is None
        assert len(cache) == 0

    def test_invalidate_index_only_touches_that_index(self):
        cache = CellResultCache(capacity=8)
        cache.put(("a", 1, 1), _result(1))
        cache.put(("a", 1, 2), _result(2))
        cache.put(("b", 1, 1), _result(3))
        assert cache.invalidate_index("a") == 2
        assert cache.get(("b", 1, 1)) == _result(3)
        assert cache.get(("a", 1, 1)) is None

    def test_invalidate_keep_generation_spares_new_entries(self):
        cache = CellResultCache(capacity=8)
        cache.put(("a", 1, 10), _result(1))
        cache.put(("a", 1, 11), _result(2))
        cache.put(("a", 2, 10), _result(9))  # the reloaded generation
        cache.put(("b", 1, 10), _result(3))
        # a reload sweeps every stale generation of "a" but keeps what
        # generation 2 already warmed (and other indexes untouched)
        assert cache.invalidate_index("a", keep_generation=2) == 2
        assert cache.get(("a", 2, 10)) == _result(9)
        assert cache.get(("a", 1, 10)) is None
        assert cache.get(("b", 1, 10)) == _result(3)
        assert cache.stats()["invalidations"] == 2

    def test_stats_shape(self):
        cache = CellResultCache(capacity=2)
        cache.put(("i", 1, 1), _result(1))
        cache.get(("i", 1, 1))
        cache.get(("i", 1, 9))
        stats = cache.stats()
        assert stats["size"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5


class TestCellConstancy:
    """The invariant that justifies keying results by boundary-level cell:
    every point whose leaf cell shares a boundary-level ancestor gets an
    identical classified answer."""

    def test_results_constant_within_boundary_cell(self, nyc_index, rng_serve):
        grid = nyc_index.grid
        level = nyc_index.boundary_level
        # clustered points so many share a boundary-level cell
        centers = rng_serve.uniform(
            [grid.bounds.min_x, grid.bounds.min_y],
            [grid.bounds.max_x, grid.bounds.max_y],
            size=(20, 2),
        )
        by_cell = {}
        for cx, cy in centers:
            for _ in range(25):
                lng = float(np.clip(cx + rng_serve.normal(0, 1e-3),
                                    grid.bounds.min_x, grid.bounds.max_x))
                lat = float(np.clip(cy + rng_serve.normal(0, 1e-3),
                                    grid.bounds.min_y, grid.bounds.max_y))
                leaf = grid.leaf_cell(lng, lat)
                if leaf is None:
                    continue
                key = cellid.parent(leaf, level)
                by_cell.setdefault(key, []).append(
                    nyc_index.query(lng, lat))
        shared = [results for results in by_cell.values() if len(results) > 1]
        assert shared, "workload produced no co-located points"
        for results in shared:
            assert all(r == results[0] for r in results)
