"""Fleet smoke tests: pre-fork workers on one address, supervised.

Everything here forks real processes and speaks real HTTP, so the
module skips wholesale where ``fork`` is unavailable. Workloads are
kept tiny — the scaling measurements live in
``benchmarks/bench_12_fleet.py``.
"""

import json
import os
import signal
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.serve import FleetConfig, IndexRegistry, ServingFleet
from repro.serve.fleet import aggregate_snapshots, fleet_available

pytestmark = pytest.mark.skipif(
    not fleet_available(),
    reason="fleet needs the 'fork' start method",
)


def _get(address, path, timeout=15.0):
    host, port = address
    with urllib.request.urlopen(f"http://{host}:{port}{path}",
                                timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


def _get_text(address, path, timeout=15.0):
    host, port = address
    with urllib.request.urlopen(f"http://{host}:{port}{path}",
                                timeout=timeout) as resp:
        return resp.status, resp.read().decode("utf-8")


def _post(address, path, payload, timeout=60.0):
    host, port = address
    request = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


def _delete(address, path, timeout=60.0):
    host, port = address
    request = urllib.request.Request(f"http://{host}:{port}{path}",
                                     method="DELETE")
    with urllib.request.urlopen(request, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


@pytest.fixture()
def fleet_registry(nyc_index):
    registry = IndexRegistry()
    registry.register_index("nyc", nyc_index)
    return registry


def _fleet(registry, **overrides):
    config = FleetConfig(workers=2, stats_interval_s=0.1,
                         restart_backoff_s=0.05, **overrides)
    return ServingFleet(registry, config)


class TestFleetServing:
    def test_hammer_aggregated_stats_and_clean_shutdown(
            self, fleet_registry, nyc_index, query_points):
        lngs, lats = query_points
        with _fleet(fleet_registry) as fleet:
            fleet.start()
            sent = 0
            for lng, lat in zip(lngs[:40], lats[:40]):
                status, body = _get(
                    fleet.address,
                    f"/query?index=nyc&lng={lng}&lat={lat}&exact=1")
                assert status == 200
                expected = nyc_index.query_exact(lng, lat)
                assert sorted(body["true_hits"]) == sorted(expected)
                sent += 1
            # every worker publishes on its stats interval; poll until
            # the fleet-wide counter converges on what we sent
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                _, stats = _get(fleet.address, "/stats")
                fleet_view = stats["fleet"]
                if fleet_view["counters"]["queries.total"] == sent:
                    break
                time.sleep(0.1)
            assert fleet_view["workers"] == 2
            assert fleet_view["counters"]["queries.total"] == sent
            assert fleet_view["counters"]["queries.errors"] == 0
            assert fleet_view["qps"] > 0
            # the parent sees the same aggregate without HTTP
            parent_view = fleet.stats()
            assert parent_view["counters"]["queries.total"] == sent
            fleet.shutdown()
            exitcodes = [p.exitcode for p in fleet._processes
                         if p is not None]
            assert exitcodes == [0, 0], \
                "drained workers must exit cleanly, not be killed"

    def test_binary_roundtrip_against_live_fleet(
            self, fleet_registry, nyc_index, query_points):
        """CI smoke: one binary round-trip through ``binproto.Client``
        against a live 2-worker fleet, with the ``binary.*`` families
        visible in the fleet's ``/metrics`` exposition."""
        from repro.obs import validate_exposition
        from repro.serve import binproto

        lngs, lats = query_points
        with _fleet(fleet_registry, binary_port=0) as fleet:
            fleet.start()
            with binproto.Client(*fleet.binary_address,
                                 timeout=30.0) as client:
                assert client.ping()
                results = client.query_batch("nyc", lngs[:32], lats[:32],
                                             exact=True)
            for result, lng, lat in zip(results, lngs, lats):
                assert sorted(result.true_hits) == sorted(
                    nyc_index.query_exact(lng, lat))
            status, text = _get_text(fleet.address, "/metrics")
            assert status == 200
            assert validate_exposition(text) == []
            assert "repro_fleet_binary_requests_total" in text
            assert "repro_fleet_binary_request_seconds_bucket" in text
            fleet.shutdown()

    def test_shared_socket_fallback_serves(self, fleet_registry, nyc_index):
        # reuseport=False forces the classic one-socket pre-fork model
        with _fleet(fleet_registry, reuseport=False) as fleet:
            fleet.start()
            assert not fleet.reuseport
            for _ in range(10):
                status, body = _get(
                    fleet.address, "/query?index=nyc&lng=-73.97&lat=40.75")
                assert status == 200
                assert tuple(body["true_hits"]) == nyc_index.query(
                    -73.97, 40.75).true_hits

    def test_worker_crash_is_survived(self, fleet_registry):
        with _fleet(fleet_registry) as fleet:
            fleet.start()
            # traffic first, so the crashed worker has counters to lose
            for _ in range(20):
                _get(fleet.address, "/query?index=nyc&lng=-73.97&lat=40.75")
            time.sleep(0.3)  # let snapshots publish
            before = fleet.stats()["counters"]["queries.total"]
            status, body = _get(fleet.address, "/healthz")
            assert status == 200
            os.kill(body["pid"], signal.SIGKILL)
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline and fleet.restarts < 1:
                time.sleep(0.05)
            assert fleet.restarts >= 1, "supervisor never respawned"
            while time.monotonic() < deadline and fleet.live_workers() < 2:
                time.sleep(0.05)
            assert fleet.live_workers() == 2
            # /healthz answers again (possibly from the replacement)
            status, _ = _get(fleet.address, "/healthz")
            assert status == 200
            # the dead worker's counters were folded into the retired
            # baseline: fleet totals never go backwards across restarts
            assert fleet.stats()["counters"]["queries.total"] >= before

    def test_parked_keepalive_connection_does_not_block_drain(
            self, fleet_registry):
        import http.client

        with _fleet(fleet_registry,
                    keepalive_idle_timeout_s=1.0) as fleet:
            fleet.start()
            host, port = fleet.address
            # park an idle HTTP/1.1 keep-alive connection: its request
            # thread sits in the next-request read and must time out
            # rather than hold the (non-daemon-thread) drain hostage
            parked = http.client.HTTPConnection(host, port, timeout=30)
            parked.request("GET", "/healthz")
            parked.getresponse().read()
            start = time.monotonic()
            fleet.shutdown()
            drain = time.monotonic() - start
            parked.close()
            exitcodes = [p.exitcode for p in fleet._processes
                         if p is not None]
            assert exitcodes == [0, 0], \
                "drain must finish without killing workers"
            assert drain < 8.0

    def test_sigterm_drains_in_flight_requests(self, fleet_registry,
                                               nyc_index):
        from repro.datasets import taxi_points

        lngs, lats = taxi_points(200_000, seed=5)
        payload = {
            "index": "nyc",
            "points": [[float(a), float(b)] for a, b in zip(lngs, lats)],
            "exact": True,
        }
        # a 200k-point exact answer is a multi-MB JSON write; on a
        # loaded machine that can outlive the default 10 s drain
        # window, degrading the drain to a kill and flaking the test.
        with _fleet(fleet_registry, drain_timeout_s=30.0) as fleet:
            fleet.start()
            outcome = {}

            def client():
                try:
                    outcome["status"], body = _post(
                        fleet.address, "/query", payload)
                    outcome["num_points"] = body["num_points"]
                except Exception as exc:  # pragma: no cover - failure path
                    outcome["error"] = exc

            thread = threading.Thread(target=client)
            thread.start()
            # wait for *admission*, not a fixed sleep: queries.total
            # counts points when the batch is admitted and workers
            # publish every 0.1 s, so this triggers the drain while the
            # request is genuinely in flight. (A fixed sleep raced the
            # client's multi-MB JSON upload on slow machines and shut
            # the listener down before the request was ever accepted.)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline and thread.is_alive():
                if fleet.stats()["counters"]["queries.total"] >= len(lngs):
                    break
                time.sleep(0.05)
            fleet.shutdown()
            thread.join(timeout=60.0)
            assert outcome.get("error") is None, \
                f"in-flight request was cut: {outcome.get('error')}"
            assert outcome["status"] == 200
            assert outcome["num_points"] == len(lngs)
            exitcodes = [p.exitcode for p in fleet._processes
                         if p is not None]
            assert all(code == 0 for code in exitcodes)


class TestFleetReload:
    """The fleet-wide zero-downtime reload protocol (admin surface).

    Two distinguishable index generations (west-half vs east-half
    polygon) are flipped via ``POST /admin/reload`` on a live worker
    while clients hammer ``/query`` and ``/join``: zero failed
    requests, and after the reload every worker answers from the new
    generation (each ack carries the generation it adopted; the
    ``/admin/indexes`` listing is then polled until both worker pids
    report it).
    """

    @pytest.fixture()
    def half_index_paths(self, tmp_path):
        from repro import ACTIndex
        from repro.act.serialize import save_index
        from repro.datasets.nyc import REGION
        from repro.geometry import Polygon

        mid_x = (REGION.min_x + REGION.max_x) / 2.0
        paths = {}
        for side, lo, hi in [("west", REGION.min_x, mid_x),
                             ("east", mid_x, REGION.max_x)]:
            polygon = Polygon([(lo, REGION.min_y), (hi, REGION.min_y),
                               (hi, REGION.max_y), (lo, REGION.max_y)])
            index = ACTIndex.build([polygon], precision_meters=500.0)
            paths[side] = tmp_path / f"{side}.npz"
            save_index(index, paths[side])
        probe = (REGION.min_x + 0.75 * (REGION.max_x - REGION.min_x),
                 REGION.min_y + 0.50 * (REGION.max_y - REGION.min_y))
        return paths, probe

    def test_fleet_wide_reload_under_traffic(self, half_index_paths):
        paths, (lng, lat) = half_index_paths
        registry = IndexRegistry()
        registry.register_path("halves", paths["west"], mmap_mode="r")
        answers = {"west": [], "east": [0]}
        state = {"history": ["west"], "pending": None}
        failures = []
        stop = threading.Event()

        def hammer(kind):
            while not stop.is_set():
                sent_at = len(state["history"])
                try:
                    if kind == "query":
                        _status, body = _get(
                            fleet.address,
                            f"/query?index=halves&lng={lng}&lat={lat}"
                            f"&exact=1")
                        got = sorted(body["true_hits"])
                    else:
                        _status, body = _post(fleet.address, "/join", {
                            "index": "halves", "exact": True,
                            "points": [[lng, lat]] * 4,
                        })
                        got = [0] if body["counts"] else []
                except Exception as exc:
                    failures.append(f"{kind}: {exc!r}")
                    continue
                received_at = len(state["history"])
                acceptable = set(state["history"][sent_at - 1:received_at])
                if state["pending"] is not None:
                    acceptable.add(state["pending"])
                if not any(got == answers[s] for s in acceptable):
                    failures.append(
                        f"{kind}: stale answer {got} "
                        f"(acceptable {sorted(acceptable)})")

        with _fleet(registry, admin_timeout_s=60.0) as fleet:
            fleet.start()
            threads = [
                threading.Thread(target=hammer, args=(kind,), daemon=True)
                for kind in ("query", "join", "query")
            ]
            for thread in threads:
                thread.start()
            for side in ("east", "west", "east"):
                time.sleep(0.3)
                state["pending"] = side
                status, body = _post(fleet.address, "/admin/reload", {
                    "name": "halves", "path": str(paths[side]),
                    "mmap_mode": "r",
                }, timeout=90.0)
                assert status == 200
                # every process acked the swap before the call returned
                assert body["complete"] is True, body
                assert set(body["acks"]) == {"0", "1", "parent"}
                for ack in body["acks"].values():
                    assert ack["ok"], ack
                state["history"].append(side)
                state["pending"] = None
            generation = body["generation"]
            assert generation == 4  # initial + three reloads
            time.sleep(0.3)
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)
            assert not failures, failures[:10]
            # post-reload, the answer reflects the final generation …
            for _ in range(8):
                _status, body = _get(
                    fleet.address,
                    f"/query?index=halves&lng={lng}&lat={lat}&exact=1")
                assert sorted(body["true_hits"]) == answers["east"]
            # … and every worker process reports serving it
            seen = {}
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline and len(seen) < 2:
                _status, listing = _get(fleet.address, "/admin/indexes")
                (entry,) = listing["indexes"]
                seen[listing["worker"]] = entry["generation"]
            assert seen == {0: generation, 1: generation}
            # after reload-under-traffic, any worker's /metrics scrape
            # is valid exposition carrying the *final* generation label
            # and the bucket-merged fleet latency histogram
            from repro.obs import parse_exposition, validate_exposition

            deadline = time.monotonic() + 20.0
            families = {}
            while time.monotonic() < deadline:
                status, text = _get_text(fleet.address, "/metrics")
                assert status == 200
                assert validate_exposition(text) == []
                families = parse_exposition(text)
                if "repro_fleet_queries_latency_seconds" in families:
                    break
                time.sleep(0.1)  # first stats publish may lag
            fleet_latency = families["repro_fleet_queries_latency_seconds"]
            assert fleet_latency["type"] == "histogram"
            assert any(labels.get("le") == "+Inf"
                       for _name, labels, _v in fleet_latency["samples"])
            generations = {
                labels["generation"]
                for _name, labels, _v
                in families["repro_index_generation"]["samples"]
            }
            assert generations == {str(generation)}

    def test_fleet_reload_via_parent_api(self, half_index_paths):
        paths, (lng, lat) = half_index_paths
        registry = IndexRegistry()
        registry.register_path("halves", paths["west"], mmap_mode="r")
        with _fleet(registry, admin_timeout_s=60.0) as fleet:
            fleet.start()
            result = fleet.admin({
                "op": "reload", "name": "halves",
                "path": str(paths["east"]), "mmap_mode": "r",
            })
            assert result["complete"] is True, result
            assert result["generation"] == 2
            _status, body = _get(
                fleet.address,
                f"/query?index=halves&lng={lng}&lat={lat}&exact=1")
            assert sorted(body["true_hits"]) == [0]

    def test_fleet_register_and_unregister(self, half_index_paths,
                                           fleet_registry):
        paths, (lng, lat) = half_index_paths
        with _fleet(fleet_registry, admin_timeout_s=60.0) as fleet:
            fleet.start()
            status, body = _post(fleet.address, "/admin/register", {
                "name": "east", "path": str(paths["east"]),
                "mmap_mode": "r",
            }, timeout=90.0)
            assert status == 200 and body["complete"] is True, body
            # the new index serves on every worker (poll both pids)
            seen = set()
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline and len(seen) < 2:
                _status, q = _get(
                    fleet.address,
                    f"/query?index=east&lng={lng}&lat={lat}&exact=1")
                assert sorted(q["true_hits"]) == [0]
                _status, listing = _get(fleet.address, "/admin/indexes")
                if {e["name"] for e in listing["indexes"]} >= \
                        {"east", "nyc"}:
                    seen.add(listing["worker"])
            assert seen == {0, 1}
            status, body = _delete(fleet.address, "/admin/index/east")
            assert status == 200 and body["complete"] is True, body
            # eventually 404s everywhere (either worker may answer)
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                try:
                    _get(fleet.address,
                         f"/query?index=east&lng={lng}&lat={lat}")
                except urllib.error.HTTPError as exc:
                    if exc.code == 404:
                        break
                time.sleep(0.05)
            else:
                pytest.fail("unregistered index kept serving")


class TestAggregation:
    def _snapshot(self, worker, total, shed, uptime, samples):
        from repro.obs import MergeableHistogram

        latency = MergeableHistogram()
        for s in samples:
            latency.observe(s)
        return {
            "worker": worker,
            "pid": 1000 + worker,
            "uptime_seconds": uptime,
            "metrics": {
                "counters": {"queries.total": total, "queries.shed": shed},
                "histograms": {
                    "queries.latency_seconds": latency.snapshot(),
                },
            },
        }

    def test_aggregate_snapshots(self):
        # worker 0 is the slow one: its samples dominate the fleet tail
        view = aggregate_snapshots({
            0: self._snapshot(0, total=100, shed=2, uptime=10.0,
                              samples=[0.05] * 100),
            1: self._snapshot(1, total=300, shed=0, uptime=8.0,
                              samples=[0.01] * 300),
        })
        assert view["workers"] == 2
        assert view["counters"]["queries.total"] == 400
        assert view["counters"]["queries.shed"] == 2
        assert view["qps"] == pytest.approx(40.0)  # 400 over max uptime
        assert [w["worker"] for w in view["per_worker"]] == [0, 1]
        # bucket-merged fleet quantiles are quantiles of the union of
        # all 400 samples: p99 lands in the slow worker's bucket (the
        # top quarter of traffic), p50 in the fast worker's — the old
        # worst-worker aggregation would have called p50 0.05 too
        merged = view["histograms"]["queries.latency_seconds"]
        assert merged["count"] == 400
        assert view["latency_p99_seconds"] == pytest.approx(0.05, rel=0.6)
        assert view["latency_p50_seconds"] == pytest.approx(0.01, rel=0.6)
        assert view["latency_p50_seconds"] < view["latency_p99_seconds"]

    def test_aggregate_empty(self):
        view = aggregate_snapshots({})
        assert view["workers"] == 0
        assert view["qps"] == 0.0

    def test_aggregate_includes_retired_counters(self):
        from repro.serve.fleet import RETIRED_KEY

        view = aggregate_snapshots({
            0: self._snapshot(0, total=50, shed=0, uptime=5.0,
                              samples=[0.01] * 50),
            RETIRED_KEY: {"queries.total": 1000, "queries.shed": 7},
        })
        # crashed predecessors' counters keep the totals monotone
        # (flat legacy shape — pre-histogram retired entries still fold)
        assert view["workers"] == 1
        assert view["counters"]["queries.total"] == 1050
        assert view["counters"]["queries.shed"] == 7
        assert view["retired_counters"]["queries.total"] == 1000

    def test_aggregate_includes_retired_histograms(self):
        from repro.serve.fleet import RETIRED_KEY

        # the nested retired shape the supervisor writes when a worker
        # dies: its counters plus its bucket-merged latency snapshot
        dead = self._snapshot(0, total=200, shed=1, uptime=9.0,
                              samples=[0.2] * 200)["metrics"]
        view = aggregate_snapshots({
            1: self._snapshot(1, total=100, shed=0, uptime=5.0,
                              samples=[0.001] * 100),
            RETIRED_KEY: {"counters": dead["counters"],
                          "histograms": dead["histograms"]},
        })
        # a crashed worker's slow samples stay in the fleet quantiles
        assert view["counters"]["queries.total"] == 300
        merged = view["histograms"]["queries.latency_seconds"]
        assert merged["count"] == 300
        assert view["latency_p99_seconds"] == pytest.approx(0.2, rel=0.6)

    def test_restart_backoff_escalates_and_resets(self, fleet_registry):
        fleet = _fleet(fleet_registry)
        fleet._backoffs = [0.1, 0.1]
        fleet._spawn_times = [time.monotonic(), time.monotonic() - 60.0]
        # slot 0 died young: backoff doubles toward the cap
        assert fleet._next_backoff(0) == pytest.approx(0.2)
        assert fleet._next_backoff(0) == pytest.approx(0.4)
        for _ in range(10):
            fleet._next_backoff(0)
        assert fleet._backoffs[0] == fleet.config.restart_backoff_max_s
        # slot 1 ran for a minute before dying: back to the base pause
        assert fleet._next_backoff(1) == pytest.approx(
            fleet.config.restart_backoff_s)

    def test_restart_backoff_young_threshold_scales(self, fleet_registry):
        # "died young" is judged against the *current* backoff
        # (max(1.0, 2·backoff)), so an escalated slot demands a longer
        # clean run before it forgives
        fleet = _fleet(fleet_registry, restart_backoff_max_s=5.0)
        fleet._backoffs = [2.0, 2.0]
        # 3 s of uptime < 2·2.0 s: still young, keeps escalating
        fleet._spawn_times = [time.monotonic() - 3.0,
                              time.monotonic() - 4.5]
        assert fleet._next_backoff(0) == pytest.approx(4.0)
        # 4.5 s of uptime > 2·2.0 s: survived the probation, resets
        assert fleet._next_backoff(1) == pytest.approx(
            fleet.config.restart_backoff_s)
        # a sub-second base still uses the 1 s floor for "young"
        fleet._backoffs = [0.05, 0.05]
        fleet._spawn_times = [time.monotonic() - 0.5,
                              time.monotonic() - 1.5]
        assert fleet._next_backoff(0) == pytest.approx(0.1)   # young
        assert fleet._next_backoff(1) == pytest.approx(       # not
            fleet.config.restart_backoff_s)
