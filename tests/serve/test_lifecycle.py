"""Index lifecycle tests: admin ops, the HTTP admin surface, and
zero-downtime reload under live traffic (single-process).

The fleet-wide (multiprocess) reload protocol is exercised in
``test_fleet.py``; everything here runs in one process so it is cheap
enough for the tier-1 suite.
"""

import contextlib
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import ACTIndex
from repro.act.serialize import save_index
from repro.datasets.nyc import REGION
from repro.errors import InvalidRequestError, ServeError, UnknownIndexError
from repro.geometry import Polygon
from repro.serve import (
    ACTService,
    AdminOp,
    ServeConfig,
    apply_admin_op,
    create_server,
    handle_admin_request,
)

#: Probe point deep inside the eastern half of the region: a miss for
#: the "west" index, a true hit (polygon 0) for the "east" index.
PROBE = (
    REGION.min_x + 0.75 * (REGION.max_x - REGION.min_x),
    REGION.min_y + 0.50 * (REGION.max_y - REGION.min_y),
)


def _half_region_polygon(side: str) -> Polygon:
    mid_x = (REGION.min_x + REGION.max_x) / 2.0
    lo = REGION.min_x if side == "west" else mid_x
    hi = mid_x if side == "west" else REGION.max_x
    return Polygon([(lo, REGION.min_y), (hi, REGION.min_y),
                    (hi, REGION.max_y), (lo, REGION.max_y)])


@pytest.fixture(scope="module")
def index_pair(tmp_path_factory):
    """Two serialized indexes whose answers differ at ``PROBE``."""
    base = tmp_path_factory.mktemp("generations")
    west = ACTIndex.build([_half_region_polygon("west")],
                          precision_meters=500.0)
    east = ACTIndex.build([_half_region_polygon("east")],
                          precision_meters=500.0)
    west_path = base / "west.npz"
    east_path = base / "east.npz"
    save_index(west, west_path)
    save_index(east, east_path)
    return west_path, east_path


@contextlib.contextmanager
def _running_server(service):
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=5.0)


def _get(server, path):
    port = server.server_address[1]
    request = urllib.request.Request(f"http://127.0.0.1:{port}{path}")
    with urllib.request.urlopen(request, timeout=15.0) as resp:
        return resp.status, json.loads(resp.read())


def _post(server, path, payload):
    port = server.server_address[1]
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30.0) as resp:
        return resp.status, json.loads(resp.read())


def _delete(server, path):
    port = server.server_address[1]
    request = urllib.request.Request(f"http://127.0.0.1:{port}{path}",
                                     method="DELETE")
    with urllib.request.urlopen(request, timeout=15.0) as resp:
        return resp.status, json.loads(resp.read())


class TestAdminOpWire:
    def test_wire_roundtrip(self):
        op = AdminOp(kind="reload", name="nyc", seq=3, generation=7,
                     source_path="/tmp/new.npz",
                     artifact_path="/tmp/side.npz",
                     artifact_mmap_mode="r")
        back = AdminOp.from_wire(op.to_wire())
        assert back == op

    def test_unset_mmap_survives_roundtrip(self):
        from repro.serve.registry import _UNSET

        op = AdminOp(kind="reload", name="nyc", seq=1)
        wire = op.to_wire()
        assert "source_mmap_mode" not in wire
        assert AdminOp.from_wire(wire).source_mmap_mode is _UNSET


class TestApplyAdminOp:
    def test_register_reload_unregister_cycle(self, index_pair):
        west_path, east_path = index_pair
        service = ACTService()
        with service:
            out = apply_admin_op(AdminOp("register", "halves",
                                         source_path=str(west_path)),
                                 service=service)
            assert out["generation"] == 1
            assert service.query("halves", *PROBE, exact=True).true_hits \
                == ()
            out = apply_admin_op(AdminOp("reload", "halves",
                                         source_path=str(east_path)),
                                 service=service)
            assert out["generation"] == 2
            assert service.query("halves", *PROBE, exact=True).true_hits \
                == (0,)
            out = apply_admin_op(AdminOp("unregister", "halves"),
                                 service=service)
            assert out["name"] == "halves"
            with pytest.raises(UnknownIndexError):
                service.query("halves", *PROBE)

    def test_reload_is_idempotent_by_generation(self, index_pair):
        west_path, _ = index_pair
        service = ACTService()
        with service:
            service.register_index_path("w", west_path)
            first = service.registry.pin("w")
            # a replayed op (same target generation) must be a no-op —
            # this is what lets respawned fleet workers re-ack safely
            out = apply_admin_op(AdminOp("reload", "w", generation=1),
                                 service=service)
            assert out["generation"] == 1
            assert service.registry.pin("w") is first

    def test_unregister_unknown_idempotent_for_followers_only(self):
        service = ACTService()
        with service:
            # follower (fleet replay) mode absorbs the repeat quietly …
            out = apply_admin_op(AdminOp("unregister", "ghost"),
                                 service=service, strict=False)
            assert out["already_unregistered"] is True
            # … but an operator deleting an unknown index sees the 404
            with pytest.raises(UnknownIndexError):
                apply_admin_op(AdminOp("unregister", "ghost"),
                               service=service)

    def test_registry_only_application(self, index_pair):
        # the fleet parent applies ops without a service
        from repro.serve import IndexRegistry

        west_path, east_path = index_pair
        registry = IndexRegistry()
        apply_admin_op(AdminOp("register", "h", source_path=str(west_path)),
                       registry=registry)
        assert registry.pin("h").generation == 1
        out = apply_admin_op(
            AdminOp("reload", "h", source_path=str(east_path),
                    generation=2),
            registry=registry)
        assert out["generation"] == 2
        assert registry.pin("h").index.query_exact(*PROBE) == (0,)

    def test_generation_counter_survives_reregistration(self, index_pair):
        # a request in flight across an unregister may still write
        # cache entries under the old name+generation; a re-registered
        # name must continue the sequence so those keys can never alias
        west_path, east_path = index_pair
        service = ACTService()
        with service:
            service.register_index_path("n", west_path)
            apply_admin_op(AdminOp("reload", "n"), service=service)
            assert service.registry.pin("n").generation == 2
            service.unregister_index("n")
            service.register_index_path("n", east_path)
            assert service.registry.pin("n").generation == 3

    @staticmethod
    @contextlib.contextmanager
    def _parent_poller(control, op_lock, tmp_path, registered):
        """A thread standing in for the fleet parent's supervisor loop."""
        from repro.serve import FleetLifecycle, IndexRegistry
        from repro.serve.lifecycle import PARENT_IDENTITY

        registry = IndexRegistry()
        for name, path in registered.items():
            registry.register_path(name, path)
        parent = FleetLifecycle(
            control=control, op_lock=op_lock, identity=PARENT_IDENTITY,
            workers=1, registry=registry, artifact_dir=str(tmp_path),
            timeout_s=2.0)
        stop = threading.Event()

        def loop():
            while not stop.wait(0.02):
                parent.poll()

        thread = threading.Thread(target=loop, daemon=True)
        thread.start()
        try:
            yield registry
        finally:
            stop.set()
            thread.join(timeout=5.0)

    def test_rollback_when_side_artifact_write_fails(self, index_pair,
                                                     tmp_path,
                                                     monkeypatch):
        # the coordinator applies locally before writing the side
        # artifact; a write failure must roll it back onto the fleet's
        # generation (and burn the failed number) instead of leaving
        # this process serving a divergent dataset forever
        import repro.serve.lifecycle as lifecycle_module
        from repro.serve import FleetLifecycle

        west_path, east_path = index_pair
        control, op_lock = {}, threading.Lock()
        service = ACTService()
        with service, self._parent_poller(
                control, op_lock, tmp_path, {"n": west_path}):
            service.register_index_path("n", west_path)
            before = service.registry.pin("n")
            fleet = FleetLifecycle(
                control=control, op_lock=op_lock, identity="0",
                workers=1, service=service,
                artifact_dir=str(tmp_path), timeout_s=5.0)

            def explode(index, path):
                raise OSError("disk full")

            monkeypatch.setattr(lifecycle_module.serialize,
                                "save_index_atomic", explode)
            with pytest.raises(OSError):
                fleet.submit({"op": "reload", "name": "n",
                              "path": str(east_path)})
            # still serving the pre-reload record, queries keep working
            assert service.registry.pin("n") is before
            assert service.query("n", *PROBE, exact=True).true_hits == ()
            monkeypatch.undo()
            result = fleet.submit({"op": "reload", "name": "n",
                                   "path": str(east_path)})
            assert result["complete"] is True, result
            # generation 2 was burned by the failed attempt
            assert result["generation"] == 3
            assert service.query("n", *PROBE, exact=True).true_hits \
                == (0,)

    def test_submit_sweeps_stale_ack_keys(self, index_pair, tmp_path):
        from repro.serve import FleetLifecycle

        west_path, _ = index_pair
        control = {"ack:1:9": {"ok": True},  # straggler leftovers
                   "ack:2:parent": {"ok": False}}
        op_lock = threading.Lock()
        service = ACTService()
        with service, self._parent_poller(
                control, op_lock, tmp_path, {"n": west_path}):
            service.register_index_path("n", west_path)
            fleet = FleetLifecycle(
                control=control, op_lock=op_lock, identity="0",
                workers=1, service=service,
                artifact_dir=str(tmp_path), timeout_s=5.0)
            result = fleet.submit({"op": "reload", "name": "n"})
            assert result["complete"] is True, result
            leftover = [k for k in control if str(k).startswith("ack:")]
            # only the just-finished barrier could have written acks,
            # and _wait_for_acks cleans those up itself
            assert leftover == []

    def test_path_traversing_names_rejected(self):
        from repro.serve.lifecycle import request_to_op

        for name in ("a/b", "../x", "..", ".hidden", "a\\b", "/abs"):
            with pytest.raises(InvalidRequestError):
                request_to_op({"op": "reload", "name": name})
        op = request_to_op({"op": "reload", "name": "ok-1.2_x"})
        assert op.name == "ok-1.2_x"

    def test_request_validation(self):
        service = ACTService()
        with service:
            with pytest.raises(InvalidRequestError):
                handle_admin_request(service, {"op": "explode", "name": "x"})
            with pytest.raises(InvalidRequestError):
                handle_admin_request(service, {"op": "reload"})
            with pytest.raises(InvalidRequestError):
                handle_admin_request(service, {"op": "register", "name": "x"})
            with pytest.raises(InvalidRequestError):
                handle_admin_request(service, {
                    "op": "reload", "name": "x", "mmap_mode": "w",
                })

    def test_duplicate_register_rejected(self, index_pair):
        west_path, _ = index_pair
        service = ACTService()
        with service:
            handle_admin_request(service, {
                "op": "register", "name": "dup", "path": str(west_path),
            })
            with pytest.raises(ServeError):
                handle_admin_request(service, {
                    "op": "register", "name": "dup", "path": str(west_path),
                })


class TestAdminHTTP:
    def test_admin_surface_end_to_end(self, index_pair):
        west_path, east_path = index_pair
        service = ACTService()
        with _running_server(service) as server:
            status, body = _post(server, "/admin/register", {
                "name": "halves", "path": str(west_path), "mmap_mode": "r",
            })
            assert status == 200
            assert body["generation"] == 1
            assert body["complete"] is True
            assert body["index"]["mmap_mode"] == "r"

            status, listing = _get(server, "/admin/indexes")
            assert status == 200
            (entry,) = listing["indexes"]
            assert entry["name"] == "halves"
            assert entry["generation"] == 1
            assert entry["source"] == "path"
            assert entry["bytes"] > 0
            assert entry["mmap_mode"] == "r"
            assert isinstance(listing["pid"], int)

            lng, lat = PROBE
            status, q = _get(
                server,
                f"/query?index=halves&lng={lng}&lat={lat}&exact=1")
            assert status == 200 and q["true_hits"] == []

            status, body = _post(server, "/admin/reload", {
                "name": "halves", "path": str(east_path),
            })
            assert status == 200
            assert body["generation"] == 2
            status, q = _get(
                server,
                f"/query?index=halves&lng={lng}&lat={lat}&exact=1")
            assert status == 200 and q["true_hits"] == [0]

            status, body = _delete(server, "/admin/index/halves")
            assert status == 200
            status, listing = _get(server, "/admin/indexes")
            assert listing["indexes"] == []

    def test_admin_error_codes(self, index_pair):
        west_path, _ = index_pair
        service = ACTService()
        with _running_server(service) as server:
            for method, path, payload, expected in [
                ("POST", "/admin/reload", {"name": "ghost"}, 404),
                ("DELETE", "/admin/index/ghost", None, 404),
                ("POST", "/admin/register", {"name": "x"}, 400),
                ("POST", "/admin/reload", {"name": 7}, 400),
                ("POST", "/admin/register",
                 {"name": "x", "path": "/nonexistent.npz"}, 400),
            ]:
                with pytest.raises(urllib.error.HTTPError) as err:
                    if method == "DELETE":
                        _delete(server, path)
                    else:
                        _post(server, path, payload)
                assert err.value.code == expected, (method, path)
            # duplicate registration is a conflict, not a server error
            _post(server, "/admin/register",
                  {"name": "dup", "path": str(west_path)})
            with pytest.raises(urllib.error.HTTPError) as err:
                _post(server, "/admin/register",
                      {"name": "dup", "path": str(west_path)})
            assert err.value.code == 409

    def test_admin_rejected_off_loopback(self, index_pair, monkeypatch):
        # loopback authentication: simulate a routable peer address by
        # forcing the check to see a non-loopback client
        from repro.serve import server as server_module

        west_path, _ = index_pair
        service = ACTService()
        monkeypatch.setattr(server_module, "is_loopback",
                            lambda ip: False)
        with _running_server(service) as server:
            for call in [
                lambda: _get(server, "/admin/indexes"),
                lambda: _post(server, "/admin/register",
                              {"name": "x", "path": str(west_path)}),
                lambda: _post(server, "/admin/reload", {"name": "x"}),
                lambda: _delete(server, "/admin/index/x"),
            ]:
                with pytest.raises(urllib.error.HTTPError) as err:
                    call()
                assert err.value.code == 403
            # the query surface stays open to remote clients
            status, _body = _get(server, "/healthz")
            assert status == 200

    def test_loopback_predicate(self):
        from repro.serve.server import is_loopback

        assert is_loopback("127.0.0.1")
        assert is_loopback("127.8.4.2")
        assert is_loopback("::1")
        assert is_loopback("::ffff:127.0.0.1")
        assert not is_loopback("10.0.0.8")
        assert not is_loopback("192.168.1.4")
        assert not is_loopback("8.8.8.8")
        assert not is_loopback("")


class TestAdminCLI:
    """``repro-act admin`` drives the HTTP admin surface."""

    def test_cli_admin_flow(self, index_pair, capsys):
        from repro.cli import main

        west_path, east_path = index_pair
        service = ACTService()
        with _running_server(service) as server:
            url = f"http://127.0.0.1:{server.server_address[1]}"
            assert main(["admin", "--url", url, "register", "halves",
                         "--path", str(west_path), "--mmap"]) == 0
            out = json.loads(capsys.readouterr().out)
            assert out["generation"] == 1

            assert main(["admin", "--url", url, "indexes"]) == 0
            out = json.loads(capsys.readouterr().out)
            assert [e["name"] for e in out["indexes"]] == ["halves"]
            assert out["indexes"][0]["mmap_mode"] == "r"

            assert main(["admin", "--url", url, "reload", "halves",
                         "--path", str(east_path)]) == 0
            out = json.loads(capsys.readouterr().out)
            assert out["generation"] == 2

            assert main(["admin", "--url", url, "unregister",
                         "halves"]) == 0
            capsys.readouterr()

            # failures surface in the exit code, with the server's
            # error detail on stderr
            assert main(["admin", "--url", url, "reload", "ghost"]) == 1
            err = capsys.readouterr().err
            assert "HTTP 404" in err

    def test_cli_admin_unreachable_server(self, capsys):
        from repro.cli import main

        assert main(["admin", "--url", "http://127.0.0.1:1",
                     "--timeout", "2", "indexes"]) == 1
        assert "cannot reach" in capsys.readouterr().err


class TestReloadUnderTraffic:
    """The zero-downtime contract, single-process edition.

    Hammer ``/query`` (scalar + batch) and ``/join`` from several
    threads while the main thread flips the index between two
    generations with different answers. Every response must be a 2xx,
    and — the `CellResultCache.invalidate_index` / generation-keyed
    cache property — a request *sent after* a reload completed must
    never see the pre-reload answer (zero stale reads), no matter how
    it interleaves with in-flight traffic.
    """

    def test_reload_hammer_zero_errors_zero_stale(self, index_pair):
        west_path, east_path = index_pair
        service = ACTService(config=ServeConfig(cache_capacity=4096))
        service.registry.register_path("halves", west_path, mmap_mode="r")
        lng, lat = PROBE
        #: expected true-hit answer at PROBE per index side
        answers = {"west": [], "east": [0]}
        # completed-reload history plus the side a reload in flight is
        # moving to; written by main, read by the hammer threads. While
        # a reload is mid-flight either side is legitimate (requests
        # admitted before the swap finish on the pinned generation);
        # once it completed, only the new side is — anything older is a
        # stale read.
        state = {"history": ["west"], "pending": None}
        failures = []
        stop = threading.Event()

        def hammer(kind):
            while not stop.is_set():
                sent_at = len(state["history"])
                try:
                    if kind == "scalar":
                        _status, body = _get(
                            server,
                            f"/query?index=halves&lng={lng}&lat={lat}"
                            f"&exact=1")
                        got = sorted(body["true_hits"])
                    elif kind == "batch":
                        _status, body = _post(server, "/query", {
                            "index": "halves", "exact": True,
                            "points": [[lng, lat]] * 8,
                        })
                        got = sorted(body["results"][0]["true_hits"])
                    else:
                        _status, body = _post(server, "/join", {
                            "index": "halves", "exact": True,
                            "points": [[lng, lat]] * 8,
                        })
                        got = [0] if body["counts"] else []
                except urllib.error.HTTPError as exc:
                    failures.append(f"{kind}: HTTP {exc.code}")
                    continue
                except Exception as exc:  # connection cut, malformed, …
                    failures.append(f"{kind}: {exc!r}")
                    continue
                received_at = len(state["history"])
                acceptable = set(state["history"][sent_at - 1:received_at])
                pending = state["pending"]
                if pending is not None:
                    acceptable.add(pending)
                if not any(got == answers[side] for side in acceptable):
                    failures.append(
                        f"{kind}: stale/garbled answer {got} "
                        f"(acceptable sides {sorted(acceptable)})")

        with _running_server(service) as server:
            threads = [
                threading.Thread(target=hammer, args=(kind,), daemon=True)
                for kind in ("scalar", "batch", "join", "scalar")
            ]
            for thread in threads:
                thread.start()
            flips = 0
            for side, path in [("east", east_path), ("west", west_path),
                               ("east", east_path), ("west", west_path)]:
                time.sleep(0.15)  # let traffic build on the current side
                state["pending"] = side
                status, body = _post(server, "/admin/reload", {
                    "name": "halves", "path": str(path), "mmap_mode": "r",
                })
                assert status == 200 and body["complete"] is True
                # the reload call returned => the swap happened; any
                # request sent from now on must see only the new side
                state["history"].append(side)
                state["pending"] = None
                flips += 1
            time.sleep(0.2)
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)
            assert flips == 4
            assert not failures, failures[:10]
            # post-reload: answers reflect the final generation, served
            # from the *new* generation's cache keyspace
            for _ in range(3):
                _status, body = _get(
                    server,
                    f"/query?index=halves&lng={lng}&lat={lat}&exact=1")
                assert body["true_hits"] == answers["west"]
            assert service.registry.pin("halves").generation == 5
            stats = service.cache.stats()
            assert stats["invalidations"] > 0, \
                "reloads must sweep the dead generations' entries"


class _FlakyRegistry:
    """Follower registry rigged to flunk the apply of one generation,
    standing in for a worker whose copy of the side artifact is bad."""

    def __new__(cls, fail_generation):
        from repro.serve import IndexRegistry

        class _Rigged(IndexRegistry):
            def reload(self, name, **kwargs):
                if kwargs.get("generation") == fail_generation:
                    from repro.errors import ArtifactCorruptError
                    raise ArtifactCorruptError(
                        "rigged: side artifact flunked its checksum")
                return super().reload(name, **kwargs)

        return _Rigged()


class TestReloadRollback:
    """A NACKed fleet reload must abort, quarantine the artifact, and
    re-publish the previous data under a fresh generation — never hang
    or leave the fleet split."""

    @staticmethod
    @contextlib.contextmanager
    def _polling(follower):
        stop = threading.Event()

        def loop():
            while not stop.wait(0.02):
                follower.poll()

        thread = threading.Thread(target=loop, daemon=True)
        thread.start()
        try:
            yield
        finally:
            stop.set()
            thread.join(timeout=5.0)

    def test_follower_nack_rolls_the_fleet_back(self, index_pair,
                                                tmp_path):
        import os

        from repro.serve import FleetLifecycle
        from repro.serve.lifecycle import PARENT_IDENTITY

        west_path, east_path = index_pair
        control, op_lock = {}, threading.Lock()
        flaky = _FlakyRegistry(fail_generation=2)
        flaky.register_path("n", west_path)
        follower = FleetLifecycle(
            control=control, op_lock=op_lock, identity=PARENT_IDENTITY,
            workers=1, registry=flaky, artifact_dir=str(tmp_path),
            timeout_s=5.0)
        service = ACTService()
        with service, self._polling(follower):
            service.register_index_path("n", west_path)
            coord = FleetLifecycle(
                control=control, op_lock=op_lock, identity="0",
                workers=1, service=service, artifact_dir=str(tmp_path),
                timeout_s=5.0)
            result = coord.submit({"op": "reload", "name": "n",
                                   "path": str(east_path)})
            # structured failure, not an exception and not a hang
            assert result["complete"] is False
            assert result["failed"] == [PARENT_IDENTITY]
            assert "rigged" in result["error"]
            # the rejected side artifact is quarantined for forensics
            assert result["quarantined"] is not None
            assert ".quarantine" in result["quarantined"]
            assert os.path.exists(result["quarantined"])
            # the failed generation (2) is burned; the old data came
            # back fleet-wide under a fresh number
            assert result["rolled_back"] is True, result
            assert result["rollback"]["complete"] is True
            assert result["generation"] == 3
            assert service.registry.pin("n").generation == 3
            assert flaky.pin("n").generation == 3
            # everyone serves the pre-reload (west) answers
            assert service.query("n", *PROBE, exact=True).true_hits == ()
            assert flaky.pin("n").index.query_exact(*PROBE) == ()
            # a clean rollback restores convergence on both sides;
            # the original failure stays visible on the coordinator
            assert coord.status()["converged"] is True
            assert "rigged" in coord.status()["last_error"]
            assert follower.status() == {"converged": True,
                                         "last_error": None}
            counters = service.metrics.snapshot()["counters"]
            assert counters["faults.reload_rollbacks"] == 1
            assert counters["faults.quarantined"] >= 1
            # the fleet is healthy: the same reload, retried, lands
            flaky_retry = coord.submit({"op": "reload", "name": "n",
                                        "path": str(east_path)})
            assert flaky_retry["complete"] is True, flaky_retry
            assert flaky_retry["generation"] == 4
            assert service.query("n", *PROBE, exact=True).true_hits \
                == (0,)

    def test_coordinator_local_corruption_aborts_before_publish(
            self, index_pair, tmp_path):
        import os
        import shutil

        from repro.serve import FleetLifecycle, IndexRegistry
        from repro.serve.lifecycle import PARENT_IDENTITY, SEQ_KEY

        west_path, east_path = index_pair
        bad = tmp_path / "bad.npz"
        shutil.copyfile(east_path, bad)
        with open(bad, "r+b") as fp:
            fp.truncate(bad.stat().st_size // 2)

        control, op_lock = {}, threading.Lock()
        registry = IndexRegistry()
        registry.register_path("n", west_path)
        coord = FleetLifecycle(
            control=control, op_lock=op_lock, identity=PARENT_IDENTITY,
            workers=0, registry=registry, artifact_dir=str(tmp_path),
            timeout_s=5.0)
        result = coord.submit({"op": "reload", "name": "n",
                               "path": str(bad)})
        assert result["complete"] is False
        assert result["rolled_back"] is False
        assert result["acks"] == {}
        assert "corrupt" in result["error"]
        # nothing was published: the fleet never saw the op
        assert SEQ_KEY not in control
        # the corrupt source is quarantined so a blind retry cannot
        # re-read the same bytes …
        assert os.path.exists(result["quarantined"])
        assert not bad.exists()
        # … and the registration's source points back at the pre-op
        # path, so a plain reload recovers
        assert registry.describe("n")["path"] == str(west_path)
        retry = coord.submit({"op": "reload", "name": "n"})
        assert retry["complete"] is True, retry
        assert registry.pin("n").index.query_exact(*PROBE) == ()

    def test_gc_keeps_newest_two_side_artifacts(self, index_pair,
                                                tmp_path):
        from repro.serve import FleetLifecycle, IndexRegistry
        from repro.serve.lifecycle import PARENT_IDENTITY

        west_path, _ = index_pair
        registry = IndexRegistry()
        registry.register_path("n", west_path)
        assert registry.pin("n").generation == 1  # materialize lazily
        decoy = tmp_path / "m.gen000001.npz"
        decoy.write_bytes(b"someone else's artifact")
        coord = FleetLifecycle(
            control={}, op_lock=threading.Lock(),
            identity=PARENT_IDENTITY, workers=0, registry=registry,
            artifact_dir=str(tmp_path), timeout_s=5.0)
        for expected_gen in (2, 3, 4, 5):
            result = coord.submit({"op": "reload", "name": "n"})
            assert result["complete"] is True, result
            assert result["generation"] == expected_gen
        kept = sorted(p.name for p in tmp_path.iterdir()
                      if p.name.startswith("n.gen"))
        # dead generations' files are gone, current + predecessor stay
        assert kept == ["n.gen000004.npz", "n.gen000005.npz"]
        assert decoy.exists()  # other names are never touched
