"""Live tests for the asyncio binary front (:mod:`repro.serve.aserver`):
pipelining, malformed-frame robustness, and bit-identical parity with
the JSON path over one shared service."""

import json
import socket
import threading
import urllib.request

import numpy as np
import pytest

from repro.errors import ServeError, UnknownIndexError
from repro.serve import (
    ACTService,
    ServeConfig,
    binproto,
    create_binary_frontend,
    create_server,
)


@pytest.fixture(scope="module")
def binary_stack(nyc_index):
    """One service behind both fronts: JSON HTTP and the binary plane."""
    service = ACTService(config=ServeConfig(max_wait_ms=1.0))
    service.registry.register_index("nyc", nyc_index)
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    frontend = create_binary_frontend(service)
    yield service, server, frontend
    frontend.stop()
    server.shutdown()
    server.server_close()
    service.close()
    thread.join(timeout=5.0)


def _client(frontend) -> binproto.Client:
    return binproto.Client(*frontend.address, timeout=30.0)


def _raw_connection(frontend) -> socket.socket:
    sock = socket.create_connection(frontend.address, timeout=30.0)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


def _recv_frame(sock):
    """``(op, request_id, payload)`` read with plain socket recv."""
    buf = b""
    while True:
        header = binproto.try_parse_header(buf)
        if header is not None:
            op, _, request_id, payload_len = header
            if len(buf) >= binproto.HEADER_SIZE + payload_len:
                return op, request_id, \
                    buf[binproto.HEADER_SIZE:
                        binproto.HEADER_SIZE + payload_len]
        chunk = sock.recv(1 << 16)
        if not chunk:
            raise AssertionError("connection closed before a full frame")
        buf += chunk


def _recv_eof(sock) -> bool:
    """True when the server closes cleanly (no hang, no reset)."""
    try:
        return sock.recv(1 << 16) == b""
    except ConnectionResetError:
        return False


class TestHappyPath:
    def test_ping(self, binary_stack):
        _, _, frontend = binary_stack
        with _client(frontend) as client:
            assert client.ping()

    @pytest.mark.parametrize("exact", [False, True])
    def test_query_parity_with_service(self, binary_stack, query_points,
                                       exact):
        service, _, frontend = binary_stack
        lngs, lats = query_points
        with _client(frontend) as client:
            got = client.query_batch("nyc", lngs, lats, exact=exact)
        want = service.query_batch("nyc", lngs, lats, exact=exact)
        assert got == want

    def test_join_parity_with_service(self, binary_stack, query_points):
        service, _, frontend = binary_stack
        lngs, lats = query_points
        with _client(frontend) as client:
            got = client.join("nyc", lngs, lats, exact=True)
        counts = service.join("nyc", lngs, lats, exact=True)
        want = {int(pid): int(c) for pid, c in enumerate(counts) if c}
        assert got == want

    def test_binary_bit_identical_to_json(self, binary_stack,
                                          query_points):
        """The acceptance property: both fronts, one batch, equal bits."""
        _, server, frontend = binary_stack
        lngs, lats = query_points
        with _client(frontend) as client:
            binary = client.query_batch("nyc", lngs, lats, exact=True)
        port = server.server_address[1]
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/query",
            data=json.dumps({
                "index": "nyc", "exact": True,
                "points": [[float(a), float(b)]
                           for a, b in zip(lngs, lats)],
            }).encode("utf-8"),
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=30.0) as response:
            via_json = json.loads(response.read())["results"]
        assert len(via_json) == len(binary)
        for from_json, from_binary in zip(via_json, binary):
            assert from_json["true_hits"] == list(from_binary.true_hits)
            assert from_json["candidates"] == \
                list(from_binary.candidates)

    def test_pipelining_answers_in_order(self, binary_stack,
                                         query_points):
        """N queued frames on one connection: in-order, id-matched."""
        service, _, frontend = binary_stack
        lngs, lats = query_points
        slices = [slice(i * 16, (i + 1) * 16) for i in range(12)]
        with _client(frontend) as client:
            sent = [client.send_query("nyc", lngs[s], lats[s],
                                      exact=(i % 2 == 0))
                    for i, s in enumerate(slices)]
            for i, (s, rid) in enumerate(zip(slices, sent)):
                got_rid, results = client.recv_results()
                assert got_rid == rid
                assert results == service.query_batch(
                    "nyc", lngs[s], lats[s], exact=(i % 2 == 0))

    def test_fragmented_frame_reassembly(self, binary_stack,
                                         query_points):
        _, _, frontend = binary_stack
        lngs, lats = query_points
        frame = binproto.encode_points_request(
            binproto.OP_QUERY, "nyc", lngs, lats, request_id=41)
        sock = _raw_connection(frontend)
        try:
            for at in range(0, len(frame), 23):  # misaligned dribble
                sock.sendall(frame[at:at + 23])
            op, rid, payload = _recv_frame(sock)
            assert (op, rid) == (binproto.OP_RESULTS, 41)
            assert len(binproto.decode_results(payload)) == len(lngs)
        finally:
            sock.close()


class TestRobustness:
    @pytest.mark.parametrize("frame, fragment", [
        (b"XXXB" + binproto.encode_ping(1)[4:], "magic"),
        (binproto.encode_ping(1)[:4] + bytes([9])
         + binproto.encode_ping(1)[5:], "version"),
        (binproto.encode_header(binproto.OP_QUERY, 0, 1,
                                binproto.MAX_FRAME_BYTES + 1),
         "frame limit"),
    ], ids=["bad-magic", "bad-version", "oversized"])
    def test_fatal_frames_get_error_then_close(self, binary_stack,
                                               frame, fragment):
        """Unsyncable streams: one clean error frame, then EOF —
        never a hung or reset connection."""
        _, _, frontend = binary_stack
        sock = _raw_connection(frontend)
        try:
            sock.sendall(frame)
            op, rid, payload = _recv_frame(sock)
            assert op == binproto.OP_ERROR
            assert rid == 0  # the frame's own id is untrustworthy
            status, message = binproto.decode_error(payload)
            assert status == binproto.STATUS_BAD_REQUEST
            assert fragment in message
            assert _recv_eof(sock)
        finally:
            sock.close()

    def test_truncated_request_keeps_connection(self, binary_stack):
        """A sound frame with an inconsistent payload is a per-frame
        error; the same connection then serves a good request."""
        _, _, frontend = binary_stack
        good = binproto.encode_points_request(
            binproto.OP_QUERY, "nyc", np.zeros(4), np.zeros(4))
        bad = binproto.encode_header(binproto.OP_QUERY, 0, 42, 24) \
            + _payloadless_request()
        sock = _raw_connection(frontend)
        try:
            sock.sendall(bad)
            op, rid, payload = _recv_frame(sock)
            assert (op, rid) == (binproto.OP_ERROR, 42)
            assert binproto.decode_error(payload)[0] == \
                binproto.STATUS_BAD_REQUEST
            sock.sendall(good)
            op, _, _ = _recv_frame(sock)
            assert op == binproto.OP_RESULTS
        finally:
            sock.close()

    def test_unknown_op_keeps_connection(self, binary_stack):
        _, _, frontend = binary_stack
        sock = _raw_connection(frontend)
        try:
            sock.sendall(binproto.encode_header(0x7E, 0, 3, 0))
            op, rid, payload = _recv_frame(sock)
            assert (op, rid) == (binproto.OP_ERROR, 3)
            assert "unknown op" in binproto.decode_error(payload)[1]
            sock.sendall(binproto.encode_ping(4))
            assert _recv_frame(sock)[0] == binproto.OP_PONG
        finally:
            sock.close()

    def test_unknown_index_maps_and_survives(self, binary_stack):
        _, _, frontend = binary_stack
        with _client(frontend) as client:
            with pytest.raises(UnknownIndexError):
                client.query_batch("nope", np.zeros(1), np.zeros(1))
            assert client.ping()  # non-fatal: same connection lives on

    def test_results_op_from_client_is_rejected(self, binary_stack):
        _, _, frontend = binary_stack
        sock = _raw_connection(frontend)
        try:
            sock.sendall(binproto.encode_results([], request_id=8))
            op, rid, _ = _recv_frame(sock)
            assert (op, rid) == (binproto.OP_ERROR, 8)
        finally:
            sock.close()


class TestTelemetry:
    def test_binary_counters_and_families(self, binary_stack,
                                          query_points):
        service, _, frontend = binary_stack
        lngs, lats = query_points
        before = service.metrics.snapshot()["counters"]
        with _client(frontend) as client:
            client.query_batch("nyc", lngs, lats)
        after = service.metrics.snapshot()["counters"]
        assert after["binary.requests"] == before["binary.requests"] + 1
        assert after["binary.frames"] == before["binary.frames"] + 1
        assert after["binary.bytes_in"] > before["binary.bytes_in"]
        assert after["binary.bytes_out"] > before["binary.bytes_out"]
        # the shared service path ran, so core counters moved too
        assert after["queries.total"] > before["queries.total"]
        text = service.prometheus_text()
        from repro.obs import validate_exposition
        assert validate_exposition(text) == []
        for family in ("repro_binary_requests_total",
                       "repro_binary_bytes_in_total",
                       "repro_binary_request_seconds_bucket"):
            assert family in text

    def test_frontend_is_single_use(self, binary_stack):
        _, _, frontend = binary_stack
        with pytest.raises(ServeError, match="single-use"):
            frontend.start()


def _payloadless_request() -> bytes:
    """24 declared payload bytes that cannot hold the 4 points the
    sub-header inside them promises."""
    return binproto._REQ.pack(3, 0, 4, float("nan")) + b"nyc" \
        + b"\x00" * (24 - binproto._REQ.size - 3)
