"""Tests for the index registry: lazy materialization, pinning, and
serialize round-trips driven through the registry."""

import threading

import numpy as np
import pytest

from repro import ACTIndex
from repro.errors import ServeError, UnknownIndexError
from repro.serve import IndexRegistry


class TestLazyMaterialization:
    def test_builder_runs_once_and_pins(self, nyc_polygons):
        calls = []

        def build():
            calls.append(1)
            return ACTIndex.build(nyc_polygons, precision_meters=300.0)

        registry = IndexRegistry()
        registry.register("lazy", build)
        assert not calls
        assert not registry.is_materialized("lazy")
        first = registry.get("lazy")
        second = registry.get("lazy")
        assert first is second
        assert len(calls) == 1
        assert registry.is_materialized("lazy")

    def test_register_index_is_pinned_immediately(self, nyc_index):
        registry = IndexRegistry()
        registry.register_index("pinned", nyc_index)
        assert registry.is_materialized("pinned")
        assert registry.get("pinned") is nyc_index

    def test_duplicate_name_rejected(self, nyc_index):
        registry = IndexRegistry()
        registry.register_index("dup", nyc_index)
        with pytest.raises(ServeError):
            registry.register("dup", lambda: nyc_index)

    def test_unknown_name(self):
        registry = IndexRegistry()
        with pytest.raises(UnknownIndexError):
            registry.get("nope")
        with pytest.raises(UnknownIndexError):
            registry.describe("nope")

    def test_evict_then_rebuild(self, nyc_polygons):
        calls = []

        def build():
            calls.append(1)
            return ACTIndex.build(nyc_polygons, precision_meters=300.0)

        registry = IndexRegistry()
        registry.register("e", build)
        registry.get("e")
        registry.evict("e")
        assert not registry.is_materialized("e")
        registry.get("e")
        assert len(calls) == 2

    def test_concurrent_get_builds_once(self, nyc_polygons):
        calls = []
        started = threading.Barrier(8)

        def build():
            calls.append(1)
            return ACTIndex.build(nyc_polygons, precision_meters=300.0)

        registry = IndexRegistry()
        registry.register("race", build)
        results = []

        def worker():
            started.wait()
            results.append(registry.get("race"))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(calls) == 1
        assert all(r is results[0] for r in results)

    def test_register_index_pins_atomically_with_registration(
            self, nyc_index):
        # register_index publishes the hot-path view under the registry
        # lock: once the name resolves at all, the pinned view and the
        # registration always agree (no window where evict() can observe
        # a registered-but-unpinned or unregistered-but-pinned name)
        registry = IndexRegistry()
        registry.register_index("atomic", nyc_index)
        assert registry.materialized["atomic"].index is nyc_index
        assert registry.materialized["atomic"].generation == 1
        assert registry.is_materialized("atomic")
        registry.evict("atomic")
        assert "atomic" not in registry.materialized
        assert not registry.is_materialized("atomic")

    def test_register_evict_hammering_stays_coherent(self, nyc_index):
        # many threads registering fresh names while another evicts them
        # as fast as it can: the lock-free view and the registrations
        # must never disagree when the dust settles
        registry = IndexRegistry()
        names = [f"idx-{i}" for i in range(64)]
        start = threading.Barrier(3)

        def register(chunk):
            start.wait()
            for name in chunk:
                registry.register_index(name, nyc_index)

        def evictor():
            start.wait()
            for name in names * 3:
                try:
                    registry.evict(name)
                except UnknownIndexError:
                    pass

        threads = [
            threading.Thread(target=register, args=(names[:32],)),
            threading.Thread(target=register, args=(names[32:],)),
            threading.Thread(target=evictor),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for name in names:
            pinned = name in registry.materialized
            assert pinned == registry.is_materialized(name)
            if pinned:
                assert registry.materialized[name].index is nyc_index

    def test_prewarm_materializes_and_builds_edge_tables(
            self, nyc_polygons):
        registry = IndexRegistry()
        registry.register(
            "warm",
            lambda: ACTIndex.build(nyc_polygons, precision_meters=300.0))
        warmed = registry.prewarm()
        assert set(warmed) == {"warm"}
        index = warmed["warm"]
        assert registry.get("warm") is index
        # the packed-edge engine is built eagerly, not on first request
        assert index.executor._edge_table is not None

    def test_describe_before_and_after(self, nyc_polygons):
        registry = IndexRegistry()
        registry.register(
            "d", lambda: ACTIndex.build(nyc_polygons, precision_meters=300.0))
        before = registry.describe("d")
        assert before["materialized"] is False
        assert "num_polygons" not in before
        registry.get("d")
        after = registry.describe("d")
        assert after["materialized"] is True
        assert after["num_polygons"] == len(nyc_polygons)


class TestSerializeRoundTrip:
    """save -> load through the registry must answer identically."""

    def test_roundtrip_identical_results(self, tmp_path, nyc_index,
                                         query_points, serial_results):
        registry = IndexRegistry()
        registry.register_index("orig", nyc_index)
        path = tmp_path / "nyc_index.npz"
        registry.save("orig", path)

        registry.register_path("reloaded", path)
        assert not registry.is_materialized("reloaded")
        reloaded = registry.get("reloaded")
        assert registry.describe("reloaded")["source"] == "path"

        lngs, lats = query_points
        for lng, lat, expected in zip(lngs, lats, serial_results):
            assert reloaded.query(lng, lat) == expected
        np.testing.assert_array_equal(
            reloaded.count_points(lngs, lats),
            nyc_index.count_points(lngs, lats),
        )
        np.testing.assert_array_equal(
            reloaded.count_points(lngs, lats, exact=True),
            nyc_index.count_points(lngs, lats, exact=True),
        )

    def test_mmap_registration_identical_and_file_backed(
            self, tmp_path, nyc_index, query_points):
        import mmap as mmap_module

        registry = IndexRegistry()
        registry.register_index("orig", nyc_index)
        path = tmp_path / "mm.npz"
        registry.save("orig", path)
        registry.register_path("mapped", path, mmap_mode="r")
        mapped = registry.get("mapped")
        lngs, lats = query_points
        np.testing.assert_array_equal(
            mapped.count_points(lngs, lats, exact=True),
            nyc_index.count_points(lngs, lats, exact=True),
        )
        base = mapped.core.nodes
        while isinstance(base, np.ndarray) and base.base is not None:
            base = base.base
        assert isinstance(base, mmap_module.mmap)
        assert registry.describe("mapped")["mmap_mode"] == "r"

    def test_roundtrip_preserves_guarantees(self, tmp_path, nyc_index):
        registry = IndexRegistry()
        registry.register_index("orig", nyc_index)
        path = tmp_path / "idx.npz"
        registry.save("orig", path)
        registry.register_path("back", path)
        reloaded = registry.get("back")
        assert reloaded.boundary_level == nyc_index.boundary_level
        assert reloaded.precision_meters == nyc_index.precision_meters
        assert reloaded.num_polygons == nyc_index.num_polygons
