"""HTTP smoke tests: the JSON API served by ``repro-act serve``."""

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve import ACTService, ServeConfig, create_server


@pytest.fixture(scope="module")
def http_server(nyc_index):
    service = ACTService(config=ServeConfig(max_wait_ms=1.0))
    service.registry.register_index("nyc", nyc_index)
    server = create_server(service, port=0)  # free port
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    service.close()
    thread.join(timeout=5.0)


def _get(server, path):
    port = server.server_address[1]
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}",
                                timeout=10.0) as resp:
        return resp.status, json.loads(resp.read())


def _post(server, path, payload):
    port = server.server_address[1]
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10.0) as resp:
        return resp.status, json.loads(resp.read())


class TestRoutes:
    def test_healthz(self, http_server):
        status, body = _get(http_server, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["indexes"] == ["nyc"]

    def test_query(self, http_server, nyc_index):
        status, body = _get(
            http_server, "/query?index=nyc&lng=-73.97&lat=40.75")
        assert status == 200
        expected = nyc_index.query(-73.97, 40.75)
        assert tuple(body["true_hits"]) == expected.true_hits
        assert tuple(body["candidates"]) == expected.candidates
        assert body["is_hit"] == expected.is_hit

    def test_query_exact(self, http_server, nyc_index):
        status, body = _get(
            http_server, "/query?index=nyc&lng=-73.97&lat=40.75&exact=1")
        assert status == 200
        assert sorted(body["true_hits"]) == sorted(
            nyc_index.query_exact(-73.97, 40.75))
        assert body["candidates"] == []

    def test_batch_query(self, http_server, nyc_index):
        points = [[-73.97, 40.75], [-74.0, 40.7], [0.0, 0.0]]
        status, body = _post(http_server, "/query",
                             {"index": "nyc", "points": points})
        assert status == 200
        assert body["num_points"] == 3
        assert len(body["results"]) == 3
        for result, (lng, lat) in zip(body["results"], points):
            want = nyc_index.query(lng, lat)
            assert tuple(result["true_hits"]) == want.true_hits
            assert tuple(result["candidates"]) == want.candidates
            assert result["is_hit"] == want.is_hit

    def test_batch_query_exact(self, http_server, nyc_index):
        points = [[-73.97, 40.75], [-74.0, 40.7]]
        status, body = _post(http_server, "/query",
                             {"index": "nyc", "points": points,
                              "exact": True})
        assert status == 200
        for result, (lng, lat) in zip(body["results"], points):
            assert sorted(result["true_hits"]) == sorted(
                nyc_index.query_exact(lng, lat))
            assert result["candidates"] == []

    def test_join(self, http_server, nyc_index):
        points = [[-73.97, 40.75], [-74.0, 40.7], [0.0, 0.0]]
        status, body = _post(http_server, "/join",
                             {"index": "nyc", "points": points})
        assert status == 200
        assert body["num_points"] == 3
        counts = nyc_index.count_points(
            [p[0] for p in points], [p[1] for p in points])
        expected = {str(i): int(c) for i, c in enumerate(counts) if c}
        assert body["counts"] == expected

    def test_stats(self, http_server):
        status, body = _get(http_server, "/stats")
        assert status == 200
        assert body["indexes"][0]["name"] == "nyc"
        assert "cache" in body and "metrics" in body


class TestErrorMapping:
    def _get_error(self, server, path):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(server, path)
        return exc.value.code, json.loads(exc.value.read())

    def test_unknown_route_404(self, http_server):
        code, _ = self._get_error(http_server, "/nope")
        assert code == 404

    def test_unknown_index_404(self, http_server):
        code, body = self._get_error(
            http_server, "/query?index=zzz&lng=0&lat=0")
        assert code == 404
        assert "zzz" in body["error"]

    def test_missing_params_400(self, http_server):
        code, _ = self._get_error(http_server, "/query?index=nyc")
        assert code == 400

    def test_bad_floats_400(self, http_server):
        code, _ = self._get_error(
            http_server, "/query?index=nyc&lng=abc&lat=40.7")
        assert code == 400

    def test_malformed_budget_400(self, http_server):
        code, body = self._get_error(
            http_server,
            "/query?index=nyc&lng=-73.97&lat=40.75&budget_ms=fifty")
        assert code == 400
        assert "budget_ms" in body["error"]

    def test_spent_budget_503(self, http_server):
        code, body = self._get_error(
            http_server,
            "/query?index=nyc&lng=-73.97&lat=40.75&budget_ms=-1")
        assert code == 503
        assert body["shed"] is True

    def test_bad_join_body_400(self, http_server):
        port = http_server.server_address[1]
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/join", data=b"not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(request, timeout=10.0)
        assert exc.value.code == 400

    def test_join_missing_fields_400(self, http_server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _post(http_server, "/join", {"index": "nyc"})
        assert exc.value.code == 400

    def test_batch_query_missing_fields_400(self, http_server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _post(http_server, "/query", {"points": [[0.0, 0.0]]})
        assert exc.value.code == 400

    def test_batch_query_invalid_request_400(self, http_server):
        # InvalidRequestError raised inside the service (e.g. mismatched
        # batch arrays) must surface as 400, not a 500 from deep inside
        # the batch descent
        from repro.errors import InvalidRequestError

        service = http_server.service
        original = service.query_batch

        def mismatched(*args, **kwargs):
            return original("nyc", [-73.97, -74.0], [40.75], **kwargs)

        service.query_batch = mismatched
        try:
            with pytest.raises(urllib.error.HTTPError) as exc:
                _post(http_server, "/query",
                      {"index": "nyc", "points": [[-73.97, 40.75]]})
        finally:
            service.query_batch = original
        assert exc.value.code == 400
        assert "shapes" in json.loads(exc.value.read())["error"]
        with pytest.raises(InvalidRequestError):
            service.query_batch("nyc", [-73.97, -74.0], [40.75])

    def test_batch_query_unknown_index_404(self, http_server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _post(http_server, "/query",
                  {"index": "zzz", "points": [[0.0, 0.0]]})
        assert exc.value.code == 404

    def test_batch_query_spent_budget_503(self, http_server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _post(http_server, "/query",
                  {"index": "nyc", "points": [[-73.97, 40.75]],
                   "budget_ms": -1})
        assert exc.value.code == 503


class TestKeepAliveContentLength:
    """A malformed Content-Length means the request body cannot be
    located on the stream; the server must answer 400 and close the
    connection, not silently misparse the body as the next request."""

    def _raw(self, http_server):
        port = http_server.server_address[1]
        sock = socket.create_connection(("127.0.0.1", port),
                                        timeout=10.0)
        sock.settimeout(10.0)
        return sock

    @staticmethod
    def _request(content_length) -> bytes:
        body = b'{"index": "nyc", "points": [[0.0, 0.0]]}'
        return (b"POST /query HTTP/1.1\r\n"
                b"Host: 127.0.0.1\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: " + content_length + b"\r\n"
                b"\r\n" + body)

    @staticmethod
    def _read_response(sock) -> bytes:
        """Read until the server closes (EOF) — asserts no hang."""
        chunks = []
        while True:
            chunk = sock.recv(1 << 16)
            if not chunk:
                return b"".join(chunks)
            chunks.append(chunk)

    @pytest.mark.parametrize("bad", [b"abc", b"-7"],
                             ids=["non-numeric", "negative"])
    def test_malformed_content_length_400_and_close(self, http_server,
                                                    bad):
        sock = self._raw(http_server)
        try:
            sock.sendall(self._request(bad))
            response = self._read_response(sock)
        finally:
            sock.close()
        head, _, payload = response.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 400")
        assert b"connection: close" in head.lower()
        assert b"malformed Content-Length" in payload
        # _read_response returning proves EOF: the unread body was not
        # silently consumed as a second pipelined request

    def test_valid_keep_alive_still_pipelines(self, http_server):
        """Control: two well-formed requests on one connection both get
        answers (the close is for malformed framing only)."""
        sock = self._raw(http_server)
        try:
            request = self._request(b"40")
            sock.sendall(request + request)
            seen = b""
            while seen.count(b"HTTP/1.1 200") < 2:
                chunk = sock.recv(1 << 16)
                assert chunk, "connection closed before both responses"
                seen += chunk
        finally:
            sock.close()


class TestConcurrentClients:
    def test_parallel_requests(self, http_server, nyc_index, query_points):
        lngs, lats = query_points
        expected = [nyc_index.query(lng, lat)
                    for lng, lat in zip(lngs[:64], lats[:64])]
        failures = []

        def client(i):
            try:
                status, body = _get(
                    http_server,
                    f"/query?index=nyc&lng={lngs[i]}&lat={lats[i]}")
                if (status != 200
                        or tuple(body["true_hits"]) != expected[i].true_hits
                        or tuple(body["candidates"])
                        != expected[i].candidates):
                    failures.append((i, body))
            except Exception as exc:  # pragma: no cover - failure path
                failures.append((i, exc))

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(64)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
