"""Tests for the micro-batching engine.

Covers correctness against the serial baseline, the concurrency
hammering required to trust one ``ACTIndex`` shared across threads (the
vectorized snapshot's arrays are frozen, so concurrent reads are safe —
this suite is the evidence), deadline shedding, and lifecycle.
"""

import threading
import time

import pytest

from repro.errors import BudgetExceededError, ServeError
from repro.serve import Budget, MetricsRegistry, MicroBatcher


class TestCorrectness:
    def test_single_query_matches_serial(self, nyc_index):
        with MicroBatcher(nyc_index, max_wait=0.001) as batcher:
            lng, lat = -73.97, 40.75
            assert batcher.query(lng, lat) == nyc_index.query(lng, lat)

    def test_batch_results_match_serial(self, nyc_index, query_points,
                                        serial_results):
        lngs, lats = query_points
        with MicroBatcher(nyc_index, max_batch=64,
                          max_wait=0.001) as batcher:
            futures = [batcher.submit(lng, lat)
                       for lng, lat in zip(lngs, lats)]
            results = [f.result(timeout=10.0) for f in futures]
        assert results == serial_results

    def test_out_of_domain_point_is_empty(self, nyc_index):
        with MicroBatcher(nyc_index, max_wait=0.001) as batcher:
            result = batcher.query(0.0, 0.0)  # far outside NYC bounds
        assert result.true_hits == () and result.candidates == ()


class TestConcurrentHammering:
    """Many threads, one index, one batcher: results must equal the
    serial baseline (documents that shared reads are thread-safe)."""

    def test_hammer_matches_serial(self, nyc_index, query_points,
                                   serial_results):
        lngs, lats = query_points
        requests = list(zip(lngs, lats, serial_results))
        metrics = MetricsRegistry()
        mismatches = []
        errors = []
        start = threading.Barrier(8)

        def worker(offset: int):
            start.wait()
            with_stride = requests[offset::8] * 3  # 150 queries per thread
            for lng, lat, expected in with_stride:
                try:
                    result = batcher.query(lng, lat, timeout=30.0)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)
                    return
                if result != expected:
                    mismatches.append((lng, lat, result, expected))

        with MicroBatcher(nyc_index, max_batch=128, max_wait=0.002,
                          metrics=metrics) as batcher:
            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        assert not errors
        assert not mismatches
        total = metrics.counter("batcher.queries").value
        batches = metrics.counter("batcher.batches").value
        assert total == len(requests) * 3
        # concurrency actually produced multi-point batches
        assert batches < total
        assert metrics.histogram("batcher.batch_size").percentile(1.0) > 1


class TestDeadlines:
    def test_expired_budget_is_shed(self, nyc_index):
        with MicroBatcher(nyc_index, max_wait=0.001) as batcher:
            future = batcher.submit(-73.97, 40.75, budget=Budget(-1.0))
            with pytest.raises(BudgetExceededError):
                future.result(timeout=10.0)

    def test_generous_budget_is_served(self, nyc_index):
        with MicroBatcher(nyc_index, max_wait=0.001) as batcher:
            future = batcher.submit(-73.97, 40.75, budget=Budget(30.0))
            assert future.result(timeout=10.0) == nyc_index.query(
                -73.97, 40.75)

    def test_tight_deadline_shrinks_window(self, nyc_index):
        # a deadline much shorter than max_wait must not wait max_wait.
        # Under VM scheduling noise the 50 ms budget can legitimately
        # expire before dispatch (the batcher sheds rather than serve
        # late) — the invariant is that the deadline bounds the flush
        # time, so the *fastest* of a few trials must resolve far
        # inside the 5 s window, whether it served or shed.
        with MicroBatcher(nyc_index, max_wait=5.0) as batcher:
            best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                future = batcher.submit(-73.97, 40.75, budget=Budget(0.05))
                try:
                    assert future.result(timeout=2.0) is not None
                except BudgetExceededError:
                    pass  # shed before dispatch: still deadline-bounded
                best = min(best, time.perf_counter() - start)
            assert best < 2.0


class TestLifecycle:
    def test_config_validation(self, nyc_index):
        with pytest.raises(ServeError):
            MicroBatcher(nyc_index, max_batch=0)
        with pytest.raises(ServeError):
            MicroBatcher(nyc_index, max_wait=-1.0)

    def test_submit_after_stop_raises(self, nyc_index):
        batcher = MicroBatcher(nyc_index, max_wait=0.001).start()
        batcher.stop()
        with pytest.raises(ServeError):
            batcher.submit(-73.97, 40.75)

    def test_stop_is_idempotent(self, nyc_index):
        batcher = MicroBatcher(nyc_index, max_wait=0.001).start()
        batcher.stop()
        batcher.stop()

    def test_submit_autostarts(self, nyc_index):
        batcher = MicroBatcher(nyc_index, max_wait=0.001)
        try:
            future = batcher.submit(-73.97, 40.75)
            assert future.result(timeout=10.0) == nyc_index.query(
                -73.97, 40.75)
        finally:
            batcher.stop()
