"""Tests for serving counters, gauges, and mergeable histograms."""

import threading

import pytest

from repro.obs import DEFAULT_LATENCY_BOUNDS
from repro.serve import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter()
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_concurrent_increments_stay_bounded(self):
        # inc is deliberately lock-free (a telemetry counter trades
        # exactness under contention for a hot path without a lock), so
        # concurrent increments may very rarely be lost — but the value
        # can never exceed the exact total, and in practice stays at it
        counter = Counter()

        def hammer():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert 0 < counter.value <= 40_000


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge()
        assert gauge.value == 0.0
        gauge.set(4.5)
        gauge.add(0.5)
        assert gauge.value == pytest.approx(5.0)


class TestHistogram:
    def test_percentiles_within_bucket_resolution(self):
        histogram = Histogram()
        for v in range(1, 101):  # 1..100 seconds
            histogram.observe(float(v))
        # log-spaced buckets answer quantiles to within the bucket
        # width (~58% relative at 5 buckets/decade), and never above
        # the tracked maximum
        assert histogram.percentile(0.50) == pytest.approx(50.0, rel=0.6)
        assert histogram.percentile(0.99) == pytest.approx(99.0, rel=0.6)
        assert histogram.percentile(1.0) <= 100.0
        assert histogram.count == 100
        assert histogram.mean == pytest.approx(50.5)

    def test_empty_percentile_is_zero(self):
        assert Histogram().percentile(0.99) == 0.0

    def test_count_and_sum_are_exact(self):
        histogram = Histogram()
        for v in range(100):
            histogram.observe(float(v) / 1000.0)
        assert histogram.count == 100
        assert histogram.total == pytest.approx(sum(range(100)) / 1000.0)
        assert histogram.max == pytest.approx(0.099)

    def test_overflow_bucket_answers_with_observed_max(self):
        histogram = Histogram()
        histogram.observe(12_345.0)  # far above the 100 s top bound
        assert histogram.percentile(0.99) == pytest.approx(12_345.0)
        assert histogram.snapshot()["bucket_counts"][-1] == 1

    def test_snapshot_keys(self):
        histogram = Histogram()
        histogram.observe(1.0)
        snap = histogram.snapshot()
        assert set(snap) == {"count", "sum", "mean", "max", "p50", "p90",
                             "p99", "p999", "bounds", "bucket_counts"}
        assert snap["bounds"] == list(DEFAULT_LATENCY_BOUNDS)
        assert len(snap["bucket_counts"]) == len(snap["bounds"]) + 1

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=())
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0, 2.0))  # not strictly increasing


class TestMetricsRegistry:
    def test_same_name_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_ratio(self):
        registry = MetricsRegistry()
        assert registry.ratio("hits", "total") is None
        registry.counter("total").inc(4)
        registry.counter("hits").inc(3)
        assert registry.ratio("hits", "total") == pytest.approx(0.75)

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(2.0)
        registry.histogram("h").observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"]["c"] == 1
        assert snap["gauges"]["g"] == 2.0
        assert snap["histograms"]["h"]["count"] == 1

    def test_disabled_registry_hands_out_noops(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("c").inc(7)
        registry.gauge("g").set(3.0)
        registry.histogram("h").observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}
        # shared singletons, not per-name instances
        assert registry.counter("a") is registry.counter("b")
