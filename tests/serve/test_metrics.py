"""Tests for serving counters and histograms."""

import threading

import pytest

from repro.serve import Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter()
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_concurrent_increments_are_not_lost(self):
        counter = Counter()

        def hammer():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 40_000


class TestHistogram:
    def test_percentiles_on_known_data(self):
        histogram = Histogram()
        for v in range(1, 101):  # 1..100
            histogram.observe(float(v))
        assert histogram.percentile(0.50) == 50.0
        assert histogram.percentile(0.99) == 99.0
        assert histogram.percentile(1.0) == 100.0
        assert histogram.count == 100
        assert histogram.mean == pytest.approx(50.5)

    def test_empty_percentile_is_zero(self):
        assert Histogram().percentile(0.99) == 0.0

    def test_ring_keeps_recent_samples(self):
        histogram = Histogram(capacity=10)
        for v in range(100):
            histogram.observe(float(v))
        # retained window is the last 10 samples (90..99)
        assert histogram.percentile(0.0) >= 90.0
        assert histogram.count == 100  # lifetime count stays exact

    def test_snapshot_keys(self):
        histogram = Histogram()
        histogram.observe(1.0)
        snap = histogram.snapshot()
        assert set(snap) == {"count", "mean", "p50", "p90", "p99", "max"}

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Histogram(capacity=0)


class TestMetricsRegistry:
    def test_same_name_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_ratio(self):
        registry = MetricsRegistry()
        assert registry.ratio("hits", "total") is None
        registry.counter("total").inc(4)
        registry.counter("hits").inc(3)
        assert registry.ratio("hits", "total") == pytest.approx(0.75)

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h").observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"]["c"] == 1
        assert snap["histograms"]["h"]["count"] == 1
