"""Regression tests for the violations the lint rules surfaced (PR 9).

Each test pins the *behavioral* fix, independent of the lint gate that
now guards its shape: telemetry families exist pre-traffic (RL004),
malformed budgets raise taxonomy errors (RL005), and the lifecycle's
convergence flags stay coherent under the apply lock (RL001).
"""

import threading

import pytest

from repro.errors import InvalidRequestError
from repro.serve import ACTService, ServeConfig, create_server
from repro.serve.batcher import MicroBatcher
from repro.serve.lifecycle import FleetLifecycle
from repro.serve.metrics import MetricsRegistry
from repro.serve.server import ACTRequestHandler


class TestFamiliesExistPreTraffic:
    """RL004: a scrape taken before the first request shows every
    family at zero instead of families appearing mid-incident."""

    def test_service_registers_cold_path_families(self):
        svc = ACTService()
        snap = svc.metrics.snapshot()
        for name in ("queries.total", "queries.invalid",
                     "queries.batched_misses", "joins.total",
                     "joins.points", "admin.reloads", "admin.registers",
                     "admin.unregisters", "faults.chaos_injections"):
            assert snap["counters"].get(name) == 0, name
        for name in ("queries.latency_seconds", "joins.latency_seconds"):
            assert name in snap["histograms"], name
        svc.close()

    def test_batcher_registers_families_at_construction(self, nyc_index):
        metrics = MetricsRegistry()
        MicroBatcher(nyc_index, metrics=metrics)  # never started
        snap = metrics.snapshot()
        for name in ("batcher.shed", "batcher.batches",
                     "batcher.queries"):
            assert snap["counters"].get(name) == 0, name
        assert "batcher.batch_size" in snap["histograms"]

    def test_http_server_registers_families_at_bind(self):
        svc = ACTService()
        server = create_server(svc, port=0)
        try:
            snap = svc.metrics.snapshot()
            assert snap["counters"].get("http.requests") == 0
            assert snap["counters"].get("admin.requests") == 0
        finally:
            server.server_close()
            svc.close()

    def test_lifecycle_registers_fault_families(self):
        svc = ACTService()
        FleetLifecycle(control={}, op_lock=threading.Lock(),
                       identity="t", workers=1, service=svc)
        snap = svc.metrics.snapshot()
        for name in ("faults.artifact_corrupt", "faults.quarantined",
                     "faults.reload_rollbacks", "faults.apply_failures"):
            assert snap["counters"].get(name) == 0, name
        svc.close()

    def test_register_is_idempotent_and_keeps_values(self):
        metrics = MetricsRegistry()
        metrics.counter("x.total").inc(3)
        metrics.register(counters=("x.total",), histograms=("x.lat",))
        assert metrics.counter("x.total").value == 3
        assert "x.lat" in metrics.snapshot()["histograms"]


class TestBudgetParseTaxonomy:
    """RL005: malformed budgets raise the typed 400-mapped error, not a
    bare ValueError that would surface as an opaque 500."""

    def test_malformed_budget_raises_invalid_request(self):
        with pytest.raises(InvalidRequestError):
            ACTRequestHandler._parse_budget(None, "fifty")

    def test_none_budget_passes_through(self):
        assert ACTRequestHandler._parse_budget(None, None) is None

    def test_valid_budget_parses(self):
        budget = ACTRequestHandler._parse_budget(None, "25")
        assert budget is not None


class TestLifecycleConvergenceUnderLock:
    """RL001: convergence flags are written under the apply lock; a
    status() reader never sees a torn converged/last_error pair after
    a coordinator-local corrupt abort (the `_locked` path)."""

    def test_abort_corrupt_is_locked_convention(self):
        # the caller-holds-lock convention is load-bearing for RL001:
        # the helper writes last_error and must advertise it
        assert hasattr(FleetLifecycle, "_abort_corrupt_locked")
        assert not hasattr(FleetLifecycle, "_abort_corrupt")

    def test_status_reflects_submit_outcome(self, nyc_index, tmp_path):
        svc = ACTService(config=ServeConfig(max_wait_ms=1.0))
        svc.registry.register_index("nyc", nyc_index)
        # identity "parent", workers=0: the coordinator's own ack is
        # the whole barrier, so submit converges without a fleet
        lc = FleetLifecycle(control={}, op_lock=threading.Lock(),
                            identity="parent", workers=0, service=svc,
                            artifact_dir=str(tmp_path), timeout_s=5.0)
        response = lc.submit({"op": "reload", "name": "nyc"})
        assert response["complete"] is True
        status = lc.status()
        assert status["converged"] is True
        assert status["last_error"] is None
        svc.close()
