"""Tests for per-request latency budgets."""

import time

import pytest

from repro.errors import BudgetExceededError, ReproError, ServeError
from repro.serve import Budget


class TestBudget:
    def test_unlimited_never_expires(self):
        budget = Budget.unlimited()
        assert budget.is_unlimited
        assert not budget.expired
        assert budget.remaining() == float("inf")
        budget.require("anything")  # must not raise

    def test_from_ms_none_is_unlimited(self):
        assert Budget.from_ms(None).is_unlimited

    def test_remaining_decreases(self):
        budget = Budget(0.5)
        first = budget.remaining()
        time.sleep(0.01)
        assert budget.remaining() < first
        assert not budget.expired

    def test_expired_budget_raises(self):
        budget = Budget(-0.001)  # deadline already in the past
        assert budget.expired
        with pytest.raises(BudgetExceededError) as exc:
            budget.require("dispatch")
        assert "dispatch" in str(exc.value)

    def test_zero_budget_expires_immediately(self):
        budget = Budget(0.0)
        time.sleep(0.001)
        assert budget.expired

    def test_error_hierarchy(self):
        # callers catching the library base class also catch shed errors
        assert issubclass(BudgetExceededError, ServeError)
        assert issubclass(ServeError, ReproError)

    def test_repr(self):
        assert "unlimited" in repr(Budget.unlimited())
        assert "remaining" in repr(Budget(1.0))
