"""End-to-end smoke test: the real ``repro-act serve`` process answers
``/healthz`` and ``/query`` over HTTP."""

import json
import os
import re
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture(scope="module")
def serve_process():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--dataset", "neighborhoods", "--size", "12",
         "--precision", "300", "--port", "0"],
        env=env, stderr=subprocess.PIPE, text=True,
    )
    port = None
    deadline = time.monotonic() + 120.0
    try:
        while time.monotonic() < deadline:
            line = proc.stderr.readline()
            if not line and proc.poll() is not None:
                pytest.fail(f"serve exited early with {proc.returncode}")
            match = re.search(r"on http://[\d.]+:(\d+)", line)
            if match:
                port = int(match.group(1))
                break
        if port is None:
            pytest.fail("serve never announced its port")
        yield port
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=10.0)
        except subprocess.TimeoutExpired:  # pragma: no cover
            proc.kill()


def _get(port, path):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}",
                                timeout=10.0) as resp:
        return resp.status, json.loads(resp.read())


@pytest.fixture(scope="module")
def fleet_process():
    """The real ``repro-act serve --workers 2`` fleet."""
    from repro.serve.fleet import fleet_available

    if not fleet_available():
        pytest.skip("fleet needs the 'fork' start method")
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--dataset", "neighborhoods", "--size", "12",
         "--precision", "300", "--port", "0", "--workers", "2"],
        env=env, stderr=subprocess.PIPE, text=True,
    )
    port = None
    deadline = time.monotonic() + 120.0
    try:
        while time.monotonic() < deadline:
            line = proc.stderr.readline()
            if not line and proc.poll() is not None:
                pytest.fail(f"fleet exited early with {proc.returncode}")
            match = re.search(r"on http://[\d.]+:(\d+)", line)
            if match:
                port = int(match.group(1))
                break
        if port is None:
            pytest.fail("fleet never announced its port")
        yield proc, port
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=30.0)
        except subprocess.TimeoutExpired:  # pragma: no cover
            proc.kill()


class TestServeSmoke:
    def test_healthz(self, serve_process):
        status, body = _get(serve_process, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["indexes"] == ["neighborhoods"]

    def test_query(self, serve_process):
        status, body = _get(
            serve_process,
            "/query?index=neighborhoods&lng=-73.97&lat=40.75")
        assert status == 200
        assert body["is_hit"] in (True, False)
        assert isinstance(body["polygon_ids"], list)

    def test_stats(self, serve_process):
        status, body = _get(serve_process, "/stats")
        assert status == 200
        assert body["metrics"]["counters"]["queries.total"] >= 1


class TestFleetServeSmoke:
    def test_healthz_reports_worker(self, fleet_process):
        _, port = fleet_process
        status, body = _get(port, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["worker"] in (0, 1)

    def test_stats_has_fleet_section(self, fleet_process):
        _, port = fleet_process
        status, body = _get(
            port, "/query?index=neighborhoods&lng=-73.97&lat=40.75")
        assert status == 200
        status, body = _get(port, "/stats")
        assert status == 200
        assert body["fleet"]["workers"] >= 1
        assert "qps" in body["fleet"]

    def test_sigterm_exits_cleanly(self, fleet_process):
        proc, port = fleet_process
        proc.terminate()  # SIGTERM -> drain -> exit 0
        assert proc.wait(timeout=60.0) == 0
