"""``GET /metrics``, request IDs, and forced traces over real HTTP."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs import parse_exposition, validate_exposition
from repro.serve import ACTService, ServeConfig, create_server


@pytest.fixture(scope="module")
def metrics_server(nyc_index):
    service = ACTService(config=ServeConfig(max_wait_ms=1.0))
    # register via builder (not register_index) so reload_index can
    # re-materialize and bump the generation
    service.registry.register("nyc", lambda: nyc_index)
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, service
    server.shutdown()
    server.server_close()
    service.close()
    thread.join(timeout=5.0)


def _get_raw(server, path, headers=None):
    port = server.server_address[1]
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", headers=headers or {})
    with urllib.request.urlopen(request, timeout=10.0) as resp:
        return resp.status, dict(resp.headers), resp.read().decode("utf-8")


def _scrape(server):
    status, headers, text = _get_raw(server, "/metrics")
    assert status == 200
    return headers, text


def _sample_value(families, family, name, want_labels=None):
    for sample_name, labels, value in families[family]["samples"]:
        if sample_name != name:
            continue
        if want_labels and any(labels.get(k) != v
                               for k, v in want_labels.items()):
            continue
        return value
    raise AssertionError(f"no sample {name} in {family}")


class TestMetricsEndpoint:
    def test_valid_exposition_and_content_type(self, metrics_server):
        server, _ = metrics_server
        headers, text = _scrape(server)
        assert headers["Content-Type"] == \
            "text/plain; version=0.0.4; charset=utf-8"
        assert validate_exposition(text) == []

    def test_counters_monotone_across_scrapes(self, metrics_server):
        server, _ = metrics_server
        _get_raw(server, "/query?index=nyc&lng=-73.97&lat=40.75")
        _, text = _scrape(server)
        first = parse_exposition(text)
        before = _sample_value(first, "repro_queries_total",
                               "repro_queries_total")
        for _ in range(5):
            _get_raw(server, "/query?index=nyc&lng=-73.97&lat=40.75")
        _, text = _scrape(server)
        second = parse_exposition(text)
        after = _sample_value(second, "repro_queries_total",
                              "repro_queries_total")
        assert after >= before + 5
        # the latency histogram kept pace and stayed consistent
        count = _sample_value(second, "repro_queries_latency_seconds",
                              "repro_queries_latency_seconds_count")
        inf = _sample_value(second, "repro_queries_latency_seconds",
                            "repro_queries_latency_seconds_bucket",
                            {"le": "+Inf"})
        assert count == inf >= after

    def test_generation_label_changes_across_reload(self, metrics_server):
        server, service = metrics_server
        _get_raw(server, "/query?index=nyc&lng=-73.97&lat=40.75")
        _, text = _scrape(server)
        families = parse_exposition(text)

        def generations(fams):
            return {
                labels["index"]: labels["generation"]
                for _n, labels, _v in
                fams["repro_index_generation"]["samples"]
            }

        before = generations(families)["nyc"]
        service.reload_index("nyc")
        _, text = _scrape(server)
        after = generations(parse_exposition(text))["nyc"]
        assert int(after) == int(before) + 1
        assert validate_exposition(text) == []


class TestRequestIds:
    def test_minted_id_on_every_response(self, metrics_server):
        server, _ = metrics_server
        _, headers, body = _get_raw(
            server, "/query?index=nyc&lng=-73.97&lat=40.75")
        minted = headers["X-Request-Id"]
        assert minted
        assert json.loads(body)["request_id"] == minted
        _, headers2, _ = _get_raw(server, "/healthz")
        assert headers2["X-Request-Id"] != minted

    def test_client_supplied_id_is_echoed(self, metrics_server):
        server, _ = metrics_server
        _, headers, body = _get_raw(
            server, "/query?index=nyc&lng=-73.97&lat=40.75",
            headers={"X-Request-Id": "client-abc-123"})
        assert headers["X-Request-Id"] == "client-abc-123"
        assert json.loads(body)["request_id"] == "client-abc-123"

    def test_error_responses_carry_the_id(self, metrics_server):
        server, _ = metrics_server
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get_raw(server, "/query?index=missing&lng=0&lat=0",
                     headers={"X-Request-Id": "err-42"})
        err = exc.value
        assert err.headers["X-Request-Id"] == "err-42"
        assert json.loads(err.read())["request_id"] == "err-42"

    def test_metrics_scrape_has_an_id_too(self, metrics_server):
        server, _ = metrics_server
        _, headers, _ = _get_raw(server, "/metrics")
        assert headers["X-Request-Id"]


class TestForcedTrace:
    def test_trace_param_returns_stage_breakdown(self, metrics_server):
        server, _ = metrics_server
        _, _, body = _get_raw(
            server, "/query?index=nyc&lng=-73.97&lat=40.75&trace=1")
        payload = json.loads(body)
        trace = payload["trace"]
        assert trace["request_id"] == payload["request_id"]
        stages = [s["stage"] for s in trace["stages"]]
        assert "serialize" in stages
        # acceptance criterion: the per-stage breakdown tiles the
        # request — stage sum within 10% of the end-to-end latency
        assert trace["stage_sum_ms"] <= trace["total_ms"]
        assert trace["stage_sum_ms"] == pytest.approx(
            trace["total_ms"], rel=0.10, abs=0.25)

    def test_untraced_requests_have_no_trace_key(self, metrics_server):
        server, _ = metrics_server
        _, _, body = _get_raw(
            server, "/query?index=nyc&lng=-73.97&lat=40.75")
        assert "trace" not in json.loads(body)


class TestSlowlogEndpoint:
    def test_slowlog_route(self, metrics_server):
        server, service = metrics_server
        service.slowlog.clear()
        service.slowlog.maybe_record(
            service.slowlog.threshold_s + 1.0, "query",
            request_id="slow-http")
        _, _, body = _get_raw(server, "/admin/slowlog")
        payload = json.loads(body)
        assert [e["request_id"] for e in payload["slow_queries"]] == \
            ["slow-http"]
        assert payload["stats"]["size"] == 1
        assert payload["pid"] == payload["slow_queries"][0]["pid"]
