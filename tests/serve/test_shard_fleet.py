"""Sharded fleet integration: real forks, real sockets, real kills.

The sharded fleet must be indistinguishable from an unsharded service
to any client at any shard socket (forwarding is an implementation
detail), survive losing a shard worker mid-scatter (the parent-held
listening socket buffers forwards until the respawn), and reload a
single index under traffic without wrong or failed answers.

Everything forks, so the module skips where ``fork`` is unavailable.
"""

import json
import os
import signal
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.serve import (ACTService, FleetConfig, IndexRegistry,
                         ServingFleet, binproto)
from repro.serve.fleet import fleet_available

pytestmark = pytest.mark.skipif(
    not fleet_available(),
    reason="fleet needs the 'fork' start method",
)


def _get(address, path, timeout=15.0):
    host, port = address
    with urllib.request.urlopen(f"http://{host}:{port}{path}",
                                timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


def _post(address, path, payload, timeout=90.0):
    host, port = address
    request = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


def _shard_fleet(registry, **overrides):
    config = FleetConfig(workers=2, shards=2, stats_interval_s=0.1,
                         restart_backoff_s=0.05, **overrides)
    return ServingFleet(registry, config)


def _poll_shard_snapshots(fleet, deadline_s=15.0, extra=None):
    """Wait until both workers published shard-annotated snapshots.

    ``extra`` is an optional predicate over the per-worker list for
    waiting out snapshot lag (workers publish on their stats interval,
    so counters trail traffic by up to one tick).
    """
    deadline = time.monotonic() + deadline_s
    per_worker = []
    while time.monotonic() < deadline:
        per_worker = fleet.stats().get("per_worker", [])
        if (len(per_worker) == 2
                and all("shard" in e and "admission" in e
                        for e in per_worker)
                and (extra is None or extra(per_worker))):
            return per_worker
        time.sleep(0.1)
    raise AssertionError(
        f"workers never published shard snapshots: {per_worker}")


@pytest.fixture(scope="module")
def ground_truth(nyc_index, query_points):
    lngs, lats = query_points
    registry = IndexRegistry()
    registry.register_index("nyc", nyc_index)
    service = ACTService(registry=registry)
    truth = service.query_batch("nyc", lngs, lats)
    counts = service.join("nyc", lngs, lats, exact=True)
    service.close()
    return truth, counts


class TestShardedFleet:
    def test_any_shard_socket_answers_spanning_batch(
            self, nyc_index, query_points, ground_truth):
        lngs, lats = query_points
        truth, truth_counts = ground_truth
        registry = IndexRegistry()
        registry.register_index("nyc", nyc_index)
        with _shard_fleet(registry) as fleet:
            fleet.start()
            # binary_port=None is promoted: shard mode always has a
            # binary plane, one distinct socket per slot
            assert fleet.config.binary_port is not None
            addresses = fleet.shard_addresses
            assert sorted(addresses) == [0, 1]
            assert addresses[0][1] != addresses[1][1]
            for slot, (host, port) in sorted(addresses.items()):
                client = binproto.Client(host, port, timeout=30.0)
                assert client.query_batch("nyc", lngs, lats) == truth
                counts = client.join("nyc", lngs, lats, exact=True)
                got = np.zeros_like(truth_counts)
                for pid, count in counts.items():
                    got[pid] = count
                assert np.array_equal(got, truth_counts)
                client.close()
            per_worker = _poll_shard_snapshots(
                fleet,
                extra=lambda pw: (
                    sum(e["shard"]["forwarded"] for e in pw) > 0
                    and sum(e["shard"]["local"] for e in pw) > 0))
            full = nyc_index.core.total_bytes
            for entry in per_worker:
                assert entry["shard"]["node_pool_bytes"] < 0.75 * full
                assert entry["shard"]["map_generation"] == 1
            # the fleet aggregate carries the shard counters, and the
            # Prometheus exposition renders the per-shard families
            counters = fleet.stats()["counters"]
            assert counters["shard.forwarded"] > 0
            status, text = _get_text(fleet.address, "/metrics")
            assert status == 200
            for needle in ("repro_fleet_shard_inflight",
                           "repro_fleet_shard_forwarded",
                           "repro_fleet_shard_node_pool_bytes"):
                assert needle in text
            status, body = _get(fleet.address, "/admin/shards")
            assert status == 200
            assert body["shard"]["slot"] in (0, 1)

    def test_rebalance_is_a_generation_swap(self, nyc_index,
                                            query_points, ground_truth):
        lngs, lats = query_points
        truth, _ = ground_truth
        registry = IndexRegistry()
        registry.register_index("nyc", nyc_index)
        with _shard_fleet(registry) as fleet:
            fleet.start()
            _poll_shard_snapshots(fleet)
            new_map = fleet.rebalance()
            assert new_map.generation == 2
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                per_worker = fleet.stats().get("per_worker", [])
                if per_worker and all(
                        e.get("shard", {}).get("map_generation") == 2
                        for e in per_worker):
                    break
                time.sleep(0.1)
            else:
                raise AssertionError("workers never adopted generation 2")
            host, port = fleet.shard_addresses[0]
            client = binproto.Client(host, port, timeout=30.0)
            assert client.query_batch("nyc", lngs, lats) == truth
            client.close()

    def test_single_index_reload_under_traffic(self, nyc_index, tmp_path,
                                               query_points, ground_truth):
        from repro.act.serialize import save_index

        lngs, lats = query_points
        truth, _ = ground_truth
        path = tmp_path / "nyc.npz"
        save_index(nyc_index, path)
        registry = IndexRegistry()
        registry.register_path("nyc", str(path), mmap_mode="r")
        failures = []
        stop = threading.Event()

        with _shard_fleet(registry, admin_timeout_s=60.0) as fleet:
            fleet.start()
            host, port = fleet.shard_addresses[0]

            def hammer():
                client = binproto.Client(host, port, timeout=30.0)
                try:
                    while not stop.is_set():
                        got = client.query_batch("nyc", lngs[:100],
                                                 lats[:100])
                        if got != truth[:100]:
                            failures.append("wrong answer during reload")
                finally:
                    client.close()

            thread = threading.Thread(target=hammer, daemon=True)
            thread.start()
            try:
                time.sleep(0.3)
                status, body = _post(fleet.address, "/admin/reload", {
                    "name": "nyc", "path": str(path), "mmap_mode": "r",
                })
                assert status == 200
                assert body.get("complete", False), body
                time.sleep(0.3)
            finally:
                stop.set()
                thread.join(timeout=30.0)
            assert not failures, failures[:3]
            # every worker serves the new generation — and still only
            # its slice of it
            per_worker = _poll_shard_snapshots(fleet)
            full = nyc_index.core.total_bytes
            for entry in per_worker:
                assert entry["shard"]["node_pool_bytes"] < 0.75 * full
            client = binproto.Client(host, port, timeout=30.0)
            assert client.query_batch("nyc", lngs, lats) == truth
            client.close()

    def test_router_retry_rides_a_respawn(self, nyc_index, query_points,
                                          ground_truth):
        """SIGKILL one shard worker, then immediately drive a spanning
        batch through the surviving one: its forwards to the dead slot
        queue in the parent-held listening socket's backlog until the
        supervisor respawns the slot, and the resilient client replays.
        """
        lngs, lats = query_points
        truth, _ = ground_truth
        registry = IndexRegistry()
        registry.register_index("nyc", nyc_index)
        with _shard_fleet(registry) as fleet:
            fleet.start()
            _poll_shard_snapshots(fleet)
            victim = fleet._processes[0]
            os.kill(victim.pid, signal.SIGKILL)
            host, port = fleet.shard_addresses[1]
            client = binproto.Client(host, port, timeout=60.0, retries=8)
            assert client.query_batch("nyc", lngs, lats) == truth
            client.close()
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline and fleet.restarts < 1:
                time.sleep(0.1)
            assert fleet.restarts >= 1
            # the respawned slot answers on the same address
            host0, port0 = fleet.shard_addresses[0]
            client = binproto.Client(host0, port0, timeout=60.0, retries=8)
            assert client.query_batch("nyc", lngs, lats) == truth
            client.close()

    def test_chaos_kill_one_shard_drill(self, nyc_index, query_points,
                                        ground_truth):
        """The kill-one-shard drill: arm ``shard.forward=kill`` on one
        worker, make it scatter, and require the fleet to heal — the
        armed worker dies mid-forward, its replacement forks disarmed
        from the parent, and the client's replay lands correctly.
        """
        lngs, lats = query_points
        truth, _ = ground_truth
        registry = IndexRegistry()
        registry.register_index("nyc", nyc_index)
        with _shard_fleet(registry) as fleet:
            fleet.start()
            per_worker = _poll_shard_snapshots(fleet)
            status, body = _post(fleet.address, "/admin/chaos",
                                 {"spec": "shard.forward=kill:1.0"})
            assert status == 200
            armed_pid = body["pid"]
            armed_slot = next(e["shard"]["slot"] for e in per_worker
                              if e["pid"] == armed_pid)
            host, port = fleet.shard_addresses[armed_slot]
            client = binproto.Client(host, port, timeout=60.0, retries=8)
            # a spanning batch forces the armed worker to forward → die
            assert client.query_batch("nyc", lngs, lats) == truth
            client.close()
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline and fleet.restarts < 1:
                time.sleep(0.1)
            assert fleet.restarts >= 1


def _get_text(address, path, timeout=15.0):
    host, port = address
    with urllib.request.urlopen(f"http://{host}:{port}{path}",
                                timeout=timeout) as resp:
        return resp.status, resp.read().decode("utf-8")
