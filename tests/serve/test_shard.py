"""Shard map planning, slicing, and routing — no fork required.

Covers the keyspace invariants (contiguous cover of the full uint64
cell-id space, boundary-cell routing), the slice/partition guarantees
(every entry lands in exactly one slice, resident bytes shrink), and
the in-process router: two :class:`ShardedACTService` instances wired
to each other over real binary frontends must answer exactly like one
unsharded service, and admission control must shed only on positive
fleet-wide evidence.
"""

import socket
import time

import numpy as np
import pytest

from repro.errors import (BudgetExceededError, ServeError,
                          UnknownIndexError)
from repro.serve import ACTService, IndexRegistry
from repro.serve.aserver import BinaryFrontend
from repro.serve.router import ShardedACTService
from repro.serve.shard import (KEY_MAX, ShardMap, ShardRange,
                               plan_shard_map, publish_shard_map,
                               read_shard_map, shard_keys, slice_index)


@pytest.fixture(scope="module")
def shard_map4(nyc_index):
    return plan_shard_map({"nyc": nyc_index}, 4)


@pytest.fixture(scope="module")
def point_keys(nyc_index, query_points):
    lngs, lats = query_points
    return shard_keys(nyc_index.grid, lngs, lats,
                      nyc_index.boundary_level)


class TestShardMap:
    def test_plan_covers_keyspace(self, shard_map4):
        ranges = shard_map4.ranges["nyc"]
        assert len(ranges) == 4
        assert ranges[0].cell_lo == 0
        assert ranges[-1].cell_hi == KEY_MAX
        for prev, cur in zip(ranges, ranges[1:]):
            assert cur.cell_lo == prev.cell_hi + 1
        assert sorted(r.slot for r in ranges) == [0, 1, 2, 3]

    def test_boundary_cell_probe(self, shard_map4):
        """Keys on either side of every cut land on the right slot."""
        ranges = shard_map4.ranges["nyc"]
        for rng in ranges:
            assert shard_map4.route_one("nyc", rng.cell_lo) == rng.slot
            assert shard_map4.route_one("nyc", rng.cell_hi) == rng.slot
        for prev, cur in zip(ranges, ranges[1:]):
            assert shard_map4.route_one("nyc", prev.cell_hi + 1) == cur.slot
        assert shard_map4.route_one("nyc", 0) == ranges[0].slot
        assert shard_map4.route_one("nyc", KEY_MAX) == ranges[-1].slot

    def test_route_vector_matches_scalar(self, shard_map4, point_keys):
        slots = shard_map4.route("nyc", point_keys)
        for key, slot in zip(point_keys.tolist(), slots.tolist()):
            assert shard_map4.route_one("nyc", key) == slot

    def test_route_unknown_index(self, shard_map4, point_keys):
        with pytest.raises(UnknownIndexError):
            shard_map4.route("nope", point_keys)

    def test_wire_round_trip(self, shard_map4, point_keys):
        clone = ShardMap.from_wire(shard_map4.to_wire())
        assert clone.generation == shard_map4.generation
        assert clone.num_slots == shard_map4.num_slots
        assert np.array_equal(clone.route("nyc", point_keys),
                              shard_map4.route("nyc", point_keys))

    def test_invalid_maps_rejected(self):
        with pytest.raises(ServeError):
            ShardMap(1, {"x": [ShardRange(1, KEY_MAX, 0)]}, 1)  # gap at 0
        with pytest.raises(ServeError):
            ShardMap(1, {"x": [ShardRange(0, 10, 0)]}, 1)  # short cover
        with pytest.raises(ServeError):
            ShardMap(1, {"x": [ShardRange(0, 10, 0),
                               ShardRange(12, KEY_MAX, 0)]}, 1)  # hole
        with pytest.raises(ServeError):
            ShardMap(1, {"x": [ShardRange(0, KEY_MAX, 3)]}, 2)  # bad slot

    def test_control_channel_round_trip(self, shard_map4, nyc_index):
        control = {}
        assert read_shard_map(control) is None
        publish_shard_map(control, shard_map4)
        got = read_shard_map(control)
        assert got is not None and got.generation == shard_map4.generation
        newer = plan_shard_map({"nyc": nyc_index}, 4, generation=7)
        publish_shard_map(control, newer)
        assert read_shard_map(control).generation == 7


class TestSlicing:
    def test_slices_partition_entries(self, nyc_index, shard_map4):
        slices = [
            slice_index(nyc_index,
                        shard_map4.ranges_for_slot("nyc", slot))
            for slot in range(4)
        ]
        assert (sum(s.core.num_entries for s in slices)
                == nyc_index.core.num_entries)
        # per-slot resident node-pool bytes shrink roughly with the
        # slot count (the planner balances by coverage weight, so allow
        # slack — but no slice may approach the full footprint)
        full = nyc_index.core.total_bytes
        for sliced in slices:
            assert sliced.core.total_bytes < 0.6 * full

    def test_owned_points_answer_identically(self, nyc_index, shard_map4,
                                             query_points, point_keys):
        lngs, lats = query_points
        truth = nyc_index.lookup_batch(lngs, lats)
        slots = shard_map4.route("nyc", point_keys)
        seen = 0
        for slot in range(4):
            own = slots == slot
            if not own.any():
                continue
            sliced = slice_index(
                nyc_index, shard_map4.ranges_for_slot("nyc", slot))
            got = sliced.lookup_batch(lngs[own], lats[own])
            assert np.array_equal(got, truth[own])
            seen += int(own.sum())
        assert seen == len(lngs)


@pytest.fixture()
def sharded_pair(nyc_index):
    """Two cross-wired sharded services over real binary frontends."""
    shard_map = plan_shard_map({"nyc": nyc_index}, 2)
    socks = []
    for _ in range(2):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.bind(("127.0.0.1", 0))
        sock.listen(8)
        sock.setblocking(False)
        socks.append(sock)
    addresses = {slot: sock.getsockname()[:2]
                 for slot, sock in enumerate(socks)}
    services, frontends = [], []
    try:
        for slot in range(2):
            registry = IndexRegistry()
            registry.register_index("nyc", nyc_index)
            service = ShardedACTService(
                registry=registry, shard_map=shard_map, slot=slot,
                addresses=addresses, forward_timeout_s=30.0)
            services.append(service)
            frontends.append(
                BinaryFrontend(service, sock=socks[slot],
                               worker_id=slot).start())
        yield services
    finally:
        for frontend in frontends:
            frontend.stop()
        for service in services:
            service.close()
        for sock in socks:
            try:
                sock.close()
            except OSError:
                pass


class TestShardedServiceInProcess:
    def test_batch_spanning_all_shards(self, sharded_pair, nyc_index,
                                       query_points):
        lngs, lats = query_points
        plain_registry = IndexRegistry()
        plain_registry.register_index("nyc", nyc_index)
        plain = ACTService(registry=plain_registry)
        truth = plain.query_batch("nyc", lngs, lats)
        truth_counts = plain.join("nyc", lngs, lats, exact=True)
        plain.close()
        for service in sharded_pair:
            assert service.query_batch("nyc", lngs, lats) == truth
            assert np.array_equal(service.join("nyc", lngs, lats,
                                               exact=True), truth_counts)
        infos = [service.shard_info() for service in sharded_pair]
        assert sum(i["forwarded"] for i in infos) > 0
        assert sum(i["local"] for i in infos) > 0
        full = nyc_index.core.total_bytes
        for info in infos:
            assert info["node_pool_bytes"] < 0.75 * full

    def test_scalar_query_routes(self, sharded_pair, nyc_index,
                                 query_points):
        lngs, lats = query_points
        for lng, lat in zip(lngs[:20], lats[:20]):
            expected = nyc_index.query(lng, lat)
            for service in sharded_pair:
                assert service.query("nyc", lng, lat) == expected

    def test_shed_needs_whole_owner_set(self, nyc_index, query_points):
        """Admission sheds only on fresh saturation of EVERY owner."""
        shard_map = plan_shard_map({"nyc": nyc_index}, 2)
        registry = IndexRegistry()
        registry.register_index("nyc", nyc_index)
        snapshots = {}
        service = ShardedACTService(
            registry=registry, shard_map=shard_map, slot=0,
            snapshots=snapshots, shed_inflight=1, shed_staleness_s=5.0)
        try:
            lngs, lats = query_points
            # no snapshot from the remote owner: fail open on the
            # admission check (the forward itself then fails — there is
            # no address — which is the error path, not the shed path)
            assert service._fleet_saturated([0, 1]) is False
            service._inflight = 3  # own slot saturated
            assert service._fleet_saturated([0, 1]) is False
            snapshots[1] = {"admission": {"inflight": 99,
                                          "ts": time.time()}}
            service._snap_cache = (0.0, {})  # drop the cached view
            assert service._fleet_saturated([0, 1]) is True
            shed_before = service.metrics.counter("shard.shed").value
            with pytest.raises(BudgetExceededError):
                service.query_batch("nyc", lngs, lats)
            assert (service.metrics.counter("shard.shed").value
                    > shed_before)
            # a stale saturation report fails open again
            snapshots[1] = {"admission": {"inflight": 99,
                                          "ts": time.time() - 60.0}}
            service._snap_cache = (0.0, {})
            assert service._fleet_saturated([0, 1]) is False
        finally:
            service._inflight = 0
            service.close()

    def test_rebalance_reslices(self, nyc_index, query_points):
        """Adopting a higher-generation map changes the resident slice
        without touching correctness for locally-owned keys."""
        registry = IndexRegistry()
        registry.register_index("nyc", nyc_index)
        map1 = plan_shard_map({"nyc": nyc_index}, 2)
        service = ShardedACTService(registry=registry, shard_map=map1,
                                    slot=0)
        try:
            assert service.adopt_shard_map(map1) is False  # not newer
            map2 = plan_shard_map({"nyc": nyc_index}, 2, generation=2)
            assert service.adopt_shard_map(map2) is True
            assert service.shard_info()["map_generation"] == 2
            lngs, lats = query_points
            keys = shard_keys(nyc_index.grid, lngs, lats,
                              nyc_index.boundary_level)
            own = map2.route("nyc", keys) == 0
            truth = nyc_index.lookup_batch(lngs[own], lats[own])
            record = registry.materialized["nyc"]
            got = record.index.lookup_batch(lngs[own], lats[own])
            assert np.array_equal(got, truth)
            assert (record.index.core.total_bytes
                    < nyc_index.core.total_bytes)
        finally:
            service.close()
