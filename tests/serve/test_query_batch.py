"""Tests of the batched serving path (service.query_batch)."""

import pytest

from repro.errors import BudgetExceededError, UnknownIndexError
from repro.serve import ACTService, Budget, ServeConfig


@pytest.fixture()
def service(nyc_index):
    svc = ACTService()
    svc.registry.register_index("nyc", nyc_index)
    yield svc
    svc.close()


class TestQueryBatch:
    def test_matches_scalar_path(self, service, query_points,
                                 serial_results):
        lngs, lats = query_points
        results = service.query_batch("nyc", lngs, lats)
        assert results == serial_results

    def test_exact_matches_scalar_exact(self, service, nyc_index,
                                        query_points):
        lngs, lats = query_points
        results = service.query_batch("nyc", lngs, lats, exact=True)
        for k, result in enumerate(results):
            want = nyc_index.query_exact(float(lngs[k]), float(lats[k]))
            assert result.true_hits == want
            assert result.candidates == ()

    def test_out_of_domain_points_miss(self, service):
        results = service.query_batch(
            "nyc", [-120.0, -73.97], [40.7, 40.75])
        assert results[0].is_hit is False
        assert results[0].true_hits == () and results[0].candidates == ()

    def test_populates_shared_cache(self, service, query_points):
        lngs, lats = query_points
        service.query_batch("nyc", lngs, lats)
        before = service.cache.hits
        # the scalar path must now hit the cells the batch cached
        service.query("nyc", float(lngs[0]), float(lats[0]))
        assert service.cache.hits == before + 1

    def test_second_batch_served_from_cache(self, service, query_points):
        lngs, lats = query_points
        service.query_batch("nyc", lngs, lats)
        misses_before = service.cache.misses
        results = service.query_batch("nyc", lngs, lats)
        assert service.cache.misses == misses_before  # zero new misses
        assert len(results) == len(lngs)

    def test_unknown_index(self, service):
        with pytest.raises(UnknownIndexError):
            service.query_batch("nope", [0.0], [0.0])

    def test_spent_budget_sheds_batch(self, service, query_points):
        lngs, lats = query_points
        budget = Budget.from_ms(0.000001)
        import time

        time.sleep(0.01)
        with pytest.raises(BudgetExceededError):
            service.query_batch("nyc", lngs, lats, budget=budget)

    def test_metrics_count_points(self, nyc_index, query_points):
        svc = ACTService(config=ServeConfig(cache_capacity=0))
        svc.registry.register_index("nyc", nyc_index)
        try:
            lngs, lats = query_points
            svc.query_batch("nyc", lngs, lats)
            snapshot = svc.metrics.snapshot()
            assert snapshot["counters"]["queries.total"] == len(lngs)
        finally:
            svc.close()

    def test_empty_batch(self, service):
        assert service.query_batch("nyc", [], []) == []
