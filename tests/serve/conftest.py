"""Shared fixtures for the serving-subsystem tests.

Reuses the session-scoped ``nyc_index`` / ``nyc_polygons`` fixtures from
the top-level conftest; adds a deterministic query workload that stays
inside the NYC region so most points actually hit polygons.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import taxi_points


@pytest.fixture(scope="session")
def query_points():
    """A fixed (lngs, lats) workload of 400 taxi-like points."""
    return taxi_points(400, seed=77)


@pytest.fixture(scope="session")
def serial_results(nyc_index, query_points):
    """Ground-truth per-point results from the scalar query path."""
    lngs, lats = query_points
    return [nyc_index.query(lng, lat) for lng, lat in zip(lngs, lats)]


@pytest.fixture()
def rng_serve():
    return np.random.default_rng(4242)
