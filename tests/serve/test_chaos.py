"""Chaos-harness tests: injected faults against the live serving stack.

The fault-tolerance layer is only trustworthy if it has met real
faults, so this suite arms :mod:`repro.serve.chaos` against live
servers and fleets and asserts the contracts the rest of the stack
advertises: a corrupt artifact can never be served (rejected
fleet-wide, old generation keeps answering 100% 2xx), a SIGKILLed
worker under pipelined binary traffic loses no in-flight request, and
injected connection resets converge back to healthy. The integrity
perf gate (checksum verification <5% of an mmap cold load) lives here
too, since it is the price of the protection the rest of the suite
exercises.
"""

import json
import os
import shutil
import signal
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import ACTIndex
from repro.act.serialize import load_index, save_index
from repro.datasets import neighborhoods
from repro.errors import InvalidRequestError
from repro.serve import (
    ACTService,
    IndexRegistry,
    MetricsRegistry,
    binproto,
    chaos,
    create_server,
)
from repro.serve.fleet import FleetConfig, ServingFleet, fleet_available


@pytest.fixture(autouse=True)
def disarmed():
    """Every test starts and ends with this process disarmed."""
    chaos.configure("")
    yield
    chaos.configure("")


def _get(address, path, timeout=15.0):
    host, port = address
    with urllib.request.urlopen(f"http://{host}:{port}{path}",
                                timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


def _post(address, path, payload, timeout=60.0):
    host, port = address
    request = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


class TestSpecParsing:
    def test_full_spec_round_trip(self):
        faults = chaos.parse_spec(
            "artifact.load=fail:1.0, query=slow:0.5:0.2,"
            "binary.request=reset")
        assert [(f.point, f.action, f.prob, f.arg) for f in faults] == [
            ("artifact.load", "fail", 1.0, 0.05),
            ("query", "slow", 0.5, 0.2),
            ("binary.request", "reset", 1.0, 0.05),
        ]

    def test_empty_spec_is_no_faults(self):
        assert chaos.parse_spec("") == []
        assert chaos.parse_spec(" , ,") == []

    @pytest.mark.parametrize("spec", [
        "query",                    # no action
        "nope=fail:1.0",            # unknown point
        "query=explode:1.0",        # unknown action
        "query=fail:2.0",           # probability out of range
        "query=fail:-0.1",
        "query=fail:x",             # non-numeric probability
    ])
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(InvalidRequestError):
            chaos.parse_spec(spec)

    def test_configure_arms_and_disarms(self):
        chaos.configure("query=slow:1.0:0.0")
        assert chaos.is_active()
        assert chaos.spec() == "query=slow:1.0:0.0"
        chaos.configure("")
        assert not chaos.is_active()
        assert chaos.spec() == ""


class TestInjectionSeam:
    def test_disarmed_seam_is_a_noop(self):
        for point in chaos.POINTS:
            chaos.fault(point)  # must not raise, sleep, or kill

    def test_fail_action_raises_and_counts(self):
        chaos.configure("artifact.load=fail:1.0")
        metrics = MetricsRegistry()
        with pytest.raises(OSError, match="chaos"):
            chaos.fault("artifact.load", metrics)
        assert metrics.counter("faults.chaos_injections").value == 1
        # other points stay quiet
        chaos.fault("query", metrics)
        assert metrics.counter("faults.chaos_injections").value == 1

    def test_reset_action_raises_connection_reset(self):
        chaos.configure("binary.request=reset:1.0")
        with pytest.raises(ConnectionResetError):
            chaos.fault("binary.request")

    def test_slow_action_sleeps(self):
        chaos.configure("query=slow:1.0:0.05")
        start = time.perf_counter()
        chaos.fault("query")
        assert time.perf_counter() - start >= 0.04

    def test_zero_probability_never_fires(self):
        chaos.configure("query=fail:0.0")
        for _ in range(100):
            chaos.fault("query")


class TestCorruptArtifactHelper:
    def test_bitflip_and_truncate_damage_detectably(self, nyc_index,
                                                    tmp_path):
        good = tmp_path / "good.npz"
        save_index(nyc_index, good)
        for mode in ("bitflip", "truncate"):
            bad = tmp_path / f"{mode}.npz"
            shutil.copyfile(good, bad)
            chaos.corrupt_artifact(bad, mode=mode)
            from repro.errors import ArtifactCorruptError
            with pytest.raises(ArtifactCorruptError):
                load_index(bad, mmap_mode="r", verify="full")
        from repro.errors import InvalidRequestError
        with pytest.raises(InvalidRequestError):
            chaos.corrupt_artifact(good, mode="arson")


class TestReloadVerificationEscalation:
    """Operator-shipped bytes are hashed in full at the admin boundary.

    Found by driving a live fleet: a bit flip deep in an mmap-ed node
    pool passes ``verify="header"`` (lazy by design) AND the zip
    layer's CRC (mmap never inflates the member), so without the
    escalation a corrupt reload was *accepted*.
    """

    def test_admin_ops_reject_bitflipped_pool_under_mmap(self, nyc_index,
                                                         tmp_path):
        from repro.errors import ArtifactCorruptError
        from repro.serve.lifecycle import AdminOp, apply_admin_op

        good = tmp_path / "good.npz"
        save_index(nyc_index, good)
        bad = tmp_path / "bad.npz"
        shutil.copyfile(good, bad)
        chaos.corrupt_artifact(bad, mode="bitflip")
        # the lazy header mode cannot see the flip — that is the gap
        # the admin escalation closes
        load_index(bad, mmap_mode="r", verify="header")

        registry = IndexRegistry()
        registry.register_path("n", good, mmap_mode="r")
        generation = registry.pin("n").generation
        with pytest.raises(ArtifactCorruptError):
            apply_admin_op(AdminOp("reload", "n", source_path=str(bad)),
                           registry=registry)
        assert registry.pin("n").generation == generation  # old data kept
        with pytest.raises(ArtifactCorruptError):
            apply_admin_op(AdminOp("register", "m", source_path=str(bad)),
                           registry=registry)
        assert "m" not in registry.names()


class TestChaosAdminAndReadyz:
    """The single-process HTTP surface: /admin/chaos and /readyz."""

    @pytest.fixture
    def server(self, nyc_index):
        service = ACTService()
        service.registry.register_index("nyc", nyc_index)
        srv = create_server(service, port=0)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        yield srv
        srv.shutdown()
        srv.server_close()
        service.close()
        thread.join(timeout=5.0)

    def _address(self, server):
        return server.server_address[:2]

    def test_admin_chaos_arms_and_disarms(self, server):
        address = self._address(server)
        status, body = _post(address, "/admin/chaos",
                             {"spec": "query=slow:1.0:0.0"})
        assert status == 200 and body["active"] is True
        status, body = _get(address, "/admin/chaos")
        assert body["spec"] == "query=slow:1.0:0.0"
        status, body = _post(address, "/admin/chaos", {"spec": ""})
        assert status == 200 and body["active"] is False
        assert not chaos.is_active()

    def test_admin_chaos_rejects_bad_spec(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(self._address(server), "/admin/chaos",
                  {"spec": "nope=fail:1.0"})
        assert err.value.code == 400
        assert not chaos.is_active()
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(self._address(server), "/admin/chaos", {"spec": 7})
        assert err.value.code == 400

    def test_readyz_tracks_materialization(self, server, nyc_index,
                                           tmp_path):
        address = self._address(server)
        status, body = _get(address, "/readyz")
        assert status == 200 and body["ready"] is True
        assert body["indexes"] == {"nyc": True}
        assert body["converged"] is True
        # a registered-but-cold index makes the process not ready …
        path = tmp_path / "cold.npz"
        save_index(nyc_index, path)
        server.service.registry.register_path("cold", path)
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(address, "/readyz")
        assert err.value.code == 503
        payload = json.loads(err.value.read())
        assert payload["ready"] is False
        assert payload["indexes"]["cold"] is False
        # … and serving its first query warms it back to ready
        status, _ = _get(address,
                         "/query?index=cold&lng=-73.97&lat=40.75")
        assert status == 200
        status, body = _get(address, "/readyz")
        assert status == 200 and body["indexes"]["cold"] is True


# ---------------------------------------------------------------------
# Live-fleet chaos (forks real processes, like test_fleet.py)
# ---------------------------------------------------------------------

fleet_only = pytest.mark.skipif(
    not fleet_available(),
    reason="fleet needs the 'fork' start method",
)


def _fleet_over_artifact(path, tmp_path, **overrides):
    registry = IndexRegistry()
    # mmap the pool (the production deployment shape — and the strict
    # case for integrity: the lazy header mode never hashes it)
    registry.register_path("nyc", path, mmap_mode="r")
    registry.pin("nyc")  # materialize pre-fork: workers start ready
    config = FleetConfig(workers=2, stats_interval_s=0.1,
                         restart_backoff_s=0.05,
                         artifact_dir=str(tmp_path), **overrides)
    return ServingFleet(registry, config)


def _wait_counter(fleet, name, minimum, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = fleet.stats()["counters"].get(name, 0)
        if value >= minimum:
            return value
        time.sleep(0.05)
    return fleet.stats()["counters"].get(name, 0)


@fleet_only
class TestFleetChaos:
    @pytest.fixture
    def artifact(self, nyc_index, tmp_path_factory):
        path = tmp_path_factory.mktemp("chaos-artifacts") / "nyc.npz"
        save_index(nyc_index, path)
        return path

    def test_corrupt_reload_rejected_fleet_wide(self, artifact,
                                                nyc_index, tmp_path):
        """The acceptance scenario: a deliberately corrupted artifact
        is reloaded into a live fleet under traffic. The reload must
        come back as a structured failure, the corrupt file must be
        quarantined, and the old generation must answer 100% 2xx with
        correct results during and after the abort."""
        lng, lat = -73.97, 40.75
        want = sorted(nyc_index.query_exact(lng, lat))
        bad = tmp_path / "bad.npz"
        shutil.copyfile(artifact, bad)
        # a single flipped bit deep in the stored node pool — the
        # hardest case: the zip layer never CRCs an mmap-ed member and
        # the header verify mode never hashes the pool, so only the
        # reload path's full-verification escalation can catch it
        chaos.corrupt_artifact(bad, mode="bitflip")

        failures = []
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                try:
                    status, body = _get(
                        fleet.address,
                        f"/query?index=nyc&lng={lng}&lat={lat}&exact=1")
                except Exception as exc:  # non-2xx, cut connection, …
                    failures.append(repr(exc))
                    continue
                if status != 200 or sorted(body["true_hits"]) != want:
                    failures.append((status, body))

        with _fleet_over_artifact(artifact, tmp_path) as fleet:
            fleet.start()
            threads = [threading.Thread(target=hammer, daemon=True)
                       for _ in range(3)]
            for thread in threads:
                thread.start()
            time.sleep(0.2)  # traffic flowing on generation 1

            status, body = _post(fleet.address, "/admin/reload",
                                 {"name": "nyc", "path": str(bad)})
            # structured failure, not a 5xx and not a hang
            assert status == 200
            assert body["complete"] is False
            assert body["rolled_back"] is False
            assert "ArtifactCorruptError" in body["error"]
            # the corrupt file was quarantined, not left for a retry
            assert body["quarantined"] and ".quarantine" in \
                body["quarantined"]
            assert not bad.exists()

            time.sleep(0.3)  # traffic continues after the abort
            # the fleet still converges and reports ready
            status, ready = _get(fleet.address, "/readyz")
            assert status == 200 and ready["ready"] is True

            # a good retry proves the fleet is undamaged
            status, body = _post(fleet.address, "/admin/reload",
                                 {"name": "nyc", "path": str(artifact)})
            assert status == 200 and body["complete"] is True, body

            # fault counters made it into the fleet-wide aggregation
            assert _wait_counter(fleet, "faults.artifact_corrupt", 1) >= 1
            assert _wait_counter(fleet, "faults.quarantined", 1) >= 1

            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)
            assert not failures, failures[:10]

    def test_sigkill_under_pipelined_binary_traffic(self, artifact,
                                                    nyc_index,
                                                    query_points,
                                                    tmp_path):
        """SIGKILL every worker mid-pipeline: the resilient client must
        reconnect (to the supervisor's respawned workers) and replay
        its unacknowledged frames — zero in-flight requests lost."""
        lngs, lats = query_points
        expected = [nyc_index.query_exact(lng, lat)
                    for lng, lat in zip(lngs, lats)]
        with _fleet_over_artifact(artifact, tmp_path,
                                  binary_port=0) as fleet:
            fleet.start()
            host, _ = fleet.address
            client = binproto.Client(host, fleet.binary_address[1],
                                     timeout=30.0, retries=10,
                                     backoff_s=0.05)
            assert client.ping()
            # pipeline a burst, then kill every worker before reading
            sent = [client.send_query("nyc", lngs, lats, exact=True)
                    for _ in range(6)]
            for proc in list(fleet._processes):
                if proc is not None and proc.pid:
                    os.kill(proc.pid, signal.SIGKILL)
            answers = {}
            for _ in sent:
                rid, results = client.recv_results()
                answers[rid] = results
            client.close()
            # every pipelined request was answered, correctly, once
            assert sorted(answers) == sorted(sent)
            for rid in sent:
                got = [sorted(r.true_hits) for r in answers[rid]]
                assert got == [sorted(e) for e in expected]
            assert client.reconnects >= 1
            # the fleet healed: both workers respawned and serving
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline and fleet.live_workers() < 2:
                time.sleep(0.05)
            assert fleet.live_workers() == 2

    def test_injected_resets_converge(self, artifact, nyc_index,
                                      query_points, tmp_path):
        """Arm connection-reset chaos on the binary front (workers
        inherit the armed state through fork): the client's transparent
        reconnect keeps every answer correct, and the injections are
        visible in the fleet counters."""
        lngs, lats = query_points
        expected = [sorted(nyc_index.query_exact(lng, lat))
                    for lng, lat in zip(lngs, lats)]
        chaos.configure("binary.request=reset:0.2")
        try:
            with _fleet_over_artifact(artifact, tmp_path,
                                      binary_port=0) as fleet:
                fleet.start()
                chaos.configure("")  # parent disarmed; workers stay armed
                host, _ = fleet.address
                client = binproto.Client(host, fleet.binary_address[1],
                                         timeout=30.0, retries=10,
                                         backoff_s=0.02)
                for _ in range(25):
                    results = client.query_batch("nyc", lngs, lats,
                                                 exact=True)
                    assert [sorted(r.true_hits) for r in results] == \
                        expected
                client.close()
                assert client.reconnects >= 1
                assert _wait_counter(
                    fleet, "faults.chaos_injections", 1) >= 1
        finally:
            chaos.configure("")


class TestIntegrityPerfGate:
    def test_header_verification_under_5_percent_of_cold_load(
            self, tmp_path_factory):
        """The acceptance perf gate: header-level verification must add
        <5% to an mmap cold load of a realistically sized artifact.
        Interleaved min-of-N absorbs scheduler noise (the minimum is
        the achievable cost, everything above it is contention), and a
        failing round gets one remeasure before the gate counts it —
        shared-host wall clocks drift by more than this gate's margin.
        """
        polygons = neighborhoods(32, seed=3, complexity=3)
        index = ACTIndex.build(polygons, precision_meters=150.0)
        path = tmp_path_factory.mktemp("perf") / "gate.npz"
        save_index(index, path)
        # warm the page cache and the import paths
        load_index(path, mmap_mode="r", verify="off")
        load_index(path, mmap_mode="r", verify="header")

        def measure(rounds=150):
            off = header = float("inf")
            for _ in range(rounds):
                start = time.perf_counter()
                load_index(path, mmap_mode="r", verify="off")
                off = min(off, time.perf_counter() - start)
                start = time.perf_counter()
                load_index(path, mmap_mode="r", verify="header")
                header = min(header, time.perf_counter() - start)
            return off, header

        off, header = measure()
        if header / off - 1.0 >= 0.05:  # one retry before failing
            off, header = measure()
        overhead = header / off - 1.0
        assert overhead < 0.05, (
            f"header verification costs {overhead:.1%} of an mmap cold "
            f"load (off {off * 1e3:.3f} ms, header {header * 1e3:.3f} ms)"
        )
