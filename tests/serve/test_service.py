"""Tests for the full serving stack (cache + batcher + budget)."""

import pytest

from repro.errors import BudgetExceededError, UnknownIndexError
from repro.serve import ACTService, Budget, ServeConfig


@pytest.fixture()
def service(nyc_index):
    svc = ACTService(config=ServeConfig(max_wait_ms=1.0))
    svc.registry.register_index("nyc", nyc_index)
    with svc:
        yield svc


class TestQueryPath:
    def test_matches_serial_baseline(self, service, nyc_index, query_points,
                                     serial_results):
        lngs, lats = query_points
        for lng, lat, expected in zip(lngs, lats, serial_results):
            assert service.query("nyc", lng, lat) == expected

    def test_repeat_query_hits_cache(self, service):
        service.query("nyc", -73.97, 40.75)
        before = service.metrics.counter("queries.cache_hits").value
        service.query("nyc", -73.97, 40.75)
        assert service.metrics.counter("queries.cache_hits").value == before + 1

    def test_exact_mode_matches_query_exact(self, service, nyc_index,
                                            query_points):
        lngs, lats = query_points
        for lng, lat in zip(lngs[:100], lats[:100]):
            served = service.query("nyc", lng, lat, exact=True)
            assert served.candidates == ()
            assert sorted(served.true_hits) == sorted(
                nyc_index.query_exact(lng, lat))

    def test_exact_mode_correct_after_cache_hit(self, service, nyc_index,
                                                query_points):
        # cached cell results are classified; exact refinement must still
        # run per point on top of them
        lngs, lats = query_points
        for lng, lat in zip(lngs[:50], lats[:50]):
            service.query("nyc", lng, lat)  # populate cache
            served = service.query("nyc", lng, lat, exact=True)
            assert sorted(served.true_hits) == sorted(
                nyc_index.query_exact(lng, lat))

    def test_out_of_domain_is_empty(self, service):
        result = service.query("nyc", 100.0, -45.0)
        assert not result.is_hit

    def test_unknown_index(self, service):
        with pytest.raises(UnknownIndexError):
            service.query("missing", -73.97, 40.75)
        # unknown indexes count as errors in /stats, not silent misses
        assert service.metrics.counter("queries.errors").value >= 1

    def test_query_batch_length_mismatch_rejected(self, service):
        from repro.errors import InvalidRequestError

        with pytest.raises(InvalidRequestError):
            service.query_batch("nyc", [-73.97, -74.0], [40.75])
        with pytest.raises(InvalidRequestError):
            service.query_batch("nyc", [[-73.97, -74.0]], [[40.75, 40.7]])
        # rejected floods are visible to operators, without polluting
        # the per-point total/error counters (the point count is bogus)
        assert service.metrics.counter("queries.invalid").value == 2
        assert service.metrics.counter("queries.errors").value == 0

    def test_registry_evict_rewarms_and_invalidates(self, nyc_polygons):
        from repro import ACTIndex

        svc = ACTService()
        svc.registry.register(
            "n", lambda: ACTIndex.build(nyc_polygons,
                                        precision_meters=300.0))
        with svc:
            first = svc.query("n", -73.97, 40.75)
            old_index = svc.registry.get("n")
            svc.registry.evict("n")
            # next query re-materializes, drops stale cache entries, and
            # pins the fresh instance
            assert svc.query("n", -73.97, 40.75) == first
            new_index = svc.registry.get("n")
            assert new_index is not old_index
            assert svc._hot["n"][0].index is new_index
            # evict + re-materialize bumped the generation, rotating
            # the cache keyspace
            assert svc._hot["n"][0].generation == 2


    def test_join_follows_hot_view_after_evict(self, nyc_polygons,
                                               query_points):
        # joins must resolve through the same pinned view as point
        # queries: after evict() + re-materialization both paths (and
        # the cache) agree on one instance
        import numpy as np

        from repro import ACTIndex

        svc = ACTService()
        svc.registry.register(
            "n", lambda: ACTIndex.build(nyc_polygons,
                                        precision_meters=300.0))
        lngs, lats = query_points
        with svc:
            baseline = svc.join("n", lngs, lats)
            old_index = svc.registry.get("n")
            svc.registry.evict("n")
            counts = svc.join("n", lngs, lats)
            np.testing.assert_array_equal(counts, baseline)
            new_index = svc.registry.get("n")
            assert new_index is not old_index
            # the join re-warmed the pinned view itself — point queries
            # and the cache now share the instance the join ran against
            assert svc._hot["n"][0].index is new_index
            assert svc.query("n", -73.97, 40.75) == new_index.query(
                -73.97, 40.75)


class TestBudgets:
    def test_spent_budget_is_shed(self, service):
        with pytest.raises(BudgetExceededError):
            service.query("nyc", -73.97, 40.75, budget=Budget(-1.0))
        # load shedding is the service doing its job: it must count as a
        # shed, never as an error, or deadline pressure looks like failure
        assert service.metrics.counter("queries.shed").value == 1
        assert service.metrics.counter("queries.errors").value == 0

    def test_batch_shed_counts_whole_batch(self, service):
        with pytest.raises(BudgetExceededError):
            service.query_batch("nyc", [-73.97, -74.0], [40.75, 40.7],
                                budget=Budget(-1.0))
        assert service.metrics.counter("queries.shed").value == 2
        assert service.metrics.counter("queries.errors").value == 0

    def test_tight_budget_takes_fast_path(self, nyc_index):
        svc = ACTService(config=ServeConfig(max_wait_ms=50.0))
        svc.registry.register_index("nyc", nyc_index)
        with svc:
            # remaining budget < batching window -> direct scalar lookup
            result = svc.query("nyc", -73.97, 40.75, budget=Budget(0.020))
            assert result == nyc_index.query(-73.97, 40.75)
            assert svc.metrics.counter("queries.fast_path").value == 1

    def test_default_budget_from_config(self, nyc_index):
        svc = ACTService(config=ServeConfig(default_budget_ms=-1.0))
        svc.registry.register_index("nyc", nyc_index)
        with svc:
            with pytest.raises(BudgetExceededError):
                svc.query("nyc", -73.97, 40.75)


class TestMissRouting:
    def test_lone_misses_answer_inline(self, nyc_index, query_points):
        svc = ACTService()
        svc.registry.register_index("nyc", nyc_index)
        lngs, lats = query_points
        with svc:
            for lng, lat in zip(lngs[:50], lats[:50]):
                svc.query("nyc", lng, lat)
            # single-threaded traffic never exceeds the inline threshold
            assert svc.metrics.counter("batcher.queries").value == 0
            assert svc.metrics.counter("queries.inline_miss").value > 0

    def test_forced_batch_path_matches_serial(self, nyc_index, query_points,
                                              serial_results):
        import threading

        # threshold 0 + no cache: every concurrent miss goes through the
        # micro-batcher
        svc = ACTService(config=ServeConfig(
            inline_miss_threshold=0, cache_capacity=0))
        svc.registry.register_index("nyc", nyc_index)
        lngs, lats = query_points
        requests = list(zip(lngs, lats, serial_results))
        mismatches = []
        errors = []

        def worker(offset):
            for lng, lat, expected in requests[offset::4]:
                try:
                    if svc.query("nyc", lng, lat) != expected:
                        mismatches.append((lng, lat))
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

        with svc:
            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert not mismatches
            assert svc.metrics.counter("batcher.queries").value > 0


class TestJoin:
    def test_join_matches_count_points(self, service, nyc_index,
                                       query_points):
        import numpy as np

        lngs, lats = query_points
        served = service.join("nyc", lngs, lats)
        np.testing.assert_array_equal(
            served, nyc_index.count_points(lngs, lats))
        served_exact = service.join("nyc", lngs, lats, exact=True)
        np.testing.assert_array_equal(
            served_exact, nyc_index.count_points(lngs, lats, exact=True))

    def test_join_budget_admission(self, service, query_points):
        lngs, lats = query_points
        with pytest.raises(BudgetExceededError):
            service.join("nyc", lngs, lats, budget=Budget(-1.0))


class TestStats:
    def test_stats_shape(self, service, query_points):
        lngs, lats = query_points
        for lng, lat in zip(lngs[:20], lats[:20]):
            service.query("nyc", lng, lat)
        service.join("nyc", lngs, lats)
        stats = service.stats()
        assert stats["indexes"][0]["name"] == "nyc"
        assert stats["cache"]["capacity"] == 65536
        assert stats["metrics"]["counters"]["queries.total"] == 20
        assert stats["metrics"]["counters"]["joins.total"] == 1
        assert stats["metrics"]["histograms"][
            "queries.latency_seconds"]["count"] == 20
        assert 0.0 <= (stats["cache_hit_rate"] or 0.0) <= 1.0
        assert stats["config"]["max_wait_ms"] == 1.0

    def test_close_is_idempotent(self, nyc_index):
        svc = ACTService()
        svc.registry.register_index("nyc", nyc_index)
        svc.query("nyc", -73.97, 40.75)
        svc.close()
        svc.close()
