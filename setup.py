"""Legacy setup shim.

The offline reproduction environment lacks the ``wheel`` package, so PEP 660
editable installs cannot build; this file lets ``pip install -e .`` fall back
to ``setup.py develop``. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
