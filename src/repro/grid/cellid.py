"""64-bit hierarchical cell ids (S2-compatible bit layout).

A cell id packs the path from a quadtree root to a node into a single
unsigned 64-bit integer::

    bits 63..61   face (0..5)
    bits 60..     2 bits per level along the Hilbert curve (level 1..30)
    next bit      sentinel "1" marking the end of the path
    lower bits    zeros

This satisfies the two properties the paper requires of a grid: every node
is uniquely identified by the bit sequence of its root path, and child ids
share their parent's prefix. The sentinel bit makes the level recoverable
and gives every cell a contiguous ``[range_min, range_max]`` interval of
leaf ids, so *containment is an integer range test*.

All functions operate on plain Python ints (masked to 64 bits) so ACT's
inner loops stay allocation-free; batch variants use numpy ``uint64``.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..errors import InvalidCellError
from .hilbert import LOOKUP_IJ, LOOKUP_POS, LOOKUP_POS_NP, SWAP_MASK

#: Maximum quadtree depth (S2's 30 levels; leaf cells are ~cm² on Earth).
MAX_LEVEL = 30

#: Bits used by the position part (2 per level plus the sentinel).
POS_BITS = 2 * MAX_LEVEL + 1  # 61

#: Number of cube faces.
NUM_FACES = 6

_MASK64 = (1 << 64) - 1
_LOOKUP_BITS = 4


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def from_face(face: int) -> int:
    """The level-0 cell id of a cube face."""
    if not 0 <= face < NUM_FACES:
        raise InvalidCellError(f"face must be in [0, 6), got {face}")
    return (face << POS_BITS) | (1 << (POS_BITS - 1))


def from_face_ij(face: int, i: int, j: int) -> int:
    """Leaf (level-30) cell id from face and 30-bit (i, j) coordinates."""
    n = face << 60
    bits = face & SWAP_MASK
    for k in range(7, -1, -1):
        bits += ((i >> (k * 4)) & 15) << 6
        bits += ((j >> (k * 4)) & 15) << 2
        bits = LOOKUP_POS[bits]
        n |= (bits >> 2) << (k * 8)
        bits &= 3
    return n * 2 + 1


def from_face_path(face: int, path: int, level: int) -> int:
    """Cell id from a face and an explicit ``2*level``-bit Hilbert path."""
    if not 0 <= level <= MAX_LEVEL:
        raise InvalidCellError(f"level must be in [0, {MAX_LEVEL}], got {level}")
    shift = POS_BITS - 1 - 2 * level
    return (face << POS_BITS) | (path << (shift + 1)) | (1 << shift)


def to_face_ij(cell: int) -> Tuple[int, int, int]:
    """Decode a *leaf-aligned* id into ``(face, i, j)`` of its min-leaf.

    For non-leaf cells, decode :func:`range_min` first (this function
    assumes all path levels are meaningful).
    """
    face_val = cell >> POS_BITS
    bits = face_val & SWAP_MASK
    i = 0
    j = 0
    for k in range(7, -1, -1):
        nbits = MAX_LEVEL - 7 * _LOOKUP_BITS if k == 7 else _LOOKUP_BITS
        bits += ((cell >> (k * 8 + 1)) & ((1 << (2 * nbits)) - 1)) << 2
        bits = LOOKUP_IJ[bits]
        i += (bits >> 6) << (k * 4)
        j += ((bits >> 2) & 15) << (k * 4)
        bits &= 3
    return face_val, i, j


# ----------------------------------------------------------------------
# Structure
# ----------------------------------------------------------------------
def is_valid(cell: int) -> bool:
    """Structural validity: in-range face and a well-formed sentinel bit."""
    if cell <= 0 or cell > _MASK64:
        return False
    if (cell >> POS_BITS) >= NUM_FACES:
        return False
    lsb = cell & (-cell)
    # the sentinel must sit on an even bit position at or below bit 60
    if lsb > (1 << (POS_BITS - 1)):
        return False
    return (lsb.bit_length() - 1) % 2 == 0


def lsb(cell: int) -> int:
    """The sentinel bit (lowest set bit) of the id."""
    return cell & (-cell)


def level(cell: int) -> int:
    """Depth of the cell: 0 for face cells, 30 for leaves."""
    trailing = (cell & (-cell)).bit_length() - 1
    return MAX_LEVEL - (trailing >> 1)


def is_leaf(cell: int) -> bool:
    return bool(cell & 1)


def is_face(cell: int) -> bool:
    return (cell & ((1 << (POS_BITS - 1)) - 1)) == 0


def face(cell: int) -> int:
    return cell >> POS_BITS


def parent(cell: int, parent_level: int | None = None) -> int:
    """Ancestor at ``parent_level`` (immediate parent when omitted)."""
    current = level(cell)
    if parent_level is None:
        parent_level = current - 1
    if not 0 <= parent_level <= current:
        raise InvalidCellError(
            f"parent level {parent_level} invalid for level-{current} cell"
        )
    new_lsb = 1 << (2 * (MAX_LEVEL - parent_level))
    return (cell & ~((new_lsb << 1) - 1) & _MASK64) | new_lsb


def child(cell: int, position: int) -> int:
    """Child at Hilbert position 0..3."""
    if is_leaf(cell):
        raise InvalidCellError(f"leaf cell {cell:#x} has no children")
    if not 0 <= position < 4:
        raise InvalidCellError(f"child position must be 0..3, got {position}")
    old_lsb = cell & (-cell)
    new_lsb = old_lsb >> 2
    return cell - old_lsb + (2 * position + 1) * new_lsb


def children(cell: int) -> Tuple[int, int, int, int]:
    """All four children in Hilbert order."""
    old_lsb = cell & (-cell)
    if old_lsb == 1:
        raise InvalidCellError(f"leaf cell {cell:#x} has no children")
    new_lsb = old_lsb >> 2
    base = cell - old_lsb
    return (base + new_lsb, base + 3 * new_lsb,
            base + 5 * new_lsb, base + 7 * new_lsb)


def child_position(cell: int, at_level: int) -> int:
    """The 2-bit Hilbert position of this cell's ancestor at ``at_level``
    within that ancestor's parent."""
    if not 1 <= at_level <= level(cell):
        raise InvalidCellError(f"level {at_level} out of range for cell")
    return (cell >> (2 * (MAX_LEVEL - at_level) + 1)) & 3


def range_min(cell: int) -> int:
    """Smallest leaf id contained in this cell."""
    return cell - (cell & (-cell)) + 1


def range_max(cell: int) -> int:
    """Largest leaf id contained in this cell."""
    return cell + (cell & (-cell)) - 1


def contains(ancestor: int, descendant: int) -> bool:
    """True when ``descendant``'s leaf range lies within ``ancestor``'s."""
    return range_min(ancestor) <= descendant <= range_max(ancestor)


def intersects(a: int, b: int) -> bool:
    """True when one cell contains the other (the only way cells overlap)."""
    return range_min(a) <= range_max(b) and range_min(b) <= range_max(a)


def denormalize(cell: int, target_level: int) -> List[int]:
    """All descendants of ``cell`` at ``target_level``, in id order.

    This is the paper's *denormalization*: replacing a cell with its
    descendant cells at a deeper level so it can be indexed in a trie with
    coarse level granularity. Returns ``4**(target_level - level)`` cells.

    Descendant ids at a fixed level tile the cell's leaf range with a
    constant stride, so the expansion is pure arithmetic::

        base = range_min(cell) - 1
        descendant_k = base + (2k + 1) * lsb(target_level)
    """
    current = level(cell)
    if target_level < current:
        raise InvalidCellError(
            f"cannot denormalize level-{current} cell to level {target_level}"
        )
    if target_level == current:
        return [cell]
    target_lsb = 1 << (2 * (MAX_LEVEL - target_level))
    base = cell - (cell & (-cell))
    stride = 2 * target_lsb
    count = 1 << (2 * (target_level - current))
    return [base + target_lsb + k * stride for k in range(count)]


def path_key(cell: int) -> Tuple[int, int]:
    """``(path_bits, bit_length)`` of the cell's Hilbert path.

    The path excludes the 3 face bits; ACT dispatches on the face first and
    then consumes the path most-significant-chunk first.
    """
    lvl = level(cell)
    bits = 2 * lvl
    path = (cell >> (POS_BITS - 1 - bits + 1)) & ((1 << bits) - 1) if bits else 0
    return path, bits


def to_token(cell: int) -> str:
    """Compact hex token (trailing zeros stripped), S2-style."""
    if cell == 0:
        return "X"
    return f"{cell:016x}".rstrip("0") or "0"


def from_token(token: str) -> int:
    """Inverse of :func:`to_token`."""
    if token == "X":
        return 0
    if not 1 <= len(token) <= 16:
        raise InvalidCellError(f"bad cell token: {token!r}")
    try:
        return int(token.ljust(16, "0"), 16)
    except ValueError as exc:
        raise InvalidCellError(f"bad cell token: {token!r}") from exc


def sort_key(cell: int) -> int:
    """Cells sorted by ``range_min`` then level — the canonical order used
    by super-covering construction (ancestors sort before descendants)."""
    return (range_min(cell) << 6) | level(cell)


# ----------------------------------------------------------------------
# Vectorized batch operations (numpy, uint64)
# ----------------------------------------------------------------------
def from_face_ij_batch(faces: np.ndarray, i: np.ndarray, j: np.ndarray,
                       ) -> np.ndarray:
    """Vectorized :func:`from_face_ij` over uint64 arrays."""
    faces = faces.astype(np.uint64)
    i = i.astype(np.uint64)
    j = j.astype(np.uint64)
    n = faces << np.uint64(60)
    bits = faces & np.uint64(SWAP_MASK)
    for k in range(7, -1, -1):
        kk = np.uint64(k * 4)
        bits = bits + (((i >> kk) & np.uint64(15)) << np.uint64(6))
        bits = bits + (((j >> kk) & np.uint64(15)) << np.uint64(2))
        bits = LOOKUP_POS_NP[bits]
        n = n | ((bits >> np.uint64(2)) << np.uint64(k * 8))
        bits = bits & np.uint64(3)
    return n * np.uint64(2) + np.uint64(1)


def level_batch(cells: np.ndarray) -> np.ndarray:
    """Vectorized :func:`level`."""
    cells = cells.astype(np.uint64)
    low = cells & (~cells + np.uint64(1))
    # log2 of the isolated lsb via float conversion is exact for powers of 2
    trailing = np.log2(low.astype(np.float64)).astype(np.int64)
    return MAX_LEVEL - (trailing >> 1)


def parent_batch(cells: np.ndarray, parent_level: int) -> np.ndarray:
    """Vectorized :func:`parent` at a fixed level."""
    cells = cells.astype(np.uint64)
    new_lsb = np.uint64(1 << (2 * (MAX_LEVEL - parent_level)))
    mask = ~((new_lsb << np.uint64(1)) - np.uint64(1))
    return (cells & mask) | new_lsb


def expand_to_level(cells: List[int], target_level: int) -> List[int]:
    """Denormalize a list of cells (levels <= target) to ``target_level``."""
    out: List[int] = []
    for cell in cells:
        out.extend(denormalize(cell, target_level))
    return out
