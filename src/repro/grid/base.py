"""Abstract interface for quadtree-based hierarchical grids.

The paper notes its approach "works with any quadtree-based hierarchical
grid" in which every node is identified by the bit path from the root.
:class:`HierarchicalGrid` captures exactly the contract ACT relies on:

* map a lng/lat point to its **leaf cell id** (the most fine-grained level),
* enumerate **root cells**,
* provide a conservative lng/lat **rect bound** per cell (for covering
  classification), and
* translate the user's **precision bound in meters** to a grid level whose
  cell diagonal is below the bound.

For the covering recursion the interface additionally exposes **frames**:
lightweight ``(face, i0, j0, level)`` tuples addressing a cell by its
minimum (i, j) corner in leaf units. Frames let the coverer descend the
quadtree with pure integer arithmetic and only materialize full 64-bit
cell ids for the cells it actually emits.

Two implementations ship: :class:`~repro.grid.planar.PlanarGrid` (exact
rectangles over a bounded region) and :class:`~repro.grid.s2like.S2LikeGrid`
(global spherical cube-face grid, like the Google S2 library used by the
paper's reference implementation).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Tuple

import numpy as np

from ..errors import PrecisionError
from ..geometry.bbox import Rect
from . import cellid

#: Batch cell id used for points outside the grid domain (never valid).
INVALID_CELL = 0

#: Batch point key for points outside the grid domain. All-ones is never
#: a valid cell id (faces stop at 5) nor a planar packed (i, j) key
#: (those use at most 60 bits).
INVALID_KEY = np.uint64(0xFFFFFFFFFFFFFFFF)

#: (face, i0, j0, level): cell addressed by its min corner in leaf units.
Frame = Tuple[int, int, int, int]

#: Four floats: (min_x, min_y, max_x, max_y).
Bounds = Tuple[float, float, float, float]


class HierarchicalGrid(ABC):
    """Contract between a quadtree grid and the ACT index."""

    #: Deepest level supported (defaults to the S2-style 30).
    max_level: int = cellid.MAX_LEVEL

    @property
    @abstractmethod
    def name(self) -> str:
        """Short identifier used in benchmark reports."""

    @abstractmethod
    def leaf_cell(self, lng: float, lat: float) -> Optional[int]:
        """Leaf cell id of a point, or ``None`` if outside the domain."""

    @abstractmethod
    def leaf_cells_batch(self, lng: np.ndarray, lat: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`leaf_cell`; out-of-domain points map to
        :data:`INVALID_CELL` (0)."""

    @abstractmethod
    def root_cells(self) -> List[int]:
        """Top-level cells to start covering recursions from."""

    @abstractmethod
    def frame_bounds(self, frame: Frame) -> Bounds:
        """Conservative lng/lat bounds *containing* the frame's cell.

        Classification against these bounds is safe in both directions:
        a polygon disjoint from the bounds is disjoint from the cell, and
        bounds fully inside a polygon imply the cell is inside too.
        """

    @abstractmethod
    def max_diag_meters(self, level: int) -> float:
        """Upper bound on the diagonal of any level-``level`` cell's rect
        bound, in meters. This is the quantity the paper's precision
        guarantee is stated in terms of."""

    def point_key(self, lng: float, lat: float, level: int) -> Optional[int]:
        """Opaque hashable key identifying the level-``level`` cell that
        contains the point, or ``None`` outside the domain.

        Two points map to the same key iff they share the level-``level``
        cell, which is what per-cell result caches need; the key is NOT
        guaranteed to be a valid cell id. The default derives it from
        :meth:`leaf_cell`; grids may override with cheaper arithmetic
        (the planar grid skips the bit-interleave entirely).
        """
        leaf = self.leaf_cell(lng, lat)
        if leaf is None:
            return None
        return cellid.parent(leaf, level)

    def point_keys(self, lngs: np.ndarray, lats: np.ndarray,
                   level: int) -> np.ndarray:
        """Vectorized :meth:`point_key`: one uint64 key per point.

        Out-of-domain points map to :data:`INVALID_KEY`. For in-domain
        points the value equals ``point_key(lng, lat, level)`` exactly,
        so scalar and batch callers share one cache keyspace. The default
        goes through :meth:`leaf_cells_batch`; grids may override with
        cheaper arithmetic (the planar grid skips the bit-interleave).
        """
        cells = self.leaf_cells_batch(
            np.asarray(lngs, dtype=np.float64),
            np.asarray(lats, dtype=np.float64),
        )
        keys = cellid.parent_batch(cells, level)
        keys[cells == INVALID_CELL] = INVALID_KEY
        return keys

    # ------------------------------------------------------------------
    # Frames (integer-space quadtree descent)
    # ------------------------------------------------------------------
    def root_frames(self) -> List[Frame]:
        """Frames of :meth:`root_cells`."""
        frames = []
        for cell in self.root_cells():
            face, i, j = cellid.to_face_ij(cellid.range_min(cell))
            level = cellid.level(cell)
            size = 1 << (cellid.MAX_LEVEL - level)
            frames.append((face, i & ~(size - 1), j & ~(size - 1), level))
        return frames

    @staticmethod
    def frame_children(frame: Frame) -> Tuple[Frame, Frame, Frame, Frame]:
        """The four sub-quadrant frames (position order, not Hilbert)."""
        face, i0, j0, level = frame
        half = 1 << (cellid.MAX_LEVEL - level - 1)
        child_level = level + 1
        return (
            (face, i0, j0, child_level),
            (face, i0 + half, j0, child_level),
            (face, i0, j0 + half, child_level),
            (face, i0 + half, j0 + half, child_level),
        )

    @staticmethod
    def frame_cell(frame: Frame) -> int:
        """The 64-bit cell id addressed by a frame."""
        face, i0, j0, level = frame
        leaf = cellid.from_face_ij(face, i0, j0)
        return cellid.parent(leaf, level)

    def frame_for_cell(self, cell: int) -> Frame:
        """Inverse of :meth:`frame_cell`."""
        level = cellid.level(cell)
        face, i, j = cellid.to_face_ij(cellid.range_min(cell))
        size = 1 << (cellid.MAX_LEVEL - level)
        return (face, i & ~(size - 1), j & ~(size - 1), level)

    # ------------------------------------------------------------------
    # Derived geometry / metrics
    # ------------------------------------------------------------------
    def cell_rect(self, cell: int) -> Rect:
        """Rect bound of a cell (see :meth:`frame_bounds`)."""
        return Rect(*self.frame_bounds(self.frame_for_cell(cell)))

    def level_for_precision(self, meters: float) -> int:
        """Coarsest level whose cell diagonal is below ``meters``.

        Raises :class:`~repro.errors.PrecisionError` when even the deepest
        level cannot satisfy the bound.
        """
        if meters <= 0.0:
            raise PrecisionError(f"precision must be positive, got {meters}")
        for level in range(self.max_level + 1):
            if self.max_diag_meters(level) <= meters:
                return level
        raise PrecisionError(
            f"precision {meters} m finer than level-{self.max_level} cells "
            f"({self.max_diag_meters(self.max_level):.4f} m) of grid "
            f"{self.name!r}"
        )

    def cell_polygon_corners(self, cell: int) -> List[tuple]:
        """Corner points of the cell's rect bound (for GeoJSON dumps)."""
        return list(self.cell_rect(cell).corners())
