"""Sphere-to-cube projection for the S2-like grid.

Transforms follow the S2 pipeline: lng/lat -> unit XYZ -> cube face with
face-local (u, v) in [-1, 1] -> non-linear (s, t) in [0, 1] (the quadratic
transform, which makes cell areas far more uniform than a linear mapping)
-> 30-bit integer (i, j).

Scalar and numpy-vectorized variants are provided; the vectorized path is
what gives the library's batch join its "few integer ops per point" flavor
from the paper.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from .cellid import MAX_LEVEL

#: Cells per axis at the maximum level.
IJ_SIZE = 1 << MAX_LEVEL


# ----------------------------------------------------------------------
# Scalar pipeline
# ----------------------------------------------------------------------
def xyz_from_lnglat(lng: float, lat: float) -> Tuple[float, float, float]:
    """Unit-sphere point from degrees."""
    phi = math.radians(lat)
    theta = math.radians(lng)
    cos_phi = math.cos(phi)
    return (cos_phi * math.cos(theta), cos_phi * math.sin(theta), math.sin(phi))


def lnglat_from_xyz(x: float, y: float, z: float) -> Tuple[float, float]:
    """Degrees from a (not necessarily normalized) direction vector."""
    lng = math.degrees(math.atan2(y, x))
    lat = math.degrees(math.atan2(z, math.hypot(x, y)))
    return (lng, lat)


def face_from_xyz(x: float, y: float, z: float) -> int:
    """Cube face whose axis has the largest magnitude component."""
    ax, ay, az = abs(x), abs(y), abs(z)
    if ax >= ay and ax >= az:
        f = 0
        largest = x
    elif ay >= az:
        f = 1
        largest = y
    else:
        f = 2
        largest = z
    return f + 3 if largest < 0.0 else f


def face_uv_from_xyz(x: float, y: float, z: float) -> Tuple[int, float, float]:
    """Project onto the containing cube face; returns ``(face, u, v)``."""
    f = face_from_xyz(x, y, z)
    if f == 0:
        return 0, y / x, z / x
    if f == 1:
        return 1, -x / y, z / y
    if f == 2:
        return 2, -x / z, -y / z
    if f == 3:
        return 3, z / x, y / x
    if f == 4:
        return 4, z / y, -x / y
    return 5, -y / z, -x / z


def xyz_from_face_uv(f: int, u: float, v: float) -> Tuple[float, float, float]:
    """Direction vector (unnormalized) of a face-local (u, v) point."""
    if f == 0:
        return (1.0, u, v)
    if f == 1:
        return (-u, 1.0, v)
    if f == 2:
        return (-u, -v, 1.0)
    if f == 3:
        return (-1.0, -v, -u)
    if f == 4:
        return (v, -1.0, -u)
    return (v, u, -1.0)


def st_from_uv(u: float) -> float:
    """Quadratic S2 transform from u in [-1, 1] to s in [0, 1]."""
    if u >= 0.0:
        return 0.5 * math.sqrt(1.0 + 3.0 * u)
    return 1.0 - 0.5 * math.sqrt(1.0 - 3.0 * u)


def uv_from_st(s: float) -> float:
    """Inverse quadratic transform."""
    if s >= 0.5:
        return (4.0 * s * s - 1.0) / 3.0
    return (1.0 - 4.0 * (1.0 - s) * (1.0 - s)) / 3.0


def ij_from_st(s: float) -> int:
    """30-bit integer coordinate from s in [0, 1] (clamped)."""
    value = int(math.floor(s * IJ_SIZE))
    if value < 0:
        return 0
    if value >= IJ_SIZE:
        return IJ_SIZE - 1
    return value


def st_from_ij(i: int) -> float:
    """Cell-center s value of integer coordinate ``i``."""
    return (i + 0.5) / IJ_SIZE


def face_ij_from_lnglat(lng: float, lat: float) -> Tuple[int, int, int]:
    """Full scalar pipeline: degrees -> ``(face, i, j)``."""
    x, y, z = xyz_from_lnglat(lng, lat)
    f, u, v = face_uv_from_xyz(x, y, z)
    return f, ij_from_st(st_from_uv(u)), ij_from_st(st_from_uv(v))


def lnglat_from_face_st(f: int, s: float, t: float) -> Tuple[float, float]:
    """Degrees from face-local (s, t)."""
    x, y, z = xyz_from_face_uv(f, uv_from_st(s), uv_from_st(t))
    return lnglat_from_xyz(x, y, z)


# ----------------------------------------------------------------------
# Vectorized pipeline
# ----------------------------------------------------------------------
def face_ij_from_lnglat_batch(lng: np.ndarray, lat: np.ndarray,
                              ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`face_ij_from_lnglat` over float64 arrays."""
    phi = np.radians(np.asarray(lat, dtype=np.float64))
    theta = np.radians(np.asarray(lng, dtype=np.float64))
    cos_phi = np.cos(phi)
    x = cos_phi * np.cos(theta)
    y = cos_phi * np.sin(theta)
    z = np.sin(phi)

    ax = np.abs(x)
    ay = np.abs(y)
    az = np.abs(z)
    f = np.where(
        (ax >= ay) & (ax >= az),
        np.where(x < 0.0, 3, 0),
        np.where(ay >= az, np.where(y < 0.0, 4, 1), np.where(z < 0.0, 5, 2)),
    ).astype(np.int64)

    base = f % 3
    # major-axis component and the two face-local numerators, chosen per face
    major = np.choose(base, [x, y, z])
    u = np.choose(base, [y, -x, -x])
    v = np.choose(base, [z, z, -y])
    neg = f >= 3
    # negative faces: S2 swaps/negates the numerators as in xyz_from_face_uv
    u = np.where(neg, np.choose(base, [z, z, -y]), u)
    v = np.where(neg, np.choose(base, [y, -x, -x]), v)
    u = u / major
    v = v / major

    i = _ij_from_uv_batch(u)
    j = _ij_from_uv_batch(v)
    return f, i, j


def _ij_from_uv_batch(u: np.ndarray) -> np.ndarray:
    # |u| keeps both np.where branches NaN-free (they are both evaluated)
    root = 0.5 * np.sqrt(1.0 + 3.0 * np.abs(u))
    s = np.where(u >= 0.0, root, 1.0 - root)
    i = np.floor(s * IJ_SIZE).astype(np.int64)
    return np.clip(i, 0, IJ_SIZE - 1)
