"""Region coverer: polygon -> covering + interior covering.

Implements the paper's approximation step (Section II, Figure 1a): a
polygon is translated into

* **boundary cells** ("covering" in the paper's figures, blue): cells that
  intersect the polygon boundary. A point in one is *either inside or
  outside* — a candidate hit. Their diagonal is bounded by the precision
  level, which is what gives the paper's precision guarantee.
* **interior cells** (green): cells fully inside the polygon — true hits,
  emitted as coarse as possible so points hitting large interiors resolve
  in the upper (cache-resident) levels of the trie.

The recursion runs in integer frame space (see
:meth:`repro.grid.base.HierarchicalGrid.frame_children`) and threads the
polygon's candidate edge set down the quadtree, so the per-cell cost stays
proportional to the locally relevant boundary.

Two modes are provided: the precision-guaranteed covering (refine boundary
cells until the precision level) and a budgeted covering with a ``max_cells``
limit for the memory-constrained/adaptive variant discussed in the paper's
introduction.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from ..errors import CoveringError
from ..geometry.polygon import Polygon
from ..geometry.relate import EdgeClassifier, Relation
from . import cellid
from .base import Frame, HierarchicalGrid


@dataclass
class Covering:
    """The two cell sets approximating one polygon."""

    boundary: List[int] = field(default_factory=list)
    interior: List[int] = field(default_factory=list)

    @property
    def num_cells(self) -> int:
        return len(self.boundary) + len(self.interior)

    def all_cells(self) -> Iterator[Tuple[int, bool]]:
        """Yield ``(cell, is_interior)`` pairs."""
        for cell in self.boundary:
            yield cell, False
        for cell in self.interior:
            yield cell, True

    def max_boundary_level_diag(self, grid: HierarchicalGrid) -> float:
        """Worst-case false-positive distance in meters (the guarantee)."""
        if not self.boundary:
            return 0.0
        coarsest = min(cellid.level(cell) for cell in self.boundary)
        return grid.max_diag_meters(coarsest)


class RegionCoverer:
    """Computes coverings of polygons on a hierarchical grid."""

    def __init__(self, grid: HierarchicalGrid):
        self.grid = grid

    # ------------------------------------------------------------------
    # Precision-guaranteed covering
    # ------------------------------------------------------------------
    def cover(self, polygon: Polygon, boundary_level: int,
              interior_min_level: int = 0) -> Covering:
        """Covering whose boundary cells all sit at ``boundary_level``.

        ``boundary_level`` is typically
        ``grid.level_for_precision(precision_meters)``; every cell that
        still intersects the polygon boundary at that level is emitted as
        a candidate cell, bounding the false-positive distance by the
        level's cell diagonal.
        """
        if boundary_level > self.grid.max_level:
            raise CoveringError(
                f"boundary level {boundary_level} exceeds grid max level "
                f"{self.grid.max_level}"
            )
        classifier = EdgeClassifier(polygon)
        grid = self.grid
        frame_bounds = grid.frame_bounds
        frame_children = grid.frame_children
        classify = classifier.classify_bounds
        boundary: List[int] = []
        interior: List[int] = []

        stack: List[Tuple[Frame, Optional[List[int]]]] = [
            (frame, None) for frame in grid.root_frames()
        ]
        while stack:
            frame, edges = stack.pop()
            min_x, min_y, max_x, max_y = frame_bounds(frame)
            relation, touching = classify(min_x, min_y, max_x, max_y, edges)
            if relation is Relation.DISJOINT:
                continue
            level = frame[3]
            if relation is Relation.WITHIN:
                if level >= interior_min_level:
                    interior.append(grid.frame_cell(frame))
                else:
                    for child in frame_children(frame):
                        stack.append((child, touching))
                continue
            if level >= boundary_level:
                boundary.append(grid.frame_cell(frame))
            else:
                for child in frame_children(frame):
                    stack.append((child, touching))

        if not boundary and not interior:
            raise CoveringError(
                "covering came out empty — polygon is outside the grid domain"
            )
        boundary.sort()
        interior.sort()
        return Covering(boundary, interior)

    # ------------------------------------------------------------------
    # Budgeted covering (memory-constrained mode)
    # ------------------------------------------------------------------
    def cover_budgeted(self, polygon: Polygon, max_cells: int,
                       boundary_level: int) -> Covering:
        """Covering with at most ``max_cells`` cells.

        Boundary cells are refined coarsest-first until the budget or the
        target level is reached. The result does **not** guarantee the
        precision bound — callers must pair it with a refinement phase
        (see :mod:`repro.join.filter_refine`), exactly as the paper
        prescribes for strict memory budgets.
        """
        if max_cells < len(self.grid.root_frames()):
            raise CoveringError(
                f"max_cells={max_cells} smaller than the number of roots"
            )
        classifier = EdgeClassifier(polygon)
        grid = self.grid
        covering = Covering()
        # heap of boundary frames to consider splitting, coarsest first
        heap: List[Tuple[int, int, Frame, Optional[List[int]]]] = []
        counter = 0

        def classify_and_file(frame: Frame,
                              edges: Optional[List[int]]) -> None:
            nonlocal counter
            min_x, min_y, max_x, max_y = grid.frame_bounds(frame)
            relation, touching = classifier.classify_bounds(
                min_x, min_y, max_x, max_y, edges
            )
            if relation is Relation.DISJOINT:
                return
            if relation is Relation.WITHIN:
                covering.interior.append(grid.frame_cell(frame))
                return
            counter += 1
            heapq.heappush(heap, (frame[3], counter, frame, touching))

        for root in grid.root_frames():
            classify_and_file(root, None)

        while heap:
            level, _, frame, edges = heap[0]
            budget = max_cells - len(covering.interior) - len(heap)
            if level >= boundary_level or budget < 3:
                break  # heap is level-ordered; nothing coarser remains
            heapq.heappop(heap)
            for child in grid.frame_children(frame):
                classify_and_file(child, edges)

        covering.boundary.extend(grid.frame_cell(item[2]) for item in heap)
        covering.boundary.sort()
        covering.interior.sort()
        return covering
