"""Quadtree-based hierarchical grids (the paper's Section II substrate).

Exports the two grid implementations, the 64-bit cell id algebra, and the
region coverer that turns polygons into boundary/interior cell sets.
"""

from . import cellid
from .base import INVALID_CELL, INVALID_KEY, HierarchicalGrid
from .cellunion import CellUnion
from .coverer import Covering, RegionCoverer
from .planar import PlanarGrid
from .s2like import S2LikeGrid

__all__ = [
    "cellid",
    "INVALID_CELL",
    "INVALID_KEY",
    "HierarchicalGrid",
    "CellUnion",
    "Covering",
    "RegionCoverer",
    "PlanarGrid",
    "S2LikeGrid",
]
