"""Hilbert-curve lookup tables for cell id encoding.

The grid enumerates the four quadrants of every quadtree node along a
Hilbert curve, exactly like Google S2 (the grid the paper's reference
implementation uses). Any consistent enumeration would satisfy ACT's
prefix requirement; the Hilbert order additionally gives spatial locality,
which matters for the cache behaviour the paper's evaluation discusses.

The tables map 4 levels (8 bits) at a time between (i, j) coordinate bits
and curve-position bits, carrying the 2-bit curve orientation state
(swap/invert masks) through each step — the same scheme as S2's
``lookup_pos`` / ``lookup_ij`` tables.
"""

from __future__ import annotations

from typing import List

import numpy as np

#: Orientation modifier bits.
SWAP_MASK = 1
INVERT_MASK = 2

#: Number of (i, j) levels processed per table lookup.
LOOKUP_BITS = 4

#: kPosToIJ[orientation][position] -> 2-bit ij (i << 1 | j).
POS_TO_IJ = (
    (0, 1, 3, 2),  # canonical order
    (0, 2, 3, 1),  # axes swapped
    (3, 2, 0, 1),  # bits inverted
    (3, 1, 0, 2),  # swapped & inverted
)

#: kIJtoPos[orientation][ij] -> 2-bit position (inverse of POS_TO_IJ).
IJ_TO_POS = tuple(
    tuple(row.index(ij) for ij in range(4)) for row in POS_TO_IJ
)

#: Orientation adjustment applied when descending into a sub-quadrant.
POS_TO_ORIENTATION = (SWAP_MASK, 0, 0, INVERT_MASK | SWAP_MASK)

_TABLE_SIZE = 1 << (2 * LOOKUP_BITS + 2)

#: lookup_pos[(ij8 << 2) | orientation] = (pos8 << 2) | new_orientation
LOOKUP_POS: List[int] = [0] * _TABLE_SIZE
#: lookup_ij[(pos8 << 2) | orientation] = (ij8 << 2) | new_orientation
LOOKUP_IJ: List[int] = [0] * _TABLE_SIZE


def _init_lookup_cell(level: int, i: int, j: int, orig_orientation: int,
                      pos: int, orientation: int) -> None:
    if level == LOOKUP_BITS:
        ij = (i << LOOKUP_BITS) | j
        LOOKUP_POS[(ij << 2) | orig_orientation] = (pos << 2) | orientation
        LOOKUP_IJ[(pos << 2) | orig_orientation] = (ij << 2) | orientation
        return
    level += 1
    i <<= 1
    j <<= 1
    pos <<= 2
    row = POS_TO_IJ[orientation]
    for index in range(4):
        ij = row[index]
        _init_lookup_cell(
            level,
            i + (ij >> 1),
            j + (ij & 1),
            orig_orientation,
            pos + index,
            orientation ^ POS_TO_ORIENTATION[index],
        )


for _orientation in range(4):
    _init_lookup_cell(0, 0, 0, _orientation, 0, _orientation)

#: numpy views of the tables for vectorized encoding/decoding.
LOOKUP_POS_NP = np.asarray(LOOKUP_POS, dtype=np.uint64)
LOOKUP_IJ_NP = np.asarray(LOOKUP_IJ, dtype=np.uint64)
