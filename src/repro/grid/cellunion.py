"""Normalized unions of cells.

A :class:`CellUnion` is a sorted, non-overlapping set of cell ids with
complete sibling groups merged into their parent — the canonical compressed
representation of a region. Used by tests (covering sanity), the adaptive
index, and anywhere membership of a leaf in a cell set must be answered
without a trie.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Iterator, List, Sequence

from . import cellid


class CellUnion:
    """Sorted union of cells with containment queries in O(log n)."""

    __slots__ = ("cells",)

    def __init__(self, cells: Iterable[int], normalize: bool = True):
        cell_list = sorted(cells)
        self.cells: List[int] = (
            _normalize(cell_list) if normalize else cell_list
        )

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[int]:
        return iter(self.cells)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CellUnion) and self.cells == other.cells

    def __repr__(self) -> str:
        return f"CellUnion({len(self.cells)} cells)"

    def contains_cell(self, cell: int) -> bool:
        """True when ``cell`` is fully covered by a member cell."""
        idx = bisect_right(self.cells, cell)
        if idx > 0 and cellid.contains(self.cells[idx - 1], cell):
            return True
        if idx < len(self.cells) and cellid.contains(self.cells[idx], cell):
            return True
        return False

    def contains_leaf(self, leaf: int) -> bool:
        """Membership test for a leaf cell id."""
        return self.contains_cell(leaf)

    def intersects_cell(self, cell: int) -> bool:
        """True when any member overlaps ``cell``."""
        lo = cellid.range_min(cell)
        hi = cellid.range_max(cell)
        idx = bisect_right(self.cells, lo)
        if idx > 0 and cellid.range_max(self.cells[idx - 1]) >= lo:
            return True
        return idx < len(self.cells) and cellid.range_min(self.cells[idx]) <= hi

    def num_leaves(self) -> int:
        """Total number of level-30 leaves covered (exact, arbitrary size)."""
        total = 0
        for cell in self.cells:
            total += 1 << (2 * (cellid.MAX_LEVEL - cellid.level(cell)))
        return total


def _normalize(sorted_cells: Sequence[int]) -> List[int]:
    """Drop contained cells and merge complete sibling groups."""
    output: List[int] = []
    for cell in sorted_cells:
        if output and cellid.contains(output[-1], cell):
            continue
        while output and cellid.contains(cell, output[-1]):
            output.pop()
        output.append(cell)
        # repeatedly merge trailing complete sibling quartets
        while len(output) >= 4:
            tail = output[-4:]
            if cellid.is_leaf(tail[0]) is False and cellid.level(tail[0]) == 0:
                break
            first = tail[0]
            lvl = cellid.level(first)
            if lvl == 0:
                break
            par = cellid.parent(first, lvl - 1)
            if all(cellid.level(c) == lvl and cellid.parent(c, lvl - 1) == par
                   for c in tail[1:]) and len(set(tail)) == 4:
                del output[-4:]
                output.append(par)
            else:
                break
    return output
