"""Global spherical grid on the faces of a cube (S2-like).

This mirrors the grid of the Google S2 library used by the paper's
reference implementation: six cube faces, each subdivided as a 30-level
quadtree with the quadratic (u, v) -> (s, t) transform and Hilbert-curve
cell numbering.

Cell *geometry* is exposed as a conservative lng/lat rect bound: the bbox
of sampled boundary points, expanded by a curvature margin that shrinks by
4x per level. Conservative bounds keep covering classification safe (never
falsely DISJOINT or WITHIN) at the cost of slightly looser coverings.

Limitations (documented, by design): rect bounds degrade for cells that
cross the antimeridian or enclose a pole, so *polygon coverings* should
stay within ``|lat| < 60`` and away from lng 180. Point lookups are exact
everywhere.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from ..config import EARTH_RADIUS_METERS
from . import cellid
from .base import HierarchicalGrid
from .projection import (
    face_ij_from_lnglat,
    face_ij_from_lnglat_batch,
    lnglat_from_face_st,
)

#: Upper bound on (rect-bound diagonal in radians) * 2**level.
#:
#: S2's max cell diagonal metric for the quadratic projection is
#: ~2.44 * 2**-level radians; the lng/lat bbox of a maximally skewed quad
#: inflates a diagonal by at most sqrt(2), and the curvature margin adds a
#: few percent. 3.7 conservatively covers all of it.
RECT_DIAG_DERIV = 3.7


class S2LikeGrid(HierarchicalGrid):
    """Spherical cube-face quadtree grid with S2's bit layout."""

    def __init__(self, max_level: int = cellid.MAX_LEVEL,
                 boundary_samples: int = 4):
        self.max_level = max_level
        self._boundary_samples = max(2, boundary_samples)

    @property
    def name(self) -> str:
        return "s2like"

    # ------------------------------------------------------------------
    # Point -> cell
    # ------------------------------------------------------------------
    def leaf_cell(self, lng: float, lat: float) -> Optional[int]:
        face, i, j = face_ij_from_lnglat(lng, lat)
        return cellid.from_face_ij(face, i, j)

    def leaf_cells_batch(self, lng: np.ndarray, lat: np.ndarray) -> np.ndarray:
        faces, i, j = face_ij_from_lnglat_batch(lng, lat)
        return cellid.from_face_ij_batch(faces, i, j)

    # ------------------------------------------------------------------
    # Cell -> geometry
    # ------------------------------------------------------------------
    def frame_bounds(self, frame) -> tuple:
        face, raw_i0, raw_j0, level = frame
        scale = 1.0 / float(1 << cellid.MAX_LEVEL)
        size = 1 << (cellid.MAX_LEVEL - level)
        i0 = raw_i0 * scale
        j0 = raw_j0 * scale
        step = size * scale

        if level >= 6:
            # corner sampling suffices once edges are near-straight
            points = ((i0, j0), (i0 + step, j0),
                      (i0, j0 + step), (i0 + step, j0 + step))
        else:
            # coarse cells: sample along the boundary, edges curve visibly
            n = 4 * self._boundary_samples
            points = []
            for k in range(n + 1):
                f = k / n
                points.extend((
                    (i0 + f * step, j0),
                    (i0 + f * step, j0 + step),
                    (i0, j0 + f * step),
                    (i0 + step, j0 + f * step),
                ))

        min_lng = min_lat = float("inf")
        max_lng = max_lat = float("-inf")
        for s, t in points:
            lng, lat = lnglat_from_face_st(face, s, t)
            if lng < min_lng:
                min_lng = lng
            if lng > max_lng:
                max_lng = lng
            if lat < min_lat:
                min_lat = lat
            if lat > max_lat:
                max_lat = lat

        # curvature margin: relative edge bulge decays ~4x per level
        margin_frac = 0.5 if level == 0 else min(0.5, 0.7 * 4.0 ** (-level))
        margin = max(max_lng - min_lng, max_lat - min_lat) * margin_frac + 1e-12
        return (min_lng - margin, min_lat - margin,
                max_lng + margin, max_lat + margin)

    def root_cells(self) -> List[int]:
        return [cellid.from_face(face) for face in range(cellid.NUM_FACES)]

    def root_frames(self):
        return [(face, 0, 0, 0) for face in range(cellid.NUM_FACES)]

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def max_diag_meters(self, level: int) -> float:
        return RECT_DIAG_DERIV * math.pow(2.0, -level) * EARTH_RADIUS_METERS

    def __repr__(self) -> str:
        return f"S2LikeGrid(max_level={self.max_level})"
