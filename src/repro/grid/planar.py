"""Planar quadtree grid over a bounded lng/lat region.

Cells are exact axis-aligned rectangles: the region is split into
``2**level x 2**level`` cells per level, addressed by the same Hilbert
curve / 64-bit cell id scheme as the spherical grid (always face 0). The
exact cell geometry makes this grid the default for experiments and
property tests — every covering classification is free of the conservative
slack the spherical grid's rect bounds need.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import GridError, OutOfBoundsError
from ..geometry.bbox import Rect
from ..geometry.distance import meters_per_degree
from . import cellid
from .base import INVALID_CELL, INVALID_KEY, HierarchicalGrid


class PlanarGrid(HierarchicalGrid):
    """Quadtree over ``bounds`` with exact rectangular cells.

    Parameters
    ----------
    bounds:
        The lng/lat region the grid covers. Points outside it have no
        cell (they can never join with the indexed polygons as long as
        the bounds contain all polygons).
    max_level:
        Deepest usable level, up to 30.
    """

    def __init__(self, bounds: Rect, max_level: int = cellid.MAX_LEVEL):
        if not 1 <= max_level <= cellid.MAX_LEVEL:
            raise GridError(f"max_level must be in [1, 30], got {max_level}")
        if bounds.width <= 0.0 or bounds.height <= 0.0:
            raise GridError(f"grid bounds must have positive extent: {bounds}")
        self.bounds = bounds
        self.max_level = max_level
        self._ij_size = 1 << cellid.MAX_LEVEL
        self._sx = self._ij_size / bounds.width
        self._sy = self._ij_size / bounds.height
        # the most pessimistic meters-per-degree-lng inside the bounds
        # (|lat| smallest -> cos largest)
        lat_closest_to_equator = (
            0.0 if bounds.min_y <= 0.0 <= bounds.max_y
            else min(abs(bounds.min_y), abs(bounds.max_y))
        )
        self._k_lng = meters_per_degree(lat_closest_to_equator)[0]
        self._k_lat = meters_per_degree(0.0)[1]

    @property
    def name(self) -> str:
        return "planar"

    @staticmethod
    def for_polygons(polygons, margin_fraction: float = 0.05,
                     max_level: int = cellid.MAX_LEVEL) -> "PlanarGrid":
        """Grid sized to a polygon collection's bbox plus a margin."""
        boxes = [p.bbox for p in polygons]
        if not boxes:
            raise GridError("for_polygons: empty polygon collection")
        box = boxes[0]
        for other in boxes[1:]:
            box = box.union(other)
        margin = max(box.width, box.height) * margin_fraction
        if margin <= 0.0:
            margin = 1e-9
        return PlanarGrid(box.expanded(margin), max_level=max_level)

    # ------------------------------------------------------------------
    # Point -> cell
    # ------------------------------------------------------------------
    def leaf_cell(self, lng: float, lat: float) -> Optional[int]:
        if not self.bounds.contains_point(lng, lat):
            return None
        i = self._coord_to_ij(lng, self.bounds.min_x, self._sx)
        j = self._coord_to_ij(lat, self.bounds.min_y, self._sy)
        return cellid.from_face_ij(0, i, j)

    def point_key(self, lng: float, lat: float, level: int) -> Optional[int]:
        """Serving hot-path override: the (i, j) pair truncated to
        level-``level`` resolution, packed into one int. Equivalent
        partition of the domain to the base implementation but with no
        Hilbert bit-interleave (about 3x cheaper per point)."""
        bounds = self.bounds
        if not (bounds.min_x <= lng <= bounds.max_x
                and bounds.min_y <= lat <= bounds.max_y):
            return None
        shift = cellid.MAX_LEVEL - level
        i = self._coord_to_ij(lng, bounds.min_x, self._sx)
        j = self._coord_to_ij(lat, bounds.min_y, self._sy)
        return ((i >> shift) << cellid.MAX_LEVEL) | (j >> shift)

    def point_keys(self, lngs: np.ndarray, lats: np.ndarray,
                   level: int) -> np.ndarray:
        """Vectorized :meth:`point_key`: truncated (i, j) packing with no
        Hilbert bit-interleave, one numpy pass for the whole batch."""
        lngs = np.asarray(lngs, dtype=np.float64)
        lats = np.asarray(lats, dtype=np.float64)
        bounds = self.bounds
        inside = (
            (lngs >= bounds.min_x) & (lngs <= bounds.max_x)
            & (lats >= bounds.min_y) & (lats <= bounds.max_y)
        )
        i = np.clip(((lngs - bounds.min_x) * self._sx).astype(np.int64),
                    0, self._ij_size - 1).astype(np.uint64)
        j = np.clip(((lats - bounds.min_y) * self._sy).astype(np.int64),
                    0, self._ij_size - 1).astype(np.uint64)
        shift = np.uint64(cellid.MAX_LEVEL - level)
        keys = ((i >> shift) << np.uint64(cellid.MAX_LEVEL)) | (j >> shift)
        keys[~inside] = INVALID_KEY
        return keys

    def leaf_cell_strict(self, lng: float, lat: float) -> int:
        """Like :meth:`leaf_cell` but raises on out-of-domain points."""
        cell = self.leaf_cell(lng, lat)
        if cell is None:
            raise OutOfBoundsError(
                f"point ({lng}, {lat}) outside grid bounds {self.bounds}"
            )
        return cell

    def leaf_cells_batch(self, lng: np.ndarray, lat: np.ndarray) -> np.ndarray:
        lng = np.asarray(lng, dtype=np.float64)
        lat = np.asarray(lat, dtype=np.float64)
        inside = (
            (lng >= self.bounds.min_x) & (lng <= self.bounds.max_x)
            & (lat >= self.bounds.min_y) & (lat <= self.bounds.max_y)
        )
        i = np.clip(((lng - self.bounds.min_x) * self._sx).astype(np.int64),
                    0, self._ij_size - 1)
        j = np.clip(((lat - self.bounds.min_y) * self._sy).astype(np.int64),
                    0, self._ij_size - 1)
        faces = np.zeros(lng.shape[0], dtype=np.int64)
        ids = cellid.from_face_ij_batch(faces, i, j)
        ids[~inside] = INVALID_CELL
        return ids

    def _coord_to_ij(self, value: float, origin: float, scale: float) -> int:
        index = int((value - origin) * scale)
        if index < 0:
            return 0
        if index >= self._ij_size:
            return self._ij_size - 1
        return index

    # ------------------------------------------------------------------
    # Cell -> geometry
    # ------------------------------------------------------------------
    def frame_bounds(self, frame) -> tuple:
        _, i0, j0, level = frame
        size = 1 << (cellid.MAX_LEVEL - level)
        fx = self.bounds.width / self._ij_size
        fy = self.bounds.height / self._ij_size
        min_x = self.bounds.min_x + i0 * fx
        min_y = self.bounds.min_y + j0 * fy
        return (min_x, min_y, min_x + size * fx, min_y + size * fy)

    def root_cells(self) -> List[int]:
        return [cellid.from_face(0)]

    def root_frames(self):
        return [(0, 0, 0, 0)]

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def max_diag_meters(self, level: int) -> float:
        width_deg = self.bounds.width / (1 << level)
        height_deg = self.bounds.height / (1 << level)
        dx = width_deg * self._k_lng
        dy = height_deg * self._k_lat
        return float(np.hypot(dx, dy))

    def __repr__(self) -> str:
        return f"PlanarGrid(bounds={self.bounds}, max_level={self.max_level})"
