"""Synthetic region generators.

The paper evaluates against NYC boroughs (5 large, very complex polygons),
neighborhoods (289 medium polygons), and census blocks (39,184 small
polygons), joined with NYC taxi pickup points. Those datasets are not
shippable here, so this module generates geometry with the same *shape
characteristics*:

* :func:`voronoi_partition` — a seamless partition of a region into n
  convex-ish cells (neighborhood-like);
* :func:`densify_polygon` — deterministic midpoint-displacement noise that
  turns straight borders into complex coastlines **consistently across
  neighbors** (shared edges are displaced identically, so partitions stay
  seamless) — borough-like complexity;
* :func:`street_grid_blocks` — a dense lattice of small rectangular blocks
  separated by streets (census-block-like);
* :func:`overlapping_zones` — overlapping geofence polygons (exercises the
  super covering's conflict resolution, the Uber-products use case).

All generators are deterministic in their ``seed``.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence, Tuple

import numpy as np
from scipy.spatial import Voronoi

from ..errors import DatasetError
from ..geometry.bbox import Rect
from ..geometry.polygon import Polygon, regular_polygon

Point = Tuple[float, float]


# ----------------------------------------------------------------------
# Voronoi partitions
# ----------------------------------------------------------------------
def voronoi_partition(bounds: Rect, num_cells: int, seed: int = 0,
                      lloyd_iterations: int = 1) -> List[Polygon]:
    """Partition ``bounds`` into ``num_cells`` Voronoi cell polygons.

    Sites are mirrored across all four box edges before triangulating, so
    every interior region is finite and exactly clipped to the box. One
    or two Lloyd relaxation steps make cell sizes more uniform (like real
    administrative regions).
    """
    if num_cells < 1:
        raise DatasetError(f"num_cells must be >= 1, got {num_cells}")
    rng = np.random.default_rng(seed)
    sites = rng.uniform(
        [bounds.min_x, bounds.min_y],
        [bounds.max_x, bounds.max_y],
        (num_cells, 2),
    )
    if num_cells == 1:
        return [Polygon(list(bounds.corners()))]
    for _ in range(max(0, lloyd_iterations)):
        regions = _voronoi_regions(sites, bounds)
        sites = np.asarray([_centroid(region) for region in regions])
    return [Polygon(region) for region in _voronoi_regions(sites, bounds)]


def _voronoi_regions(sites: np.ndarray, bounds: Rect) -> List[List[Point]]:
    mirrored = [sites]
    for axis, value in ((0, bounds.min_x), (0, bounds.max_x),
                        (1, bounds.min_y), (1, bounds.max_y)):
        m = sites.copy()
        m[:, axis] = 2.0 * value - m[:, axis]
        mirrored.append(m)
    vor = Voronoi(np.vstack(mirrored))
    regions: List[List[Point]] = []
    for i in range(sites.shape[0]):
        idx = vor.regions[vor.point_region[i]]
        verts = vor.vertices[idx]
        cx, cy = verts.mean(axis=0)
        order = np.argsort(np.arctan2(verts[:, 1] - cy, verts[:, 0] - cx))
        ordered = verts[order]
        regions.append([(float(x), float(y)) for x, y in ordered])
    return regions


def _centroid(ring: Sequence[Point]) -> Point:
    arr = np.asarray(ring)
    return (float(arr[:, 0].mean()), float(arr[:, 1].mean()))


# ----------------------------------------------------------------------
# Midpoint-displacement densification (complex coastlines)
# ----------------------------------------------------------------------
def _edge_seed(p0: Point, p1: Point, salt: int) -> int:
    """Deterministic seed from an *unordered* edge (direction-free)."""
    a = min(p0, p1)
    b = max(p0, p1)
    digest = hashlib.blake2b(
        f"{a[0]:.12e},{a[1]:.12e}|{b[0]:.12e},{b[1]:.12e}|{salt}".encode(),
        digest_size=8,
    ).digest()
    return int.from_bytes(digest, "little")


def _displace(p0: Point, p1: Point, depth: int, amplitude: float,
              rng: np.random.Generator) -> List[Point]:
    """Interior points of a midpoint-displaced polyline p0 -> p1."""
    if depth == 0:
        return []
    mx = 0.5 * (p0[0] + p1[0])
    my = 0.5 * (p0[1] + p1[1])
    dx = p1[0] - p0[0]
    dy = p1[1] - p0[1]
    offset = float(rng.uniform(-amplitude, amplitude))
    mid = (mx - dy * offset, my + dx * offset)
    left = _displace(p0, mid, depth - 1, amplitude * 0.55, rng)
    right = _displace(mid, p1, depth - 1, amplitude * 0.55, rng)
    return left + [mid] + right


def displace_edge(p0: Point, p1: Point, depth: int = 3,
                  amplitude: float = 0.12, salt: int = 0) -> List[Point]:
    """Deterministic rough polyline from ``p0`` to ``p1`` (excluding ``p1``).

    The displacement depends only on the *unordered* endpoint pair, so the
    two polygons sharing a border produce the exact same coastline and the
    partition stays seamless.
    """
    if depth <= 0:
        return [p0]
    canonical = min(p0, p1), max(p0, p1)
    rng = np.random.default_rng(_edge_seed(p0, p1, salt))
    interior = _displace(canonical[0], canonical[1], depth, amplitude, rng)
    if (p0, p1) != canonical:
        interior = list(reversed(interior))
    return [p0] + interior


def densify_polygon(polygon: Polygon, depth: int = 3,
                    amplitude: float = 0.12, salt: int = 0) -> Polygon:
    """Replace every edge with a midpoint-displaced coastline.

    ``depth`` levels of displacement multiply the vertex count by
    ``2**depth``; ``amplitude`` is relative to each edge's length.
    """
    def rough_ring(vertices: Sequence[Point]) -> List[Point]:
        out: List[Point] = []
        n = len(vertices)
        for i in range(n):
            p0 = vertices[i]
            p1 = vertices[(i + 1) % n]
            out.extend(displace_edge(p0, p1, depth, amplitude, salt))
        return out

    return Polygon(
        rough_ring(polygon.shell.vertices),
        [rough_ring(h.vertices) for h in polygon.holes],
    )


# ----------------------------------------------------------------------
# Street grids (census blocks)
# ----------------------------------------------------------------------
def street_grid_blocks(bounds: Rect, rows: int, cols: int,
                       street_fraction: float = 0.12,
                       jitter: float = 0.15,
                       seed: int = 0) -> List[Polygon]:
    """A ``rows x cols`` lattice of small blocks separated by streets.

    Each block is an axis-aligned rectangle shrunk by ``street_fraction``
    and perturbed by ``jitter`` (relative to cell size) so blocks are not
    perfectly regular — matching the look of census blocks.
    """
    if rows < 1 or cols < 1:
        raise DatasetError("street_grid_blocks needs rows, cols >= 1")
    if not 0.0 <= street_fraction < 0.9:
        raise DatasetError(f"street_fraction out of range: {street_fraction}")
    rng = np.random.default_rng(seed)
    dx = bounds.width / cols
    dy = bounds.height / rows
    half_street_x = 0.5 * street_fraction * dx
    half_street_y = 0.5 * street_fraction * dy
    blocks: List[Polygon] = []
    for r in range(rows):
        for c in range(cols):
            x0 = bounds.min_x + c * dx + half_street_x
            x1 = bounds.min_x + (c + 1) * dx - half_street_x
            y0 = bounds.min_y + r * dy + half_street_y
            y1 = bounds.min_y + (r + 1) * dy - half_street_y
            jx = float(rng.uniform(-jitter, jitter)) * (x1 - x0) * 0.25
            jy = float(rng.uniform(-jitter, jitter)) * (y1 - y0) * 0.25
            blocks.append(Polygon([
                (x0 + jx, y0 + jy),
                (x1 + jx, y0 - jy),
                (x1 - jx, y1 - jy),
                (x0 - jx, y1 + jy),
            ]))
    return blocks


# ----------------------------------------------------------------------
# Overlapping geofence zones
# ----------------------------------------------------------------------
def overlapping_zones(bounds: Rect, num_zones: int, seed: int = 0,
                      min_vertices: int = 6, max_vertices: int = 24,
                      ) -> List[Polygon]:
    """Overlapping convex zones (think Uber product geofences).

    Zone radii span an order of magnitude and centers cluster toward the
    middle of the region, so many zones overlap — stress-testing the
    super covering's conflict push-down.
    """
    if num_zones < 1:
        raise DatasetError(f"num_zones must be >= 1, got {num_zones}")
    rng = np.random.default_rng(seed)
    cx0, cy0 = bounds.center
    spread_x = bounds.width * 0.25
    spread_y = bounds.height * 0.25
    max_radius = 0.35 * min(bounds.width, bounds.height)
    zones: List[Polygon] = []
    for _ in range(num_zones):
        cx = float(np.clip(rng.normal(cx0, spread_x),
                           bounds.min_x, bounds.max_x))
        cy = float(np.clip(rng.normal(cy0, spread_y),
                           bounds.min_y, bounds.max_y))
        radius = float(rng.uniform(0.08, 1.0)) * max_radius
        sides = int(rng.integers(min_vertices, max_vertices + 1))
        phase = float(rng.uniform(0.0, 2.0 * np.pi))
        zones.append(regular_polygon(cx, cy, radius, sides, phase))
    return zones
