"""Taxi-like point workloads.

The paper streams 1 B NYC taxi pickup locations through the join. Taxi
pickups are heavily clustered (Manhattan-style hotspots) with a broad
urban background and a sliver of noise (GPS errors outside the region) —
this module generates point batches with that distribution, deterministic
in the seed.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from ..errors import DatasetError
from ..geometry.bbox import Rect
from .nyc import REGION

PointBatch = Tuple[np.ndarray, np.ndarray]


def taxi_points(num: int, bounds: Rect = REGION, num_hotspots: int = 12,
                hotspot_fraction: float = 0.7, noise_fraction: float = 0.02,
                seed: int = 123) -> PointBatch:
    """``(lngs, lats)`` of a taxi-like workload.

    ``hotspot_fraction`` of the points are drawn from a Gaussian mixture
    around ``num_hotspots`` random centers (pickup hotspots), the rest
    uniformly from the region, and ``noise_fraction`` lands outside the
    region entirely (GPS noise; these points must join with nothing).
    """
    if num < 1:
        raise DatasetError(f"taxi_points needs num >= 1, got {num}")
    if not 0.0 <= hotspot_fraction <= 1.0:
        raise DatasetError(f"bad hotspot_fraction: {hotspot_fraction}")
    rng = np.random.default_rng(seed)

    n_noise = int(num * noise_fraction)
    n_hot = int((num - n_noise) * hotspot_fraction)
    n_uniform = num - n_noise - n_hot

    centers_x = rng.uniform(bounds.min_x, bounds.max_x, num_hotspots)
    centers_y = rng.uniform(bounds.min_y, bounds.max_y, num_hotspots)
    sigma_x = bounds.width * rng.uniform(0.01, 0.06, num_hotspots)
    sigma_y = bounds.height * rng.uniform(0.01, 0.06, num_hotspots)
    weights = rng.dirichlet(np.ones(num_hotspots) * 2.0)

    assignment = rng.choice(num_hotspots, size=n_hot, p=weights)
    hot_x = rng.normal(centers_x[assignment], sigma_x[assignment])
    hot_y = rng.normal(centers_y[assignment], sigma_y[assignment])
    hot_x = np.clip(hot_x, bounds.min_x, bounds.max_x)
    hot_y = np.clip(hot_y, bounds.min_y, bounds.max_y)

    uni_x = rng.uniform(bounds.min_x, bounds.max_x, n_uniform)
    uni_y = rng.uniform(bounds.min_y, bounds.max_y, n_uniform)

    margin_x = bounds.width * 0.5
    margin_y = bounds.height * 0.5
    noise_x = rng.uniform(bounds.min_x - margin_x, bounds.max_x + margin_x,
                          n_noise)
    noise_y = rng.uniform(bounds.min_y - margin_y, bounds.max_y + margin_y,
                          n_noise)

    lngs = np.concatenate([hot_x, uni_x, noise_x])
    lats = np.concatenate([hot_y, uni_y, noise_y])
    order = rng.permutation(num)
    return lngs[order], lats[order]


def uniform_points(num: int, bounds: Rect = REGION, seed: int = 5,
                   ) -> PointBatch:
    """Uniformly distributed points over ``bounds``."""
    if num < 1:
        raise DatasetError(f"uniform_points needs num >= 1, got {num}")
    rng = np.random.default_rng(seed)
    return (rng.uniform(bounds.min_x, bounds.max_x, num),
            rng.uniform(bounds.min_y, bounds.max_y, num))


def point_stream(total: int, batch_size: int, bounds: Rect = REGION,
                 seed: int = 123, **taxi_kwargs) -> Iterator[PointBatch]:
    """Yield taxi-like point batches until ``total`` points are produced.

    The streaming shape of the paper's workload: points are not known in
    advance, arrive in micro-batches, and must be joined with low latency.
    """
    if batch_size < 1:
        raise DatasetError(f"batch_size must be >= 1, got {batch_size}")
    produced = 0
    batch_index = 0
    while produced < total:
        size = min(batch_size, total - produced)
        yield taxi_points(size, bounds=bounds, seed=seed + batch_index,
                          **taxi_kwargs)
        produced += size
        batch_index += 1
