"""NYC-like polygon datasets matching the paper's evaluation corpus.

The paper joins taxi points against three real datasets; these generators
produce synthetic stand-ins with the same cardinalities and shape
characteristics (see DESIGN.md's substitution table):

========================  =======  ===========================================
dataset                   count    character
========================  =======  ===========================================
:func:`boroughs`          5        very large, coastline-complex polygons
:func:`neighborhoods`     289      medium Voronoi cells, lightly roughened
:func:`census_blocks`     39,184   tiny street-grid blocks (count scalable)
========================  =======  ===========================================

All three are deterministic in their seed and live in the same NYC-like
bounding box so they can share point workloads.
"""

from __future__ import annotations

import math
from typing import List

from ..config import (
    NYC_BOUNDS,
    PAPER_NUM_BOROUGHS,
    PAPER_NUM_CENSUS_BLOCKS,
    PAPER_NUM_NEIGHBORHOODS,
)
from ..errors import DatasetError
from ..geometry.bbox import Rect
from ..geometry.polygon import Polygon
from .synthetic import densify_polygon, street_grid_blocks, voronoi_partition

#: The shared NYC-like region.
REGION = Rect(*NYC_BOUNDS)


def boroughs(num: int = PAPER_NUM_BOROUGHS, seed: int = 42,
             complexity: int = 5) -> List[Polygon]:
    """A few very large polygons with complex, coastline-like borders.

    ``complexity`` is the midpoint-displacement depth: each Voronoi border
    edge becomes ``2**complexity`` segments, so the default produces
    polygons with hundreds to thousands of vertices — matching the paper's
    observation that boroughs are few but "significantly more complex".
    """
    base = voronoi_partition(REGION, num, seed=seed, lloyd_iterations=2)
    return [densify_polygon(p, depth=complexity, amplitude=0.08, salt=seed)
            for p in base]


def neighborhoods(num: int = PAPER_NUM_NEIGHBORHOODS, seed: int = 7,
                  complexity: int = 2) -> List[Polygon]:
    """Medium-sized Voronoi cells with lightly roughened borders."""
    base = voronoi_partition(REGION, num, seed=seed, lloyd_iterations=1)
    return [densify_polygon(p, depth=complexity, amplitude=0.05, salt=seed)
            for p in base]


def census_blocks(num: int = 4000, seed: int = 11) -> List[Polygon]:
    """Tiny rectangular blocks on a jittered street grid.

    The paper's dataset has 39,184 blocks; the default here is scaled to
    4,000 so the Python build finishes in benchmark-friendly time. Pass
    ``num=PAPER_NUM_CENSUS_BLOCKS`` (or set ``REPRO_SCALE=10``) for the
    paper-sized corpus — the generator is O(num).
    """
    if num < 1:
        raise DatasetError(f"census_blocks needs num >= 1, got {num}")
    aspect = REGION.width / REGION.height
    rows = max(1, int(math.sqrt(num / aspect)))
    cols = max(1, (num + rows - 1) // rows)
    blocks = street_grid_blocks(
        REGION, rows, cols, street_fraction=0.18, jitter=0.2, seed=seed
    )
    return blocks[:num]


def full_census_blocks(seed: int = 11) -> List[Polygon]:
    """The paper-sized census corpus (39,184 blocks)."""
    return census_blocks(PAPER_NUM_CENSUS_BLOCKS, seed=seed)
