"""Synthetic datasets standing in for the paper's NYC corpus.

See DESIGN.md for the substitution rationale. :mod:`repro.datasets.nyc`
provides the three polygon datasets (boroughs / neighborhoods / census
blocks), :mod:`repro.datasets.points` the taxi-like point workloads, and
:mod:`repro.datasets.synthetic` the underlying generators.
"""

from . import nyc, points, synthetic
from .nyc import REGION, boroughs, census_blocks, full_census_blocks, neighborhoods
from .points import point_stream, taxi_points, uniform_points
from .synthetic import (
    densify_polygon,
    displace_edge,
    overlapping_zones,
    street_grid_blocks,
    voronoi_partition,
)

__all__ = [
    "nyc",
    "points",
    "synthetic",
    "REGION",
    "boroughs",
    "census_blocks",
    "full_census_blocks",
    "neighborhoods",
    "point_stream",
    "taxi_points",
    "uniform_points",
    "densify_polygon",
    "displace_edge",
    "overlapping_zones",
    "street_grid_blocks",
    "voronoi_partition",
]
