"""repro — Approximate geospatial joins with precision guarantees.

A from-scratch Python reproduction of the ICDE 2018 paper by Kipf et al.
The package implements the Adaptive Cell Trie (ACT) — an in-memory radix
tree over quadtree grid cells that answers point-in-polygon joins without
a refinement phase while guaranteeing a user-defined precision bound —
plus every substrate it needs: computational geometry, an S2-like
spherical grid, a planar quadtree grid, baseline indexes (R*-tree, fixed
grid, interior rectangles), a join engine, and synthetic NYC-like
datasets for the paper's evaluation.

Quickstart::

    from repro import ACTIndex
    from repro.datasets import nyc

    polygons = nyc.neighborhoods()
    index = ACTIndex.build(polygons, precision_meters=15.0)
    hits = index.query(-73.97, 40.75)          # polygon ids at a point
    counts = index.count_points(lngs, lats)    # vectorized aggregation
"""

from .act.index import ACTIndex
from .errors import ReproError
from .geometry import MultiPolygon, Polygon, Rect
from .grid import PlanarGrid, S2LikeGrid

__version__ = "1.0.0"

__all__ = [
    "ACTIndex",
    "ReproError",
    "MultiPolygon",
    "Polygon",
    "Rect",
    "PlanarGrid",
    "S2LikeGrid",
    "__version__",
]
