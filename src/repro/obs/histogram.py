"""Fixed-bucket, exactly-mergeable histograms with log-spaced bounds.

The reservoir histogram the serving metrics used to carry cannot be
merged: two workers' sample rings are windows over different traffic,
so the only honest fleet-wide figure was the worst worker's percentile
— an upper bound. A fixed-bucket histogram is closed under addition:
with identical bounds, summing bucket counts yields *exactly* the
histogram of the concatenated samples, so fleet quantiles computed from
the merged buckets carry the same (bounded, known) bucket-resolution
error as any single worker's.

Bounds are log-spaced because latencies are: the default ladder spans
10 µs to 100 s with a constant relative resolution (``per_decade``
buckets per factor of ten), so a 200 µs cache hit and a 2 s cold join
are both resolved to within the same ~35% ratio, which is what p99
tracking needs. All observations above the top bound land in a
``+Inf`` overflow bucket whose quantile estimate falls back to the
exact tracked maximum.

Snapshots are plain dicts (JSON- and pickle-friendly — they ride the
fleet's ``multiprocessing.Manager`` channel) and carry the bounds, so
:func:`merge_histogram_snapshots` can refuse to merge histograms with
different bucket ladders instead of silently mixing them.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def log_bounds(lo: float = 1e-5, hi: float = 100.0,
               per_decade: int = 5) -> Tuple[float, ...]:
    """Log-spaced bucket upper bounds from ``lo`` to ``hi`` inclusive.

    ``per_decade`` buckets per factor of ten; bounds are rounded to a
    stable short decimal form so snapshots serialized through JSON
    compare equal to freshly computed ladders.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
    if per_decade < 1:
        raise ValueError(f"per_decade must be >= 1, got {per_decade}")
    decades = math.log10(hi / lo)
    steps = int(round(decades * per_decade))
    bounds = [float(f"{lo * 10 ** (i / per_decade):.6g}")
              for i in range(steps + 1)]
    # rounding can collapse or overshoot the last step; pin the ends
    bounds[0] = lo
    bounds[-1] = hi
    return tuple(bounds)


#: The default ladder for ``*_seconds`` latency metrics: 10 µs .. 100 s,
#: 5 buckets per decade (~58% bucket width, <~26% quantile error).
DEFAULT_LATENCY_BOUNDS = log_bounds(1e-5, 100.0, per_decade=5)


def quantile_from_buckets(q: float, bounds: Sequence[float],
                          bucket_counts: Sequence[int],
                          observed_max: float = 0.0) -> float:
    """Estimate the ``q``-quantile (0..1) from cumulative-able buckets.

    ``bucket_counts`` has ``len(bounds) + 1`` entries (the last is the
    +Inf overflow). Within the located bucket the estimate interpolates
    linearly between the bucket's lower and upper bound; the overflow
    bucket answers with the exact ``observed_max``. Estimates are
    clamped to ``observed_max`` so a nearly-empty histogram never
    reports a quantile above anything it saw.
    """
    total = sum(bucket_counts)
    if total == 0:
        return 0.0
    rank = max(1, math.ceil(q * total))
    cumulative = 0
    for i, count in enumerate(bucket_counts):
        if not count:
            continue
        if cumulative + count >= rank:
            if i >= len(bounds):  # overflow bucket
                return observed_max
            lower = bounds[i - 1] if i > 0 else 0.0
            upper = bounds[i]
            fraction = (rank - cumulative) / count
            estimate = lower + (upper - lower) * fraction
            if observed_max:
                estimate = min(estimate, observed_max)
            return estimate
        cumulative += count
    return observed_max  # unreachable when counts sum to total


class MergeableHistogram:
    """Fixed-bucket histogram of float samples (seconds).

    ``observe`` is the hot path: one ``bisect`` over a small tuple of
    bounds plus four *unlocked* attribute updates. Under the GIL each
    ``+=`` is a load/add/store that can only lose an update if a thread
    switch lands exactly between the load and the store — rare, and a
    lost sample merely undercounts a telemetry aggregate (the same racy
    ``+=`` trade the descent counters in :mod:`repro.act.core` make).
    Taking a lock here costs more than the rest of ``observe`` combined,
    and telemetry stays on by default only because it is nearly free.
    ``snapshot`` derives its ``count`` from the bucket sum so the
    Prometheus invariant (``+Inf`` cumulative == ``_count``) holds even
    when a racing observe has bumped one but not yet the other.
    ``merge_snapshot`` (cold path) still locks against itself.
    """

    __slots__ = ("_lock", "bounds", "_counts", "total", "max")

    def __init__(self, bounds: Optional[Sequence[float]] = None) -> None:
        bounds = tuple(DEFAULT_LATENCY_BOUNDS if bounds is None else bounds)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError(
                f"bounds must be non-empty and strictly increasing: "
                f"{bounds!r}"
            )
        self._lock = threading.Lock()
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: +Inf overflow
        self.total = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        # Lock-free on purpose — see the class docstring.
        self._counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        if value > self.max:
            self.max = value

    @property
    def count(self) -> int:
        """Total observations — derived from the buckets so there is one
        source of truth (a separate counter could drift under races)."""
        return sum(self._counts)

    @property
    def mean(self) -> float:
        count = self.count
        return self.total / count if count else 0.0

    def percentile(self, q: float) -> float:
        """The estimated ``q``-quantile (0..1); 0.0 when empty."""
        with self._lock:
            counts = list(self._counts)
            observed_max = self.max
        return quantile_from_buckets(q, self.bounds, counts, observed_max)

    def percentiles(self, qs: Sequence[float]) -> List[float]:
        with self._lock:
            counts = list(self._counts)
            observed_max = self.max
        return [quantile_from_buckets(q, self.bounds, counts, observed_max)
                for q in qs]

    def bucket_counts(self) -> List[int]:
        """A copy of the per-bucket counts (last entry is +Inf)."""
        with self._lock:
            return list(self._counts)

    def merge_snapshot(self, snapshot: Dict) -> None:
        """Fold a :meth:`snapshot` (same bounds) into this histogram."""
        if tuple(snapshot["bounds"]) != self.bounds:
            raise ValueError(
                "cannot merge histograms with different bucket bounds"
            )
        counts = snapshot["bucket_counts"]
        with self._lock:
            for i, count in enumerate(counts):
                self._counts[i] += int(count)
            self.total += float(snapshot["sum"])
            self.max = max(self.max, float(snapshot["max"]))

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict view: exact count/sum/max, buckets, and the
        p50/p90/p99/p999 estimates the ``/stats`` consumers read."""
        with self._lock:
            counts = list(self._counts)
            total = self.total
            observed_max = self.max
        # Derived, not self.count: under racy observes the bucket sum is
        # the one figure guaranteed consistent with the buckets we just
        # copied, which is what the +Inf == _count exposition rule needs.
        count = sum(counts)
        p50, p90, p99, p999 = (
            quantile_from_buckets(q, self.bounds, counts, observed_max)
            for q in (0.50, 0.90, 0.99, 0.999)
        )
        return {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "max": observed_max,
            "p50": p50,
            "p90": p90,
            "p99": p99,
            "p999": p999,
            "bounds": list(self.bounds),
            "bucket_counts": counts,
        }


def merge_histogram_snapshots(snapshots: Iterable[Dict],
                              ) -> Optional[Dict[str, object]]:
    """Bucket-wise merge of histogram snapshots with identical bounds.

    Returns a snapshot of the same shape (quantiles recomputed from the
    merged buckets), or ``None`` when ``snapshots`` is empty. Snapshots
    lacking buckets (e.g. published by an old-format worker mid-rolling
    upgrade) are skipped rather than poisoning the merge; mismatched
    bounds raise ``ValueError`` because averaging across different
    ladders would be silently wrong.
    """
    merged: Optional[MergeableHistogram] = None
    for snapshot in snapshots:
        bounds = snapshot.get("bounds")
        if not bounds or "bucket_counts" not in snapshot:
            continue
        if merged is None:
            merged = MergeableHistogram(bounds)
        merged.merge_snapshot(snapshot)
    return merged.snapshot() if merged is not None else None
