"""repro.obs — observability primitives for the serving stack.

Three small, dependency-free layers (stdlib only, importable without
:mod:`repro.serve`):

* :mod:`repro.obs.histogram` — fixed-bucket, *exactly mergeable*
  latency histograms (log-spaced bounds). Unlike the old reservoir
  histogram, two workers' snapshots merge bucket-wise into the same
  histogram the concatenated samples would have produced, so fleet
  p50/p99/p999 are real quantile estimates instead of worst-worker
  maxima.
* :mod:`repro.obs.trace` — request IDs minted at admission, lightweight
  per-stage span recording (``trace.stamp("descent")``), sampled
  tracing, and a bounded slow-query log.
* :mod:`repro.obs.prometheus` — Prometheus text-exposition rendering
  (``GET /metrics``) plus a parser/validator the tests and CI use to
  keep the format honest.
"""

from .histogram import (
    DEFAULT_LATENCY_BOUNDS,
    MergeableHistogram,
    log_bounds,
    merge_histogram_snapshots,
    quantile_from_buckets,
)
from .prometheus import (
    PrometheusRenderer,
    parse_exposition,
    validate_exposition,
)
from .trace import (
    SlowQueryLog,
    Trace,
    Tracer,
    mint_request_id,
)

__all__ = [
    "DEFAULT_LATENCY_BOUNDS",
    "MergeableHistogram",
    "PrometheusRenderer",
    "SlowQueryLog",
    "Trace",
    "Tracer",
    "log_bounds",
    "merge_histogram_snapshots",
    "mint_request_id",
    "parse_exposition",
    "quantile_from_buckets",
    "validate_exposition",
]
