"""Prometheus text-exposition (version 0.0.4) rendering and validation.

No prometheus client library exists in the reproduction environment, so
this module implements the two sides the serving stack needs:

* :class:`PrometheusRenderer` — builds a ``GET /metrics`` payload from
  counters, gauges, and the mergeable histogram snapshots of
  :mod:`repro.obs.histogram` (cumulative ``_bucket{le="..."}`` series
  plus ``_sum``/``_count``, per-index / per-generation / per-worker
  labels);
* :func:`parse_exposition` / :func:`validate_exposition` — a strict
  reader used by the golden-file tests, the CI fleet scrape, and
  ``repro-act admin stats``. Validation enforces the invariants
  scrapers rely on: every sample parses, every family declares a TYPE
  before its samples, all values are finite, histogram buckets are
  cumulative and consistent with ``_count``/``_sum``, and counters are
  non-negative.

Run standalone to validate a scrape::

    python -m repro.obs.prometheus metrics.txt
    python -m repro.obs.prometheus http://127.0.0.1:8080/metrics
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Sequence, Tuple

#: Valid metric / label name per the exposition format.
_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")
#: ``name{labels} value`` — labels optional, timestamp not emitted.
_SAMPLE_RE = re.compile(
    r"([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})?\s+(\S+)(\s+-?\d+)?\s*\Z"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def sanitize_metric_name(name: str) -> str:
    """Dotted internal metric names -> exposition-legal names."""
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not out or not _NAME_RE.match(out):
        out = "_" + out
    return out


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def format_value(value: float) -> str:
    """A float rendered the way Prometheus clients do."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def format_labels(labels: Optional[Dict[str, str]]) -> str:
    if not labels:
        return ""
    parts = [f'{k}="{_escape_label_value(str(v))}"'
             for k, v in sorted(labels.items())]
    return "{" + ",".join(parts) + "}"


class PrometheusRenderer:
    """Accumulates metric families and renders one exposition payload.

    Families keep insertion order; a family's ``# HELP``/``# TYPE``
    header is emitted once even when several label sets (e.g. one per
    index generation) contribute samples.
    """

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        # name -> (type, help, [(suffix, labels, value)])
        self._families: "Dict[str, Tuple[str, str, List]]" = {}

    def _family(self, name: str, kind: str, help_text: str) -> List:
        full = f"{self.namespace}_{sanitize_metric_name(name)}" \
            if self.namespace else sanitize_metric_name(name)
        existing = self._families.get(full)
        if existing is None:
            self._families[full] = (kind, help_text, [])
            return self._families[full][2]
        if existing[0] != kind:
            raise ValueError(
                f"metric family {full!r} registered as {existing[0]}, "
                f"cannot re-register as {kind}"
            )
        return existing[2]

    def counter(self, name: str, value: float,
                labels: Optional[Dict[str, str]] = None,
                help_text: str = "") -> None:
        name = sanitize_metric_name(name)
        if not name.endswith("_total"):
            name = f"{name}_total"
        self._family(name, "counter", help_text).append(
            ("", labels, float(value)))

    def gauge(self, name: str, value: float,
              labels: Optional[Dict[str, str]] = None,
              help_text: str = "") -> None:
        self._family(name, "gauge", help_text).append(
            ("", labels, float(value)))

    def histogram(self, name: str, snapshot: Dict,
                  labels: Optional[Dict[str, str]] = None,
                  help_text: str = "") -> None:
        """Emit one mergeable-histogram snapshot as a histogram family.

        ``snapshot`` is :meth:`repro.obs.histogram.MergeableHistogram.
        snapshot` (or a bucket-wise merge of several): ``bounds``,
        ``bucket_counts`` (last = +Inf), ``sum``, ``count``.
        """
        samples = self._family(name, "histogram", help_text)
        bounds = snapshot.get("bounds") or []
        counts = snapshot.get("bucket_counts") or []
        cumulative = 0
        for bound, count in zip(bounds, counts):
            cumulative += int(count)
            le = dict(labels or {})
            le["le"] = format_value(float(bound))
            samples.append(("_bucket", le, float(cumulative)))
        inf = dict(labels or {})
        inf["le"] = "+Inf"
        samples.append(("_bucket", inf, float(snapshot.get("count", 0))))
        samples.append(("_sum", labels, float(snapshot.get("sum", 0.0))))
        samples.append(("_count", labels, float(snapshot.get("count", 0))))

    def render(self) -> str:
        lines: List[str] = []
        for family, (kind, help_text, samples) in self._families.items():
            if help_text:
                lines.append(f"# HELP {family} {help_text}")
            lines.append(f"# TYPE {family} {kind}")
            for suffix, labels, value in samples:
                lines.append(
                    f"{family}{suffix}{format_labels(labels)} "
                    f"{format_value(value)}"
                )
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Parsing / validation
# ----------------------------------------------------------------------
def _unescape(value: str) -> str:
    return (value.replace(r"\n", "\n").replace(r'\"', '"')
            .replace(r"\\", "\\"))


def parse_exposition(text: str) -> Dict[str, Dict]:
    """Parse exposition text into families.

    Returns ``{family_name: {"type": str|None, "help": str|None,
    "samples": [(sample_name, labels_dict, value)]}}`` where histogram
    series (``_bucket``/``_sum``/``_count``) are grouped under their
    base family name. Raises ``ValueError`` on lines that do not parse.
    """
    families: Dict[str, Dict] = {}

    def family(name: str) -> Dict:
        return families.setdefault(
            name, {"type": None, "help": None, "samples": []})

    declared_histograms = {
        name for name, fam in families.items()
        if fam["type"] == "histogram"
    }

    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("TYPE", "HELP"):
                name = parts[2]
                if parts[1] == "TYPE":
                    kind = parts[3].strip() if len(parts) > 3 else ""
                    if kind not in _TYPES:
                        raise ValueError(
                            f"line {lineno}: unknown TYPE {kind!r}")
                    fam = family(name)
                    if fam["type"] is not None:
                        raise ValueError(
                            f"line {lineno}: duplicate TYPE for {name}")
                    fam["type"] = kind
                    if kind == "histogram":
                        declared_histograms.add(name)
                else:
                    family(name)["help"] = \
                        parts[3] if len(parts) > 3 else ""
            continue  # other comments are legal and ignored
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: unparseable sample {line!r}")
        name, _, label_body, value_text, _timestamp = match.groups()
        labels: Dict[str, str] = {}
        if label_body:
            consumed = 0
            for m in _LABEL_RE.finditer(label_body):
                labels[m.group(1)] = _unescape(m.group(2))
                consumed += 1
            rebuilt = ",".join(
                f'{k}="{_escape_label_value(v)}"'
                for k, v in labels.items())
            if consumed == 0 or rebuilt.count('"') != \
                    label_body.count('"'):
                raise ValueError(
                    f"line {lineno}: unparseable labels {label_body!r}")
        try:
            if value_text in ("+Inf", "Inf"):
                value = math.inf
            elif value_text == "-Inf":
                value = -math.inf
            elif value_text == "NaN":
                value = math.nan
            else:
                value = float(value_text)
        except ValueError:
            raise ValueError(
                f"line {lineno}: bad sample value {value_text!r}",
            ) from None
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] \
                    in declared_histograms:
                base = name[:-len(suffix)]
                break
        family(base)["samples"].append((name, labels, value))
    return families


def _series_key(labels: Dict[str, str]) -> Tuple:
    return tuple(sorted((k, v) for k, v in labels.items() if k != "le"))


def validate_exposition(text: str) -> List[str]:
    """All format violations in one scrape (empty list = valid)."""
    problems: List[str] = []
    try:
        families = parse_exposition(text)
    except ValueError as exc:
        return [str(exc)]
    if not families:
        return ["no metric families in exposition"]
    for name, fam in families.items():
        kind = fam["type"]
        samples = fam["samples"]
        if kind is None:
            problems.append(f"{name}: samples without a # TYPE line")
            continue
        if not samples:
            problems.append(f"{name}: TYPE declared but no samples")
            continue
        for sample_name, _labels, value in samples:
            if math.isnan(value) or (math.isinf(value)
                                     and kind != "histogram"):
                problems.append(
                    f"{name}: non-finite value in {sample_name}")
        if kind == "counter":
            for sample_name, _labels, value in samples:
                if value < 0:
                    problems.append(
                        f"{name}: counter sample {sample_name} is "
                        f"negative ({value})")
        elif kind == "histogram":
            problems.extend(_validate_histogram(name, samples))
    return problems


def _validate_histogram(name: str, samples: Sequence[Tuple]) -> List[str]:
    problems: List[str] = []
    series: Dict[Tuple, Dict] = {}
    for sample_name, labels, value in samples:
        key = _series_key(labels)
        entry = series.setdefault(
            key, {"buckets": [], "sum": None, "count": None})
        if sample_name.endswith("_bucket"):
            le_text = labels.get("le")
            if le_text is None:
                problems.append(f"{name}: _bucket sample without le label")
                continue
            le = math.inf if le_text == "+Inf" else float(le_text)
            entry["buckets"].append((le, value))
        elif sample_name.endswith("_sum"):
            entry["sum"] = value
        elif sample_name.endswith("_count"):
            entry["count"] = value
        else:
            problems.append(
                f"{name}: unexpected histogram sample {sample_name}")
    for key, entry in series.items():
        where = f"{name}{dict(key) or ''}"
        buckets = sorted(entry["buckets"])
        if not buckets:
            problems.append(f"{where}: histogram series has no buckets")
            continue
        if buckets[-1][0] != math.inf:
            problems.append(f"{where}: missing le=\"+Inf\" bucket")
        values = [v for _, v in buckets]
        if any(b < a for a, b in zip(values, values[1:])):
            problems.append(
                f"{where}: bucket counts are not cumulative "
                f"(non-decreasing in le)")
        if entry["count"] is None:
            problems.append(f"{where}: missing _count")
        elif buckets[-1][0] == math.inf and \
                buckets[-1][1] != entry["count"]:
            problems.append(
                f"{where}: +Inf bucket ({buckets[-1][1]}) != _count "
                f"({entry['count']})")
        if entry["sum"] is None:
            problems.append(f"{where}: missing _sum")
    return problems


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover
    """Validate a scrape from a file path or URL (CI helper)."""
    import sys

    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python -m repro.obs.prometheus <file|url>",
              file=sys.stderr)
        return 2
    source = argv[0]
    if source.startswith(("http://", "https://")):
        import urllib.request
        with urllib.request.urlopen(source, timeout=30.0) as response:
            text = response.read().decode("utf-8")
    else:
        with open(source, "r", encoding="utf-8") as handle:
            text = handle.read()
    problems = validate_exposition(text)
    for problem in problems:
        print(f"{source}: {problem}", file=sys.stderr)
    if not problems:
        families = parse_exposition(text)
        samples = sum(len(f["samples"]) for f in families.values())
        print(f"{source}: ok ({len(families)} families, "
              f"{samples} samples)")
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
