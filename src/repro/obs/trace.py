"""Request IDs, per-stage span recording, and the slow-query log.

The serving pipeline spans several hops (admission → cache probe →
batch wait → descent → refine → serialize) across at least two threads
(the request handler and the micro-batcher worker). A :class:`Trace` is
the request-scoped record of where that time went:

* **Request IDs** are minted at admission for *every* request (cheap: a
  per-process prefix plus an incrementing counter, no randomness on the
  hot path) and returned in ``X-Request-Id`` so fleet-mode failures are
  attributable to a worker PID + request.
* **Stage recording** is stamp-based, not nested spans: the trace keeps
  one "last mark" timestamp and ``stamp("descent")`` records the time
  since the previous mark under that name. Stages therefore tile the
  request wall-clock — their sum tracks end-to-end latency by
  construction, which is what makes per-stage breakdowns trustworthy.
  Cross-thread stages (batch wait, shared batch descent) are deposited
  with :meth:`Trace.add` by whichever thread measured them, and the
  depositor's wall-clock interval is excluded from the requester's next
  stamp via :meth:`Trace.mark`.
* **Sampling** is deterministic (every Nth admission per process), so
  the unsampled hot path pays a single integer increment and the
  sampled rate is exact rather than probabilistic.
* The :class:`SlowQueryLog` keeps a bounded ring of the most recent
  over-threshold requests — full per-stage traces when the request was
  sampled, bare envelopes (id, kind, latency) when it was not — so "why
  was this slow" has an answer without grepping logs.

Budget interplay (the SLO-propagation contract): when a request carries
both a trace and a :class:`~repro.serve.budget.Budget`, every budget
checkpoint records the budget remaining at that hop into the trace, so
a shed request's trace shows which stage spent the budget.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

#: Per-process request-id prefix; lazily (re)computed after fork so
#: sibling fleet workers never collide.
_PREFIX_STATE: Dict[str, object] = {"pid": None, "prefix": ""}
_COUNTER = itertools.count(1)


def _prefix() -> str:
    pid = os.getpid()
    if _PREFIX_STATE["pid"] != pid:
        # 4 random bytes disambiguate pid reuse across fleet restarts
        _PREFIX_STATE["prefix"] = f"{pid:x}-{os.urandom(4).hex()}"
        _PREFIX_STATE["pid"] = pid
    return _PREFIX_STATE["prefix"]  # type: ignore[return-value]


def mint_request_id() -> str:
    """A process-unique request id: ``<pid>-<boot-nonce>-<seq>``."""
    return f"{_prefix()}-{next(_COUNTER):x}"


class Trace:
    """Per-request stage recorder (created only for sampled requests).

    Not thread-safe by design: the handler thread and the batcher
    worker touch it sequentially with a future resolution between them
    (a happens-before edge), which is the only cross-thread pattern the
    serving stack uses.
    """

    __slots__ = ("request_id", "kind", "started", "_last", "stages",
                 "budget_marks")

    def __init__(self, request_id: str, kind: str = "query") -> None:
        self.request_id = request_id
        self.kind = kind
        self.started = time.perf_counter()
        self._last = self.started
        #: ``(stage name, seconds)`` in arrival order; names repeat
        #: across retries and merged cross-thread deposits are kept
        #: distinct from handler stamps.
        self.stages: List[Tuple[str, float]] = []
        #: ``(hop name, budget remaining in seconds)`` checkpoints.
        self.budget_marks: List[Tuple[str, float]] = []

    def stamp(self, name: str) -> None:
        """Record the time since the previous mark as stage ``name``."""
        now = time.perf_counter()
        self.stages.append((name, now - self._last))
        self._last = now

    def mark(self) -> None:
        """Reset the stage clock without recording (the elapsed
        interval was deposited by another thread via :meth:`add`)."""
        self._last = time.perf_counter()

    def add(self, name: str, seconds: float) -> None:
        """Deposit an externally measured stage duration."""
        self.stages.append((name, seconds))

    def note_budget(self, hop: str, remaining: float) -> None:
        self.budget_marks.append((hop, remaining))

    def elapsed(self) -> float:
        return time.perf_counter() - self.started

    def to_dict(self) -> Dict[str, object]:
        """The wire/slow-log view (milliseconds, like ``budget_ms``)."""
        total = self.elapsed()
        stages = [
            {"stage": name, "ms": seconds * 1e3}
            for name, seconds in self.stages
        ]
        out: Dict[str, object] = {
            "request_id": self.request_id,
            "kind": self.kind,
            "total_ms": total * 1e3,
            "stage_sum_ms": sum(s * 1e3 for _, s in self.stages),
            "stages": stages,
        }
        if self.budget_marks:
            out["budget_remaining_ms"] = [
                {"hop": hop, "ms": remaining * 1e3}
                for hop, remaining in self.budget_marks
            ]
        return out


class Tracer:
    """Deterministic 1-in-N trace sampler.

    ``sample_interval=64`` traces every 64th admission per process;
    ``0`` disables sampling (forced traces still work); ``1`` traces
    everything. The unsampled path costs one *unlocked* integer
    increment — the "bare counters on the hot path" bar the serving
    stack holds itself to. A racing thread can occasionally make the
    effective rate 1-in-63 or 1-in-65 for a moment; sampling does not
    need to be exact, only cheap and roughly deterministic.
    """

    __slots__ = ("sample_interval", "_admissions")

    def __init__(self, sample_interval: int = 64) -> None:
        if sample_interval < 0:
            raise ValueError(
                f"sample_interval must be >= 0, got {sample_interval}"
            )
        self.sample_interval = sample_interval
        self._admissions = 0

    def sample(self, request_id: Optional[str] = None, kind: str = "query",
               force: bool = False) -> Optional[Trace]:
        """A :class:`Trace` for this admission, or ``None`` (unsampled).

        ``force=True`` (client asked for a breakdown) always traces and
        does not consume the sampling phase.
        """
        if force:
            return Trace(request_id or mint_request_id(), kind)
        interval = self.sample_interval
        if interval <= 0:
            return None
        self._admissions += 1
        if self._admissions % interval:
            return None
        return Trace(request_id or mint_request_id(), kind)


class SlowQueryLog:
    """Bounded ring of the most recent over-threshold requests.

    ``threshold_s <= 0`` disables recording entirely (the hot path then
    pays one float compare). Entries are plain dicts: the full trace
    breakdown when the slow request happened to be sampled, otherwise a
    bare envelope — either way carrying the request id, kind, latency,
    and this worker's pid so fleet operators can attribute the entry.
    """

    __slots__ = ("threshold_s", "_lock", "_entries", "dropped", "recorded")

    def __init__(self, threshold_s: float = 0.25,
                 capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.threshold_s = threshold_s
        self._lock = threading.Lock()
        self._entries: Deque[Dict] = deque(maxlen=capacity)
        self.recorded = 0
        self.dropped = 0

    def maybe_record(self, elapsed_s: float, kind: str,
                     request_id: Optional[str] = None,
                     trace: Optional[Trace] = None,
                     extra: Optional[Dict] = None) -> bool:
        """Record one finished request if it crossed the threshold."""
        if self.threshold_s <= 0 or elapsed_s < self.threshold_s:
            return False
        if trace is not None:
            entry = trace.to_dict()
        else:
            entry = {
                "request_id": request_id,
                "kind": kind,
                "total_ms": elapsed_s * 1e3,
            }
        entry["pid"] = os.getpid()
        entry["unix_time"] = time.time()
        if extra:
            entry.update(extra)
        with self._lock:
            if len(self._entries) == self._entries.maxlen:
                self.dropped += 1
            self._entries.append(entry)
            self.recorded += 1
        return True

    def entries(self) -> List[Dict]:
        """Newest-last copy of the retained entries."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> int:
        with self._lock:
            n = len(self._entries)
            self._entries.clear()
            return n

    def stats(self) -> Dict[str, float]:
        with self._lock:
            size = len(self._entries)
        return {
            "threshold_ms": self.threshold_s * 1e3,
            "capacity": self._entries.maxlen or 0,
            "size": size,
            "recorded": self.recorded,
            "dropped": self.dropped,
        }
