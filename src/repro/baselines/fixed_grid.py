"""Single-level grid baseline (Magellan-style).

The paper contrasts ACT with true-hit-filtering implementations that use
*non-hierarchical* grids (Spark Magellan). This baseline implements that
design: one uniform grid over the region; each cell stores the polygons
it intersects, with an inside/boundary flag per reference. Large polygons
pay with many cells, small polygons with coarse approximations — the
mixed-size weakness the hierarchical ACT avoids.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import JoinError
from ..geometry.bbox import Rect
from ..geometry.polygon import Polygon
from ..geometry.relate import EdgeClassifier, Relation


class FixedGridIndex:
    """Uniform ``resolution x resolution`` grid with true-hit flags."""

    def __init__(self, polygons: Sequence[Polygon], resolution: int = 256,
                 bounds: Rect | None = None):
        if resolution < 1:
            raise JoinError(f"resolution must be >= 1, got {resolution}")
        self.polygons = list(polygons)
        if not self.polygons:
            raise JoinError("FixedGridIndex needs at least one polygon")
        if bounds is None:
            bounds = self.polygons[0].bbox
            for polygon in self.polygons[1:]:
                bounds = bounds.union(polygon.bbox)
            bounds = bounds.expanded(
                max(bounds.width, bounds.height) * 0.01 + 1e-12
            )
        self.bounds = bounds
        self.resolution = resolution
        self._dx = bounds.width / resolution
        self._dy = bounds.height / resolution
        #: cell -> list of (polygon_id, fully_inside)
        self._cells: Dict[int, List[Tuple[int, bool]]] = {}
        for pid, polygon in enumerate(self.polygons):
            self._insert_polygon(pid, polygon)

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def _insert_polygon(self, pid: int, polygon: Polygon) -> None:
        classifier = EdgeClassifier(polygon)
        box = polygon.bbox
        ix0, iy0 = self._cell_of(box.min_x, box.min_y)
        ix1, iy1 = self._cell_of(box.max_x, box.max_y)
        for ix in range(ix0, ix1 + 1):
            min_x = self.bounds.min_x + ix * self._dx
            for iy in range(iy0, iy1 + 1):
                min_y = self.bounds.min_y + iy * self._dy
                relation, _ = classifier.classify_bounds(
                    min_x, min_y, min_x + self._dx, min_y + self._dy
                )
                if relation is Relation.DISJOINT:
                    continue
                key = ix * self.resolution + iy
                self._cells.setdefault(key, []).append(
                    (pid, relation is Relation.WITHIN)
                )

    def _cell_of(self, x: float, y: float) -> Tuple[int, int]:
        ix = int((x - self.bounds.min_x) / self._dx)
        iy = int((y - self.bounds.min_y) / self._dy)
        return (min(max(ix, 0), self.resolution - 1),
                min(max(iy, 0), self.resolution - 1))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, lng: float, lat: float) -> Tuple[List[int], List[int]]:
        """``(true_hits, candidates)`` for a point."""
        if not self.bounds.contains_point(lng, lat):
            return [], []
        ix, iy = self._cell_of(lng, lat)
        refs = self._cells.get(ix * self.resolution + iy, ())
        true_hits = [pid for pid, inside in refs if inside]
        candidates = [pid for pid, inside in refs if not inside]
        return true_hits, candidates

    def query_exact(self, lng: float, lat: float) -> List[int]:
        true_hits, candidates = self.query(lng, lat)
        true_hits.extend(pid for pid in candidates
                         if self.polygons[pid].contains(lng, lat))
        return true_hits

    def count_points(self, lngs: np.ndarray, lats: np.ndarray,
                     exact: bool = True) -> np.ndarray:
        """Count points per polygon (true hits skip refinement)."""
        counts = np.zeros(len(self.polygons), dtype=np.int64)
        contains = [p.contains for p in self.polygons]
        for x, y in zip(np.asarray(lngs, dtype=np.float64).tolist(),
                        np.asarray(lats, dtype=np.float64).tolist()):
            true_hits, candidates = self.query(x, y)
            for pid in true_hits:
                counts[pid] += 1
            for pid in candidates:
                if not exact or contains[pid](x, y):
                    counts[pid] += 1
        return counts

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------
    @property
    def num_cell_refs(self) -> int:
        return sum(len(refs) for refs in self._cells.values())

    @property
    def size_bytes(self) -> int:
        """Directory + 8 bytes per (id, flag) reference."""
        return len(self._cells) * 16 + self.num_cell_refs * 8
