"""R*-tree over polygon MBRs — the paper's baseline index.

The paper indexes minimum bounding rectangles in the boost R-tree with the
``rstar`` splitting strategy and a maximum of 8 entries per node, and
measures pure lookup performance (candidates are counted, not refined).
This module is a from-scratch R*-tree with the same parameters and the
classic Beckmann et al. heuristics:

* **ChooseSubtree** — least overlap enlargement at the leaf level, least
  area enlargement above;
* **forced reinsertion** — on first overflow per level, the 30% of
  entries farthest from the node center are reinserted;
* **R\\* split** — axis by minimum margin sum, distribution by minimum
  overlap then minimum area.

The tree stores ``(rect, value)`` pairs; for the paper's workload the
value is the polygon id.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import JoinError
from ..geometry.bbox import Rect

#: Fraction of entries evicted by forced reinsertion (Beckmann et al.).
_REINSERT_FRACTION = 0.3


class _Node:
    """Internal or leaf node; leaves hold (rect, value) entries."""

    __slots__ = ("is_leaf", "entries", "children", "mbr")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.entries: List[Tuple[Rect, int]] = []
        self.children: List["_Node"] = []
        self.mbr: Optional[Rect] = None

    def recompute_mbr(self) -> None:
        rects = ([rect for rect, _ in self.entries] if self.is_leaf
                 else [child.mbr for child in self.children])
        box = rects[0]
        for r in rects[1:]:
            box = box.union(r)
        self.mbr = box

    def fill(self) -> int:
        return len(self.entries) if self.is_leaf else len(self.children)


class RStarTree:
    """R*-tree with point and window queries.

    Parameters mirror the paper's baseline: ``max_entries=8`` (and the
    usual 40% minimum fill).
    """

    def __init__(self, max_entries: int = 8):
        if max_entries < 4:
            raise JoinError(f"max_entries must be >= 4, got {max_entries}")
        self.max_entries = max_entries
        self.min_entries = max(2, int(0.4 * max_entries))
        self._root = _Node(is_leaf=True)
        self._size = 0
        self._height = 1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, rects: Sequence[Rect], max_entries: int = 8,
              ) -> "RStarTree":
        """Index ``rects``; values are their positions in the sequence."""
        tree = cls(max_entries=max_entries)
        for value, rect in enumerate(rects):
            tree.insert(rect, value)
        return tree

    def insert(self, rect: Rect, value: int) -> None:
        self._insert_entry(rect, value, reinserting=False)
        self._size += 1

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return self._height

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query_point(self, x: float, y: float) -> List[int]:
        """Values of all rects containing the point (filter-phase output)."""
        out: List[int] = []
        if self._root.mbr is None:
            return out
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for rect, value in node.entries:
                    if (rect.min_x <= x <= rect.max_x
                            and rect.min_y <= y <= rect.max_y):
                        out.append(value)
            else:
                for child in node.children:
                    box = child.mbr
                    if (box.min_x <= x <= box.max_x
                            and box.min_y <= y <= box.max_y):
                        stack.append(child)
        return out

    def query_rect(self, rect: Rect) -> List[int]:
        """Values of all rects intersecting the window."""
        out: List[int] = []
        if self._root.mbr is None:
            return out
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                out.extend(value for r, value in node.entries
                           if r.intersects(rect))
            else:
                stack.extend(child for child in node.children
                             if child.mbr.intersects(rect))
        return out

    def count_points(self, lngs: np.ndarray, lats: np.ndarray,
                     num_values: int) -> np.ndarray:
        """Per-value counts of candidate hits over a point batch.

        This reproduces the paper's baseline measurement: "for each
        returned candidate, we simply increase the counter of the
        respective polygon" — no refinement.
        """
        counts = np.zeros(num_values, dtype=np.int64)
        query = self.query_point
        for x, y in zip(lngs.tolist(), lats.tolist()):
            for value in query(x, y):
                counts[value] += 1
        return counts

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend(node.children)
        return count

    @property
    def size_bytes(self) -> int:
        """C++-layout estimate: per node, entries of (rect = 4 doubles +
        8-byte pointer/value)."""
        per_entry = 4 * 8 + 8
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += node.fill() * per_entry + 16
            if not node.is_leaf:
                stack.extend(node.children)
        return total

    # ------------------------------------------------------------------
    # Insertion internals
    # ------------------------------------------------------------------
    def _insert_entry(self, rect: Rect, value: int, reinserting: bool) -> None:
        leaf = self._choose_leaf(rect)
        leaf.entries.append((rect, value))
        leaf.mbr = rect if leaf.mbr is None else leaf.mbr.union(rect)
        if len(leaf.entries) > self.max_entries:
            self._handle_overflow(leaf, reinserting)
        else:
            self._tighten_path(rect)

    def _choose_leaf(self, rect: Rect) -> _Node:
        self._path: List[_Node] = []
        node = self._root
        while not node.is_leaf:
            self._path.append(node)
            node = self._choose_subtree(node, rect)
        self._path.append(node)
        return node

    def _choose_subtree(self, node: _Node, rect: Rect) -> _Node:
        children = node.children
        if children[0].is_leaf:
            # minimum overlap enlargement (R* leaf-level rule)
            best = None
            best_key = None
            for child in children:
                enlarged = child.mbr.union(rect)
                overlap_before = sum(
                    child.mbr.overlap_area(other.mbr)
                    for other in children if other is not child
                )
                overlap_after = sum(
                    enlarged.overlap_area(other.mbr)
                    for other in children if other is not child
                )
                key = (
                    overlap_after - overlap_before,
                    enlarged.area - child.mbr.area,
                    child.mbr.area,
                )
                if best_key is None or key < best_key:
                    best_key = key
                    best = child
            return best
        best = None
        best_key = None
        for child in children:
            key = (child.mbr.enlargement(rect), child.mbr.area)
            if best_key is None or key < best_key:
                best_key = key
                best = child
        return best

    def _tighten_path(self, rect: Rect) -> None:
        for node in getattr(self, "_path", []):
            node.mbr = rect if node.mbr is None else node.mbr.union(rect)

    def _handle_overflow(self, node: _Node, reinserting: bool) -> None:
        if not reinserting and node is not self._root:
            self._reinsert(node)
        else:
            self._split_and_propagate(node)

    def _reinsert(self, node: _Node) -> None:
        """Forced reinsertion of the entries farthest from the node center."""
        node.recompute_mbr()
        cx, cy = node.mbr.center
        count = max(1, int(_REINSERT_FRACTION * len(node.entries)))
        node.entries.sort(
            key=lambda item: -self._center_distance(item[0], cx, cy)
        )
        evicted = node.entries[:count]
        node.entries = node.entries[count:]
        node.recompute_mbr()
        self._refresh_ancestors()
        for rect, value in evicted:
            self._insert_entry(rect, value, reinserting=True)

    @staticmethod
    def _center_distance(rect: Rect, cx: float, cy: float) -> float:
        rx, ry = rect.center
        return math.hypot(rx - cx, ry - cy)

    def _refresh_ancestors(self) -> None:
        for node in reversed(getattr(self, "_path", [])):
            node.recompute_mbr()

    def _split_and_propagate(self, node: _Node) -> None:
        sibling = self._split(node)
        if node is self._root:
            new_root = _Node(is_leaf=False)
            new_root.children = [node, sibling]
            new_root.recompute_mbr()
            self._root = new_root
            self._height += 1
            return
        parent = self._parent_of(node)
        parent.children.append(sibling)
        parent.recompute_mbr()
        if len(parent.children) > self.max_entries:
            self._split_and_propagate(parent)
        else:
            self._refresh_ancestors()

    def _parent_of(self, node: _Node) -> _Node:
        idx = self._path.index(node)
        return self._path[idx - 1]

    def _split(self, node: _Node) -> _Node:
        """R* topological split: margin-minimal axis, overlap-minimal cut."""
        if node.is_leaf:
            items = node.entries
            rect_of = lambda item: item[0]
        else:
            items = node.children
            rect_of = lambda child: child.mbr

        m = self.min_entries
        best = None  # (overlap, area, axis_items, cut)
        for axis in (0, 1):
            if axis == 0:
                by_low = sorted(items, key=lambda it: (rect_of(it).min_x,
                                                       rect_of(it).max_x))
                by_high = sorted(items, key=lambda it: (rect_of(it).max_x,
                                                        rect_of(it).min_x))
            else:
                by_low = sorted(items, key=lambda it: (rect_of(it).min_y,
                                                       rect_of(it).max_y))
                by_high = sorted(items, key=lambda it: (rect_of(it).max_y,
                                                        rect_of(it).min_y))
            for ordered in (by_low, by_high):
                for cut in range(m, len(ordered) - m + 1):
                    left = _mbr_of([rect_of(it) for it in ordered[:cut]])
                    right = _mbr_of([rect_of(it) for it in ordered[cut:]])
                    key = (left.overlap_area(right),
                           left.area + right.area)
                    if best is None or key < best[0]:
                        best = (key, ordered, cut)
        _, ordered, cut = best
        sibling = _Node(is_leaf=node.is_leaf)
        if node.is_leaf:
            node.entries = list(ordered[:cut])
            sibling.entries = list(ordered[cut:])
        else:
            node.children = list(ordered[:cut])
            sibling.children = list(ordered[cut:])
        node.recompute_mbr()
        sibling.recompute_mbr()
        return sibling


def _mbr_of(rects: Iterable[Rect]) -> Rect:
    rects = list(rects)
    box = rects[0]
    for rect in rects[1:]:
        box = box.union(rect)
    return box


class RTreeJoinBaseline:
    """The paper's baseline: polygon MBRs in an R*-tree, lookups only.

    ``count_points`` increments the counter of every polygon whose MBR
    contains the point, with no refinement and therefore no precision
    guarantee — exactly how the paper's Figure 3 dashed lines are
    measured. ``query_exact`` adds the PIP refinement for the classic
    filter-and-refine comparator.
    """

    def __init__(self, polygons, max_entries: int = 8):
        self.polygons = list(polygons)
        self.tree = RStarTree.build(
            [p.bbox for p in self.polygons], max_entries=max_entries
        )

    def query_candidates(self, lng: float, lat: float) -> List[int]:
        return self.tree.query_point(lng, lat)

    def query_exact(self, lng: float, lat: float) -> List[int]:
        return [pid for pid in self.tree.query_point(lng, lat)
                if self.polygons[pid].contains(lng, lat)]

    def count_points(self, lngs: np.ndarray, lats: np.ndarray,
                     exact: bool = False) -> np.ndarray:
        lngs = np.asarray(lngs, dtype=np.float64)
        lats = np.asarray(lats, dtype=np.float64)
        if not exact:
            return self.tree.count_points(lngs, lats, len(self.polygons))
        counts = np.zeros(len(self.polygons), dtype=np.int64)
        query = self.tree.query_point
        contains = [p.contains for p in self.polygons]
        for x, y in zip(lngs.tolist(), lats.tolist()):
            for pid in query(x, y):
                if contains[pid](x, y):
                    counts[pid] += 1
        return counts

    @property
    def size_bytes(self) -> int:
        return self.tree.size_bytes
