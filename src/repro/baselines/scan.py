"""Brute-force scan: the ground-truth join.

No index at all — every point is tested against every polygon (with a
bbox pre-check). Quadratic and slow on purpose; tests and benchmarks use
it as the oracle all other operators must agree with.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..geometry.polygon import Polygon


class ScanJoin:
    """Exact point-in-polygon join by exhaustive scanning."""

    def __init__(self, polygons: Sequence[Polygon]):
        self.polygons = list(polygons)

    def query(self, lng: float, lat: float) -> List[int]:
        """Ids of all polygons containing the point."""
        return [pid for pid, polygon in enumerate(self.polygons)
                if polygon.contains(lng, lat)]

    def count_points(self, lngs: np.ndarray, lats: np.ndarray) -> np.ndarray:
        """Exact per-polygon counts (vectorized per polygon)."""
        lngs = np.asarray(lngs, dtype=np.float64)
        lats = np.asarray(lats, dtype=np.float64)
        counts = np.zeros(len(self.polygons), dtype=np.int64)
        for pid, polygon in enumerate(self.polygons):
            counts[pid] = int(np.count_nonzero(
                polygon.contains_batch(lngs, lats)
            ))
        return counts

    def membership_matrix(self, lngs: np.ndarray, lats: np.ndarray,
                          ) -> np.ndarray:
        """Boolean ``(num_points, num_polygons)`` containment matrix."""
        lngs = np.asarray(lngs, dtype=np.float64)
        lats = np.asarray(lats, dtype=np.float64)
        out = np.zeros((lngs.shape[0], len(self.polygons)), dtype=bool)
        for pid, polygon in enumerate(self.polygons):
            out[:, pid] = polygon.contains_batch(lngs, lats)
        return out
