"""Interior-rectangle true-hit filtering (Kanth & Ravada, SSTD 2001).

The paper cites interior approximations with inner rectangles as the
prior art its interior *coverings* improve on ("in contrast to existing
implementations of true hit filtering that use inner rectangles"). This
baseline implements that design: each polygon is approximated by its MBR
(filter) plus one maximal inscribed axis-aligned rectangle (true-hit
filter). A point inside the inner rectangle is a guaranteed hit; a point
inside the MBR but not the inner rectangle needs a PIP test.

A single rectangle covers far less interior area than ACT's hierarchical
interior covering — quantified by the ``true_hit_rate`` ablation
benchmark.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..geometry.bbox import Rect
from ..geometry.polygon import Polygon
from ..geometry.relate import EdgeClassifier, Relation
from .rtree import RStarTree


def maximal_inscribed_rect(polygon: Polygon, centers: int = 7,
                           iterations: int = 12) -> Optional[Rect]:
    """Approximate largest axis-aligned rectangle inside ``polygon``.

    A lattice of candidate centers is scanned; around each interior
    center a rectangle with the polygon bbox's aspect ratio is grown by
    binary search on its scale. Returns ``None`` when no candidate center
    lies inside the polygon (degenerate shapes).
    """
    classifier = EdgeClassifier(polygon)
    box = polygon.bbox
    best: Optional[Rect] = None
    best_area = 0.0
    for cx, cy in box.sample_grid(centers, centers):
        if not polygon.contains(cx, cy):
            continue
        lo, hi = 0.0, 1.0
        feasible = None
        for _ in range(iterations):
            mid = 0.5 * (lo + hi)
            half_w = 0.5 * box.width * mid
            half_h = 0.5 * box.height * mid
            relation, _ = classifier.classify_bounds(
                cx - half_w, cy - half_h, cx + half_w, cy + half_h
            )
            if relation is Relation.WITHIN:
                feasible = Rect.from_center(cx, cy, half_w, half_h)
                lo = mid
            else:
                hi = mid
        if feasible is not None and feasible.area > best_area:
            best = feasible
            best_area = feasible.area
    return best


class InteriorRectIndex:
    """MBR filter + one inscribed rectangle per polygon as true-hit filter."""

    def __init__(self, polygons: Sequence[Polygon], max_entries: int = 8):
        self.polygons = list(polygons)
        self.tree = RStarTree.build(
            [p.bbox for p in self.polygons], max_entries=max_entries
        )
        self.inner_rects: List[Optional[Rect]] = [
            maximal_inscribed_rect(p) for p in self.polygons
        ]

    def query(self, lng: float, lat: float) -> Tuple[List[int], List[int]]:
        """``(true_hits, candidates)`` for a point."""
        true_hits: List[int] = []
        candidates: List[int] = []
        for pid in self.tree.query_point(lng, lat):
            inner = self.inner_rects[pid]
            if inner is not None and inner.contains_point(lng, lat):
                true_hits.append(pid)
            else:
                candidates.append(pid)
        return true_hits, candidates

    def query_exact(self, lng: float, lat: float) -> List[int]:
        true_hits, candidates = self.query(lng, lat)
        true_hits.extend(pid for pid in candidates
                         if self.polygons[pid].contains(lng, lat))
        return true_hits

    def count_points(self, lngs: np.ndarray, lats: np.ndarray,
                     exact: bool = True) -> np.ndarray:
        counts = np.zeros(len(self.polygons), dtype=np.int64)
        contains = [p.contains for p in self.polygons]
        for x, y in zip(np.asarray(lngs, dtype=np.float64).tolist(),
                        np.asarray(lats, dtype=np.float64).tolist()):
            true_hits, candidates = self.query(x, y)
            for pid in true_hits:
                counts[pid] += 1
            for pid in candidates:
                if not exact or contains[pid](x, y):
                    counts[pid] += 1
        return counts

    def true_hit_rate(self, lngs: np.ndarray, lats: np.ndarray) -> float:
        """Fraction of actual hits resolved without a PIP test."""
        true_total = 0
        hit_total = 0
        for x, y in zip(np.asarray(lngs, dtype=np.float64).tolist(),
                        np.asarray(lats, dtype=np.float64).tolist()):
            true_hits, candidates = self.query(x, y)
            true_total += len(true_hits)
            hit_total += len(true_hits) + sum(
                1 for pid in candidates if self.polygons[pid].contains(x, y)
            )
        return true_total / hit_total if hit_total else 1.0

    @property
    def size_bytes(self) -> int:
        return self.tree.size_bytes + 32 * len(self.polygons)
