"""Baseline join operators the paper compares against (or cites).

* :class:`~repro.baselines.rtree.RTreeJoinBaseline` — the paper's
  evaluation baseline: boost-style R*-tree over polygon MBRs, rstar split,
  8 entries per node, lookups without refinement.
* :class:`~repro.baselines.fixed_grid.FixedGridIndex` — Magellan-style
  non-hierarchical grid with inside/boundary flags.
* :class:`~repro.baselines.interior_rect.InteriorRectIndex` — classic
  true-hit filtering with a single inscribed rectangle per polygon.
* :class:`~repro.baselines.scan.ScanJoin` — brute-force ground truth.
"""

from .fixed_grid import FixedGridIndex
from .interior_rect import InteriorRectIndex, maximal_inscribed_rect
from .rtree import RStarTree, RTreeJoinBaseline
from .scan import ScanJoin

__all__ = [
    "FixedGridIndex",
    "InteriorRectIndex",
    "maximal_inscribed_rect",
    "RStarTree",
    "RTreeJoinBaseline",
    "ScanJoin",
]
