"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch a single base class. Subsystems raise the most specific subclass that
applies; error messages always include the offending value where practical.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GeometryError(ReproError):
    """A geometric primitive is malformed or an operation is undefined."""


class InvalidPolygonError(GeometryError):
    """A polygon violates a structural invariant (too few vertices,
    zero area, unclosed ring, self-intersecting shell where forbidden)."""


class ParseError(GeometryError):
    """A WKT or GeoJSON document could not be parsed."""


class GridError(ReproError):
    """A hierarchical-grid operation failed."""


class InvalidCellError(GridError):
    """A cell id is malformed (bad sentinel bit, face, or level)."""


class OutOfBoundsError(GridError):
    """A point lies outside the grid's domain (planar grids only)."""


class CoveringError(GridError):
    """A region covering could not be computed under the given limits."""


class ACTError(ReproError):
    """An Adaptive Cell Trie operation failed."""


class BuildError(ACTError):
    """Index construction failed (conflicting cells, exhausted levels)."""


class ArtifactCorruptError(ACTError):
    """A serialized index artifact failed an integrity check.

    Raised by :func:`repro.act.serialize.load_index` (and the standalone
    :func:`repro.act.serialize.verify_artifact`) when an ``.npz`` is
    truncated, a member's checksum disagrees with the embedded manifest,
    or the archive structure itself is unreadable. The serving lifecycle
    treats it as a NACK: the artifact is quarantined and the fleet keeps
    (or rolls back to) the previous generation."""


class CapacityError(ACTError):
    """A payload or structure exceeded its encodable capacity
    (e.g. more than 2**30 polygons, lookup table offset overflow)."""


class PrecisionError(ACTError):
    """The requested precision bound cannot be satisfied by the grid
    (finer than the grid's maximum level resolution)."""


class JoinError(ReproError):
    """A join pipeline was misconfigured or failed at runtime."""


class ServeError(ReproError):
    """A query-serving subsystem operation failed."""


class UnknownIndexError(ServeError):
    """A request named an index the registry does not know."""


class InvalidRequestError(ServeError):
    """A serving request is structurally malformed (e.g. mismatched
    batch array lengths); maps to HTTP 400 at the server."""


class BudgetExceededError(ServeError):
    """A request's latency budget ran out before it could be served."""


class ConnectionLostError(ServeError):
    """A binary-protocol connection died (EOF, reset, or a timeout
    mid-frame) and the receive buffer cannot be trusted past the break.

    Raised by :class:`repro.serve.binproto.Client` once its reconnect
    budget is exhausted (or reconnecting is disabled); the partial frame
    is discarded, so a later call can never misparse stale bytes."""


class DatasetError(ReproError):
    """A synthetic dataset generator received invalid parameters."""
