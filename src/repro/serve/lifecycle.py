"""Index lifecycle: admin operations and the fleet-wide reload protocol.

The registry (generation-tagged records) and service (generation-pinned
hot views, generation-keyed cache) make a *single process* reloadable
with zero downtime. This module adds the two remaining layers:

* a uniform **admin operation** vocabulary — ``register`` / ``reload``
  / ``unregister`` — shared by the HTTP admin surface
  (``POST /admin/register``, ``POST /admin/reload``,
  ``DELETE /admin/index/{name}``), the ``repro-act admin`` CLI, and the
  fleet control channel; and

* the **fleet-wide reload protocol** for the pre-fork serving fleet
  (:mod:`repro.serve.fleet`). Whichever process receives the admin call
  — any worker, or the parent — becomes the *coordinator*: it applies
  the operation to its own registry first (for a reload, materializing
  the new generation exactly once), writes the materialized generation
  to a side ``.npz`` (generation-suffixed, write-temp + rename — see
  :func:`repro.act.serialize.save_index_atomic`), and publishes the
  operation on the fleet's ``multiprocessing.Manager`` control dict.
  Every other process — sibling workers and the supervising parent —
  notices the new sequence number on its next poll tick, memory-maps
  the side artifact (one materialization, N cheap page-cache-shared
  maps), atomically swaps its hot view, invalidates the dead
  generations' cache entries, and writes an acknowledgement. The
  coordinator's admin response returns only after every process acked
  (or a timeout names the stragglers), so "reload returned OK" means
  *the whole fleet serves the new generation*. The old generation is
  dropped per process only at swap time, and in-flight requests hold
  the record they pinned at admission — no request ever 500s or mixes
  generations during a reload.

Application is **idempotent** (a reload to a generation a registry has
already reached is a no-op), which is what makes crash-recovery free: a
worker respawned mid-reload forks from the parent's already-updated
registry, re-applies the pending operation as a no-op, and acks.

**Failure is a first-class outcome.** A worker that cannot apply a
reload — corrupt side artifact, unreadable file, wrong generation —
writes a *NACK* (``ok: false`` with the error) instead of hanging the
barrier. The coordinator then aborts the reload fleet-wide: the failed
artifact is moved into a ``*.quarantine/`` directory next to where it
lived (so a retry cannot trip over the same bytes), the *previous*
generation is re-published under a **fresh, higher** generation number
(idempotency compares ``>=``, so re-publishing the old number would
no-op on every worker that already advanced), and a second ack barrier
confirms every process is back on the old data. Requests never stop
being answered from the pinned old generation throughout. The admin
response reports ``complete: false`` with the NACKing identities, the
quarantine location, and the rollback barrier's outcome — it never
hangs and never leaves the fleet split across generations silently;
:attr:`FleetLifecycle.converged` / ``last_error`` feed ``/readyz``.

Superseded side artifacts are garbage-collected after each successful
reload barrier: only the newest two generations of ``{name}.gen*.npz``
are kept (the current one, plus one for in-flight requests and
stragglers — and POSIX keeps memory-mapped inodes alive regardless).

The same control dict also carries the fleet's **shard placement**
under :data:`repro.serve.shard.SHARD_KEY`: a generation-tagged wire
:class:`~repro.serve.shard.ShardMap` published by the parent (at start
and on :meth:`~repro.serve.fleet.ServingFleet.rebalance`) and adopted
by sharded workers on their publisher tick. It deliberately reuses
this channel's discipline — monotonic generations, idempotent
adoption, respawned workers pick up the current value on their first
poll — but not its ack barrier: placement convergence is eventual,
because any slot answers any request by forwarding.
"""

from __future__ import annotations

import os
import re
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional

from ..act import serialize
from ..errors import (ArtifactCorruptError, InvalidRequestError, ServeError,
                      UnknownIndexError)
from .registry import _UNSET, IndexRegistry
from .service import ACTService

#: The admin operation kinds (the wire vocabulary).
OP_REGISTER = "register"
OP_RELOAD = "reload"
OP_UNREGISTER = "unregister"
_KINDS = (OP_REGISTER, OP_RELOAD, OP_UNREGISTER)

#: Control-dict keys (shared with :mod:`repro.serve.fleet`).
SEQ_KEY = "seq"
OP_KEY = "op"

#: The parent supervisor's identity on the control channel.
PARENT_IDENTITY = "parent"


def ack_key(seq: int, identity: str) -> str:
    return f"ack:{seq}:{identity}"


#: Admin-manageable index names: they become side-artifact filenames,
#: so they must not traverse paths (no separators, no leading dot).
_NAME_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]*\Z")


@dataclass(frozen=True)
class AdminOp:
    """One lifecycle operation, as applied locally or sent over the wire.

    ``source_path`` permanently repoints a registration (the operator
    shipped new data); ``artifact_path`` is what this generation is
    materialized *from* (for fleet reloads, the coordinator's side
    ``.npz``). ``generation`` pins the resulting generation number so
    every process in a fleet converges on the same tag.
    """

    kind: str
    name: str
    seq: int = 0
    generation: Optional[int] = None
    source_path: Optional[str] = None
    source_mmap_mode: object = _UNSET
    artifact_path: Optional[str] = None
    artifact_mmap_mode: object = _UNSET

    def to_wire(self) -> dict:
        wire = {"kind": self.kind, "name": self.name, "seq": self.seq}
        if self.generation is not None:
            wire["generation"] = self.generation
        if self.source_path is not None:
            wire["source_path"] = self.source_path
        if self.source_mmap_mode is not _UNSET:
            wire["source_mmap_mode"] = self.source_mmap_mode
        if self.artifact_path is not None:
            wire["artifact_path"] = self.artifact_path
        if self.artifact_mmap_mode is not _UNSET:
            wire["artifact_mmap_mode"] = self.artifact_mmap_mode
        return wire

    @classmethod
    def from_wire(cls, wire: dict) -> "AdminOp":
        return cls(
            kind=wire["kind"],
            name=wire["name"],
            seq=int(wire.get("seq", 0)),
            generation=wire.get("generation"),
            source_path=wire.get("source_path"),
            source_mmap_mode=wire.get("source_mmap_mode", _UNSET),
            artifact_path=wire.get("artifact_path"),
            artifact_mmap_mode=wire.get("artifact_mmap_mode", _UNSET),
        )


def apply_admin_op(op: AdminOp, service: Optional[ACTService] = None,
                   registry: Optional[IndexRegistry] = None,
                   strict: bool = True) -> dict:
    """Apply one operation to this process.

    Workers pass their ``service`` (so cache/batcher/hot-view adoption
    happens too); the fleet parent passes its bare ``registry``.
    ``strict=False`` is the follower mode: re-applying an operation the
    process has already absorbed — a respawned worker whose registry
    was forked post-apply — is a no-op that still reports success.
    Coordinators and the single-process admin surface stay strict so an
    operator deleting an unknown index sees the 404.
    """
    if registry is None:
        if service is None:
            raise ServeError("apply_admin_op needs a service or a registry")
        registry = service.registry
    result = {"op": op.kind, "name": op.name, "pid": os.getpid()}

    if op.kind == OP_UNREGISTER:
        try:
            dropped = (service.unregister_index(op.name) if service
                       else registry.unregister(op.name))
            result.update(dropped)
        except UnknownIndexError:
            if strict:
                raise
            result["already_unregistered"] = True
        return result

    if op.kind == OP_REGISTER:
        path = op.source_path or op.artifact_path
        already = (op.name in registry.names()
                   and op.generation is not None
                   and registry.generation(op.name) >= op.generation)
        if already:
            # a replayed fleet op this process absorbed through the
            # fork: report success without re-registering
            record = registry.pin(op.name)
        else:
            if path is None:
                raise InvalidRequestError(
                    "register needs a path to a serialized index"
                )
            # same escalation the reload path gets: operator-shipped
            # bytes are fully hashed before any process registers them
            # (the registration itself keeps the cheap "header" mode
            # for every later re-materialization of known-good data)
            serialize.verify_artifact(path, full=True)
            mmap_mode = (None if op.source_mmap_mode is _UNSET
                         else op.source_mmap_mode)
            if service is not None:
                record = service.register_index_path(
                    op.name, path, mmap_mode=mmap_mode)
            else:
                registry.register_path(op.name, path, mmap_mode=mmap_mode)
                record = registry.pin(op.name)
        result["generation"] = record.generation
        return result

    if op.kind == OP_RELOAD:
        if op.name not in registry.names() and op.artifact_path is not None:
            # a process that never saw this name (defensive; ops are
            # serialized so this means it was forked mid-register):
            # adopt the artifact as a fresh registration
            registry.register_path(
                op.name, op.source_path or op.artifact_path,
                mmap_mode=(None if op.artifact_mmap_mode is _UNSET
                           else op.artifact_mmap_mode))
        kwargs = {
            "source_path": op.source_path,
            "source_mmap_mode": op.source_mmap_mode,
            "artifact_path": op.artifact_path,
            "artifact_mmap_mode": op.artifact_mmap_mode,
            "generation": op.generation,
            # operator-shipped bytes are hashed in full before the
            # fleet ever serves them: the lazy "header" mode never
            # touches an mmap-ed node pool, so without this a bit flip
            # deep in the pool would reload cleanly. Side artifacts
            # (artifact_path) were just written by a coordinator that
            # passed this check, so followers keep the cheap mode.
            "verify": "full" if op.artifact_path is None else None,
        }
        record = (service.reload_index(op.name, **kwargs) if service
                  else registry.reload(op.name, **kwargs))
        result["generation"] = record.generation
        return result

    raise InvalidRequestError(f"unknown admin op {op.kind!r}")


def _request_mmap_mode(request: dict):
    """Normalize the mmap spelling of an admin request.

    Accepts ``"mmap_mode": "r"|"c"|null`` or the shorthand
    ``"mmap": true``; returns ``_UNSET`` when the request says nothing
    (a reload then keeps the registration's existing mode).
    """
    if "mmap_mode" in request:
        mode = request["mmap_mode"]
        if mode not in (None, "r", "c"):
            raise InvalidRequestError(
                f"mmap_mode must be null, 'r' or 'c', got {mode!r}"
            )
        return mode
    if "mmap" in request:
        return "r" if request["mmap"] else None
    return _UNSET


def request_to_op(request: dict) -> AdminOp:
    """Validate an HTTP/CLI admin request dict into an :class:`AdminOp`."""
    kind = request.get("op")
    if kind not in _KINDS:
        raise InvalidRequestError(
            f"admin op must be one of {_KINDS}, got {kind!r}"
        )
    name = request.get("name")
    if not isinstance(name, str) or not name:
        raise InvalidRequestError('admin requests need {"name": "..."}')
    if ".." in name or not _NAME_RE.match(name):
        raise InvalidRequestError(
            f"index name {name!r} must match [A-Za-z0-9][A-Za-z0-9._-]* "
            f"(it becomes a side-artifact filename)"
        )
    path = request.get("path")
    if path is not None and not isinstance(path, str):
        raise InvalidRequestError("path must be a string")
    if kind == OP_REGISTER and path is None:
        raise InvalidRequestError(
            'register needs {"path": "/path/to/index.npz"}'
        )
    mmap_mode = _request_mmap_mode(request)
    return AdminOp(
        kind=kind, name=name, source_path=path,
        source_mmap_mode=mmap_mode,
    )


def handle_admin_request(service: ACTService, request: dict) -> dict:
    """Single-process admin entry point: validate, apply, describe.

    The HTTP server routes admin bodies here when no fleet hook is
    installed; the fleet's :meth:`FleetLifecycle.submit` is the
    multi-process analog with the same request/response shapes.
    """
    op = request_to_op(request)
    try:
        result = apply_admin_op(op, service=service)
    except ArtifactCorruptError:
        service.metrics.counter("faults.artifact_corrupt").inc()
        quarantined = _quarantine_artifact(
            op.source_path or _registered_path(service.registry, op.name))
        if quarantined is not None:
            service.metrics.counter("faults.quarantined").inc()
        raise
    if op.kind != OP_UNREGISTER:
        result["index"] = service.registry.describe(op.name)
    result["complete"] = True
    return result


def _registered_path(registry: Optional[IndexRegistry],
                     name: str) -> Optional[str]:
    """The on-disk source a registration loads from, if any."""
    if registry is None:
        return None
    try:
        return registry.describe(name).get("path")
    except UnknownIndexError:
        return None


def _quarantine_artifact(path: Optional[str]) -> Optional[str]:
    """Move ``path`` into its ``*.quarantine/`` sibling, best-effort."""
    if not path or not os.path.exists(path):
        return None
    try:
        return str(serialize.quarantine_artifact(path))
    except OSError:  # pragma: no cover - fs race; nothing to do
        return None


class FleetLifecycle:
    """One process's view of the fleet control channel.

    Every fleet process (workers and the parent) holds one. The
    *coordinator* role is taken per operation by whoever received the
    admin call: :meth:`submit` applies locally, publishes, and blocks on
    the ack barrier. Everyone else absorbs operations through
    :meth:`poll`, which the workers' stats-publisher thread and the
    parent's supervisor thread already call on their existing tick.
    """

    def __init__(self, control, op_lock, identity: str, workers: int,
                 service: Optional[ACTService] = None,
                 registry: Optional[IndexRegistry] = None,
                 artifact_dir: Optional[str] = None,
                 timeout_s: float = 30.0,
                 poll_interval_s: float = 0.05):
        self._control = control
        self._op_lock = op_lock
        self.identity = str(identity)
        self.workers = int(workers)
        self._service = service
        self._registry = (registry if registry is not None
                          else (service.registry if service else None))
        self.artifact_dir = artifact_dir
        self.timeout_s = timeout_s
        self.poll_interval_s = poll_interval_s
        # serializes submit/poll within this process so a coordinator
        # never races its own publisher thread re-applying the same op
        self._apply_lock = threading.Lock()
        self._last_seen = 0
        #: This process's convergence view, feeding ``/readyz``: True
        #: while the last lifecycle operation this process saw applied
        #: cleanly (including a clean rollback), False after a failed
        #: apply or a reload barrier that left the fleet split.
        self.converged = True
        #: The last apply/barrier failure, kept for observability even
        #: after a successful rollback restores convergence.
        self.last_error: Optional[str] = None
        # fault families exist pre-traffic (RL004): a scrape taken
        # before the first failure must show them at zero
        if self._service is not None:
            self._service.metrics.register(counters=(
                "faults.artifact_corrupt", "faults.quarantined",
                "faults.reload_rollbacks", "faults.apply_failures",
                "lifecycle.artifacts_gcd",
            ))

    def status(self) -> dict:
        """The ``/readyz`` view of this process's lifecycle state."""
        return {"converged": self.converged, "last_error": self.last_error}

    def _count(self, name: str, n: int = 1) -> None:
        """Increment a fault counter when this process has a service."""
        if self._service is not None:
            try:
                self._service.metrics.counter(name).inc(n)
            except Exception:  # pragma: no cover - metrics best-effort
                pass

    # ------------------------------------------------------------------
    # Follower side
    # ------------------------------------------------------------------
    def poll(self) -> Optional[dict]:
        """Apply the pending operation, if any, and ack it.

        Called periodically from an existing maintenance thread. Returns
        the ack written, or ``None`` when there was nothing new. Channel
        errors (manager torn down during shutdown) are absorbed.
        """
        with self._apply_lock:
            try:
                seq = int(self._control.get(SEQ_KEY) or 0)
                if seq <= self._last_seen:
                    return None
                wire = self._control.get(OP_KEY)
            except (OSError, EOFError, BrokenPipeError):
                return None
            if not wire or int(wire.get("seq", -1)) != seq:
                return None  # published mid-write; complete next tick
            self._last_seen = seq
            op = AdminOp.from_wire(wire)
            try:
                result = dict(apply_admin_op(
                    op, service=self._service, registry=self._registry,
                    strict=False))
                result["ok"] = True
                self.converged = True
                self.last_error = None
            except Exception as exc:
                # NACK: the coordinator's barrier sees this and aborts
                # the reload fleet-wide; this process keeps serving the
                # generation it already has pinned
                result = {"ok": False, "nack": True, "op": op.kind,
                          "name": op.name,
                          "error": f"{type(exc).__name__}: {exc}"}
                self._count("faults.apply_failures")
                if isinstance(exc, ArtifactCorruptError):
                    self._count("faults.artifact_corrupt")
                self.converged = False
                self.last_error = result["error"]
            self._write_ack(seq, result)
            return result

    # ------------------------------------------------------------------
    # Coordinator side
    # ------------------------------------------------------------------
    def submit(self, request: dict) -> dict:
        """Coordinate one admin operation across the whole fleet.

        Validates the request, takes the fleet-wide operation lock
        (admin operations are strictly serialized), applies locally —
        for a reload, materializing the new generation once and writing
        the side artifact — publishes the operation, and waits for every
        process to ack. The response carries per-process acks and
        ``complete`` (all acked ok), and for reload/register the
        fleet-agreed ``generation``.

        A reload barrier aborts early on the first NACK: the failed
        artifact is quarantined and the previous generation re-published
        fleet-wide under a fresh generation number (see
        :meth:`_rollback`); the response then reports ``complete:
        false`` with ``failed``, ``quarantined``, ``rolled_back`` and
        the rollback barrier's acks instead of hanging or leaving the
        fleet split. A coordinator-local
        :class:`~repro.errors.ArtifactCorruptError` aborts before
        anything is published: nothing fleet-wide changed, the corrupt
        source is quarantined, and the structured failure comes back.
        """
        op = request_to_op(request)
        if not self._op_lock.acquire(True, self.timeout_s):
            raise ServeError(
                "another admin operation is in progress fleet-wide"
            )
        try:
            # pre-op state, in case a failed reload has to be rolled
            # back: the pinned record carries the data, the description
            # carries the registration's source path/mode (a reload
            # with source_path repoints it before materializing)
            previous = prev_desc = None
            if op.kind == OP_RELOAD and self._registry is not None:
                previous = self._registry.materialized.get(op.name)
                # sharded worker: the pinned record is this slot's
                # slice; roll back from the full generation instead
                full_record = getattr(self._service, "full_record", None)
                if full_record is not None:
                    previous = full_record(op.name) or previous
                try:
                    prev_desc = self._registry.describe(op.name)
                except UnknownIndexError:
                    prev_desc = None
            with self._apply_lock:
                try:
                    seq = int(self._control.get(SEQ_KEY) or 0) + 1
                except (OSError, EOFError, BrokenPipeError):
                    raise ServeError(
                        "fleet control channel is down") from None
                # every ack key present belongs to a finished barrier
                # (submits are serialized by the op lock we hold):
                # sweep them so straggler and respawn re-acks cannot
                # grow the control dict without bound
                try:
                    for key in list(self._control.keys()):
                        if isinstance(key, str) and key.startswith("ack:"):
                            del self._control[key]
                except (KeyError, OSError, EOFError, BrokenPipeError):
                    pass
                try:
                    op, local = self._coordinate(op, seq)
                except ArtifactCorruptError as exc:
                    return self._abort_corrupt_locked(
                        op, seq, prev_desc, exc)
                self._control[OP_KEY] = op.to_wire()
                self._control[SEQ_KEY] = seq
                self._last_seen = seq
                local = dict(local)
                local["ok"] = True
                self._write_ack(seq, local)
            acks = self._wait_for_acks(
                seq, abort_on_nack=(op.kind == OP_RELOAD))
            response = {
                "op": op.kind,
                "name": op.name,
                "seq": seq,
                "acks": acks,
                "complete": all(a.get("ok") for a in acks.values()),
            }
            if op.generation is not None:
                response["generation"] = op.generation
            failed = sorted(i for i, a in acks.items() if a.get("nack"))
            if op.kind == OP_RELOAD:
                if failed:
                    response = self._rollback(
                        op, seq, previous, prev_desc, failed, response)
                elif response["complete"]:
                    with self._apply_lock:
                        self.converged = True
                        self.last_error = None
                    self._gc_artifacts(op.name)
                else:
                    # stragglers timed out without NACKing — a dead
                    # worker respawns from the parent's updated registry
                    # and converges on its own; a stuck one shows here
                    with self._apply_lock:
                        self.converged = False
                        self.last_error = "; ".join(
                            str(a.get("error")) for a in acks.values()
                            if not a.get("ok"))
            elif response["complete"]:
                with self._apply_lock:
                    self.last_error = None
        finally:
            self._op_lock.release()
        if self._registry is not None and op.kind != OP_UNREGISTER:
            try:
                response["index"] = self._registry.describe(op.name)
            except UnknownIndexError:  # pragma: no cover - racy describe
                pass
        return response

    def _coordinate(self, op: AdminOp, seq: int):
        """Apply ``op`` locally as the coordinator; returns the op to
        publish (reload ops are rewritten to point siblings at the side
        artifact) and the local ack payload."""
        if op.kind == OP_RELOAD:
            # on a sharded worker the registry pins only this slot's
            # slice; the fleet-wide artifact (and the rollback target)
            # must be the full generation the router keeps on the side
            full_record = getattr(self._service, "full_record", None)
            previous = self._registry.materialized.get(op.name)
            if full_record is not None:
                previous = full_record(op.name) or previous
            local = apply_admin_op(
                op, service=self._service, registry=self._registry)
            generation = local["generation"]
            record = self._registry.pin(op.name)
            if full_record is not None:
                record = full_record(op.name) or record
            # one materialization fleet-wide: siblings mmap the side
            # artifact (atomic write-temp + rename; generation-suffixed
            # so workers still mapping an older file are untouched)
            side = serialize.generation_path(
                Path(self.artifact_dir or ".") / f"{op.name}.npz",
                generation)
            try:
                serialize.save_index_atomic(record.index, side)
            except BaseException:
                # the op will never be published: roll this process
                # back to the generation the rest of the fleet is on,
                # or the coordinator would serve a divergent dataset
                # forever (the failed generation's number stays burned)
                if previous is not None:
                    if self._service is not None:
                        self._service.restore_index(previous)
                    else:
                        self._registry.restore(previous)
                raise
            op = AdminOp(
                kind=OP_RELOAD, name=op.name, seq=seq,
                generation=generation,
                source_path=op.source_path,
                source_mmap_mode=op.source_mmap_mode,
                artifact_path=str(side), artifact_mmap_mode="r",
            )
            return op, local
        local = apply_admin_op(
            op, service=self._service, registry=self._registry)
        op = AdminOp(
            kind=op.kind, name=op.name, seq=seq,
            generation=local.get("generation"),
            source_path=op.source_path,
            source_mmap_mode=op.source_mmap_mode,
        )
        return op, local

    def _abort_corrupt_locked(self, op: AdminOp, seq: int,
                              prev_desc: Optional[dict],
                              exc: ArtifactCorruptError) -> dict:
        """Coordinator-local reload failure on a corrupt artifact.

        Caller holds ``_apply_lock`` (the ``_locked`` convention —
        :meth:`submit` calls this from inside its publish block).
        Nothing was published — the fleet never saw the operation and
        every process (this one included: a failed materialization never
        swaps the pinned record) keeps serving the old generation. The
        corrupt source is quarantined so a blind retry cannot re-read
        the same bytes, and if the failed reload had repointed the
        registration's source, it is pointed back.
        """
        self._count("faults.artifact_corrupt")
        error = f"{type(exc).__name__}: {exc}"
        source = op.source_path or _registered_path(self._registry, op.name)
        quarantined = _quarantine_artifact(source)
        if quarantined is not None:
            self._count("faults.quarantined")
        if (op.source_path is not None and prev_desc is not None
                and prev_desc.get("path")
                and self._registry is not None):
            self._registry.repoint(op.name, prev_desc["path"],
                                   prev_desc.get("mmap_mode"))
        self.last_error = error
        return {
            "op": op.kind, "name": op.name, "seq": seq,
            "acks": {}, "complete": False, "rolled_back": False,
            "error": error, "quarantined": quarantined,
        }

    def _rollback(self, op: AdminOp, seq: int,
                  previous, prev_desc: Optional[dict],
                  failed: list, response: dict) -> dict:
        """Abort a fleet reload some process NACKed.

        Quarantines the side artifact the fleet was told to load, then
        re-publishes the *previous* generation's data under a fresh,
        higher generation number — re-publishing the old number would
        no-op on every process that already advanced past it (idempotent
        application compares ``>=``). Requests were never interrupted:
        processes that NACKed never swapped, and processes that had
        swapped go back to the old data on the rollback barrier.
        """
        self._count("faults.reload_rollbacks")
        quarantined = _quarantine_artifact(op.artifact_path)
        if quarantined is not None:
            self._count("faults.quarantined")
        error = "; ".join(
            f"{identity}: {response['acks'][identity].get('error')}"
            for identity in failed)
        response.update({
            "complete": False,
            "failed": failed,
            "error": f"reload rejected by {len(failed)} process(es): "
                     f"{error}",
            "quarantined": quarantined,
            "rolled_back": False,
        })
        with self._apply_lock:
            self.converged = False
            self.last_error = response["error"]
        if previous is None:
            # nothing to roll back to — the name had never materialized;
            # NACKing processes simply stay unmaterialized
            return response
        try:
            rollback_gen = int(self._registry.generation(op.name)) + 1
            side = serialize.generation_path(
                Path(self.artifact_dir or ".") / f"{op.name}.npz",
                rollback_gen)
            serialize.save_index_atomic(previous.index, side)
            rb_source = None
            rb_source_mode = _UNSET
            if (op.source_path is not None and prev_desc is not None
                    and prev_desc.get("path")):
                # the failed op repointed every registration's source;
                # point them all back at the pre-op source
                rb_source = prev_desc["path"]
                rb_source_mode = prev_desc.get("mmap_mode")
            rb_op = AdminOp(
                kind=OP_RELOAD, name=op.name, seq=seq + 1,
                generation=rollback_gen,
                source_path=rb_source, source_mmap_mode=rb_source_mode,
                artifact_path=str(side), artifact_mmap_mode="r",
            )
            with self._apply_lock:
                local = apply_admin_op(
                    rb_op, service=self._service, registry=self._registry)
                self._control[OP_KEY] = rb_op.to_wire()
                self._control[SEQ_KEY] = seq + 1
                self._last_seen = seq + 1
                local = dict(local)
                local["ok"] = True
                self._write_ack(seq + 1, local)
            rb_acks = self._wait_for_acks(seq + 1)
            rb_ok = all(a.get("ok") for a in rb_acks.values())
            response["rolled_back"] = rb_ok
            response["generation"] = rollback_gen
            response["rollback"] = {
                "seq": seq + 1, "generation": rollback_gen,
                "acks": rb_acks, "complete": rb_ok,
            }
            # a clean rollback restores convergence (everyone on the
            # old data under the new number); last_error keeps the
            # original failure for observability
            with self._apply_lock:
                self.converged = rb_ok
        except Exception as exc:  # pragma: no cover - double failure
            response["rollback_error"] = f"{type(exc).__name__}: {exc}"
            with self._apply_lock:
                self.converged = False
                self.last_error = response["rollback_error"]
        return response

    #: Side artifacts written by coordinators (see
    #: :func:`repro.act.serialize.generation_path`).
    _GEN_ARTIFACT_RE = re.compile(r"\.gen(\d{6,})\.npz\Z")

    def _gc_artifacts(self, name: str) -> int:
        """Delete superseded generation side artifacts for ``name``.

        Runs after a fully-acked reload barrier: every process is on the
        current generation, so only the newest two side files are kept —
        the current one plus its predecessor (stragglers respawning
        mid-barrier re-apply from it; in-flight requests are safe
        regardless, POSIX keeps memory-mapped inodes alive after
        unlink). Returns the number of files removed.
        """
        if self.artifact_dir is None or self._registry is None:
            return 0
        try:
            current = int(self._registry.generation(name))
        except UnknownIndexError:
            return 0
        prefix = f"{name}.gen"
        removed = 0
        try:
            entries = list(Path(self.artifact_dir).iterdir())
        except OSError:
            return 0
        for entry in entries:
            if not entry.name.startswith(prefix):
                continue
            match = self._GEN_ARTIFACT_RE.search(entry.name)
            if match is None or entry.name[:match.start()] != name:
                continue
            if int(match.group(1)) <= current - 2 and entry.is_file():
                try:
                    entry.unlink()
                except OSError:  # pragma: no cover - fs race
                    continue
                removed += 1
        if removed:
            self._count("lifecycle.artifacts_gcd", removed)
        return removed

    def _wait_for_acks(self, seq: int,
                       abort_on_nack: bool = False) -> Dict[str, dict]:
        expected = {str(slot) for slot in range(self.workers)}
        expected.add(PARENT_IDENTITY)
        acks: Dict[str, dict] = {}
        deadline = time.monotonic() + self.timeout_s
        aborted = False
        while True:
            for identity in expected - set(acks):
                try:
                    ack = self._control.get(ack_key(seq, identity))
                except (OSError, EOFError, BrokenPipeError):
                    ack = None
                if ack is not None:
                    acks[identity] = dict(ack)
            if abort_on_nack and any(a.get("nack") for a in acks.values()):
                # a reload someone rejected can never complete: abort
                # the barrier now and let the coordinator roll back
                # instead of waiting out the stragglers' timeout
                aborted = len(acks) < len(expected)
                break
            if len(acks) == len(expected) or time.monotonic() >= deadline:
                break
            time.sleep(self.poll_interval_s)
        for identity in expected - set(acks):
            if aborted:
                acks[identity] = {
                    "ok": False, "aborted": True,
                    "error": f"barrier aborted after a sibling NACK "
                             f"before {identity!r} acked",
                }
            else:
                acks[identity] = {
                    "ok": False,
                    "error": f"no ack from {identity!r} before timeout",
                }
        # best-effort cleanup: the barrier is over, drop the ack keys.
        # `_control` is a Manager proxy — every access is serialized by
        # the manager server process, so the in-process apply lock is
        # the wrong tool here (and in workers it is a post-fork copy).
        for identity in expected:
            try:
                del self._control[ack_key(seq, identity)]  # repro-lint: ignore[RL001]
            except (KeyError, OSError, EOFError, BrokenPipeError):
                pass
        return acks

    def _write_ack(self, seq: int, result: dict) -> None:
        # Manager-proxy write: serialized by the manager server, and
        # called from worker processes where the parent's apply lock
        # would be a meaningless post-fork copy anyway.
        try:
            self._control[ack_key(seq, self.identity)] = result  # repro-lint: ignore[RL001]
        except (OSError, EOFError, BrokenPipeError):
            pass  # manager gone; the fleet is shutting down


#: Type of the hook the HTTP server calls for admin mutations when a
#: fleet is running (see :attr:`repro.serve.server.ACTHTTPServer.
#: admin_hook`): request dict in, response dict out.
AdminHook = Callable[[dict], dict]
