"""The query service: admission, cache, batching, and aggregation.

:class:`ACTService` is the long-lived object behind every serving entry
point (HTTP server, CLI, benchmarks). Per point query it:

1. resolves the named index through the :class:`~repro.serve.registry.
   IndexRegistry` (lazy build/load, pinned afterwards, lock-free once
   materialized);
2. sheds the request immediately if its latency budget is already spent;
3. consults the :class:`~repro.serve.cache.CellResultCache` keyed by the
   boundary-level cell — a hit answers with one dict lookup and no trie
   descent, which is why the hot path is cheaper than a bare
   ``ACTIndex.query`` call;
4. on a miss, routes adaptively: a lone miss is answered inline with one
   scalar lookup (no queueing latency), while concurrent misses above
   ``inline_miss_threshold`` in-flight are funneled through the
   :class:`~repro.serve.batcher.MicroBatcher` so bursts are served by
   vectorized batch lookups; a nearly-spent budget always takes the
   inline path;
5. refines candidates per point for ``exact`` mode (cached cell results
   are classified, so exactness survives caching) and records latency.

:meth:`ACTService.query_batch` is the columnar analog for clients that
already hold a batch (the ``POST /query`` endpoint): cache keys come
from one vectorized ``point_keys`` pass, all misses resolve with a
single batch descent against the core, and exact-mode refinement runs
through the index's packed-edge engine in one vectorized pass.

Bulk joins go straight to the vectorized ``count_points`` engine — they
arrive pre-batched, so micro-batching would only add latency.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..act.index import ACTIndex, QueryResult
from ..errors import BudgetExceededError, InvalidRequestError, ServeError
from ..grid.base import INVALID_KEY
from ..obs import PrometheusRenderer, SlowQueryLog, Trace, Tracer
from . import chaos
from .batcher import MicroBatcher
from .budget import Budget
from .cache import CellResultCache
from .metrics import MetricsRegistry
from .registry import _UNSET, IndexGeneration, IndexRegistry

#: Empty result reused for out-of-domain points.
_MISS = QueryResult((), ())

#: Telemetry modes: ``full`` = counters + sampled tracing + slow-query
#: log (the default; cheap enough to leave on), ``counters`` = bare
#: counters/histograms only, ``off`` = every metrics handle is a no-op.
TELEMETRY_MODES = ("full", "counters", "off")


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs for one service instance."""

    max_batch: int = 512
    max_wait_ms: float = 0.0  # 0 = adaptive greedy batching (recommended)
    cache_capacity: int = 65536
    default_budget_ms: Optional[float] = None
    #: Misses at or below this many in flight answer inline (scalar);
    #: above it they micro-batch through the vectorized engine.
    inline_miss_threshold: int = 2
    #: One of :data:`TELEMETRY_MODES`.
    telemetry: str = "full"
    #: Trace every Nth admission (0 disables sampling; forced traces —
    #: a client sending ``?trace=1`` — still work).
    trace_sample_interval: int = 64
    #: Requests slower than this land in the slow-query log.
    slow_query_ms: float = 250.0
    slowlog_capacity: int = 128

    @property
    def max_wait_seconds(self) -> float:
        return self.max_wait_ms / 1000.0


class ACTService:
    """Serves point queries and joins over registered ACT indexes."""

    def __init__(self, registry: Optional[IndexRegistry] = None,
                 config: Optional[ServeConfig] = None):
        self.registry = registry if registry is not None else IndexRegistry()
        self.config = config if config is not None else ServeConfig()
        self.metrics = MetricsRegistry()
        self.set_telemetry(self.config.telemetry)
        self.cache = CellResultCache(self.config.cache_capacity)
        # batchers are keyed by (name, generation): a reload retires the
        # old generation's batcher, and a racing request that pinned the
        # old record can never resurrect it under the new generation
        self._batchers: Dict[Tuple[str, int], MicroBatcher] = {}
        # per-index hot-path state: (generation record, boundary_level);
        # plain dict reads are GIL-atomic so requests skip all locks
        # once warmed, and pinning the record at admission keeps one
        # coherent generation for the whole request
        self._hot: Dict[str, Tuple[IndexGeneration, int]] = {}
        self._miss_lock = threading.Lock()
        self._misses_in_flight = 0
        self._started = time.monotonic()

    def set_telemetry(self, telemetry: str) -> None:
        """Switch the telemetry level of a live service.

        Runtime-switchable so an operator can drop to ``counters`` (or
        ``off``) under incident load without a restart, and so the
        overhead benchmark can compare levels on one service instance.
        Accumulated counters and histograms survive a switch (the
        registry keeps them; ``off`` only makes the handles no-ops);
        the tracer and slow-query log are rebuilt to the new level.
        """
        if telemetry not in TELEMETRY_MODES:
            raise ServeError(
                f"telemetry must be one of {TELEMETRY_MODES}, "
                f"got {telemetry!r}"
            )
        if telemetry != self.config.telemetry:
            self.config = dataclasses.replace(
                self.config, telemetry=telemetry)
        self.metrics.enabled = telemetry != "off"
        # sampled tracing and the slow-query log belong to "full" mode;
        # "counters" keeps the aggregates but never builds a Trace
        # (forced traces — an explicit ?trace=1 — still work)
        self.tracer = Tracer(
            sample_interval=self.config.trace_sample_interval
            if telemetry == "full" else 0
        )
        self.slowlog = SlowQueryLog(
            threshold_s=(self.config.slow_query_ms / 1e3
                         if telemetry == "full" else 0.0),
            capacity=self.config.slowlog_capacity,
        )
        # pre-bound hot-path metrics (registry lookups are off the
        # path); re-bound on every switch because a disabled registry
        # hands out no-op singletons
        self._queries_total = self.metrics.counter("queries.total")
        self._queries_errors = self.metrics.counter("queries.errors")
        self._queries_shed = self.metrics.counter("queries.shed")
        self._queries_ood = self.metrics.counter("queries.out_of_domain")
        self._cache_hits = self.metrics.counter("queries.cache_hits")
        self._fast_path = self.metrics.counter("queries.fast_path")
        self._inline_miss = self.metrics.counter("queries.inline_miss")
        self._latency = self.metrics.histogram("queries.latency_seconds")
        # the remaining service-adjacent families are used lazily on
        # cold paths, but must exist pre-traffic so scrapes show zeros
        # instead of families appearing mid-incident (RL004);
        # faults.chaos_injections is included because every chaos seam
        # counts against this service's registry
        self.metrics.register(
            counters=(
                "queries.invalid", "queries.batched_misses",
                "joins.total", "joins.points",
                "admin.reloads", "admin.registers", "admin.unregisters",
                "faults.chaos_injections",
            ),
            histograms=("joins.latency_seconds",),
        )

    # ------------------------------------------------------------------
    # Point queries
    # ------------------------------------------------------------------
    def query(self, index_name: str, lng: float, lat: float,
              exact: bool = False, budget: Optional[Budget] = None,
              trace: Optional[Trace] = None,
              request_id: Optional[str] = None) -> QueryResult:
        """One classified point lookup through the full serving stack.

        ``trace`` forces a per-stage breakdown for this request (the
        HTTP front passes one for ``?trace=1``); without it every Nth
        admission is sampled by the service's tracer. ``request_id``
        ties slow-query-log entries back to the caller's id.

        Raises :class:`~repro.errors.BudgetExceededError` when the budget
        runs out (shed), :class:`~repro.errors.UnknownIndexError` for
        unregistered names.
        """
        start = time.perf_counter()
        self._queries_total.inc()
        budget = self._effective_budget(budget)
        if trace is None:
            tracer = self.tracer
            interval = tracer.sample_interval
            if interval > 0:
                # the sampler's unsampled fast path, inlined: a method
                # call per request is measurable on this path
                tracer._admissions += 1
                if not tracer._admissions % interval:
                    trace = tracer.sample(request_id=request_id,
                                          kind="query", force=True)
        if budget is not None:
            budget.trace = trace
        try:
            record, boundary_level = self._hot_view(index_name)
            index = record.index
            if budget is not None:
                budget.require("admission")
            if trace is not None:
                trace.stamp("admission")
            cell = index.grid.point_key(lng, lat, boundary_level)
            if cell is None:
                self._queries_ood.inc()
                result = _MISS
            else:
                key = (index_name, record.generation, cell)
                result = self.cache.get(key)
                if trace is not None:
                    trace.stamp("cache_probe")
                if result is not None:
                    self._cache_hits.inc()
                else:
                    result = self._miss(record, lng, lat, key, budget,
                                        trace)
            if exact:
                result = self._refine_scalar(index, result, lng, lat)
                if trace is not None:
                    trace.stamp("refine")
        except BudgetExceededError:
            # a shed is load-shedding doing its job, not a failure: a
            # service under deadline pressure must not look broken
            self._queries_shed.inc()
            self.slowlog.maybe_record(
                time.perf_counter() - start, "query",
                request_id=request_id, trace=trace, extra={"shed": True})
            raise
        except Exception:
            self._queries_errors.inc()
            raise
        elapsed = time.perf_counter() - start
        self._latency.observe(elapsed)
        slowlog = self.slowlog
        if elapsed >= slowlog.threshold_s > 0.0:
            slowlog.maybe_record(elapsed, "query", request_id=request_id,
                                 trace=trace)
        return result

    def _refine_scalar(self, index: ACTIndex, result: QueryResult,
                       lng: float, lat: float) -> QueryResult:
        """Exact-mode refinement for one point via the packed-edge engine.

        A one-point batch through :meth:`_refine_batch`, so scalar and
        batch exact queries share one verdict path (bit-identical, no
        per-candidate Python ``Polygon.contains`` loop)."""
        if not result.candidates:
            return QueryResult(result.true_hits, ())
        return self._refine_batch(
            index, [result],
            np.asarray([lng], dtype=np.float64),
            np.asarray([lat], dtype=np.float64),
        )[0]

    def _effective_budget(self, budget: Optional[Budget]) -> Optional[Budget]:
        if budget is None and self.config.default_budget_ms is not None:
            return Budget.from_ms(self.config.default_budget_ms)
        return budget

    def _hot_view(self, index_name: str) -> Tuple[IndexGeneration, int]:
        """The pinned ``(generation record, boundary_level)`` for a name.

        The identity check keeps the pinned view coherent with the
        registry: after an evict/reload the name maps to a different
        record and the next request re-warms — the rule is shared by the
        scalar, batch, and join paths. A request holds the record it was
        given for its whole lifetime, so a reload mid-batch never mixes
        cores or cache keyspaces.
        """
        hot = self._hot.get(index_name)
        if hot is None or hot[0] is not self.registry.materialized.get(
                index_name):
            hot = self._warm(index_name)
        return hot

    def _warm(self, index_name: str) -> Tuple[IndexGeneration, int]:
        """Materialize an index and pin its cache-key resolution."""
        return self._adopt_record(self.registry.pin(index_name))

    def _adopt_record(self, record: IndexGeneration,
                      ) -> Tuple[IndexGeneration, int]:
        """Swap the hot view to ``record``, retiring the old generation.

        Re-warming after the registry swapped the record (evict/reload)
        retires the stale generation's batcher and reclaims its cache
        entries so point queries, joins, and the cache all agree on one
        generation. The cache sweep is memory hygiene, not correctness:
        old-generation entries live under old-generation keys that new
        requests never read.
        """
        name = record.name
        stale = self._hot.get(name)
        self._hot[name] = hot = (record, record.index.boundary_level)
        if stale is not None and stale[0] is not record:
            self.cache.invalidate_index(
                name, keep_generation=record.generation)
            # sweep every generation's batcher but the new one — not
            # just the immediately previous: a request pinned to an old
            # record can (re)create that generation's batcher after its
            # reload swept it, and this name-wide sweep on the *next*
            # swap is what reclaims such stragglers
            for key in [k for k in list(self._batchers)
                        if k[0] == name and k[1] != record.generation]:
                batcher = self._batchers.pop(key, None)
                if batcher is not None:
                    batcher.stop()
        return hot

    def _miss(self, record: IndexGeneration, lng: float, lat: float,
              key, budget: Optional[Budget],
              trace: Optional[Trace] = None) -> QueryResult:
        index = record.index
        batch = False
        if budget is not None:
            budget.require("dispatch")
            if budget.remaining() <= self.config.max_wait_seconds:
                # not enough budget left to sit in a batching window:
                # answer inline, skipping queueing entirely
                self._fast_path.inc()
                result = index.query(lng, lat)
                if trace is not None:
                    trace.stamp("descent")
                self.cache.put(key, result)
                return result
        with self._miss_lock:
            self._misses_in_flight += 1
            batch = self._misses_in_flight > self.config.inline_miss_threshold
        try:
            if batch:
                timeout = None
                if budget is not None and not budget.is_unlimited:
                    timeout = budget.remaining()
                future = self._batcher(record).submit(
                    lng, lat, budget, trace=trace)
                try:
                    result = future.result(timeout=timeout)
                except FuturesTimeoutError:
                    # queue time ate the budget before dispatch could
                    # shed it; surface the same contract either way
                    raise BudgetExceededError(
                        "latency budget exhausted while queued for batch "
                        "dispatch"
                    ) from None
                if trace is not None:
                    # the batcher deposited batch_wait + descent; reset
                    # the stage clock so the next stamp excludes them
                    trace.mark()
            else:
                self._inline_miss.inc()
                result = index.query(lng, lat)
                if trace is not None:
                    trace.stamp("descent")
        finally:
            with self._miss_lock:
                self._misses_in_flight -= 1
        self.cache.put(key, result)
        return result

    # ------------------------------------------------------------------
    # Batched point queries
    # ------------------------------------------------------------------
    def query_batch(self, index_name: str, lngs: Sequence[float],
                    lats: Sequence[float], exact: bool = False,
                    budget: Optional[Budget] = None,
                    trace: Optional[Trace] = None,
                    request_id: Optional[str] = None) -> List[QueryResult]:
        """Classified lookups for a whole point batch, cache included.

        Network clients amortize the same way in-process callers do:
        one vectorized ``point_keys`` pass produces the cache keys, all
        cache misses are answered by a single batch descent against the
        core (results are cached for the scalar path too — the keyspace
        is shared), and ``exact`` refinement is grouped by polygon over
        the batch. A spent budget sheds the whole batch with
        :class:`~repro.errors.BudgetExceededError`.
        """
        start = time.perf_counter()
        lngs = np.asarray(lngs, dtype=np.float64)
        lats = np.asarray(lats, dtype=np.float64)
        if lngs.shape != lats.shape or lngs.ndim != 1:
            # catch the mismatch at admission: deep inside
            # leaf_cells_batch it surfaces as an opaque broadcast error.
            # Counted under its own metric (the point count is not
            # trustworthy, so neither total nor errors fit)
            self.metrics.counter("queries.invalid").inc()
            raise InvalidRequestError(
                f"query_batch needs matching 1-D lngs/lats, got shapes "
                f"{lngs.shape} and {lats.shape}"
            )
        n = int(lngs.shape[0])
        # chaos seam: armed tests kill/stall workers mid-request here
        chaos.fault("query", self.metrics)
        self._queries_total.inc(n)
        budget = self._effective_budget(budget)
        if trace is None:
            trace = self.tracer.sample(request_id=request_id,
                                       kind="query_batch")
        if budget is not None:
            budget.trace = trace
        try:
            record, boundary_level = self._hot_view(index_name)
            index = record.index
            generation = record.generation
            if budget is not None:
                budget.require("batch admission")
            if trace is not None:
                trace.stamp("admission")
            keys = index.grid.point_keys(lngs, lats, boundary_level).tolist()
            invalid = int(INVALID_KEY)
            results: List[Optional[QueryResult]] = [None] * n
            miss_pos: List[int] = []
            cache_get = self.cache.get
            hits = 0
            for k, key in enumerate(keys):
                if key == invalid:
                    self._queries_ood.inc()
                    results[k] = _MISS
                    continue
                cached = cache_get((index_name, generation, key))
                if cached is not None:
                    results[k] = cached
                    hits += 1
                else:
                    miss_pos.append(k)
            if hits:
                self._cache_hits.inc(hits)
            if trace is not None:
                trace.stamp("cache_probe")
            if miss_pos:
                if budget is not None:
                    budget.require("batch dispatch")
                # one descent and one decode per *unique* cell — ACT
                # results are constant within a boundary-level cell, so
                # a skewed batch decodes each hot cell once
                first_pos: Dict[int, int] = {}
                for k in miss_pos:
                    first_pos.setdefault(keys[k], k)
                pos = np.asarray(list(first_pos.values()), dtype=np.int64)
                cells = index.grid.leaf_cells_batch(lngs[pos], lats[pos])
                entries = index.core.lookup_entries(cells)
                decode = index.core.decode_entry
                put = self.cache.put
                by_key: Dict[int, QueryResult] = {}
                for key, entry in zip(first_pos, entries.tolist()):
                    result = decode(entry)
                    by_key[key] = result
                    put((index_name, generation, key), result)
                for k in miss_pos:
                    results[k] = by_key[keys[k]]
                self.metrics.counter("queries.batched_misses").inc(
                    len(miss_pos))
                if trace is not None:
                    trace.stamp("descent")
            if exact:
                results = self._refine_batch(index, results, lngs, lats)
                if trace is not None:
                    trace.stamp("refine")
        except BudgetExceededError:
            self._queries_shed.inc(n)
            self.slowlog.maybe_record(
                time.perf_counter() - start, "query_batch",
                request_id=request_id, trace=trace,
                extra={"shed": True, "num_points": n})
            raise
        except Exception:
            self._queries_errors.inc(n)
            raise
        elapsed = time.perf_counter() - start
        self._latency.observe(elapsed)
        if elapsed >= self.slowlog.threshold_s > 0.0:
            self.slowlog.maybe_record(elapsed, "query_batch",
                                      request_id=request_id, trace=trace,
                                      extra={"num_points": n})
        return results

    def _refine_batch(self, index: ACTIndex, results: List[QueryResult],
                      lngs: np.ndarray, lats: np.ndarray,
                      ) -> List[QueryResult]:
        """Exact-mode refinement via the index's packed-edge engine."""
        point_parts: List[int] = []
        id_parts: List[int] = []
        for k, result in enumerate(results):
            for pid in result.candidates:
                point_parts.append(k)
                id_parts.append(pid)
        surviving: Dict[int, List[int]] = {}
        if point_parts:
            point_idx = np.asarray(point_parts, dtype=np.int64)
            polygon_ids = np.asarray(id_parts, dtype=np.int64)
            inside = index.executor.refine_pairs(point_idx, polygon_ids,
                                                 lngs, lats)
            for k, pid in zip(point_idx[inside].tolist(),
                              polygon_ids[inside].tolist()):
                surviving.setdefault(k, []).append(pid)
        return [
            QueryResult(r.true_hits + tuple(surviving.get(k, ())), ())
            for k, r in enumerate(results)
        ]

    # ------------------------------------------------------------------
    # Bulk joins
    # ------------------------------------------------------------------
    def join(self, index_name: str, lngs: Sequence[float],
             lats: Sequence[float], exact: bool = False,
             budget: Optional[Budget] = None,
             trace: Optional[Trace] = None,
             request_id: Optional[str] = None) -> np.ndarray:
        """Count points per polygon (the paper's aggregation workload)."""
        start = time.perf_counter()
        chaos.fault("query", self.metrics)
        if trace is None:
            trace = self.tracer.sample(request_id=request_id, kind="join")
        if budget is not None:
            budget.trace = trace
            budget.require("join admission")
        if trace is not None:
            trace.stamp("admission")
        # resolve through the pinned hot view, not the registry: after
        # evict() + re-materialization joins must run against the same
        # generation as point queries and the cell cache
        record, _ = self._hot_view(index_name)
        index = record.index
        counts = index.count_points(
            np.asarray(lngs, dtype=np.float64),
            np.asarray(lats, dtype=np.float64),
            exact=exact,
            trace=trace,
        )
        self.metrics.counter("joins.total").inc()
        self.metrics.counter("joins.points").inc(len(lngs))
        elapsed = time.perf_counter() - start
        self.metrics.histogram("joins.latency_seconds").observe(elapsed)
        if elapsed >= self.slowlog.threshold_s > 0.0:
            self.slowlog.maybe_record(elapsed, "join",
                                      request_id=request_id, trace=trace,
                                      extra={"num_points": len(lngs)})
        return counts

    # ------------------------------------------------------------------
    # Index lifecycle (the admin surface)
    # ------------------------------------------------------------------
    def reload_index(self, name: str, *,
                     source_path=None, source_mmap_mode=_UNSET,
                     artifact_path=None, artifact_mmap_mode=_UNSET,
                     generation: Optional[int] = None,
                     verify: Optional[str] = None) -> IndexGeneration:
        """Materialize a fresh generation and adopt it atomically.

        Thin wrapper over :meth:`~repro.serve.registry.IndexRegistry.
        reload` that also swaps this service's hot view, retires the old
        generation's batcher, and reclaims its cache entries. In-flight
        requests that pinned the old record finish on it; requests
        admitted after the swap see only the new generation, so no
        request ever observes a mix or an error during a reload.
        """
        record = self.registry.reload(
            name, source_path=source_path, source_mmap_mode=source_mmap_mode,
            artifact_path=artifact_path,
            artifact_mmap_mode=artifact_mmap_mode, generation=generation,
            verify=verify,
        )
        self._adopt_record(record)
        self.metrics.counter("admin.reloads").inc()
        return record

    def restore_index(self, record: IndexGeneration) -> IndexGeneration:
        """Roll the hot view back to ``record`` (failed-reload path).

        See :meth:`~repro.serve.registry.IndexRegistry.restore`; the
        aborted generation's cache entries are swept here, its number
        stays burned.
        """
        self.registry.restore(record)
        self._adopt_record(record)
        return record

    def register_index_path(self, name: str, path, mmap_mode=None,
                            ) -> IndexGeneration:
        """Register and materialize a serialized index under ``name``."""
        self.registry.register_path(name, path, mmap_mode=mmap_mode)
        record = self.registry.pin(name)
        self._adopt_record(record)
        self.metrics.counter("admin.registers").inc()
        return record

    def unregister_index(self, name: str) -> dict:
        """Retire ``name``: drop the registration, hot view, batcher,
        and cache entries. In-flight requests on the pinned record
        finish normally; new requests 404."""
        out = self.registry.unregister(name)
        self._hot.pop(name, None)
        out["cache_entries_dropped"] = self.cache.invalidate_index(name)
        for key in [k for k in list(self._batchers) if k[0] == name]:
            batcher = self._batchers.pop(key, None)
            if batcher is not None:
                batcher.stop()
        self.metrics.counter("admin.unregisters").inc()
        return out

    def admin_indexes(self) -> List[dict]:
        """The admin listing: registry state plus live generation info."""
        return [self.registry.describe(name)
                for name in self.registry.names()]

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Everything ``/stats`` reports: metrics, cache, indexes."""
        snapshot = self.metrics.snapshot()
        hit_rate = self.metrics.ratio("queries.cache_hits", "queries.total")
        return {
            "uptime_seconds": time.monotonic() - self._started,
            "indexes": [self.registry.describe(n)
                        for n in self.registry.names()],
            "cache": self.cache.stats(),
            "cache_hit_rate": hit_rate,
            "metrics": snapshot,
            "slow_queries": self.slowlog.stats(),
            "config": {
                "max_batch": self.config.max_batch,
                "max_wait_ms": self.config.max_wait_ms,
                "cache_capacity": self.config.cache_capacity,
                "default_budget_ms": self.config.default_budget_ms,
                "inline_miss_threshold": self.config.inline_miss_threshold,
                "telemetry": self.config.telemetry,
                "trace_sample_interval": self.config.trace_sample_interval,
                "slow_query_ms": self.config.slow_query_ms,
            },
        }

    def prometheus_text(self, fleet_view: Optional[dict] = None,
                        worker_id: Optional[int] = None) -> str:
        """The ``GET /metrics`` payload (Prometheus text exposition).

        Every registry counter/gauge/histogram becomes a family, plus
        per-index gauges (generation, descent totals) labelled by index
        name and generation, cache-entry gauges labelled per generation,
        and slow-query-log gauges. ``fleet_view`` (an
        :func:`~repro.serve.fleet.aggregate_snapshots` result) adds the
        fleet-wide families — bucket-merged latency histograms included
        — so scraping any one worker sees the whole fleet.
        """
        renderer = PrometheusRenderer(namespace="repro")
        base = {} if worker_id is None else {"worker": str(worker_id)}
        snapshot = self.metrics.snapshot()
        for name, value in snapshot["counters"].items():
            renderer.counter(name, value, labels=dict(base))
        for name, value in snapshot["gauges"].items():
            renderer.gauge(name, value, labels=dict(base))
        for name, snap in snapshot["histograms"].items():
            renderer.histogram(name, snap, labels=dict(base))
        renderer.gauge("uptime_seconds",
                       time.monotonic() - self._started,
                       labels=dict(base),
                       help_text="Seconds since this service started")
        for described in self.admin_indexes():
            labels = dict(base)
            labels["index"] = str(described.get("name"))
            if not described.get("materialized"):
                continue  # registered but not materialized yet
            generation = described.get("generation", 0)
            labels["generation"] = str(generation)
            renderer.gauge("index_generation", float(generation),
                           labels=labels,
                           help_text="Live generation per index")
            for key in ("descent_batches", "descent_points",
                        "descent_seconds"):
                if key in described:
                    renderer.counter(f"index_{key}", described[key],
                                     labels=dict(labels))
        cache_stats = self.cache.stats()
        for key in ("size", "capacity"):
            renderer.gauge(f"cache_{key}", cache_stats[key],
                           labels=dict(base))
        for key in ("hits", "misses", "evictions", "invalidations"):
            renderer.counter(f"cache_{key}", cache_stats[key],
                             labels=dict(base))
        for (name, generation), entries in sorted(
                self.cache.entries_by_generation().items()):
            labels = dict(base)
            labels["index"] = name
            labels["generation"] = str(generation)
            renderer.gauge("cache_entries", float(entries), labels=labels,
                           help_text="Cached cell results per generation")
        slow = self.slowlog.stats()
        renderer.gauge("slowlog_size", slow["size"], labels=dict(base))
        renderer.counter("slowlog_recorded", slow["recorded"],
                         labels=dict(base))
        if fleet_view is not None:
            self._render_fleet(renderer, fleet_view)
        return renderer.render()

    @staticmethod
    def _render_fleet(renderer: "PrometheusRenderer",
                      view: dict) -> None:
        """Fleet-aggregate families (bucket-merged across workers)."""
        renderer.gauge("fleet_workers", view.get("workers", 0),
                       help_text="Live fleet workers")
        renderer.gauge("fleet_qps", view.get("qps", 0.0))
        for name, value in view.get("counters", {}).items():
            renderer.counter(f"fleet.{name}", value)
        for name, snap in view.get("histograms", {}).items():
            renderer.histogram(
                f"fleet.{name}", snap,
                help_text="Bucket-merged across all fleet workers")
        # sharded fleets: per-shard families labelled {shard="<slot>"}
        # from each worker's published shard block, so dashboards see
        # slice skew (resident bytes, routing split, shed) per shard
        for entry in view.get("per_worker", []):
            shard = entry.get("shard")
            if not shard:
                continue
            labels = {"shard": str(shard.get("slot", entry.get("worker")))}
            renderer.gauge("fleet_shard_inflight",
                           float(shard.get("inflight", 0)),
                           labels=dict(labels),
                           help_text="In-flight batches per shard worker")
            renderer.gauge("fleet_shard_node_pool_bytes",
                           float(shard.get("node_pool_bytes", 0)),
                           labels=dict(labels),
                           help_text="Resident index slice bytes per "
                                     "shard worker")
            renderer.gauge("fleet_shard_ranges",
                           float(shard.get("ranges", 0)),
                           labels=dict(labels),
                           help_text="Owned keyspace ranges per shard "
                                     "worker")
            for key in ("forwarded", "local", "shed", "forward_errors"):
                if key in shard:
                    renderer.counter(f"fleet_shard_{key}", shard[key],
                                     labels=dict(labels))

    def close(self) -> None:
        """Stop all batcher workers (idempotent)."""
        for batcher in list(self._batchers.values()):
            batcher.stop()
        self._batchers.clear()

    def __enter__(self) -> "ACTService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _batcher(self, record: IndexGeneration) -> MicroBatcher:
        key = (record.name, record.generation)
        batcher = self._batchers.get(key)
        if batcher is None:
            # setdefault keeps exactly one batcher per generation under
            # races
            batcher = self._batchers.setdefault(key, MicroBatcher(
                record.index,
                max_batch=self.config.max_batch,
                max_wait=self.config.max_wait_seconds,
                metrics=self.metrics,
                name=record.name,
            ))
        return batcher
