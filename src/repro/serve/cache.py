"""Cell-keyed LRU result cache.

ACT answers are constant within a grid cell at the index's boundary
level: every covering cell sits at a level at or above ``boundary_level``
(boundary cells are refined *to* that level, interior cells are coarser,
and conflict push-down never descends past it), so all leaf cells sharing
a boundary-level ancestor decode to the same reference set. Caching the
classified :class:`~repro.act.index.QueryResult` under
``(index_name, generation, parent(leaf, boundary_level))`` therefore
serves repeat traffic on hot locations with one dict lookup and zero
trie descents — exact-mode refinement still runs per point on top of
the cached cell result, so caching never weakens exactness.

The *generation* component is what makes zero-downtime reloads safe: a
request pinned to the old index generation that completes after the
swap writes its result under the old generation's keyspace, where
new-generation queries can never read it — there is no window in which
a stale answer can be served, no matter how requests and the reload
interleave. :meth:`CellResultCache.invalidate_index` then reclaims the
dead generations' memory.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Hashable, Optional, Tuple

from ..act.index import QueryResult

#: Cache key: (index name, index generation, boundary-level cell id).
CacheKey = Tuple[str, int, int]


class CellResultCache:
    """Thread-safe LRU mapping boundary-level cells to query results.

    ``capacity <= 0`` disables the cache (every ``get`` misses, ``put``
    is a no-op) so callers can keep one code path.
    """

    def __init__(self, capacity: int = 65536):
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, QueryResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def get(self, key: CacheKey) -> Optional[QueryResult]:
        if self.capacity <= 0:
            return None
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return result

    def put(self, key: CacheKey, result: QueryResult) -> None:
        if self.capacity <= 0:
            return
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate_index(self, index_name: str,
                         keep_generation: Optional[int] = None) -> int:
        """Drop entries for one index (after a reload or unregister).

        With ``keep_generation`` set, entries of exactly that generation
        survive — a reload invalidates every *older* generation while
        keeping whatever the new one has already warmed. Returns the
        number of entries removed.
        """
        with self._lock:
            stale = [
                k for k in self._entries
                if k[0] == index_name
                and (keep_generation is None or k[1] != keep_generation)
            ]
            for key in stale:
                del self._entries[key]
            self.invalidations += len(stale)
            return len(stale)

    def entries_by_generation(self) -> Dict[Tuple[str, int], int]:
        """Live entry counts keyed by ``(index name, generation)``.

        The observability layer exports these as per-index,
        per-generation gauges, which is how an operator watches a
        reload's cache warm-up land (old generation's count drains to
        zero, new one grows).
        """
        counts: Dict[Tuple[str, int], int] = {}
        with self._lock:
            for name, generation, _cell in self._entries:
                key = (name, generation)
                counts[key] = counts.get(key, 0) + 1
        return counts

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        with self._lock:
            size = len(self._entries)
        return {
            "capacity": self.capacity,
            "size": size,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }
