"""Cell-keyed LRU result cache.

ACT answers are constant within a grid cell at the index's boundary
level: every covering cell sits at a level at or above ``boundary_level``
(boundary cells are refined *to* that level, interior cells are coarser,
and conflict push-down never descends past it), so all leaf cells sharing
a boundary-level ancestor decode to the same reference set. Caching the
classified :class:`~repro.act.index.QueryResult` under
``(index_name, parent(leaf, boundary_level))`` therefore serves repeat
traffic on hot locations with one dict lookup and zero trie descents —
exact-mode refinement still runs per point on top of the cached cell
result, so caching never weakens exactness.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Hashable, Optional, Tuple

from ..act.index import QueryResult

#: Cache key: (index name, boundary-level cell id).
CacheKey = Tuple[str, int]


class CellResultCache:
    """Thread-safe LRU mapping boundary-level cells to query results.

    ``capacity <= 0`` disables the cache (every ``get`` misses, ``put``
    is a no-op) so callers can keep one code path.
    """

    def __init__(self, capacity: int = 65536):
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, QueryResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: CacheKey) -> Optional[QueryResult]:
        if self.capacity <= 0:
            return None
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return result

    def put(self, key: CacheKey, result: QueryResult) -> None:
        if self.capacity <= 0:
            return
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate_index(self, index_name: str) -> int:
        """Drop every entry for one index (after a reload); returns the
        number of entries removed."""
        with self._lock:
            stale = [k for k in self._entries if k[0] == index_name]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        with self._lock:
            size = len(self._entries)
        return {
            "capacity": self.capacity,
            "size": size,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }
