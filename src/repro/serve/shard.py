"""Shard planning for the serving fleet: keyspace, map, and slicing.

A sharded fleet partitions work twice: **by index name** (each name's
keyspace is assigned to worker slots independently, offset so distinct
names spread across distinct slots) and, within one index, **by
boundary-level cell-id range**. The grid's space-filling order makes a
contiguous cell-id range spatially coherent, so a worker that owns one
owns a compact region — and materializes only that region's node-pool
slice (see :func:`slice_index`).

Three layers live here:

* the **shard keyspace** — :func:`shard_keys` computes one ``uint64``
  key per probe point. It deliberately pins the *base-class*
  :meth:`~repro.grid.base.HierarchicalGrid.point_keys` implementation
  (boundary-level cell ids via ``cellid.parent_batch``) rather than a
  grid's override: the planar grid overrides ``point_keys`` with a
  packed ``(i, j)`` encoding that is *not* a cell id and is not
  contiguous per cell, which would break range routing. Cell-id order
  is the one total order every grid shares.
* the **shard map** — :class:`ShardMap` is a generation-tagged,
  immutable assignment ``name -> ((cell_lo, cell_hi, slot), ...)``
  whose ranges cover the full ``uint64`` keyspace (out-of-domain
  points hash to ``INVALID_KEY`` = all-ones and land in the last
  range like any other key). It is published on the fleet's lifecycle
  control channel under :data:`SHARD_KEY`, so rebalancing is just
  another generation swap: publish a higher-generation map, workers
  adopt it on their next poll tick and re-slice.
* the **planner and slicer** — :func:`plan_shard_map` weighs each
  indexed cell by the number of boundary-level cells it covers and
  cuts the sorted, disjoint intervals into contiguous equal-weight
  parts (never splitting a cell, so each indexed cell has exactly one
  owner); :func:`slice_index` rebuilds a genuine sub-index — fresh
  trie, fresh lookup table with only the referenced sets re-interned —
  so per-worker resident bytes shrink with the shard count instead of
  every worker holding every node.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..act import entry as entry_codec
from ..act.core import ACTCore
from ..act.index import ACTIndex
from ..act.lookup_table import LookupTable
from ..act.trie import AdaptiveCellTrie
from ..errors import InvalidRequestError, ServeError, UnknownIndexError
from ..grid import cellid
from ..grid.base import HierarchicalGrid
from .registry import IndexGeneration, IndexRegistry

__all__ = [
    "SHARD_KEY", "KEY_MAX", "ShardRange", "ShardMap", "shard_keys",
    "plan_shard_map", "slice_index", "slice_record",
    "publish_shard_map", "read_shard_map",
]

#: Control-dict key the current :class:`ShardMap` is published under
#: (sibling of :data:`repro.serve.lifecycle.SEQ_KEY` on the same
#: Manager dict — shard placement rides the existing channel).
SHARD_KEY = "shard_map"

#: Largest value in the shard keyspace (``INVALID_KEY`` lands here).
KEY_MAX = (1 << 64) - 1


def shard_keys(grid: HierarchicalGrid, lngs: np.ndarray,
               lats: np.ndarray, level: int) -> np.ndarray:
    """Boundary-level cell-id key per point (the routing keyspace).

    Always the base-class cell-id path — never a grid's packed-key
    override — so keys order identically to the cell-id intervals the
    planner cuts. Out-of-domain points map to all-ones.
    """
    return HierarchicalGrid.point_keys(
        grid,
        np.asarray(lngs, dtype=np.float64),
        np.asarray(lats, dtype=np.float64),
        level,
    )


@dataclass(frozen=True)
class ShardRange:
    """One owned keyspace interval: ``cell_lo <= key <= cell_hi``."""

    cell_lo: int
    cell_hi: int
    slot: int


class ShardMap:
    """Immutable, generation-tagged shard assignment for a fleet.

    ``ranges`` maps index name to a tuple of :class:`ShardRange`
    sorted by ``cell_lo``, disjoint, and covering ``[0, 2**64 - 1]``
    exactly — every key has exactly one owning slot.
    """

    def __init__(self, generation: int,
                 ranges: Mapping[str, Sequence[ShardRange]],
                 num_slots: int):
        self.generation = int(generation)
        self.num_slots = int(num_slots)
        self.ranges: Dict[str, Tuple[ShardRange, ...]] = {
            name: tuple(sorted(rs, key=lambda r: r.cell_lo))
            for name, rs in ranges.items()
        }
        self._validate()
        # searchsorted tables: per name, the range los and owner slots.
        self._los: Dict[str, np.ndarray] = {}
        self._slots: Dict[str, np.ndarray] = {}
        for name, rs in self.ranges.items():
            self._los[name] = np.array(
                [r.cell_lo for r in rs], dtype=np.uint64)
            self._slots[name] = np.array(
                [r.slot for r in rs], dtype=np.int64)

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        for name, rs in self.ranges.items():
            if not rs:
                raise ServeError(
                    f"shard map has no ranges for index {name!r}")
            if rs[0].cell_lo != 0:
                raise ServeError(
                    f"shard ranges for {name!r} do not start at 0")
            if rs[-1].cell_hi != KEY_MAX:
                raise ServeError(
                    f"shard ranges for {name!r} do not end at 2**64-1")
            for prev, cur in zip(rs, rs[1:]):
                if cur.cell_lo != prev.cell_hi + 1:
                    raise ServeError(
                        f"shard ranges for {name!r} have a gap or "
                        f"overlap at {cur.cell_lo:#x}")
            for r in rs:
                if r.cell_lo > r.cell_hi:
                    raise ServeError(
                        f"inverted shard range for {name!r}: "
                        f"{r.cell_lo:#x} > {r.cell_hi:#x}")
                if not 0 <= r.slot < self.num_slots:
                    raise ServeError(
                        f"shard range for {name!r} names slot "
                        f"{r.slot}, fleet has {self.num_slots}")

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        return sorted(self.ranges)

    def route(self, name: str, keys: np.ndarray) -> np.ndarray:
        """Owning slot per key (int64 array, same length as ``keys``).

        Total: every ``uint64`` key routes somewhere, including the
        all-ones out-of-domain key (owned by the last range, whose
        worker answers it with the usual empty result).
        """
        los = self._los.get(name)
        if los is None:
            raise UnknownIndexError(f"no shard ranges for index {name!r}")
        idx = np.searchsorted(los, np.asarray(keys, dtype=np.uint64),
                              side="right") - 1
        return self._slots[name][idx]

    def route_one(self, name: str, key: int) -> int:
        """Owning slot for a single key (scalar convenience)."""
        return int(self.route(name, np.array([key], dtype=np.uint64))[0])

    def slots_for(self, name: str) -> Tuple[int, ...]:
        """Every slot owning some range of ``name`` (sorted, unique)."""
        rs = self.ranges.get(name)
        if rs is None:
            raise UnknownIndexError(f"no shard ranges for index {name!r}")
        return tuple(sorted({r.slot for r in rs}))

    def ranges_for_slot(self, name: str, slot: int,
                        ) -> Tuple[Tuple[int, int], ...]:
        """The ``(lo, hi)`` intervals of ``name`` owned by ``slot``."""
        rs = self.ranges.get(name)
        if rs is None:
            raise UnknownIndexError(f"no shard ranges for index {name!r}")
        return tuple((r.cell_lo, r.cell_hi) for r in rs
                     if r.slot == slot)

    # ------------------------------------------------------------------
    # Wire form (Manager control dict / JSON admin surface)
    # ------------------------------------------------------------------
    def to_wire(self) -> dict:
        return {
            "generation": self.generation,
            "num_slots": self.num_slots,
            "ranges": {
                name: [[r.cell_lo, r.cell_hi, r.slot] for r in rs]
                for name, rs in self.ranges.items()
            },
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "ShardMap":
        return cls(
            generation=int(wire["generation"]),
            num_slots=int(wire["num_slots"]),
            ranges={
                name: [ShardRange(int(lo), int(hi), int(slot))
                       for lo, hi, slot in rows]
                for name, rows in wire["ranges"].items()
            },
        )

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}:{len(rs)}r" for name, rs in sorted(
                self.ranges.items()))
        return (f"ShardMap(gen={self.generation}, "
                f"slots={self.num_slots}, {parts})")


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
def _cell_interval(cell: int, boundary_level: int) -> Tuple[int, int, int]:
    """``(lo, hi, weight)`` of one indexed cell in the shard keyspace.

    ``lo``/``hi`` are the boundary-level cell ids of the cell's first
    and last leaf; ``weight`` approximates load by the number of
    boundary-level cells covered. Disjoint cells produce disjoint
    intervals (cell-id ranges nest), except that several cells *deeper*
    than the boundary level under one boundary cell collapse to the
    same single-key interval — the planner merges those.
    """
    level = cellid.level(cell)
    lo = cellid.parent(cellid.range_min(cell), boundary_level)
    hi = cellid.parent(cellid.range_max(cell), boundary_level)
    weight = 4 ** (boundary_level - level) if level <= boundary_level else 1
    return lo, hi, weight


def _plan_one(index: ACTIndex, parts: int) -> List[Tuple[int, int]]:
    """Cut one index's keyspace into ``<= parts`` contiguous spans.

    Spans are split points only — callers attach slots. Always covers
    ``[0, KEY_MAX]``; never splits an indexed cell's interval.
    """
    bl = index.boundary_level
    intervals: Dict[int, Tuple[int, int]] = {}
    for cell, _entry in index.core.iter_cells():
        lo, hi, weight = _cell_interval(cell, bl)
        prev = intervals.get(lo)
        intervals[lo] = (hi, weight + (prev[1] if prev else 0))
    ordered = sorted(
        (lo, hi, weight) for lo, (hi, weight) in intervals.items())
    if not ordered or parts <= 1:
        return [(0, KEY_MAX)]

    total = sum(weight for _, _, weight in ordered)
    cuts: List[int] = []  # first lo of parts 1..k
    acc = 0
    for lo, _hi, weight in ordered:
        # cut *before* this interval once the previous parts hold
        # their fair share; an interval is never split
        target = (len(cuts) + 1) * total / parts
        if acc >= target and len(cuts) < parts - 1:
            cuts.append(lo)
        acc += weight
    spans: List[Tuple[int, int]] = []
    start = 0
    for cut in cuts:
        spans.append((start, cut - 1))
        start = cut
    spans.append((start, KEY_MAX))
    return spans


def plan_shard_map(indexes: Mapping[str, ACTIndex], num_slots: int,
                   generation: int = 1) -> ShardMap:
    """Plan a :class:`ShardMap` over materialized indexes.

    Each index is cut into up to ``num_slots`` contiguous equal-weight
    keyspace spans (weight = boundary-cell coverage, so dense regions
    split finer). Span *k* of the name at position *i* in sorted name
    order goes to slot ``(i + k) % num_slots`` — the offset spreads
    single-span (small) indexes across distinct slots.
    """
    if num_slots < 1:
        raise InvalidRequestError("shard planning needs >= 1 slot")
    ranges: Dict[str, List[ShardRange]] = {}
    for pos, name in enumerate(sorted(indexes)):
        spans = _plan_one(indexes[name], num_slots)
        ranges[name] = [
            ShardRange(lo, hi, (pos + k) % num_slots)
            for k, (lo, hi) in enumerate(spans)
        ]
    return ShardMap(generation=generation, ranges=ranges,
                    num_slots=num_slots)


# ----------------------------------------------------------------------
# Slicing
# ----------------------------------------------------------------------
def _spans_intersect(spans: Sequence[Tuple[int, int]], lo: int,
                     hi: int) -> bool:
    """Whether ``[lo, hi]`` overlaps any owned ``(lo, hi)`` span."""
    for span_lo, span_hi in spans:
        if lo <= span_hi and hi >= span_lo:
            return True
    return False


def slice_index(index: ACTIndex,
                spans: Iterable[Tuple[int, int]]) -> ACTIndex:
    """Rebuild the sub-index owning the given keyspace spans.

    Walks every indexed cell, keeps the ones whose boundary-level key
    interval intersects ``spans``, and re-inserts them into a fresh
    trie with a fresh lookup table (``TAG_OFFSET`` entries re-interned
    so only referenced polygon sets survive; inline payload entries
    copied verbatim). Polygons and stats are shared with the parent
    index — the polygon list is read-only at serve time and refinement
    needs all of it for the ids a slice can still emit.

    Because :meth:`~repro.act.core.ACTCore.iter_cells` yields the
    post-denormalization disjoint cells and the planner never splits a
    cell's interval, slices over a partition of the keyspace partition
    the entries exactly: ``sum(slice.num_entries) == full.num_entries``.
    """
    owned = sorted((int(lo), int(hi)) for lo, hi in spans)
    core = index.core
    bl = index.boundary_level
    trie = AdaptiveCellTrie(fanout=core.fanout,
                            num_faces=len(core.roots))
    table = LookupTable()
    tag = entry_codec.tag
    for cell, entry in core.iter_cells():
        lo, hi, _weight = _cell_interval(cell, bl)
        if not _spans_intersect(owned, lo, hi):
            continue
        if tag(entry) == entry_codec.TAG_OFFSET:
            true_ids, cand_ids = core.lookup_table.get(
                entry_codec.offset_value(entry))
            entry = entry_codec.make_offset(
                table.intern(true_ids, cand_ids))
        trie.insert(cell, entry)
    sliced_core = ACTCore.from_trie(trie, table)
    return ACTIndex(index.grid, sliced_core, index.polygons,
                    index.stats, index.boundary_level)


def slice_record(record: IndexGeneration,
                 spans: Iterable[Tuple[int, int]]) -> IndexGeneration:
    """A generation record re-pointed at its shard slice.

    Same name/generation/source metadata — the slice *is* that
    generation, as seen by one slot. Swap it into a registry with
    :meth:`~repro.serve.registry.IndexRegistry.restore` so the
    service's hot-view identity check pins the slice, not the full
    index.
    """
    return replace(record, index=slice_index(record.index, spans))


def slice_registry(registry: IndexRegistry, shard_map: ShardMap,
                   slot: int) -> List[str]:
    """Re-pin every materialized record to this slot's slice.

    Returns the names sliced. Called in a freshly forked worker (and
    again on shard-map adoption): the full-index pages the child
    inherited copy-on-write stay untouched in the parent; the child's
    working set becomes its slice.
    """
    sliced: List[str] = []
    for name in registry.names():
        record = registry.materialized.get(name)
        if record is None:
            continue
        spans = shard_map.ranges_for_slot(name, slot)
        registry.restore(slice_record(record, spans))
        sliced.append(name)
    return sliced


# ----------------------------------------------------------------------
# Control-channel publication
# ----------------------------------------------------------------------
def publish_shard_map(control, shard_map: ShardMap) -> None:
    """Publish ``shard_map`` on the fleet control dict.

    Rebalancing is republishing with a higher generation; workers
    adopt on their next lifecycle poll tick (monotonic: a lower or
    equal generation is ignored, mirroring reload idempotency).
    """
    control[SHARD_KEY] = shard_map.to_wire()


def read_shard_map(control) -> Optional[ShardMap]:
    """The currently published :class:`ShardMap`, if any."""
    wire = control.get(SHARD_KEY)
    if wire is None:
        return None
    return ShardMap.from_wire(wire)
