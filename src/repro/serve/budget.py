"""Per-request latency budgets with deadline propagation.

A serving layer should know its remaining latency budget at every hop —
admission, cache lookup, batch dispatch — instead of discovering SLO
overruns after the fact. :class:`Budget` is a thin monotonic-clock
deadline that requests carry through the stack:

* the service sheds a request whose budget is already spent
  (:meth:`Budget.require` raises :class:`~repro.errors.BudgetExceededError`);
* the micro-batcher never holds a request past its deadline — the batch
  flush time is the minimum of the batching window and every member's
  deadline;
* a nearly-spent budget (less than the batching window remaining) takes
  the fast path: a direct scalar lookup that skips queueing entirely.

Budgets also carry the request's trace when one exists (the SLO budget
propagation contract): every :meth:`Budget.require` checkpoint records
how much budget remained at that hop into the trace, so a shed
request's breakdown shows exactly which stage spent the budget — what
it received, what it spent, and what it forwarded downstream.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional

from ..errors import BudgetExceededError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.trace import Trace


class Budget:
    """Remaining-latency budget for one request.

    ``Budget(0.050)`` means "this request must finish within 50 ms of
    now". A ``deadline`` of ``None`` means unlimited (never expires).
    """

    __slots__ = ("deadline", "trace")

    def __init__(self, seconds: Optional[float]):
        self.deadline = None if seconds is None else time.monotonic() + seconds
        #: The request's :class:`~repro.obs.trace.Trace`, when sampled;
        #: ``require`` checkpoints budget-remaining into it per hop.
        self.trace: Optional["Trace"] = None

    @classmethod
    def unlimited(cls) -> "Budget":
        return cls(None)

    @classmethod
    def from_ms(cls, ms: Optional[float]) -> "Budget":
        """Budget from a millisecond figure (``None`` -> unlimited)."""
        return cls(None if ms is None else ms / 1000.0)

    @property
    def is_unlimited(self) -> bool:
        return self.deadline is None

    def remaining(self) -> float:
        """Seconds left (``inf`` when unlimited; may be negative)."""
        if self.deadline is None:
            return float("inf")
        return self.deadline - time.monotonic()

    @property
    def expired(self) -> bool:
        return self.deadline is not None and time.monotonic() >= self.deadline

    def require(self, operation: str) -> None:
        """Raise :class:`~repro.errors.BudgetExceededError` if spent.

        When the request is traced, the budget remaining at this hop is
        recorded (received/spent/forwarded accounting) whether or not
        the checkpoint sheds.
        """
        if self.deadline is None:
            return
        remaining = self.deadline - time.monotonic()
        if self.trace is not None:
            self.trace.note_budget(operation, remaining)
        if remaining <= 0:
            raise BudgetExceededError(
                f"latency budget exhausted before {operation} "
                f"(overrun by {-remaining * 1e3:.1f} ms)"
            )

    def __repr__(self) -> str:
        if self.deadline is None:
            return "Budget(unlimited)"
        return f"Budget({self.remaining() * 1e3:.1f} ms remaining)"
