"""Stdlib HTTP front end for the query service.

A :class:`~http.server.ThreadingHTTPServer` speaking a small JSON API so
the service is drivable with ``curl`` (no web framework in the
reproduction environment):

* ``GET  /healthz`` — liveness plus registered index names;
* ``GET  /readyz`` — readiness: 200 only when every registered index is
  materialized and the last lifecycle operation converged (503
  otherwise, so load balancers gate on the status code);
* ``GET  /query?index=NAME&lng=X&lat=Y[&exact=1][&budget_ms=N]`` —
  one point lookup through cache + batcher;
* ``POST /query`` — body ``{"index": NAME, "points": [[lng, lat], ...],
  "exact": false}`` — classified lookups for a whole batch, answered by
  one vectorized descent so network clients amortize the same way
  in-process callers do;
* ``POST /join`` — body ``{"index": NAME, "points": [[lng, lat], ...],
  "exact": false}`` — bulk count-per-polygon aggregation;
* ``GET  /stats`` — metrics snapshot (qps counters, latency percentiles,
  cache hit rate, index inventory);
* ``GET  /metrics`` — Prometheus text exposition (counters, gauges, and
  cumulative histogram buckets; per-index / per-generation labels; the
  fleet-wide bucket-merged aggregate when a fleet is attached).

Every response carries an ``X-Request-Id`` header — minted at admission,
or echoing the client's own ``X-Request-Id`` when supplied — and error
payloads repeat it alongside this worker's pid, so a failure seen by a
client is attributable to one request in one process. ``?trace=1`` (or
an ``X-Trace: 1`` header, or ``"trace": true`` in a POST body) forces a
per-stage latency breakdown onto the response under ``"trace"``.

The **admin surface** (index lifecycle; see :mod:`repro.serve.
lifecycle`) is authenticated by loopback — requests from any
non-loopback peer get 403 regardless of the bind address:

* ``GET    /admin/indexes`` — inventory with name / generation / source
  / bytes / mmap mode (plus the answering pid+worker, so operators can
  watch a rollout land on each fleet worker);
* ``POST   /admin/register`` — body ``{"name": NAME, "path":
  "idx.npz"[, "mmap_mode": "r"]}`` — register + materialize a
  serialized index;
* ``POST   /admin/reload`` — body ``{"name": NAME[, "path": "new.npz"]
  [, "mmap_mode": "r"]}`` — materialize a fresh generation and swap it
  in with zero downtime (fleet-wide when a fleet is running: the
  response returns after every worker acked);
* ``DELETE /admin/index/NAME`` — retire an index;
* ``GET    /admin/slowlog`` — the worker's slow-query ring (full
  per-stage traces for sampled requests, bare envelopes otherwise);
* ``GET/POST /admin/chaos`` — inspect / re-arm this process's fault
  injection (see :mod:`repro.serve.chaos`); ``{"spec": ""}`` disarms;
* ``GET    /admin/shards`` — this worker's shard view (slot, map
  generation, resident node-pool bytes, forward/local/shed counters)
  when the fleet runs sharded (404 otherwise).

Budget overruns surface as HTTP 503 (shed), unknown indexes as 404,
malformed requests as 400, and conflicting admin requests (duplicate
register) as 409 — so load balancers and clients can react without
parsing bodies.
"""

from __future__ import annotations

import json
import os
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlparse

from ..errors import (
    BudgetExceededError,
    InvalidRequestError,
    ServeError,
    UnknownIndexError,
)
from ..obs import Trace, mint_request_id
from . import chaos, lifecycle
from .budget import Budget
from .service import ACTService

#: Client-supplied request ids longer than this are replaced (they are
#: echoed into headers and logs; unbounded input does not belong there).
_MAX_REQUEST_ID = 128


def is_loopback(ip: str) -> bool:
    """True for addresses that can only originate on this machine."""
    return (ip.startswith("127.") or ip == "::1"
            or ip.startswith("::ffff:127."))


class ACTRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the attached :class:`ACTService`."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # the service is attached to the server object by create_server()
    @property
    def service(self) -> ACTService:
        return self.server.service  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Request identity / tracing
    # ------------------------------------------------------------------
    def _assign_request_id(self) -> str:
        """This request's id: the client's ``X-Request-Id`` when sane,
        a freshly minted one otherwise. Echoed on every response."""
        supplied = (self.headers.get("X-Request-Id") or "").strip()
        if supplied and len(supplied) <= _MAX_REQUEST_ID \
                and supplied.isprintable():
            self.request_id = supplied
        else:
            self.request_id = mint_request_id()
        return self.request_id

    def _forced_trace(self, params: Optional[dict] = None,
                      body: Optional[dict] = None,
                      kind: str = "query") -> Optional[Trace]:
        """A forced :class:`Trace` when the client asked for one
        (``?trace=1``, ``X-Trace: 1``, or ``"trace": true`` in a POST
        body), else ``None`` (the service then applies sampling)."""
        wanted = (self.headers.get("X-Trace") or "") not in ("", "0")
        if not wanted and params is not None:
            wanted = params.get("trace", ["0"])[0] not in ("0", "false", "")
        if not wanted and body is not None:
            wanted = bool(body.get("trace", False))
        if not wanted:
            return None
        return self.service.tracer.sample(
            request_id=self.request_id, kind=kind, force=True)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        parsed = urlparse(self.path)
        self._assign_request_id()
        try:
            if parsed.path == "/healthz":
                payload = {
                    "status": "ok",
                    "indexes": self.service.registry.names(),
                    "pid": os.getpid(),
                }
                worker_id = getattr(self.server, "worker_id", None)
                if worker_id is not None:
                    payload["worker"] = worker_id
                self._send(200, payload)
            elif parsed.path == "/readyz":
                self._handle_readyz()
            elif parsed.path == "/stats":
                payload = self.service.stats()
                extra = getattr(self.server, "stats_extra", None)
                if extra is not None:
                    # fleet workers contribute an aggregated cross-worker
                    # view (see repro.serve.fleet) on top of their own;
                    # the hook receives this worker's snapshot so it is
                    # not recomputed for the aggregate
                    payload["fleet"] = extra(payload)
                self._send(200, payload)
            elif parsed.path == "/metrics":
                self._handle_metrics()
            elif parsed.path == "/query":
                self._handle_query(parse_qs(parsed.query))
            elif parsed.path == "/admin/indexes":
                if self._admin_allowed():
                    self._send(200, {
                        "indexes": self.service.admin_indexes(),
                        "pid": os.getpid(),
                        "worker": getattr(self.server, "worker_id", None),
                    })
            elif parsed.path == "/admin/chaos":
                if self._admin_allowed():
                    self._send(200, {
                        "spec": chaos.spec(),
                        "active": chaos.is_active(),
                        "pid": os.getpid(),
                    })
            elif parsed.path == "/admin/slowlog":
                if self._admin_allowed():
                    self._send(200, {
                        "slow_queries": self.service.slowlog.entries(),
                        "stats": self.service.slowlog.stats(),
                        "pid": os.getpid(),
                        "worker": getattr(self.server, "worker_id", None),
                    })
            elif parsed.path == "/admin/shards":
                if self._admin_allowed():
                    shard_info = getattr(self.service, "shard_info", None)
                    if shard_info is None:
                        self._send(404, {
                            "error": "this worker is not sharded "
                                     "(start the fleet with --shards)",
                        })
                    else:
                        self._send(200, {
                            "shard": shard_info(),
                            "pid": os.getpid(),
                            "worker": getattr(self.server, "worker_id",
                                              None),
                        })
            else:
                self._send(404, {"error": f"no route {parsed.path!r}"})
        except Exception as exc:  # pragma: no cover - last-resort guard
            self._send_error_for(exc)

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        parsed = urlparse(self.path)
        self._assign_request_id()
        try:
            if parsed.path == "/join":
                self._handle_join()
            elif parsed.path == "/query":
                self._handle_query_batch()
            elif parsed.path == "/admin/register":
                self._handle_admin_body(lifecycle.OP_REGISTER)
            elif parsed.path == "/admin/reload":
                self._handle_admin_body(lifecycle.OP_RELOAD)
            elif parsed.path == "/admin/chaos":
                self._handle_chaos()
            else:
                self._send(404, {"error": f"no route {parsed.path!r}"})
        except Exception as exc:  # pragma: no cover - last-resort guard
            self._send_error_for(exc)

    def do_DELETE(self) -> None:  # noqa: N802 (stdlib naming)
        parsed = urlparse(self.path)
        self._assign_request_id()
        prefix = "/admin/index/"
        try:
            if parsed.path.startswith(prefix) and len(parsed.path) > len(
                    prefix):
                name = unquote(parsed.path[len(prefix):])
                if self._admin_allowed():
                    self._dispatch_admin({
                        "op": lifecycle.OP_UNREGISTER, "name": name,
                    })
            else:
                self._send(404, {"error": f"no route {parsed.path!r}"})
        except Exception as exc:  # pragma: no cover - last-resort guard
            self._send_error_for(exc)

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _handle_query(self, params: dict) -> None:
        try:
            index_name = params["index"][0]
            lng = float(params["lng"][0])
            lat = float(params["lat"][0])
        except (KeyError, ValueError, IndexError):
            self._send(400, {
                "error": "need index=NAME&lng=FLOAT&lat=FLOAT",
            })
            return
        exact = params.get("exact", ["0"])[0] not in ("0", "false", "")
        try:
            budget = self._parse_budget(params.get("budget_ms", [None])[0])
        except InvalidRequestError as exc:
            self._send(400, self._error_payload(exc))
            return
        trace = self._forced_trace(params=params, kind="query")
        try:
            result = self.service.query(index_name, lng, lat, exact=exact,
                                        budget=budget, trace=trace,
                                        request_id=self.request_id)
        except (UnknownIndexError, BudgetExceededError, ServeError) as exc:
            self._send_error_for(exc)
            return
        payload = {
            "index": index_name,
            "lng": lng,
            "lat": lat,
            "exact": exact,
            "true_hits": list(result.true_hits),
            "candidates": list(result.candidates),
            "polygon_ids": list(result.all_ids),
            "is_hit": result.is_hit,
            "request_id": self.request_id,
        }
        if trace is not None:
            trace.stamp("serialize")
            payload["trace"] = trace.to_dict()
        self._send(200, payload)

    def _handle_query_batch(self) -> None:
        parsed = self._parse_points_body()
        if parsed is None:
            return
        index_name, lngs, lats, exact, budget, trace = parsed
        try:
            results = self.service.query_batch(
                index_name, lngs, lats, exact=exact, budget=budget,
                trace=trace, request_id=self.request_id)
        except (UnknownIndexError, BudgetExceededError, ServeError) as exc:
            self._send_error_for(exc)
            return
        payload = {
            "index": index_name,
            "num_points": len(lngs),
            "exact": exact,
            "request_id": self.request_id,
            "results": [
                {
                    "true_hits": list(r.true_hits),
                    "candidates": list(r.candidates),
                    "polygon_ids": list(r.all_ids),
                    "is_hit": r.is_hit,
                }
                for r in results
            ],
        }
        if trace is not None:
            trace.stamp("serialize")
            payload["trace"] = trace.to_dict()
        self._send(200, payload)

    def _handle_join(self) -> None:
        parsed = self._parse_points_body(kind="join")
        if parsed is None:
            return
        index_name, lngs, lats, exact, budget, trace = parsed
        try:
            counts = self.service.join(index_name, lngs, lats, exact=exact,
                                       budget=budget, trace=trace,
                                       request_id=self.request_id)
        except (UnknownIndexError, BudgetExceededError, ServeError) as exc:
            self._send_error_for(exc)
            return
        nonzero = {int(pid): int(c) for pid, c in enumerate(counts) if c}
        payload = {
            "index": index_name,
            "num_points": len(lngs),
            "exact": exact,
            "counts": nonzero,
            "request_id": self.request_id,
        }
        if trace is not None:
            trace.stamp("serialize")
            payload["trace"] = trace.to_dict()
        self._send(200, payload)

    def _handle_metrics(self) -> None:
        """``GET /metrics``: Prometheus text exposition.

        When a fleet is attached, the worker's hook supplies the
        aggregated (bucket-merged) cross-worker view so any single
        scrape sees fleet-wide quantiles.
        """
        extra = getattr(self.server, "metrics_extra", None)
        fleet_view = extra() if extra is not None else None
        text = self.service.prometheus_text(
            fleet_view=fleet_view,
            worker_id=getattr(self.server, "worker_id", None),
        )
        body = text.encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type",
                         "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        request_id = getattr(self, "request_id", None)
        if request_id:
            self.send_header("X-Request-Id", request_id)
        self.end_headers()
        self.wfile.write(body)

    def _handle_readyz(self) -> None:
        """``GET /readyz``: readiness, as distinct from liveness.

        Ready means every registered index is materialized (no request
        will pay — or fail — a cold load) *and* the last lifecycle
        operation this process saw converged (a reload that ended in a
        NACK without a clean rollback leaves the process not-ready
        until the next successful operation). Not-ready answers 503 so
        load balancers and the fleet smoke can gate on the status code
        alone.
        """
        names = self.service.registry.names()
        indexes = {name: self.service.registry.is_materialized(name)
                   for name in names}
        ready_extra = getattr(self.server, "ready_extra", None)
        lifecycle_state = (ready_extra() if ready_extra is not None
                           else {"converged": True, "last_error": None})
        ready = (all(indexes.values())
                 and bool(lifecycle_state.get("converged", True)))
        payload = {
            "ready": ready,
            "indexes": indexes,
            "pid": os.getpid(),
        }
        payload.update(lifecycle_state)
        worker_id = getattr(self.server, "worker_id", None)
        if worker_id is not None:
            payload["worker"] = worker_id
        self._send(200 if ready else 503, payload)

    def _handle_chaos(self) -> None:
        """``POST /admin/chaos``: (re-)arm this process's fault
        injection from ``{"spec": "..."}``; an empty spec disarms."""
        if not self._admin_allowed():
            return
        body = self._read_json_body()
        if body is None:
            return
        spec = body.get("spec", "")
        if not isinstance(spec, str):
            self._send(400, {"error": "chaos spec must be a string"})
            return
        try:
            chaos.configure(spec)
        except InvalidRequestError as exc:
            self._send(400, {"error": str(exc)})
            return
        self.service.metrics.counter("admin.requests").inc()
        self._send(200, {
            "spec": chaos.spec(),
            "active": chaos.is_active(),
            "pid": os.getpid(),
        })

    # ------------------------------------------------------------------
    # Admin surface
    # ------------------------------------------------------------------
    def _admin_allowed(self) -> bool:
        """Loopback authentication for the admin surface.

        The server may legitimately bind a routable address for query
        traffic; lifecycle mutations still require the caller to be on
        this machine. Sends the 403 itself when rejecting.
        """
        ip = self.client_address[0] if self.client_address else ""
        if is_loopback(ip):
            return True
        self._send(403, {
            "error": "admin endpoints are loopback-only",
        })
        return False

    def _handle_admin_body(self, op_kind: str) -> None:
        if not self._admin_allowed():
            return
        body = self._read_json_body()
        if body is None:
            return
        body["op"] = op_kind
        self._dispatch_admin(body)

    def _dispatch_admin(self, request: dict) -> None:
        """Run one admin request: fleet-wide via the server's hook when a
        fleet is attached, otherwise directly on this service."""
        self.service.metrics.counter("admin.requests").inc()
        hook = getattr(self.server, "admin_hook", None)
        try:
            if hook is not None:
                result = hook(request)
            else:
                result = lifecycle.handle_admin_request(self.service,
                                                        request)
        except UnknownIndexError as exc:
            self._send(404, {"error": str(exc)})
            return
        except InvalidRequestError as exc:
            self._send(400, {"error": str(exc)})
            return
        except ServeError as exc:
            # duplicate registration, conflicting concurrent admin op, …
            self._send(409, {"error": str(exc)})
            return
        except Exception as exc:  # bad artifact path, load failure, …
            self._send(400, {"error": f"{type(exc).__name__}: {exc}"})
            return
        self._send(200, result)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _parse_points_body(self, kind: str = "query_batch"):
        """Shared body parsing for the batch endpoints.

        Returns ``(index_name, lngs, lats, exact, budget, trace)`` or
        ``None`` (a 4xx response has already been sent).
        """
        body = self._read_json_body()
        if body is None:
            return None
        index_name = body.get("index")
        points = body.get("points")
        if not isinstance(index_name, str) or not isinstance(points, list):
            self._send(400, {
                "error": 'need {"index": NAME, "points": [[lng, lat], ...]}',
            })
            return None
        try:
            lngs = [float(p[0]) for p in points]
            lats = [float(p[1]) for p in points]
        except (TypeError, ValueError, IndexError):
            self._send(400, {"error": "points must be [lng, lat] pairs"})
            return None
        exact = bool(body.get("exact", False))
        try:
            budget = self._parse_budget(body.get("budget_ms"))
        except InvalidRequestError as exc:
            self._send(400, self._error_payload(exc))
            return None
        trace = self._forced_trace(body=body, kind=kind)
        return index_name, lngs, lats, exact, budget, trace

    def _parse_budget(self, raw) -> Optional[Budget]:
        """``None`` -> no budget; malformed values raise
        :class:`~repro.errors.InvalidRequestError` (HTTP 400)."""
        if raw is None:
            return None
        try:
            return Budget.from_ms(float(raw))
        except (TypeError, ValueError):
            raise InvalidRequestError(
                f"budget_ms must be a number, got {raw!r}") from None

    def _read_json_body(self) -> Optional[dict]:
        raw_length = self.headers.get("Content-Length", "0")
        try:
            length = int(raw_length)
        except ValueError:
            length = -1
        if length < 0:
            # the body cannot be located on the stream, so a keep-alive
            # connection would misparse it as the next request (or block
            # reading to EOF on a negative length): 400 and close
            self._send(400, {
                "error": f"malformed Content-Length: {raw_length!r}",
            }, close=True)
            return None
        try:
            body = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError):
            self._send(400, {"error": "body must be JSON"})
            return None
        if not isinstance(body, dict):
            self._send(400, {"error": "body must be a JSON object"})
            return None
        return body

    def _send_error_for(self, exc: Exception) -> None:
        if isinstance(exc, UnknownIndexError):
            self._send(404, self._error_payload(exc))
        elif isinstance(exc, InvalidRequestError):
            self._send(400, self._error_payload(exc))
        elif isinstance(exc, BudgetExceededError):
            payload = self._error_payload(exc)
            payload["shed"] = True
            self._send(503, payload)
        else:
            self._send(500, self._error_payload(exc))

    def _error_payload(self, exc: Exception) -> dict:
        """Error body carrying the request id and the answering pid, so
        a fleet-mode failure is attributable to one request in one
        worker process."""
        return {
            "error": str(exc),
            "request_id": getattr(self, "request_id", None),
            "pid": os.getpid(),
        }

    def _send(self, status: int, payload: dict,
              close: bool = False) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if close:
            # tell the client *and* the request loop: this keep-alive
            # stream is done (used when the request body could not be
            # located, so the next bytes would be misread as a request)
            self.send_header("Connection", "close")
            self.close_connection = True
        request_id = getattr(self, "request_id", None)
        if request_id:
            self.send_header("X-Request-Id", request_id)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        """Route per-request lines to metrics instead of stderr noise."""
        try:
            self.service.metrics.counter("http.requests").inc()
        except Exception:
            pass


class ACTHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server with an attached :class:`ACTService`."""

    daemon_threads = True
    allow_reuse_address = True
    #: Fleet workers set these (see :mod:`repro.serve.fleet`): a worker
    #: slot id surfaced by ``/healthz``, and a callable — given this
    #: worker's freshly computed stats payload — whose dict is attached
    #: to ``/stats`` as the fleet-wide aggregate.
    worker_id: Optional[int] = None
    stats_extra: Optional[Callable[[dict], dict]] = None
    #: Zero-arg callable returning the fleet's aggregated (bucket-
    #: merged) view for ``/metrics``; ``None`` exposes this process's
    #: families only.
    metrics_extra: Optional[Callable[[], dict]] = None
    #: Fleet workers install their :meth:`repro.serve.lifecycle.
    #: FleetLifecycle.submit` here so admin mutations coordinate
    #: fleet-wide; ``None`` applies them to this process's service only.
    admin_hook: Optional[Callable[[dict], dict]] = None
    #: Zero-arg callable returning this process's lifecycle convergence
    #: state for ``/readyz`` (see :meth:`repro.serve.lifecycle.
    #: FleetLifecycle.status`); ``None`` means no fleet — always
    #: converged.
    ready_extra: Optional[Callable[[], dict]] = None

    def __init__(self, address: Tuple[str, int], service: ACTService,
                 bind_and_activate: bool = True):
        super().__init__(address, ACTRequestHandler,
                         bind_and_activate=bind_and_activate)
        self.service = service
        # the HTTP front's families exist as soon as the server does,
        # not on the first request (RL004)
        service.metrics.register(
            counters=("http.requests", "admin.requests"))


def create_server(service: ACTService, host: str = "127.0.0.1",
                  port: int = 8080) -> ACTHTTPServer:
    """Bind an :class:`ACTHTTPServer`; ``port=0`` picks a free port."""
    return ACTHTTPServer((host, port), service)
