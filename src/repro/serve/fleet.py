"""Pre-fork multiprocess serving fleet over shared mmap-loaded indexes.

The paper's headline result is near-linear multi-core scaling of ACT
joins (28 cores, up to 4.3 B points/s); a single GIL-bound process
cannot show that for serving. The fleet is the serving analog of
:mod:`repro.join.parallel`'s fork discipline: the parent materializes
every registered index once
(:meth:`~repro.serve.registry.IndexRegistry.prewarm` — mmap-loaded node
pools are file-backed, so forked children share their pages through the
page cache), binds the listening socket(s), then forks ``N`` workers
that each run a full :class:`~repro.serve.service.ACTService` plus HTTP
server. The parent never serves; it supervises.

Socket sharing uses ``SO_REUSEPORT`` where the platform has it: every
worker accepts on its *own* socket bound to the same address, and the
kernel load-balances connections across the group (per-worker accept
queues, no thundering herd). The parent keeps a handle on every socket
so a crashed worker's accept queue survives until its replacement is
forked into the same slot. Where ``SO_REUSEPORT`` is unavailable the
fleet falls back to the classic pre-fork model: one listening socket
bound by the parent, its fd handed to every worker through ``fork``,
all workers accepting from the shared queue (the sockets are
non-blocking, so a raced ``accept`` is absorbed instead of wedging a
worker).

Supervision: a parent thread restarts crashed workers into their slot;
:meth:`ServingFleet.shutdown` (the CLI wires ``SIGTERM`` to it) asks
each worker to stop accepting, finish its in-flight requests — the
worker's server joins live request threads on close — publish a final
metrics snapshot, and exit 0. Workers that outlive the drain timeout
are killed.

Observability: each worker periodically publishes its
``service.stats()`` snapshot into a ``multiprocessing.Manager`` dict
shared across the fleet; every worker's ``/stats`` response carries a
``fleet`` section aggregating them (fleet-wide qps, sheds, errors, p99
upper bound), so operators see the whole fleet from any single worker.

Index lifecycle: a second ``Manager`` dict is the fleet's admin control
channel (see :mod:`repro.serve.lifecycle`). Any worker's loopback
``POST /admin/reload`` (or the parent's :meth:`ServingFleet.admin`)
coordinates a zero-downtime fleet-wide swap: the receiver materializes
the new generation once, writes it to a side ``.npz``, and every other
process mmaps it, swaps its hot view, invalidates its cell cache, and
acks — the admin response returns only after the whole fleet converged,
and no query fails or mixes generations while it happens.

Shard mode (``FleetConfig(shards=N)``): instead of every worker
serving every index, the parent plans a
:class:`~repro.serve.shard.ShardMap` over the prewarmed indexes
(contiguous boundary-level cell-id ranges, weighted by coverage),
publishes it on the control channel, and each worker slot materializes
only its slice (:func:`~repro.serve.shard.slice_index`) behind a
:class:`~repro.serve.router.ShardedACTService`. The binary data plane
then binds one *distinct* socket per slot — shard routing needs
per-worker addressing, which a kernel-balanced ``SO_REUSEPORT`` group
cannot provide — with the parent holding every listening socket, so a
killed worker's forwards queue in its backlog until the supervisor
respawns the slot (the router's reconnect-and-replay rides this).
Any worker answers any request: non-owned keys forward shard-wise over
``OP_FORWARD_QUERY``/``OP_FORWARD_JOIN`` and gather back. Workers
publish ``admission: {inflight, ts}`` next to their stats snapshots;
the router sheds at admission only when every owning slot reports a
fresh saturated snapshot. Rebalancing (:meth:`ServingFleet.rebalance`)
republishes a higher-generation map; workers adopt and re-slice on
their next publisher tick — placement is just another generation swap.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import shutil
import signal
import socket
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ServeError
from ..join.parallel import fork_available
from ..obs.histogram import merge_histogram_snapshots
from .aserver import BinaryFrontend
from .lifecycle import PARENT_IDENTITY, FleetLifecycle
from .registry import IndexRegistry
from .router import ShardedACTService
from .server import ACTHTTPServer
from .service import ACTService, ServeConfig
from .shard import (ShardMap, plan_shard_map, publish_shard_map,
                    read_shard_map)

#: Listen backlog per socket; generous because a crashed worker's queue
#: buffers connections until the supervisor respawns it.
_BACKLOG = 128


def reuseport_available() -> bool:
    return hasattr(socket, "SO_REUSEPORT")


def fleet_available() -> bool:
    """True where the fleet can run at all (fork; any socket mode)."""
    return fork_available()


@dataclass(frozen=True)
class FleetConfig:
    """Tuning knobs for one serving fleet."""

    workers: int = 2
    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick a free port (reported by ``address``)
    #: ``None`` disables the binary data plane; a port (0 = pick free,
    #: reported by ``binary_address``) gives every worker an async
    #: :class:`~repro.serve.aserver.BinaryFrontend` next to its JSON
    #: server, load-balanced the same way the HTTP sockets are.
    binary_port: Optional[int] = None
    serve: ServeConfig = field(default_factory=ServeConfig)
    #: How often each worker publishes its stats snapshot.
    stats_interval_s: float = 0.5
    #: How long shutdown waits for workers to drain before killing them.
    drain_timeout_s: float = 10.0
    #: Idle keep-alive connections are dropped after this long so a
    #: parked client cannot hold a request thread open across a drain
    #: (must be below ``drain_timeout_s`` or drains degrade to kills).
    keepalive_idle_timeout_s: float = 5.0
    #: Pause before respawning a crashed worker; doubles (up to the max)
    #: while a slot keeps dying young, so a deterministic crasher decays
    #: into a slow retry loop instead of a fork storm.
    restart_backoff_s: float = 0.1
    restart_backoff_max_s: float = 5.0
    #: ``None`` auto-detects ``SO_REUSEPORT``; ``False`` forces the
    #: shared-socket fallback (used by tests to cover both modes).
    reuseport: Optional[bool] = None
    #: How long an admin operation waits for every process to ack a
    #: fleet-wide lifecycle change before reporting the stragglers.
    admin_timeout_s: float = 30.0
    #: Where reload coordinators write side ``.npz`` artifacts; ``None``
    #: creates (and cleans up) a private temp directory.
    artifact_dir: Optional[str] = None
    #: ``0`` disables sharding (every worker serves every index).
    #: ``N > 0`` runs the fleet sharded: must equal ``workers`` (one
    #: shard slot per worker), requires the binary data plane (a
    #: ``binary_port`` of ``None`` is auto-promoted to ``0``), and
    #: binds one distinct binary socket per slot.
    shards: int = 0
    #: Admission control: a worker is saturated at this many in-flight
    #: batches; the router sheds only when EVERY owning slot is
    #: saturated per a fresh snapshot. ``0`` disables shedding.
    shed_inflight: int = 64
    #: Snapshots older than this fail open for admission decisions.
    shed_staleness_s: float = 2.0


#: Reserved snapshot-channel key: counters and histogram buckets
#: inherited from crashed workers (folded in by the supervisor so fleet
#: totals stay monotone across restarts).
RETIRED_KEY = "retired"

#: The counters the fleet aggregate sums across workers.
_AGGREGATED_COUNTERS = (
    "queries.total",
    "queries.shed",
    "queries.errors",
    "queries.invalid",
    "queries.cache_hits",
    "joins.total",
    "http.requests",
    "binary.connections",
    "binary.frames",
    "binary.requests",
    "binary.errors",
    "binary.bytes_in",
    "binary.bytes_out",
    "faults.chaos_injections",
    "faults.apply_failures",
    "faults.artifact_corrupt",
    "faults.quarantined",
    "faults.reload_rollbacks",
    "lifecycle.artifacts_gcd",
    "shard.forwarded",
    "shard.local",
    "shard.shed",
    "shard.forward_errors",
)

#: The latency histograms the fleet aggregate merges bucket-wise.
_AGGREGATED_HISTOGRAMS = (
    "queries.latency_seconds",
    "joins.latency_seconds",
    "binary.request_seconds",
)


def _retired_parts(retired: dict) -> Tuple[dict, dict]:
    """``(counters, histograms)`` from a retired baseline entry.

    Accepts both the current nested shape and the legacy flat counter
    dict a pre-upgrade supervisor may have written.
    """
    if "counters" in retired or "histograms" in retired:
        return retired.get("counters", {}), retired.get("histograms", {})
    return retired, {}


def aggregate_snapshots(snapshots: Dict[object, dict]) -> dict:
    """Fleet-wide view over per-worker ``service.stats()`` snapshots.

    Counters sum across live workers plus the ``RETIRED_KEY`` baseline
    of crashed predecessors, so totals never go backwards when a slot
    is respawned. Fleet qps is total queries over the longest worker
    uptime (workers start together, so this is the fleet's lifetime).
    Latency histograms share one fixed bucket ladder fleet-wide, so
    per-worker snapshots merge bucket-wise
    (:func:`repro.obs.histogram.merge_histogram_snapshots`) and the
    fleet p50/p99/p999 are real quantiles of the union of every
    worker's samples — not a worst-worker bound.
    """
    per_worker: List[dict] = []
    retired = snapshots.get(RETIRED_KEY, {})
    retired_counters, retired_hists = _retired_parts(retired)
    totals = {key: int(retired_counters.get(key, 0))
              for key in _AGGREGATED_COUNTERS}
    merge_inputs: Dict[str, List[dict]] = {
        name: ([retired_hists[name]] if name in retired_hists else [])
        for name in _AGGREGATED_HISTOGRAMS
    }
    max_uptime = 0.0
    for worker_id in sorted(k for k in snapshots if k != RETIRED_KEY):
        snap = snapshots[worker_id]
        metrics = snap.get("metrics", {})
        counters = metrics.get("counters", {})
        histograms = metrics.get("histograms", {})
        latency = histograms.get("queries.latency_seconds", {})
        uptime = float(snap.get("uptime_seconds", 0.0))
        max_uptime = max(max_uptime, uptime)
        for key in totals:
            totals[key] += int(counters.get(key, 0))
        for name in _AGGREGATED_HISTOGRAMS:
            if name in histograms:
                merge_inputs[name].append(histograms[name])
        entry = {
            "worker": snap.get("worker", worker_id),
            "pid": snap.get("pid"),
            "uptime_seconds": uptime,
            "queries_total": int(counters.get("queries.total", 0)),
            "qps": (counters.get("queries.total", 0) / uptime
                    if uptime else 0.0),
            "latency_p99_seconds": float(latency.get("p99", 0.0)),
        }
        # sharded workers carry their slot view + admission depth so the
        # fleet aggregate (and /metrics) can render per-shard series
        if "shard" in snap:
            entry["shard"] = snap["shard"]
        if "admission" in snap:
            entry["admission"] = snap["admission"]
        per_worker.append(entry)
    merged: Dict[str, dict] = {}
    for name, inputs in merge_inputs.items():
        snap = merge_histogram_snapshots(inputs)
        if snap is not None:
            merged[name] = snap
    fleet_latency = merged.get("queries.latency_seconds", {})
    view = {
        "workers": len(per_worker),
        "counters": totals,
        "qps": totals["queries.total"] / max_uptime if max_uptime else 0.0,
        "latency_p50_seconds": float(fleet_latency.get("p50", 0.0)),
        "latency_p99_seconds": float(fleet_latency.get("p99", 0.0)),
        "latency_p999_seconds": float(fleet_latency.get("p999", 0.0)),
        "histograms": merged,
        "per_worker": per_worker,
    }
    if retired:
        view["retired_counters"] = {k: int(v)
                                    for k, v in retired_counters.items()}
    return view


class ServingFleet:
    """Parent-side controller: prewarm, bind, fork, supervise, drain."""

    def __init__(self, registry: IndexRegistry,
                 config: Optional[FleetConfig] = None):
        if not fork_available():
            raise ServeError(
                "the serving fleet needs the 'fork' start method "
                "(unavailable on this platform); run single-process "
                "instead"
            )
        self.registry = registry
        self.config = config if config is not None else FleetConfig()
        if self.config.workers < 1:
            raise ServeError(
                f"fleet needs at least one worker, got "
                f"{self.config.workers}"
            )
        if self.config.shards:
            if self.config.shards != self.config.workers:
                raise ServeError(
                    f"shard mode needs one worker per shard slot: got "
                    f"shards={self.config.shards} but "
                    f"workers={self.config.workers}"
                )
            if self.config.binary_port is None:
                # shard forwarding rides the binary protocol; promote to
                # an ephemeral port rather than refusing to start
                self.config = dataclasses.replace(self.config,
                                                  binary_port=0)
        self.reuseport = (reuseport_available()
                          if self.config.reuseport is None
                          else bool(self.config.reuseport))
        self._ctx = multiprocessing.get_context("fork")
        self._sockets: List[socket.socket] = []
        self._binary_sockets: List[socket.socket] = []
        self._processes: List[Optional[multiprocessing.Process]] = []
        self._spawn_times: List[float] = []
        self._backoffs: List[float] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._supervisor: Optional[threading.Thread] = None
        self._manager = None
        self._snapshots = None
        self._control = None
        self._op_lock = None
        self._lifecycle: Optional[FleetLifecycle] = None
        self._artifact_dir: Optional[str] = None
        self._own_artifact_dir = False
        self._started = False
        self.restarts = 0
        #: The active placement in shard mode (``None`` otherwise).
        self.shard_map: Optional[ShardMap] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServingFleet":
        """Prewarm, bind, and fork the workers; returns immediately.

        The sockets are listening from the moment ``start`` returns, so
        clients may connect right away — connections queue until a
        worker accepts them.
        """
        if self._started:
            raise ServeError("fleet already started")
        self._started = True
        # materialize + build hot-path artifacts BEFORE forking: workers
        # inherit finished indexes (copy-on-write; page-cache-shared for
        # mmap-loaded node pools) instead of building N copies
        self.registry.prewarm()
        # the stats + admin channels must exist pre-fork so children
        # inherit the proxies; the manager runs as its own child process
        # of the parent
        self._manager = self._ctx.Manager()
        self._snapshots = self._manager.dict()
        self._control = self._manager.dict()
        self._op_lock = self._manager.Lock()
        if self.config.artifact_dir is not None:
            self._artifact_dir = self.config.artifact_dir
        else:
            self._artifact_dir = tempfile.mkdtemp(prefix="repro-fleet-")
            self._own_artifact_dir = True
        self._lifecycle = FleetLifecycle(
            self._control, self._op_lock, PARENT_IDENTITY,
            workers=self.config.workers, registry=self.registry,
            artifact_dir=self._artifact_dir,
            timeout_s=self.config.admin_timeout_s,
        )
        if self.config.shards:
            # plan placement over the prewarmed (full) indexes and
            # publish it on the control channel before any worker forks;
            # each worker slices its own slot from the map it inherits
            self.shard_map = plan_shard_map(
                {name: record.index
                 for name, record in self.registry.materialized.items()},
                self.config.shards)
            publish_shard_map(self._control, self.shard_map)
        self._bind_sockets()
        self._processes = [None] * self.config.workers
        self._spawn_times = [0.0] * self.config.workers
        self._backoffs = [self.config.restart_backoff_s] * self.config.workers
        for slot in range(self.config.workers):
            self._spawn(slot)
        self._supervisor = threading.Thread(
            target=self._supervise, name="fleet-supervisor", daemon=True)
        self._supervisor.start()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """The ``(host, port)`` every worker serves on."""
        if not self._sockets:
            raise ServeError("fleet is not started")
        return self._sockets[0].getsockname()[:2]

    @property
    def binary_address(self) -> Tuple[str, int]:
        """The ``(host, port)`` of the binary data plane."""
        if not self._binary_sockets:
            raise ServeError(
                "fleet has no binary port (start it with "
                "FleetConfig(binary_port=...))")
        return self._binary_sockets[0].getsockname()[:2]

    @property
    def shard_addresses(self) -> Dict[int, Tuple[str, int]]:
        """Per-slot ``(host, port)`` of the binary plane in shard mode."""
        if not self.config.shards:
            raise ServeError(
                "fleet is not sharded (start it with "
                "FleetConfig(shards=N))")
        if not self._binary_sockets:
            raise ServeError("fleet is not started")
        return {slot: sock.getsockname()[:2]
                for slot, sock in enumerate(self._binary_sockets)}

    def rebalance(self) -> ShardMap:
        """Re-plan placement and publish it as the next map generation.

        Workers adopt the new map (and re-slice their resident
        node-pool view) on their next publisher tick; queries keep
        flowing throughout — a key briefly routed by the old map is
        still answered, because forwarded frames execute locally on
        whichever slot receives them.
        """
        if self.shard_map is None or self._control is None:
            raise ServeError("fleet is not running in shard mode")
        self.shard_map = plan_shard_map(
            {name: record.index
             for name, record in self.registry.materialized.items()},
            self.config.shards,
            generation=self.shard_map.generation + 1)
        publish_shard_map(self._control, self.shard_map)
        return self.shard_map

    def live_workers(self) -> int:
        with self._lock:
            return sum(1 for p in self._processes
                       if p is not None and p.is_alive())

    def stats(self) -> dict:
        """Parent-side fleet aggregate (same shape as ``/stats`` fleet)."""
        return aggregate_snapshots(self._snapshot_view())

    def admin(self, request: dict) -> dict:
        """Run one lifecycle operation fleet-wide from the parent.

        Same request/response shapes as the HTTP admin surface (the
        parent becomes the coordinator): e.g. ``fleet.admin({"op":
        "reload", "name": "nyc", "path": "new.npz"})`` returns after
        every worker swapped and acked the new generation.
        """
        if self._lifecycle is None:
            raise ServeError("fleet is not started")
        return self._lifecycle.submit(request)

    def wait(self) -> None:
        """Block until :meth:`shutdown` is called (CLI foreground mode)."""
        self._stop.wait()

    def shutdown(self) -> None:
        """Drain and stop the fleet (idempotent).

        Sends ``SIGTERM`` to every worker: each stops accepting,
        finishes its in-flight requests, publishes a final snapshot,
        and exits 0. Workers still alive after ``drain_timeout_s`` are
        killed.
        """
        if self._stop.is_set():
            return
        self._stop.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=5.0)
        with self._lock:
            processes = [p for p in self._processes if p is not None]
        for process in processes:
            if process.is_alive() and process.pid:
                try:
                    os.kill(process.pid, signal.SIGTERM)
                except ProcessLookupError:
                    pass
        deadline = time.monotonic() + self.config.drain_timeout_s
        for process in processes:
            process.join(timeout=max(0.0, deadline - time.monotonic()))
        for process in processes:
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
        for sock in self._sockets + self._binary_sockets:
            try:
                sock.close()
            except OSError:
                pass
        self._sockets = []
        self._binary_sockets = []
        if self._manager is not None:
            self._manager.shutdown()
            self._manager = None
            self._snapshots = None
            self._control = None
            self._op_lock = None
            self._lifecycle = None
        if self._own_artifact_dir and self._artifact_dir is not None:
            shutil.rmtree(self._artifact_dir, ignore_errors=True)
            self._artifact_dir = None

    def __enter__(self) -> "ServingFleet":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _bind_sockets(self) -> None:
        first = self._listen_socket(self.config.port)
        self._sockets = [first]
        if self.reuseport:
            # one accept queue per worker, all in the kernel's reuseport
            # group; the parent holds every socket so a crashed worker's
            # queue keeps buffering until the slot is respawned
            port = first.getsockname()[1]
            for _ in range(1, self.config.workers):
                self._sockets.append(self._listen_socket(port))
        if self.config.binary_port is None:
            return
        if self.config.shards:
            # shard routing must address a SPECIFIC slot, which a
            # kernel-balanced reuseport group cannot do: bind one
            # distinct socket per slot instead (slot 0 on the
            # configured port, the rest ephemeral). The parent holds
            # every socket, so a killed worker's forwards queue in its
            # backlog until the supervisor respawns the slot.
            self._binary_sockets = [
                self._listen_socket(self.config.binary_port
                                    if slot == 0 else 0)
                for slot in range(self.config.workers)
            ]
            return
        # the binary data plane mirrors the HTTP socket discipline:
        # per-worker reuseport accept queues, or one shared socket
        # handed to every worker through fork
        first_bin = self._listen_socket(self.config.binary_port)
        self._binary_sockets = [first_bin]
        if self.reuseport:
            port = first_bin.getsockname()[1]
            for _ in range(1, self.config.workers):
                self._binary_sockets.append(self._listen_socket(port))

    def _listen_socket(self, port: int) -> socket.socket:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            if self.reuseport:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((self.config.host, port))
            sock.listen(_BACKLOG)
            # non-blocking so a raced accept in shared-socket mode
            # surfaces as BlockingIOError (absorbed by the server loop)
            # instead of wedging a worker inside accept()
            sock.setblocking(False)
        except BaseException:
            sock.close()
            raise
        return sock

    def _worker_socket(self, slot: int) -> socket.socket:
        return self._sockets[slot if self.reuseport else 0]

    def _worker_binary_socket(self, slot: int) -> Optional[socket.socket]:
        if not self._binary_sockets:
            return None
        if self.config.shards:
            return self._binary_sockets[slot]  # one distinct socket/slot
        return self._binary_sockets[slot if self.reuseport else 0]

    def _spawn(self, slot: int) -> None:
        process = self._ctx.Process(
            target=_worker_main,
            name=f"fleet-worker-{slot}",
            args=(slot, self._worker_socket(slot), self.registry,
                  self.config, self._snapshots, os.getpid(),
                  self._control, self._op_lock, self._artifact_dir,
                  self._worker_binary_socket(slot),
                  (self.shard_map.to_wire()
                   if self.shard_map is not None else None),
                  (self.shard_addresses
                   if self.config.shards else None)),
        )
        process.start()
        with self._lock:
            self._processes[slot] = process
            self._spawn_times[slot] = time.monotonic()

    def _supervise(self) -> None:
        """Restart crashed workers into their slot until shutdown.

        Also absorbs pending admin operations into the *parent's*
        registry (before any respawn below), so a worker forked after a
        reload inherits the current generation instead of the one the
        fleet was born with.
        """
        while not self._stop.wait(0.2):
            lifecycle = self._lifecycle
            if lifecycle is not None:
                try:
                    lifecycle.poll()
                except Exception:  # pragma: no cover - never kill the
                    pass           # supervisor over an admin op
            for slot in range(self.config.workers):
                with self._lock:
                    process = self._processes[slot]
                if process is None or process.is_alive():
                    continue
                process.join()
                if self._stop.is_set():
                    break
                self._retire_snapshot(slot)
                self.restarts += 1
                backoff = self._next_backoff(slot)
                if self._stop.wait(backoff):
                    break
                self._spawn(slot)

    def _next_backoff(self, slot: int) -> float:
        """Exponential per-slot backoff while a worker keeps dying young.

        A worker that survived well past its backoff resets the slot to
        the base pause; one that died almost immediately doubles it (up
        to the cap), so a deterministic crasher costs a few forks per
        ``restart_backoff_max_s`` instead of ten per second, while a
        one-off crash still restarts promptly.
        """
        with self._lock:
            uptime = time.monotonic() - self._spawn_times[slot]
            young = uptime < max(1.0, 2.0 * self._backoffs[slot])
            if young:
                self._backoffs[slot] = min(self.config.restart_backoff_max_s,
                                           2.0 * self._backoffs[slot])
            else:
                self._backoffs[slot] = self.config.restart_backoff_s
            return self._backoffs[slot]

    def _retire_snapshot(self, slot: int) -> None:
        """Fold a crashed worker's last snapshot into the retired base.

        Its replacement republishes the slot from zero; without this the
        fleet totals (and merged latency buckets) would drop by
        everything the dead worker served. The supervisor is the only
        writer of the retired entry, so the read-modify-write needs no
        cross-process lock. (Counters lag by at most one publish
        interval — whatever the worker served after its last snapshot
        dies with it.)
        """
        snapshots = self._snapshots
        if snapshots is None:
            return
        try:
            last = snapshots.get(slot)
            if not last:
                return
            metrics = last.get("metrics", {})
            counters = metrics.get("counters", {})
            histograms = metrics.get("histograms", {})
            base_counters, base_hists = _retired_parts(
                dict(snapshots.get(RETIRED_KEY, {})))
            folded_counters = dict(base_counters)
            for key, value in counters.items():
                folded_counters[key] = (int(folded_counters.get(key, 0))
                                        + int(value))
            folded_hists = dict(base_hists)
            for name in _AGGREGATED_HISTOGRAMS:
                merged = merge_histogram_snapshots([
                    s for s in (base_hists.get(name), histograms.get(name))
                    if s is not None
                ])
                if merged is not None:
                    folded_hists[name] = merged
            snapshots[RETIRED_KEY] = {
                "counters": folded_counters,
                "histograms": folded_hists,
            }
            del snapshots[slot]
        except (OSError, EOFError, BrokenPipeError, KeyError):
            pass

    def _snapshot_view(self) -> Dict[int, dict]:
        snapshots = self._snapshots
        if snapshots is None:
            return {}
        try:
            return dict(snapshots)
        except (OSError, EOFError, BrokenPipeError):  # manager gone
            return {}


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
class _DrainingHTTPServer(ACTHTTPServer):
    """Worker-side server: in-flight requests are joined on close.

    Request threads are non-daemon and ``server_close`` blocks on them,
    which is what turns SIGTERM into a graceful drain instead of
    cutting connections mid-response.
    """

    daemon_threads = False
    block_on_close = True
    #: Set per instance from ``FleetConfig.keepalive_idle_timeout_s``.
    keepalive_idle_timeout: float = 5.0

    def get_request(self):
        # the listening socket is non-blocking (see _listen_socket); the
        # accepted connection must not inherit that, request handlers do
        # blocking reads
        request, client_address = self.socket.accept()
        # a finite timeout instead of plain blocking: an idle keep-alive
        # connection parks its thread in the next-request readline, and
        # with non-daemon threads that would hold server_close() — and
        # every SIGTERM drain — hostage until the parent kills us. On
        # timeout the handler closes the connection and the thread exits.
        request.settimeout(self.keepalive_idle_timeout)
        return request, client_address


def _adopt_socket(server: ACTHTTPServer, sock: socket.socket) -> None:
    """Replace the server's freshly created socket with the fleet's.

    The server is constructed with ``bind_and_activate=False``; the
    inherited socket is already bound and listening, so neither bind nor
    activate runs — only the bookkeeping ``server_bind`` would have done.
    """
    server.socket.close()
    server.socket = sock
    host, port = sock.getsockname()[:2]
    server.server_address = (host, port)
    server.server_name = host
    server.server_port = port


def _worker_main(slot: int, sock: socket.socket, registry: IndexRegistry,
                 config: FleetConfig, snapshots,
                 parent_pid: int, control=None, op_lock=None,
                 artifact_dir: Optional[str] = None,
                 binary_sock: Optional[socket.socket] = None,
                 shard_wire: Optional[dict] = None,
                 shard_addresses: Optional[Dict[int, Tuple[str, int]]]
                 = None) -> None:
    """One fleet worker: a full service + HTTP server on the fleet socket.

    Runs in a forked child. The registry arrives materialized (the
    parent prewarmed it), so constructing the service is cheap and the
    node-pool pages of mmap-loaded indexes stay shared with every
    sibling through the page cache. When the fleet has a binary port,
    the worker also runs an async :class:`~repro.serve.aserver.
    BinaryFrontend` on its inherited binary socket — both fronts share
    this worker's one service, so ``binary.*`` telemetry lands in the
    same snapshots the publisher ships fleet-wide.

    In shard mode (``shard_wire`` given) the worker runs a
    :class:`~repro.serve.router.ShardedACTService` instead: its
    constructor re-slices this fork's registry copy down to the slot's
    keyspace ranges, dropping the resident node-pool footprint to
    roughly ``1/num_slots`` of the full build.
    """
    stats_interval_s = config.stats_interval_s
    if shard_wire is not None:
        service: ACTService = ShardedACTService(
            registry=registry, config=config.serve,
            shard_map=ShardMap.from_wire(shard_wire), slot=slot,
            addresses=shard_addresses, snapshots=snapshots,
            shed_inflight=config.shed_inflight,
            shed_staleness_s=config.shed_staleness_s,
        )
    else:
        service = ACTService(registry=registry, config=config.serve)
    server = _DrainingHTTPServer(sock.getsockname()[:2], service,
                                 bind_and_activate=False)
    _adopt_socket(server, sock)
    server.worker_id = slot
    server.keepalive_idle_timeout = config.keepalive_idle_timeout_s
    frontend = None
    if binary_sock is not None:
        frontend = BinaryFrontend(service, sock=binary_sock,
                                  worker_id=slot).start()
    lifecycle = None
    if control is not None and op_lock is not None:
        lifecycle = FleetLifecycle(
            control, op_lock, str(slot), workers=config.workers,
            service=service, artifact_dir=artifact_dir,
            timeout_s=config.admin_timeout_s,
        )
        # absorb (idempotently: the parent's registry usually already
        # carried it through the fork) and ack any operation published
        # before this worker existed — a respawn mid-reload must not
        # leave the coordinator's ack barrier hanging
        lifecycle.poll()
        # admin mutations arriving over HTTP at this worker coordinate
        # the whole fleet
        server.admin_hook = lifecycle.submit
        # /readyz reflects this worker's lifecycle convergence: a
        # reload that ended split (NACK without a clean rollback)
        # makes the worker not-ready until the next clean operation
        server.ready_extra = lifecycle.status
    stopping = threading.Event()

    def publish(snap: Optional[dict] = None) -> None:
        if snapshots is None:
            return
        if snap is None:
            snap = service.stats()
        snap = dict(snap)
        snap["worker"] = slot
        snap["pid"] = os.getpid()
        admission_info = getattr(service, "admission_info", None)
        if admission_info is not None:
            # the router on every slot reads sibling inflight depths
            # from these snapshots for fleet-aware admission control
            snap["admission"] = admission_info()
        try:
            snapshots[slot] = snap
        except (OSError, EOFError, BrokenPipeError):
            pass  # manager is gone; the fleet is shutting down

    def fleet_stats(own_stats: dict) -> dict:
        # republish the snapshot the handler just computed (no second
        # service.stats() per /stats poll), then aggregate everyone's
        publish(own_stats)
        try:
            view = dict(snapshots) if snapshots is not None else {}
        except (OSError, EOFError, BrokenPipeError):
            view = {}
        return aggregate_snapshots(view)

    server.stats_extra = fleet_stats

    def fleet_metrics() -> dict:
        # /metrics wants this worker's freshest numbers inside the fleet
        # aggregate too, so publish before reading the channel
        publish()
        try:
            view = dict(snapshots) if snapshots is not None else {}
        except (OSError, EOFError, BrokenPipeError):
            view = {}
        return aggregate_snapshots(view)

    server.metrics_extra = fleet_metrics

    def request_shutdown() -> None:
        if not stopping.is_set():
            stopping.set()
            # shutdown() blocks until serve_forever exits; never call it
            # from the serving thread itself
            threading.Thread(target=server.shutdown, daemon=True).start()

    def on_sigterm(signum, frame) -> None:
        request_shutdown()

    signal.signal(signal.SIGTERM, on_sigterm)
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # parent owns Ctrl-C

    def publisher() -> None:
        publish()
        while not stopping.wait(stats_interval_s):
            if lifecycle is not None:
                try:
                    # absorb fleet-wide admin ops (reload/register/
                    # unregister) published by a sibling coordinator
                    lifecycle.poll()
                except Exception:
                    pass  # an op failure must never kill the publisher
            if shard_wire is not None and control is not None:
                try:
                    # adopt a rebalanced (higher-generation) placement;
                    # adopt_shard_map is monotonic, so re-reading the
                    # current map every tick is a no-op
                    latest = read_shard_map(control)
                    if latest is not None:
                        service.adopt_shard_map(latest)
                except Exception:
                    pass  # a bad map must never kill the publisher
            publish()
            if os.getppid() != parent_pid:
                # orphaned (parent died without drain): stop serving
                request_shutdown()

    publisher_thread = threading.Thread(target=publisher,
                                        name="fleet-stats", daemon=True)
    publisher_thread.start()
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        stopping.set()
        if frontend is not None:
            frontend.stop()  # binary clients see EOF; loop thread joins
        server.server_close()  # joins in-flight request threads (drain)
        service.close()
        publish()  # final post-drain snapshot
        for s in (sock, binary_sock):
            if s is None:
                continue
            try:
                s.close()
            except OSError:
                pass
