"""Zero-copy binary batch protocol: the serving stack's fast data plane.

The JSON API costs milliseconds per batch in parsing and string
building alone — the ACT core answers a 20k-point exact batch in a
fraction of that. This module defines a length-prefixed, versioned,
little-endian frame protocol whose payloads are packed ``float64``
arrays: a request's lng/lat columns are handed to
``numpy.frombuffer`` straight out of the receive buffer (no per-point
Python objects, no text), and a response packs the classified results
back as flat count/id arrays the same way.

Frame layout (all integers little-endian)::

    offset  size  field
    0       4     magic  b"ACTB"
    4       1     version (= 1)
    5       1     op
    6       2     flags        (bit 0: exact refinement)
    8       8     request id   (uint64, echoed verbatim on responses)
    16      4     payload length (uint32, bytes after the header)
    20      4     reserved (0)
    24      ...   payload

The 24-byte header keeps every ``float64`` column inside the payload
8-byte aligned relative to the frame start, so a frame received into
one buffer can be decoded without re-packing.

Ops: ``OP_PING``/``OP_PONG`` (liveness), ``OP_QUERY`` ->
``OP_RESULTS`` (classified batch lookup, the ``POST /query`` analog),
``OP_JOIN`` -> ``OP_COUNTS`` (count-per-polygon aggregation, the
``POST /join`` analog), ``OP_FORWARD_QUERY``/``OP_FORWARD_JOIN``
(shard-router fan-out: identical payloads, answered from the
receiver's local shard slice without re-routing), and ``OP_ERROR``
(status + message; statuses mirror the HTTP codes: 400 malformed,
404 unknown index, 503 shed, 500 internal). The full spec lives in
``docs/PROTOCOL.md``.

The decoder is strict: bad magic, unsupported version, and frames
whose declared payload exceeds :data:`MAX_FRAME_BYTES` are *fatal*
(:class:`FrameError` with ``fatal=True`` — the stream cannot be
trusted past them); a structurally sound frame whose payload is
truncated or inconsistent (a point count that implies more bytes than
the payload carries, a name that overruns it) is rejected with a
per-frame error so the connection survives.

:class:`Client` is the blocking-socket reference client used by the
benchmarks, the tests, and CI smoke: one call per request/response, or
``send_query`` / ``recv_results`` split apart to pipeline many frames
on one connection.
"""

from __future__ import annotations

import random
import socket
import struct
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..act.core import QueryResult
from ..errors import (
    BudgetExceededError,
    ConnectionLostError,
    InvalidRequestError,
    ServeError,
    UnknownIndexError,
)

#: Anything the decoders accept as a frame or payload byte buffer.
Buffer = Union[bytes, bytearray, memoryview]
#: Point columns: an ndarray or anything ``np.asarray`` turns into one.
PointArray = Union[np.ndarray, Sequence[float]]

#: Frame magic: "ACT Binary".
MAGIC = b"ACTB"
#: Protocol version this codec speaks.
VERSION = 1
#: Hard ceiling on a frame's declared payload; anything larger is a
#: protocol violation (about 2M points per request), not a real batch.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: magic, version, op, flags, request_id, payload_len, reserved.
HEADER = struct.Struct("<4sBBHQII")
HEADER_SIZE = HEADER.size  # 24

# Request ops.
OP_PING = 0x01
OP_QUERY = 0x02
OP_JOIN = 0x03
# Shard-routing forward ops (bit 4 set): same payload as their plain
# counterparts, but the receiving worker answers from its *local*
# shard slice without re-routing — a forwarded frame never forwards
# again, so routing loops are impossible by construction. Responses
# reuse OP_RESULTS/OP_COUNTS.
OP_FORWARD_QUERY = 0x12
OP_FORWARD_JOIN = 0x13
# Response ops (high bit set).
OP_PONG = 0x81
OP_RESULTS = 0x82
OP_COUNTS = 0x83
OP_ERROR = 0xFF

#: Request flag: refine candidates (exact classification).
FLAG_EXACT = 0x0001

#: Points-request sub-header: name_len, reserved, n_points, budget_ms
#: (NaN = no budget).
_REQ = struct.Struct("<HHId")
#: Results sub-header: n_points, total_true, total_candidates, reserved.
_RES = struct.Struct("<IIII")
#: Counts sub-header: num_entries, reserved.
_CNT = struct.Struct("<II")
#: Error sub-header: status, reserved (message utf-8 after).
_ERR = struct.Struct("<HH")

#: Error statuses (mirror the JSON API's HTTP codes).
STATUS_BAD_REQUEST = 400
STATUS_NOT_FOUND = 404
STATUS_INTERNAL = 500
STATUS_SHED = 503


class FrameError(ServeError):
    """A frame the decoder refuses.

    ``fatal`` marks violations after which the byte stream cannot be
    re-synchronized (bad magic, unsupported version, oversized declared
    length) — the connection must close after the error frame.
    Non-fatal errors are per-frame (the framing itself was sound), so
    the connection stays usable.
    """

    def __init__(self, message: str, status: int = STATUS_BAD_REQUEST,
                 fatal: bool = False) -> None:
        super().__init__(message)
        self.status = status
        self.fatal = fatal


# ----------------------------------------------------------------------
# Header
# ----------------------------------------------------------------------
def encode_header(op: int, flags: int, request_id: int,
                  payload_len: int) -> bytes:
    return HEADER.pack(MAGIC, VERSION, op, flags, request_id,
                       payload_len, 0)


def try_parse_header(buf: Buffer, offset: int = 0,
                     ) -> Optional[Tuple[int, int, int, int]]:
    """``(op, flags, request_id, payload_len)`` at ``buf[offset:]``.

    Returns ``None`` when fewer than :data:`HEADER_SIZE` bytes are
    available (wait for more). Raises a *fatal* :class:`FrameError` on
    bad magic, unsupported version, or an oversized declared payload —
    the caller must answer with an error frame and close.
    """
    if len(buf) - offset < HEADER_SIZE:
        return None
    magic, version, op, flags, request_id, payload_len, _ = \
        HEADER.unpack_from(buf, offset)
    if magic != MAGIC:
        raise FrameError(f"bad magic {bytes(magic)!r} (want {MAGIC!r})",
                         fatal=True)
    if version != VERSION:
        raise FrameError(f"unsupported protocol version {version} "
                         f"(this server speaks {VERSION})", fatal=True)
    if payload_len > MAX_FRAME_BYTES:
        raise FrameError(
            f"declared payload of {payload_len} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit", fatal=True)
    return op, flags, request_id, payload_len


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
def encode_points_request(op: int, index: str, lngs: np.ndarray,
                          lats: np.ndarray, exact: bool = False,
                          budget_ms: Optional[float] = None,
                          request_id: int = 0) -> bytes:
    """One ``OP_QUERY``/``OP_JOIN`` frame for a point batch."""
    lngs = np.ascontiguousarray(lngs, dtype="<f8")
    lats = np.ascontiguousarray(lats, dtype="<f8")
    if lngs.shape != lats.shape or lngs.ndim != 1:
        raise InvalidRequestError(
            f"need matching 1-D lngs/lats, got shapes {lngs.shape} "
            f"and {lats.shape}")
    name = index.encode("utf-8")
    if len(name) > 0xFFFF:
        raise InvalidRequestError("index name too long")
    pad = (-(_REQ.size + len(name))) % 8
    n = int(lngs.shape[0])
    budget = float("nan") if budget_ms is None else float(budget_ms)
    payload_len = _REQ.size + len(name) + pad + 16 * n
    flags = FLAG_EXACT if exact else 0
    return b"".join((
        encode_header(op, flags, request_id, payload_len),
        _REQ.pack(len(name), 0, n, budget),
        name,
        b"\x00" * pad,
        lngs.tobytes(),
        lats.tobytes(),
    ))


def decode_points_request(payload: Buffer,
                          ) -> Tuple[str, np.ndarray, np.ndarray,
                                     Optional[float]]:
    """``(index, lngs, lats, budget_ms)`` from a points-request payload.

    ``lngs``/``lats`` are zero-copy ``numpy.frombuffer`` views into
    ``payload`` — no per-point objects are ever created. Every length
    is bounds-checked against the actual payload size; inconsistencies
    raise a non-fatal :class:`FrameError` (the framing was sound, only
    this request is bad).
    """
    if len(payload) < _REQ.size:
        raise FrameError(
            f"truncated request: payload of {len(payload)} bytes is "
            f"shorter than the {_REQ.size}-byte request header")
    name_len, _, n, budget = _REQ.unpack_from(payload, 0)
    pad = (-(_REQ.size + name_len)) % 8
    arrays_at = _REQ.size + name_len + pad
    expect = arrays_at + 16 * n
    if len(payload) != expect:
        raise FrameError(
            f"truncated request: {n} points and a {name_len}-byte name "
            f"need a {expect}-byte payload, got {len(payload)} bytes")
    try:
        name = bytes(payload[_REQ.size:_REQ.size + name_len]) \
            .decode("utf-8")
    except UnicodeDecodeError:
        raise FrameError("index name is not valid UTF-8") from None
    lngs = np.frombuffer(payload, dtype="<f8", count=n, offset=arrays_at)
    lats = np.frombuffer(payload, dtype="<f8", count=n,
                         offset=arrays_at + 8 * n)
    budget_ms = None if np.isnan(budget) else float(budget)
    return name, lngs, lats, budget_ms


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
def encode_results(results: Sequence[QueryResult],
                   request_id: int = 0) -> bytes:
    """An ``OP_RESULTS`` frame: per-point hit counts + flat id columns."""
    n = len(results)
    true_counts = np.empty(n, dtype="<u4")
    cand_counts = np.empty(n, dtype="<u4")
    true_parts: List[int] = []
    cand_parts: List[int] = []
    for i, result in enumerate(results):
        true_counts[i] = len(result.true_hits)
        cand_counts[i] = len(result.candidates)
        true_parts.extend(result.true_hits)
        cand_parts.extend(result.candidates)
    true_ids = np.asarray(true_parts, dtype="<i8")
    cand_ids = np.asarray(cand_parts, dtype="<i8")
    payload_len = (_RES.size + 8 * n
                   + 8 * (true_ids.shape[0] + cand_ids.shape[0]))
    return b"".join((
        encode_header(OP_RESULTS, 0, request_id, payload_len),
        _RES.pack(n, true_ids.shape[0], cand_ids.shape[0], 0),
        true_counts.tobytes(),
        cand_counts.tobytes(),
        true_ids.tobytes(),
        cand_ids.tobytes(),
    ))


def decode_results(payload: Buffer) -> List[QueryResult]:
    """Reassemble :class:`QueryResult` per point from an ``OP_RESULTS``
    payload (strict: every count is checked against the byte budget)."""
    if len(payload) < _RES.size:
        raise FrameError("truncated results payload")
    n, total_true, total_cand, _ = _RES.unpack_from(payload, 0)
    ids_at = _RES.size + 8 * n
    expect = ids_at + 8 * (total_true + total_cand)
    if len(payload) != expect:
        raise FrameError(
            f"results payload of {len(payload)} bytes does not match "
            f"its declared shape ({expect} bytes)")
    true_counts = np.frombuffer(payload, dtype="<u4", count=n,
                                offset=_RES.size)
    cand_counts = np.frombuffer(payload, dtype="<u4", count=n,
                                offset=_RES.size + 4 * n)
    if (int(true_counts.sum()) != total_true
            or int(cand_counts.sum()) != total_cand):
        raise FrameError("results payload counts disagree with totals")
    true_ids = np.frombuffer(payload, dtype="<i8", count=total_true,
                             offset=ids_at)
    cand_ids = np.frombuffer(payload, dtype="<i8", count=total_cand,
                             offset=ids_at + 8 * total_true)
    out: List[QueryResult] = []
    t_at = c_at = 0
    true_list = true_ids.tolist()
    cand_list = cand_ids.tolist()
    for i in range(n):
        t_n = int(true_counts[i])
        c_n = int(cand_counts[i])
        out.append(QueryResult(tuple(true_list[t_at:t_at + t_n]),
                               tuple(cand_list[c_at:c_at + c_n])))
        t_at += t_n
        c_at += c_n
    return out


def encode_counts(polygon_ids: np.ndarray, counts: np.ndarray,
                  request_id: int = 0) -> bytes:
    """An ``OP_COUNTS`` frame: sparse nonzero per-polygon counts."""
    polygon_ids = np.ascontiguousarray(polygon_ids, dtype="<i8")
    counts = np.ascontiguousarray(counts, dtype="<i8")
    num = int(polygon_ids.shape[0])
    payload_len = _CNT.size + 16 * num
    return b"".join((
        encode_header(OP_COUNTS, 0, request_id, payload_len),
        _CNT.pack(num, 0),
        polygon_ids.tobytes(),
        counts.tobytes(),
    ))


def decode_counts(payload: Buffer) -> Dict[int, int]:
    """``{polygon_id: count}`` from an ``OP_COUNTS`` payload."""
    if len(payload) < _CNT.size:
        raise FrameError("truncated counts payload")
    num, _ = _CNT.unpack_from(payload, 0)
    expect = _CNT.size + 16 * num
    if len(payload) != expect:
        raise FrameError(
            f"counts payload of {len(payload)} bytes does not match "
            f"its declared {num} entries ({expect} bytes)")
    ids = np.frombuffer(payload, dtype="<i8", count=num,
                        offset=_CNT.size)
    counts = np.frombuffer(payload, dtype="<i8", count=num,
                           offset=_CNT.size + 8 * num)
    return {int(pid): int(c) for pid, c in zip(ids.tolist(),
                                               counts.tolist())}


def encode_error(status: int, message: str,
                 request_id: int = 0) -> bytes:
    text = message.encode("utf-8")[:4096]
    return b"".join((
        encode_header(OP_ERROR, 0, request_id, _ERR.size + len(text)),
        _ERR.pack(status, 0),
        text,
    ))


def decode_error(payload: Buffer) -> Tuple[int, str]:
    if len(payload) < _ERR.size:
        raise FrameError("truncated error payload")
    status, _ = _ERR.unpack_from(payload, 0)
    message = bytes(payload[_ERR.size:]).decode("utf-8", "replace")
    return status, message


def encode_ping(request_id: int = 0) -> bytes:
    return encode_header(OP_PING, 0, request_id, 0)


def encode_pong(request_id: int = 0) -> bytes:
    return encode_header(OP_PONG, 0, request_id, 0)


def raise_for_error(payload: Buffer) -> None:
    """Raise the serve-layer exception an ``OP_ERROR`` payload encodes."""
    status, message = decode_error(payload)
    if status == STATUS_NOT_FOUND:
        raise UnknownIndexError(message)
    if status == STATUS_SHED:
        raise BudgetExceededError(message)
    if status == STATUS_BAD_REQUEST:
        raise InvalidRequestError(message)
    raise ServeError(f"binary server error {status}: {message}")


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------
class Client:
    """Blocking reference client for the binary protocol.

    One connection, request/response or pipelined::

        with Client(host, port) as client:
            results = client.query_batch("census", lngs, lats, exact=True)

        # pipelined: N requests in flight on one connection
        ids = [client.send_query("census", lngs, lats) for _ in range(8)]
        for rid in ids:
            got_rid, results = client.recv_results()
            assert got_rid == rid

    **Fault tolerance.** Every request frame is held in a pending table
    until its response (matched by echoed request id) arrives. If the
    connection dies — reset, EOF, or a receive timeout, after which the
    byte stream can no longer be framed — the client closes it, drops
    the (now untrustworthy) receive buffer, and reconnects with
    exponential backoff plus jitter, bounded by ``timeout`` per call
    and ``retries`` attempts per reconnection round. On reconnect it
    replays every pending frame oldest-first: the server answers
    strictly in submission order and queries/joins are idempotent
    reads, so replay returns exactly the answers the dead connection
    owed, in the order the pipelining caller expects. ``retries=0``
    disables reconnection entirely — failures then surface as
    :class:`~repro.errors.ConnectionLostError` (a
    :class:`~repro.errors.ServeError`) and the client refuses further
    use of the broken stream rather than desynchronize.
    """

    def __init__(self, host: str, port: int, timeout: float = 60.0,
                 retries: int = 2, backoff_s: float = 0.05,
                 backoff_max_s: float = 2.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self.backoff_max_s = float(backoff_max_s)
        self._buf = bytearray()
        self._next_id = 1
        #: Unacknowledged request frames by id, in submission order.
        self._pending: Dict[int, bytes] = {}
        self._dead = False
        self._death_reason = ""
        self._closed = False
        self.reconnects = 0
        self.sock: Optional[socket.socket] = self._connect(timeout)

    def _connect(self, timeout: float) -> socket.socket:
        sock = socket.create_connection((self.host, self.port),
                                        timeout=timeout)
        sock.settimeout(self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    # -- connection state ---------------------------------------------
    def _mark_dead(self, reason: str) -> None:
        """The stream cannot be trusted past this point: drop the
        receive buffer (it may hold a partial frame) and the socket."""
        self._dead = True
        self._death_reason = reason
        self._buf.clear()
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass

    def _ensure_connected(self, deadline: float) -> None:
        """Reconnect (and replay pending frames) if the connection died.

        Exponential backoff with jitter between attempts, bounded by
        ``retries`` per round and the caller's ``deadline`` overall.
        """
        if self.sock is not None and not self._dead:
            return
        if self._closed:
            raise ConnectionLostError("binary client is closed")
        if self.retries <= 0:
            raise ConnectionLostError(
                f"binary connection to {self.host}:{self.port} is dead "
                f"({self._death_reason}) and reconnection is disabled")
        attempts = 0
        backoff = self.backoff_s
        last = self._death_reason
        while True:
            remaining = deadline - time.monotonic()
            if attempts >= self.retries or remaining <= 0:
                raise ConnectionLostError(
                    f"could not reconnect to {self.host}:{self.port} "
                    f"after {attempts} attempt(s) "
                    f"(last error: {last or 'deadline exceeded'})")
            attempts += 1
            try:
                sock = self._connect(min(self.timeout, remaining))
                self.sock = sock
                self._buf.clear()
                self._dead = False
                self.reconnects += 1
                # replay every unacknowledged frame oldest-first: the
                # server answers strictly in order, so the new stream
                # owes exactly the responses the dead one did
                for frame in list(self._pending.values()):
                    sock.sendall(frame)
                return
            except OSError as exc:
                last = f"{type(exc).__name__}: {exc}"
                self._mark_dead(last)
            time.sleep(min(max(deadline - time.monotonic(), 0.0),
                           backoff * (0.5 + random.random())))
            backoff = min(backoff * 2.0, self.backoff_max_s)

    # -- low-level ----------------------------------------------------
    def _take_id(self, request_id: Optional[int]) -> int:
        if request_id is None:
            request_id = self._next_id
            self._next_id += 1
        return request_id

    def _recv_frame(self) -> Tuple[int, int, bytes]:
        """``(op, request_id, payload)`` for the next frame.

        Any receive failure — EOF, reset, or a timeout that may have
        left a *partial frame* in the buffer — marks the connection
        dead and clears the buffer before raising, so a later call can
        never misparse the tail of an abandoned frame as a new header.
        """
        sock = self.sock
        if sock is None:
            raise ConnectionLostError("binary client has no connection")
        while True:
            try:
                header = try_parse_header(self._buf)
            except FrameError:
                self._mark_dead("fatal frame error from server")
                raise
            if header is not None:
                op, _, request_id, payload_len = header
                total = HEADER_SIZE + payload_len
                if len(self._buf) >= total:
                    payload = bytes(
                        memoryview(self._buf)[HEADER_SIZE:total])
                    del self._buf[:total]
                    return op, request_id, payload
            try:
                chunk = sock.recv(1 << 16)
            except socket.timeout as exc:
                mid = len(self._buf) > 0
                self._mark_dead("receive timeout"
                                + (" mid-frame" if mid else ""))
                raise ConnectionLostError(
                    f"binary receive timed out"
                    f"{' with a partial frame buffered' if mid else ''}; "
                    f"the stream can no longer be framed and the "
                    f"connection was closed") from exc
            except OSError as exc:
                self._mark_dead(f"{type(exc).__name__}: {exc}")
                raise ConnectionLostError(
                    f"binary connection to {self.host}:{self.port} "
                    f"died mid-receive: {exc}") from exc
            if not chunk:
                self._mark_dead("server closed the connection")
                raise ConnectionLostError(
                    "binary connection closed by server mid-frame")
            self._buf += chunk

    def recv(self) -> Tuple[int, int, bytes]:
        """Next frame as ``(op, request_id, payload)``; raises the
        mapped exception for ``OP_ERROR`` frames.

        Reconnects and replays pending frames on a dead connection
        (see the class docstring) until the response arrives or the
        per-call deadline (``timeout``) passes.
        """
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                self._ensure_connected(deadline)
                op, request_id, payload = self._recv_frame()
            except ConnectionLostError:
                if self.retries <= 0 or time.monotonic() >= deadline:
                    raise
                continue
            self._pending.pop(request_id, None)
            if op == OP_ERROR:
                raise_for_error(payload)
            return op, request_id, payload

    def _send(self, frame: bytes, request_id: int) -> None:
        """Record ``frame`` as pending, then put it on the wire —
        through a reconnect (which replays it) if the connection died."""
        if self._closed:
            raise ConnectionLostError("binary client is closed")
        self._pending[request_id] = frame
        deadline = time.monotonic() + self.timeout
        while True:
            if self.sock is None or self._dead:
                # reconnecting replays every pending frame, this one
                # included — nothing further to send
                self._ensure_connected(deadline)
                return
            try:
                self.sock.sendall(frame)
                return
            except OSError as exc:
                self._mark_dead(f"send failed: {exc}")
                if self.retries <= 0 or time.monotonic() >= deadline:
                    raise ConnectionLostError(
                        f"binary send to {self.host}:{self.port} "
                        f"failed: {exc}") from exc

    # -- pipelining ---------------------------------------------------
    def send_query(self, index: str, lngs: PointArray, lats: PointArray,
                   exact: bool = False,
                   budget_ms: Optional[float] = None,
                   request_id: Optional[int] = None) -> int:
        request_id = self._take_id(request_id)
        self._send(encode_points_request(
            OP_QUERY, index, np.asarray(lngs), np.asarray(lats),
            exact=exact, budget_ms=budget_ms, request_id=request_id),
            request_id)
        return request_id

    def send_join(self, index: str, lngs: PointArray, lats: PointArray,
                  exact: bool = False,
                  budget_ms: Optional[float] = None,
                  request_id: Optional[int] = None) -> int:
        request_id = self._take_id(request_id)
        self._send(encode_points_request(
            OP_JOIN, index, np.asarray(lngs), np.asarray(lats),
            exact=exact, budget_ms=budget_ms, request_id=request_id),
            request_id)
        return request_id

    def send_forward_query(self, index: str, lngs: PointArray,
                           lats: PointArray, exact: bool = False,
                           budget_ms: Optional[float] = None,
                           request_id: Optional[int] = None) -> int:
        """Shard-router fan-out: answered from the receiver's local
        slice, never re-routed (see ``OP_FORWARD_QUERY``)."""
        request_id = self._take_id(request_id)
        self._send(encode_points_request(
            OP_FORWARD_QUERY, index, np.asarray(lngs), np.asarray(lats),
            exact=exact, budget_ms=budget_ms, request_id=request_id),
            request_id)
        return request_id

    def send_forward_join(self, index: str, lngs: PointArray,
                          lats: PointArray, exact: bool = False,
                          budget_ms: Optional[float] = None,
                          request_id: Optional[int] = None) -> int:
        """Shard-router join fan-out (see ``OP_FORWARD_JOIN``)."""
        request_id = self._take_id(request_id)
        self._send(encode_points_request(
            OP_FORWARD_JOIN, index, np.asarray(lngs), np.asarray(lats),
            exact=exact, budget_ms=budget_ms, request_id=request_id),
            request_id)
        return request_id

    def recv_results(self) -> Tuple[int, List[QueryResult]]:
        op, request_id, payload = self.recv()
        if op != OP_RESULTS:
            raise ServeError(f"expected OP_RESULTS, got op 0x{op:02x}")
        return request_id, decode_results(payload)

    def recv_counts(self) -> Tuple[int, Dict[int, int]]:
        op, request_id, payload = self.recv()
        if op != OP_COUNTS:
            raise ServeError(f"expected OP_COUNTS, got op 0x{op:02x}")
        return request_id, decode_counts(payload)

    # -- one-shot -----------------------------------------------------
    def ping(self) -> bool:
        request_id = self._take_id(None)
        self._send(encode_ping(request_id), request_id)
        op, got, _ = self.recv()
        return op == OP_PONG and got == request_id

    def query_batch(self, index: str, lngs: PointArray, lats: PointArray,
                    exact: bool = False,
                    budget_ms: Optional[float] = None,
                    ) -> List[QueryResult]:
        sent = self.send_query(index, lngs, lats, exact=exact,
                               budget_ms=budget_ms)
        request_id, results = self.recv_results()
        if request_id != sent:
            raise ServeError(
                f"response id {request_id} does not match request "
                f"{sent} (pipelining misuse?)")
        return results

    def join(self, index: str, lngs: PointArray, lats: PointArray,
             exact: bool = False,
             budget_ms: Optional[float] = None) -> Dict[int, int]:
        sent = self.send_join(index, lngs, lats, exact=exact,
                              budget_ms=budget_ms)
        request_id, counts = self.recv_counts()
        if request_id != sent:
            raise ServeError(
                f"response id {request_id} does not match request "
                f"{sent} (pipelining misuse?)")
        return counts

    def close(self) -> None:
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass
        self.sock = None
        self._dead = True
        self._closed = True
        self._death_reason = "closed by caller"
        self._pending.clear()
        self._buf.clear()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
