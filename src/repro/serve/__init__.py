"""repro.serve — long-lived query serving over ACT indexes.

Turns the build-then-benchmark library into a service: named indexes are
built or loaded once and pinned (:class:`IndexRegistry`), concurrent
point queries are micro-batched through the vectorized engine
(:class:`MicroBatcher`), hot cells are answered from an LRU cache keyed
by boundary-level cell (:class:`CellResultCache`), requests carry
latency budgets with deadline propagation (:class:`Budget`), and the
whole stack is observable — counters/gauges/mergeable histograms
(:class:`MetricsRegistry`), sampled per-request tracing and a
slow-query log (:mod:`repro.obs`), and a Prometheus-style ``GET
/metrics`` exposition — and drivable over
HTTP (:func:`create_server`, or ``repro-act serve`` from the CLI).
A second, fast data plane serves the same service over a zero-copy
binary batch protocol (:mod:`repro.serve.binproto`) behind an asyncio
pipelined front (:class:`BinaryFrontend`; ``repro-act serve
--binary-port``). For CPU-bound traffic, :class:`ServingFleet` forks the whole stack
into N supervised worker processes sharing one listening address
(``repro-act serve --workers N``; mmap-loaded indexes share node-pool
pages across workers through the page cache). Indexes are
generation-tagged (:class:`IndexGeneration`) and operable at runtime
through the loopback-only admin API (:mod:`repro.serve.lifecycle`,
``repro-act admin``): register, reload, and retire indexes on a live
server — or a whole fleet — with zero downtime. Fleets can run
**sharded** (``repro-act serve --shards``): a generation-tagged
:class:`ShardMap` partitions the boundary-level cell-id keyspace
across worker slots, each worker resides only its slice
(:class:`~repro.serve.router.ShardedACTService`), and cross-shard
requests scatter/gather over the binary protocol with fleet-aware
admission control.

Quickstart::

    from repro import ACTIndex
    from repro.datasets import nyc
    from repro.serve import ACTService

    service = ACTService()
    service.registry.register(
        "neighborhoods",
        lambda: ACTIndex.build(nyc.neighborhoods(60), precision_meters=30.0),
    )
    result = service.query("neighborhoods", -73.97, 40.75)
"""

from . import binproto, chaos
from .aserver import BinaryFrontend, create_binary_frontend
from .batcher import MicroBatcher
from .budget import Budget
from .cache import CellResultCache
from .fleet import FleetConfig, ServingFleet, fleet_available
from .lifecycle import (
    AdminOp,
    FleetLifecycle,
    apply_admin_op,
    handle_admin_request,
)
from ..obs import SlowQueryLog, Trace, Tracer, mint_request_id
from .fleet import aggregate_snapshots
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .registry import IndexGeneration, IndexRegistry, prewarm_index
from .router import ShardedACTService
from .server import ACTHTTPServer, create_server
from .service import TELEMETRY_MODES, ACTService, ServeConfig
from .shard import (ShardMap, ShardRange, plan_shard_map, shard_keys,
                    slice_index)

__all__ = [
    "ACTHTTPServer",
    "ACTService",
    "AdminOp",
    "BinaryFrontend",
    "Budget",
    "CellResultCache",
    "Counter",
    "FleetConfig",
    "FleetLifecycle",
    "Gauge",
    "Histogram",
    "IndexGeneration",
    "IndexRegistry",
    "MetricsRegistry",
    "MicroBatcher",
    "ServeConfig",
    "ServingFleet",
    "ShardMap",
    "ShardRange",
    "ShardedACTService",
    "SlowQueryLog",
    "TELEMETRY_MODES",
    "Trace",
    "Tracer",
    "aggregate_snapshots",
    "apply_admin_op",
    "binproto",
    "chaos",
    "create_binary_frontend",
    "create_server",
    "fleet_available",
    "handle_admin_request",
    "mint_request_id",
    "plan_shard_map",
    "prewarm_index",
    "shard_keys",
    "slice_index",
]
