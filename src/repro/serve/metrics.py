"""Serving metrics: thread-safe counters and latency histograms.

Deliberately stdlib-only (no prometheus client in the reproduction
environment). Counters are monotone integers; histograms keep a bounded
ring of recent samples, which is enough for the p50/p99 figures the
serving benchmarks and the ``/stats`` endpoint report.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Sequence


class Counter:
    """Monotonically increasing thread-safe counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Histogram:
    """Bounded-reservoir histogram of float samples (e.g. seconds).

    Keeps the most recent ``capacity`` samples in a ring buffer, plus
    exact lifetime count/sum, so percentiles reflect recent traffic while
    the mean and count stay exact.
    """

    __slots__ = ("_lock", "_ring", "_capacity", "_next", "count", "total")

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError(f"histogram capacity must be positive: {capacity}")
        self._lock = threading.Lock()
        self._ring: List[float] = []
        self._capacity = capacity
        self._next = 0
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if len(self._ring) < self._capacity:
                self._ring.append(value)
            else:
                self._ring[self._next] = value
                self._next = (self._next + 1) % self._capacity

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (0..1) of retained samples (0.0 if empty)."""
        with self._lock:
            samples = sorted(self._ring)
        if not samples:
            return 0.0
        rank = min(len(samples) - 1, max(0, math.ceil(q * len(samples)) - 1))
        return samples[rank]

    def percentiles(self, qs: Sequence[float]) -> List[float]:
        with self._lock:
            samples = sorted(self._ring)
        if not samples:
            return [0.0 for _ in qs]
        out = []
        for q in qs:
            rank = min(len(samples) - 1, max(0, math.ceil(q * len(samples)) - 1))
            out.append(samples[rank])
        return out

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, float]:
        p50, p90, p99, top = self.percentiles((0.50, 0.90, 0.99, 1.0))
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": p50,
            "p90": p90,
            "p99": p99,
            "max": top,
        }


class MetricsRegistry:
    """Named counters and histograms behind one snapshot call."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter()
            return counter

    def histogram(self, name: str, capacity: int = 4096) -> Histogram:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(capacity)
            return histogram

    def ratio(self, numerator: str, denominator: str) -> Optional[float]:
        """``numerator / denominator`` counter ratio, or ``None`` when the
        denominator is still zero."""
        denom = self.counter(denominator).value
        if denom == 0:
            return None
        return self.counter(numerator).value / denom

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in counters.items()},
            "histograms": {name: h.snapshot() for name, h in histograms.items()},
        }
