"""Serving metrics: counters, gauges, and mergeable latency histograms.

Deliberately stdlib-only (no prometheus client in the reproduction
environment). Counters are monotone integers; latency histograms are
the fixed-bucket *mergeable* histograms of
:mod:`repro.obs.histogram` — log-spaced bounds, exact count/sum/max —
so per-worker snapshots shipped over the fleet's stats channel merge
bucket-wise into real fleet-wide quantiles (the old bounded-reservoir
histogram could only be aggregated as a worst-worker upper bound).

The registry also supports a **disabled** mode (``MetricsRegistry
(enabled=False)``): every handle it returns is a shared no-op, which is
what lets ``bench_13_observability.py`` measure the true cost of
telemetry by differencing against a service with it off.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Sequence

from ..obs.histogram import MergeableHistogram

#: Re-exported: the serving stack's histogram *is* the mergeable one.
Histogram = MergeableHistogram


class Counter:
    """Monotonically increasing counter with a lock-free ``inc``.

    The unlocked ``+=`` can drop an increment only when a thread switch
    lands between its load and store — rare under the GIL, and a
    slightly-low telemetry counter is harmless while a lock on every
    request is not (it was the single largest line item in the
    ``bench_13_observability`` hot-path budget). Same racy-``+=`` trade
    the descent counters in :mod:`repro.act.core` already make.
    """

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A settable instantaneous value (thread-safe)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class _NullCounter(Counter):
    """Shared no-op counter handed out by a disabled registry."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass


class _NullHistogram(MergeableHistogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Named counters, gauges, and histograms behind one snapshot call."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, MergeableHistogram] = {}

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter()
            return counter

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge()
            return gauge

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None,
                  ) -> MergeableHistogram:
        """The named histogram (created with ``bounds`` on first use).

        All callers of one name must agree on the bucket ladder —
        merging across the fleet depends on it — so ``bounds`` is only
        honoured at creation.
        """
        if not self.enabled:
            return _NULL_HISTOGRAM
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = \
                    MergeableHistogram(bounds)
            return histogram

    def register(self, counters: Sequence[str] = (),
                 histograms: Sequence[str] = ()) -> None:
        """Eagerly create metric families by name.

        The PR 7 invariant: every family a component will ever
        increment must exist *before* traffic arrives, so scrapes and
        ``/stats`` show zeros instead of families popping into
        existence mid-incident (which breaks ``rate()`` windows).
        Components call this once where they first hold a registry —
        the RL004 lint rule cross-checks that every lazily used name
        has a registration site like this one.
        """
        for name in counters:
            self.counter(name)
        for name in histograms:
            self.histogram(name)

    def ratio(self, numerator: str, denominator: str) -> Optional[float]:
        """``numerator / denominator`` counter ratio, or ``None`` when the
        denominator is still zero."""
        denom = self.counter(denominator).value
        if denom == 0:
            return None
        return self.counter(numerator).value / denom

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in counters.items()},
            "gauges": {name: g.value for name, g in gauges.items()},
            "histograms": {name: h.snapshot()
                           for name, h in histograms.items()},
        }
