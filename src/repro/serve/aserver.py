"""Asyncio binary front: pipelined connections for the fast data plane.

The JSON front is thread-per-request: every connection parks a thread,
every request pays header parsing, JSON decoding, and response string
building. This front serves the :mod:`~repro.serve.binproto` protocol
from one ``asyncio`` event loop per process instead:

* connections are cheap (no thread per connection — the selector owns
  them all), so a client keeps one connection and **pipelines**: it
  sends many frames without waiting for responses, and the server
  answers them strictly in order as fast as the core can;
* frame headers are decoded with ``struct.unpack_from`` over a
  ``memoryview`` — the payload bytes are never copied to find out what
  they are — and a frame that arrives in one TCP segment is decoded
  *in place*: ``numpy.frombuffer`` views straight into the receive
  buffer feed :meth:`~repro.serve.service.ACTService.query_batch`
  with zero per-point Python objects;
* requests dispatch onto the *existing* service path, so latency
  budgets, generation pinning, the cell cache, telemetry counters and
  histograms, and request-id semantics behave exactly as they do over
  JSON — the two fronts are views of one service.

Batches execute inline on the event loop: ``query_batch`` is pure
vectorized compute (it never blocks on the micro-batcher), and each
fleet worker runs its own loop in its own process, so cross-connection
fairness degrades only as far as the GIL already degrades it.

:class:`BinaryFrontend` wraps the loop in a daemon thread so the front
runs next to the threaded JSON server inside one process (single
``repro-act serve`` or each :class:`~repro.serve.fleet.ServingFleet`
worker).
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Set, Tuple

from ..errors import (
    BudgetExceededError,
    InvalidRequestError,
    ServeError,
    UnknownIndexError,
)
from ..obs import mint_request_id
from . import binproto, chaos
from .budget import Budget
from .service import ACTService


def _bin_request_id(request_id: int) -> str:
    """Trace id for a binary frame.

    Deterministic from the wire request id when the client sent one
    (so client and server logs correlate), freshly minted otherwise.
    Minting is intrinsic per-request work, kept out of the frame
    handler itself so the handler stays formatting-free.
    """
    return f"bin-{request_id:x}" if request_id else mint_request_id()


def _release(view: memoryview) -> None:
    """Release a view over an immutable frame buffer (hygiene only —
    the buffers are ``bytes``, so a still-exported view is harmless)."""
    try:
        view.release()
    except BufferError:  # pragma: no cover - an escaped array view
        pass


class _BinaryProtocol(asyncio.Protocol):
    """One binary connection: buffer, frame, dispatch, respond.

    Frames are processed in arrival order on the event loop; behind an
    unsharded service responses can therefore never overtake each
    other. Behind a sharded router, plain query/join ops may *block on
    the network* mid-scatter, so they execute on the frontend's
    scatter pool and reply as they finish — responses may reorder, and
    clients correlate by the echoed request id (the reference client
    does). Forwarded ops always stay on the loop: they touch only the
    local slice, so the loop can keep draining sibling scatters even
    while every pool thread is waiting, which is what makes
    router-to-router traffic deadlock-free.
    The receive path has a zero-copy fast lane — when a complete frame
    sits inside the ``bytes`` object the transport delivered, headers
    and payload are decoded from memoryviews of it directly; only a
    frame fragmented across TCP segments is reassembled (once, guided
    by the declared frame length) into the carry-over buffer.
    """

    def __init__(self, frontend: "BinaryFrontend"):
        self.frontend = frontend
        self.service = frontend.service
        self.transport: Optional[asyncio.Transport] = None
        self._buf = bytearray()
        #: Bytes needed before the carry-over buffer can hold a full
        #: frame (skip re-joining it on every small segment).
        self._need = binproto.HEADER_SIZE
        self._closing = False

    # -- connection lifecycle -----------------------------------------
    def connection_made(self, transport) -> None:
        self.transport = transport
        try:
            transport.get_extra_info("socket").setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except (OSError, AttributeError):
            pass
        self.frontend.connections.add(self)
        self.frontend.c_connections.inc()

    def connection_lost(self, exc) -> None:
        self.frontend.connections.discard(self)

    # -- receive path -------------------------------------------------
    def data_received(self, data: bytes) -> None:
        self.frontend.c_bytes_in.inc(len(data))
        if self._closing:
            return
        if not self._buf:
            # fast lane: `data` is immutable, so frames inside it are
            # decoded in place (zero-copy views) with no reassembly
            consumed = self._process(data)
            if consumed < len(data) and not self._closing:
                self._buf += memoryview(data)[consumed:]
                self._update_need()
            return
        self._buf += data
        if len(self._buf) < self._need:
            return  # cheap wait: the frame cannot be complete yet
        complete = bytes(self._buf)
        consumed = self._process(complete)
        del self._buf[:consumed]
        self._update_need()

    def _update_need(self) -> None:
        header = None
        try:
            header = binproto.try_parse_header(self._buf)
        except binproto.FrameError:
            # fatal header; let _process handle it on the next pass
            self._need = len(self._buf)
            return
        if header is None:
            self._need = binproto.HEADER_SIZE
        else:
            self._need = binproto.HEADER_SIZE + header[3]

    def _process(self, buf) -> int:
        """Handle every complete frame in ``buf``; return bytes consumed."""
        offset = 0
        size = len(buf)
        view = memoryview(buf)
        try:
            while size - offset >= binproto.HEADER_SIZE:
                try:
                    header = binproto.try_parse_header(view, offset)
                except binproto.FrameError as exc:
                    # the stream cannot be re-synchronized: answer with
                    # an error frame, then close cleanly
                    self._send_error(exc.status, str(exc), 0)
                    self._close()
                    return size
                op, flags, request_id, payload_len = header
                end = offset + binproto.HEADER_SIZE + payload_len
                if size < end:
                    break
                payload = view[offset + binproto.HEADER_SIZE:end]
                try:
                    self._handle(op, flags, request_id, payload)
                finally:
                    _release(payload)
                offset = end
                if self._closing:
                    return size
        finally:
            _release(view)
        return offset

    # -- dispatch -----------------------------------------------------
    def _handle(self, op: int, flags: int, request_id: int,
                payload) -> None:
        self.frontend.c_frames.inc()
        try:
            # chaos seam: armed tests cut connections mid-pipeline here
            # to exercise the client's reconnect-and-retry discipline
            chaos.fault("binary.request", self.service.metrics)
        except ConnectionResetError:
            self._closing = True
            if self.transport is not None:
                self.transport.abort()
            return
        if op == binproto.OP_PING:
            self._write(binproto.encode_pong(request_id))
            return
        start = time.perf_counter()
        try:
            if op not in (binproto.OP_QUERY, binproto.OP_JOIN,
                          binproto.OP_FORWARD_QUERY,
                          binproto.OP_FORWARD_JOIN):
                raise binproto.FrameError(f"unknown op 0x{op:02x}")
            name, lngs, lats, budget_ms = \
                binproto.decode_points_request(payload)
        except binproto.FrameError as exc:
            self._send_error(exc.status, str(exc), request_id)
            return
        exact = bool(flags & binproto.FLAG_EXACT)
        budget = None if budget_ms is None else Budget.from_ms(budget_ms)
        service_id = _bin_request_id(request_id)
        pool = self.frontend.scatter_pool
        if pool is not None and op in (binproto.OP_QUERY,
                                       binproto.OP_JOIN):
            # a sharded router may block on the network scattering
            # this batch to sibling shards; that wait must never park
            # the event loop (two mutually-scattering workers would
            # deadlock until the forward timeout). Copy the point
            # columns out of the receive buffer — the zero-copy views
            # die with this frame — and execute + reply from the pool.
            self._dispatch_scatter(pool, op, name, lngs.copy(),
                                   lats.copy(), exact, budget,
                                   service_id, request_id, start)
            return
        self._write(self._execute(op, name, lngs, lats, exact, budget,
                                  service_id, request_id, start))

    def _dispatch_scatter(self, pool, op, name, lngs, lats, exact,
                          budget, service_id, request_id, start) -> None:
        loop = asyncio.get_running_loop()

        def job() -> None:
            frame = self._execute(op, name, lngs, lats, exact, budget,
                                  service_id, request_id, start)
            try:
                loop.call_soon_threadsafe(self._write, frame)
            except RuntimeError:  # loop already closed at shutdown
                pass

        pool.submit(job)

    def _execute(self, op, name, lngs, lats, exact, budget,
                 service_id, request_id, start) -> bytes:
        """Run one decoded request down to a ready-to-send reply frame.

        Called on the event loop for loop-safe work and from the
        scatter pool for requests that may wait on sibling shards;
        everything it touches (service, registry, metrics) is already
        thread-safe for the HTTP front's thread-per-request model.
        """
        try:
            if op in (binproto.OP_QUERY, binproto.OP_FORWARD_QUERY):
                # forwarded frames answer from the local shard slice
                # (never re-routed — routing loops are structurally
                # impossible); plain services have no local_* methods
                # and serve forwards like any other query
                if op == binproto.OP_FORWARD_QUERY:
                    query = getattr(self.service, "local_query_batch",
                                    self.service.query_batch)
                else:
                    query = self.service.query_batch
                results = query(
                    name, lngs, lats, exact=exact, budget=budget,
                    request_id=service_id)
                frame = binproto.encode_results(results, request_id)
            else:
                if op == binproto.OP_FORWARD_JOIN:
                    join = getattr(self.service, "local_join",
                                   self.service.join)
                else:
                    join = self.service.join
                counts = join(
                    name, lngs, lats, exact=exact, budget=budget,
                    request_id=service_id)
                nonzero = counts.nonzero()[0]
                frame = binproto.encode_counts(nonzero, counts[nonzero],
                                               request_id)
        except UnknownIndexError as exc:
            self.frontend.c_errors.inc()
            return binproto.encode_error(binproto.STATUS_NOT_FOUND,
                                         str(exc), request_id)
        except BudgetExceededError as exc:
            self.frontend.c_errors.inc()
            return binproto.encode_error(binproto.STATUS_SHED,
                                         str(exc), request_id)
        except (InvalidRequestError, ServeError) as exc:
            self.frontend.c_errors.inc()
            status = (binproto.STATUS_BAD_REQUEST
                      if isinstance(exc, InvalidRequestError)
                      else binproto.STATUS_INTERNAL)
            return binproto.encode_error(status, str(exc), request_id)
        except Exception as exc:  # pragma: no cover - last-resort guard
            self.frontend.c_errors.inc()
            return binproto.encode_error(
                binproto.STATUS_INTERNAL,
                f"{type(exc).__name__}: {exc}", request_id)
        # count before writing: a client that already holds the
        # response must observe the counters it caused
        self.frontend.c_requests.inc()
        self.frontend.h_request_seconds.observe(
            time.perf_counter() - start)
        return frame

    # -- send path ----------------------------------------------------
    def _write(self, frame: bytes) -> None:
        transport = self.transport
        if transport is None or transport.is_closing():
            return
        self.frontend.c_bytes_out.inc(len(frame))
        transport.write(frame)

    def _send_error(self, status: int, message: str,
                    request_id: int) -> None:
        self.frontend.c_errors.inc()
        self._write(binproto.encode_error(status, message, request_id))

    def _close(self) -> None:
        self._closing = True
        if self.transport is not None:
            self.transport.close()  # flushes the error frame first


class BinaryFrontend:
    """Runs the binary front's event loop in a daemon thread.

    Either binds ``(host, port)`` itself (``port=0`` picks a free one)
    or adopts a pre-bound listening socket (the fleet's
    ``SO_REUSEPORT`` sockets arrive through ``fork``). Counters and
    the request-latency histogram live in the attached service's
    :class:`~repro.serve.metrics.MetricsRegistry` under ``binary.*``,
    so ``/stats`` and ``/metrics`` report the fast data plane next to
    the JSON one.
    """

    def __init__(self, service: ACTService, host: str = "127.0.0.1",
                 port: int = 0, sock: Optional[socket.socket] = None,
                 worker_id: Optional[int] = None):
        self.service = service
        self.host = host
        self.port = port
        self._sock = sock
        self.worker_id = worker_id
        self.connections: Set[_BinaryProtocol] = set()
        self.address: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        #: Execution pool for requests that may *wait on the network*
        #: (a sharded router scattering to sibling slots). Created in
        #: :meth:`start` — never at import or construction time — and
        #: only when the attached service actually routes; ``None``
        #: keeps plain services on the zero-thread fast path.
        self._scatter_pool: Optional[ThreadPoolExecutor] = None
        # created eagerly so the binary.* families exist in /stats and
        # /metrics from boot, not from first traffic
        metrics = service.metrics
        self.c_connections = metrics.counter("binary.connections")
        self.c_frames = metrics.counter("binary.frames")
        self.c_requests = metrics.counter("binary.requests")
        self.c_errors = metrics.counter("binary.errors")
        self.c_bytes_in = metrics.counter("binary.bytes_in")
        self.c_bytes_out = metrics.counter("binary.bytes_out")
        self.h_request_seconds = metrics.histogram(
            "binary.request_seconds")

    # -- lifecycle ----------------------------------------------------
    def start(self) -> "BinaryFrontend":
        if self._thread is not None or self._loop is not None:
            raise ServeError("binary frontend already started "
                             "(frontends are single-use)")
        if hasattr(self.service, "local_query_batch"):
            self._scatter_pool = ThreadPoolExecutor(
                max_workers=16, thread_name_prefix="binary-scatter")
        self._thread = threading.Thread(
            target=self._run, name="binary-frontend", daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise ServeError(
                f"binary frontend failed to start: "
                f"{self._startup_error}") from self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            if self._sock is not None:
                factory = loop.create_server(
                    lambda: _BinaryProtocol(self), sock=self._sock)
            else:
                factory = loop.create_server(
                    lambda: _BinaryProtocol(self),
                    host=self.host, port=self.port)
            self._server = loop.run_until_complete(factory)
            self.address = self._server.sockets[0].getsockname()[:2]
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            for conn in list(self.connections):
                if conn.transport is not None:
                    conn.transport.abort()
            self._server.close()
            loop.run_until_complete(self._server.wait_closed())
            # let transport close callbacks run before tearing down
            loop.run_until_complete(asyncio.sleep(0))
            loop.close()

    @property
    def scatter_pool(self) -> Optional[ThreadPoolExecutor]:
        """The routing pool, or ``None`` behind an unsharded service."""
        return self._scatter_pool

    def stop(self) -> None:
        """Stop accepting, drop connections, and join the loop thread
        (idempotent)."""
        loop = self._loop
        thread = self._thread
        if loop is None or thread is None:
            return
        if thread.is_alive():
            try:
                loop.call_soon_threadsafe(loop.stop)
            except RuntimeError:
                pass  # loop already closed
            thread.join(timeout=10.0)
        self._thread = None
        pool = self._scatter_pool
        if pool is not None:
            self._scatter_pool = None
            # in-flight scatters abort with their connections; don't
            # wait on forwards that may be riding a sibling's respawn
            pool.shutdown(wait=False)

    def __enter__(self) -> "BinaryFrontend":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def create_binary_frontend(service: ACTService, host: str = "127.0.0.1",
                           port: int = 0) -> BinaryFrontend:
    """Bind and start a :class:`BinaryFrontend`; ``port=0`` picks a
    free port (read it back from ``frontend.address``)."""
    return BinaryFrontend(service, host=host, port=port).start()
