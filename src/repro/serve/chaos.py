"""Fault injection for the serving stack (the chaos harness).

Production code cannot be trusted to tolerate faults it has never
seen, so this module plants *dormant* injection points at the seams
where real failures land — artifact I/O, request dispatch, the binary
wire — and the chaos tests (``tests/serve/test_chaos.py``) arm them
against a live fleet. Disarmed, every seam is one module-flag check
(``if not _active: return``): the production paths are untouched.

Arming happens two ways:

* the ``REPRO_CHAOS`` environment variable at process start — fleet
  workers fork from the parent, so setting it before
  :meth:`~repro.serve.fleet.ServingFleet.start` arms every worker;
* ``POST /admin/chaos`` (loopback-only, like the rest of the admin
  surface) with ``{"spec": "..."}`` — re-arms *that process* at
  runtime, ``{"spec": ""}`` disarms.

A spec is a comma-separated list of ``point=action:prob[:arg]``
entries::

    artifact.load=fail:1.0          every artifact load raises OSError
    artifact.load=slow:1.0:0.2      ... sleeps 200 ms first
    query=kill:0.01                 1% of queries SIGKILL the worker
    binary.request=reset:0.05       5% of binary frames reset the conn

Points: ``artifact.load`` (registry materialization — every register/
reload/first-use load of a serialized index), ``query`` (service batch
admission, both fronts), ``binary.request`` (asyncio front
dispatch), and ``shard.forward`` (the sharded router's scatter path,
fired once per remote owner — ``kill`` here is the kill-one-shard
drill: the forwarding worker dies mid-scatter and the fleet must
respawn it while its peers' backlogs hold). Actions: ``slow`` (sleep
``arg`` seconds, default 0.05), ``fail`` (raise ``OSError``), ``kill``
(``SIGKILL`` this process), ``reset`` (raise ``ConnectionResetError``;
the binary front aborts the transport). Every firing increments the
``faults.chaos_injections`` counter of the metrics registry the seam
passes in, so ``/stats`` and ``/metrics`` show chaos landing.

The file-corruption faults (bit-flip, truncation) are offline helpers
— :func:`corrupt_artifact` — because flipping bits in a *served* file
is not a fault the harness should be able to do by accident; tests
corrupt a copy and feed it through the admin surface.
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import InvalidRequestError

#: Environment variable workers read at import (fork inherits it).
ENV_VAR = "REPRO_CHAOS"

#: Known injection points (a spec naming anything else is rejected).
POINTS = ("artifact.load", "query", "binary.request", "shard.forward")

#: Known actions.
ACTIONS = ("slow", "fail", "kill", "reset")


@dataclass(frozen=True)
class Fault:
    """One armed fault: where, what, how often, with what argument."""

    point: str
    action: str
    prob: float
    arg: float


def parse_spec(spec: str) -> List[Fault]:
    """Parse a chaos spec string; raises
    :class:`~repro.errors.InvalidRequestError` on malformed entries so
    the admin surface answers 400 instead of arming garbage."""
    faults: List[Fault] = []
    for raw in (spec or "").split(","):
        entry = raw.strip()
        if not entry:
            continue
        try:
            point, rest = entry.split("=", 1)
            parts = rest.split(":")
            action = parts[0]
            prob = float(parts[1]) if len(parts) > 1 else 1.0
            arg = float(parts[2]) if len(parts) > 2 else 0.05
        except (ValueError, IndexError):
            raise InvalidRequestError(
                f"malformed chaos entry {entry!r} "
                f"(want point=action:prob[:arg])") from None
        if point not in POINTS:
            raise InvalidRequestError(
                f"unknown chaos point {point!r} (known: {POINTS})")
        if action not in ACTIONS:
            raise InvalidRequestError(
                f"unknown chaos action {action!r} (known: {ACTIONS})")
        if not 0.0 <= prob <= 1.0:
            raise InvalidRequestError(
                f"chaos probability must be in [0, 1], got {prob}")
        faults.append(Fault(point, action, prob, arg))
    return faults


#: The process-wide armed faults, keyed by point. Plain dict reads are
#: GIL-atomic, so the hot-path check needs no lock.
_faults: Dict[str, List[Fault]] = {}
_active: bool = False
_spec: str = ""


def configure(spec: str) -> List[Fault]:
    """(Re-)arm this process from a spec string; ``""`` disarms."""
    global _faults, _active, _spec
    faults = parse_spec(spec)
    table: Dict[str, List[Fault]] = {}
    for fault in faults:
        table.setdefault(fault.point, []).append(fault)
    _spec = spec or ""
    _faults = table
    _active = bool(table)
    return faults


def spec() -> str:
    """The currently armed spec ("" when disarmed)."""
    return _spec


def is_active() -> bool:
    return _active


def fault(point: str, metrics=None) -> None:
    """The injection seam: no-op unless this process armed ``point``.

    When a fault fires it is counted under ``faults.chaos_injections``
    (if the caller passed a metrics registry), then acted out: sleeps,
    raises, or kills — the caller's normal error handling takes over,
    which is exactly the path being tested.
    """
    if not _active:
        return
    for armed in _faults.get(point, ()):
        if armed.prob < 1.0 and random.random() >= armed.prob:
            continue
        if metrics is not None:
            try:
                metrics.counter("faults.chaos_injections").inc()
            except Exception:
                pass
        # The builtin raises below are the *product*: the harness
        # impersonates the OS/network failing, so the exception types
        # must be exactly what real I/O would raise — not taxonomy
        # classes the production handlers would treat as typed errors.
        if armed.action == "slow":
            time.sleep(armed.arg)
        elif armed.action == "fail":
            raise OSError(f"chaos: injected I/O failure at {point}")  # repro-lint: ignore[RL005]
        elif armed.action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif armed.action == "reset":
            raise ConnectionResetError(  # repro-lint: ignore[RL005]
                f"chaos: injected connection reset at {point}")


# Arm from the environment at import: fleet workers fork after the
# test (or operator) exported the spec, so every process self-arms.
if os.environ.get(ENV_VAR):
    try:
        configure(os.environ[ENV_VAR])
    except InvalidRequestError:  # pragma: no cover - operator typo
        _active = False


# ----------------------------------------------------------------------
# Offline corruption helpers (used by tests, never armed at runtime)
# ----------------------------------------------------------------------
def corrupt_artifact(path, mode: str = "bitflip",
                     offset: Optional[int] = None) -> None:
    """Deliberately damage an artifact file in place.

    ``mode="bitflip"`` flips one bit (by default in the middle of the
    file, deep inside the stored node pool); ``mode="truncate"`` cuts
    the file in half, which no header survives. Tests copy a good
    artifact first — this helper never touches anything registered.
    """
    size = os.path.getsize(path)
    if mode == "bitflip":
        at = size // 2 if offset is None else offset
        with open(path, "r+b") as fp:
            fp.seek(at)
            byte = fp.read(1)
            fp.seek(at)
            fp.write(bytes([byte[0] ^ 0x40]))
    elif mode == "truncate":
        with open(path, "r+b") as fp:
            fp.truncate(size // 2 if offset is None else offset)
    else:
        raise InvalidRequestError(f"unknown corruption mode {mode!r}")
