"""Shard-aware routing service: scatter/gather over the binary plane.

:class:`ShardedACTService` is a drop-in :class:`~repro.serve.service.
ACTService` for one worker slot of a sharded fleet. It answers the keys
its slot owns from the local shard slice (the registry holds
:func:`~repro.serve.shard.slice_index` sub-indexes, swapped in via
``registry.restore`` so the service's hot-view identity check pins the
slice) and forwards everything else shard-wise over the
:mod:`~repro.serve.binproto` data plane:

* **routing** — a batch's keys come from the same boundary-level
  ``point_keys`` pass the unsharded service uses for its cache keys;
  :meth:`~repro.serve.shard.ShardMap.route` turns them into owner
  slots with one ``searchsorted``. Every front routes: the HTTP
  ``/query``, the JSON batch, and plain binary ``OP_QUERY`` frames all
  hit the overridden entry points, so a client may talk to *any*
  worker.
* **scatter/gather** — remote sub-batches go out first as pipelined
  ``OP_FORWARD_QUERY``/``OP_FORWARD_JOIN`` frames (one per owner
  slot), the local sub-batch computes while they fly, then responses
  gather back into request order. Forwarded frames dispatch to
  :meth:`local_query_batch`/:meth:`local_join` on the receiving
  worker — never re-routed, so routing loops are structurally
  impossible. Connections come from a per-slot pool (a blocking
  :class:`~repro.serve.binproto.Client` is single-stream; pooling
  keeps concurrent request threads off each other's frames) and
  inherit the client's reconnect-and-replay discipline: a forward
  raced against a worker respawn queues in the parent-held listening
  socket's backlog and is answered by the replacement.
* **fleet-aware admission control** — workers publish
  ``admission: {inflight, ts}`` into the shared stats channel; the
  router sheds a batch at admission (``BudgetExceededError`` → HTTP
  503 / binproto ``STATUS_SHED``, counted under ``queries.shed`` and
  ``shard.shed``) only when *every* owning slot reports a fresh,
  saturated snapshot. Missing or stale snapshots fail open — a quiet
  stats channel must never turn into an outage.
* **rebalancing** — :meth:`adopt_shard_map` swaps in a
  higher-generation :class:`~repro.serve.shard.ShardMap` (published on
  the lifecycle control dict under
  :data:`~repro.serve.shard.SHARD_KEY`) and re-slices the registry
  from the retained full-generation records; lower generations are
  ignored, mirroring reload idempotency. :meth:`reload_index`
  materializes the full new generation, re-slices it, and adopts the
  slice, so a fleet-wide reload barrier leaves every slot serving its
  shard of the new data.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..act.core import QueryResult
from ..errors import (
    BudgetExceededError,
    ConnectionLostError,
    InvalidRequestError,
    ServeError,
)
from ..obs import Trace
from . import binproto, chaos
from .budget import Budget
from .registry import _UNSET, IndexGeneration, IndexRegistry
from .service import ACTService, ServeConfig
from .shard import ShardMap, shard_keys, slice_record

__all__ = ["ShardedACTService"]

#: How long a cached copy of the fleet snapshot dict is trusted for
#: admission decisions (bounds Manager IPC to a few reads per second).
_SNAPSHOT_CACHE_S = 0.2


class ShardedACTService(ACTService):
    """One shard worker's service: local slice + forwarding router."""

    def __init__(self, registry: Optional[IndexRegistry] = None,
                 config: Optional[ServeConfig] = None, *,
                 shard_map: ShardMap, slot: int,
                 addresses: Optional[Dict[int, Tuple[str, int]]] = None,
                 snapshots=None,
                 shed_inflight: int = 64,
                 shed_staleness_s: float = 2.0,
                 forward_timeout_s: float = 30.0,
                 forward_retries: int = 6):
        self._map = shard_map
        self.slot = int(slot)
        super().__init__(registry=registry, config=config)
        self._addresses: Dict[int, Tuple[str, int]] = dict(addresses or {})
        self._fleet_snapshots = snapshots
        self._shed_inflight = int(shed_inflight)
        self._shed_staleness_s = float(shed_staleness_s)
        self._forward_timeout_s = float(forward_timeout_s)
        self._forward_retries = int(forward_retries)
        # free-list pool per slot: a blocking binproto.Client carries
        # one pipelined stream, so concurrent request threads must not
        # share one (responses would interleave across threads)
        self._pool: Dict[int, List[binproto.Client]] = {}
        self._pool_lock = threading.Lock()
        self._inflight = 0
        # full-generation records survive slicing so a rebalance can
        # re-slice without re-materializing (mmap-backed: holding the
        # reference costs address space, not resident bytes)
        self._full_records: Dict[str, IndexGeneration] = {}
        self._snap_cache: Tuple[float, dict] = (0.0, {})
        self._slice_all()

    def set_telemetry(self, telemetry: str) -> None:
        super().set_telemetry(telemetry)
        # pre-bound shard families, rebound on every telemetry switch
        # like the superclass's; created here (reached from __init__)
        # so the shard.* families exist pre-traffic
        metrics = self.metrics
        self._shard_forwarded = metrics.counter("shard.forwarded")
        self._shard_local = metrics.counter("shard.local")
        self._shard_shed = metrics.counter("shard.shed")
        self._shard_forward_errors = metrics.counter(
            "shard.forward_errors")
        self._shard_forward_seconds = metrics.histogram(
            "shard.forward_seconds")

    # ------------------------------------------------------------------
    # Shard map / slices
    # ------------------------------------------------------------------
    @property
    def shard_map(self) -> ShardMap:
        return self._map

    def _slice_all(self) -> None:
        """Re-pin every mapped, materialized record to this slot's slice."""
        for name in self.registry.names():
            record = self._full_records.get(name)
            if record is None:
                record = self.registry.materialized.get(name)
            if record is None or name not in self._map.ranges:
                continue
            self._full_records[name] = record
            sliced = slice_record(
                record, self._map.ranges_for_slot(name, self.slot))
            self.registry.restore(sliced)
            self._adopt_record(sliced)

    def adopt_shard_map(self, shard_map: ShardMap) -> bool:
        """Swap in a rebalanced map; ignore non-advancing generations."""
        if shard_map.generation <= self._map.generation:
            return False
        self._map = shard_map
        self._slice_all()
        return True

    def reload_index(self, name: str, *,
                     source_path=None, source_mmap_mode=_UNSET,
                     artifact_path=None, artifact_mmap_mode=_UNSET,
                     generation: Optional[int] = None,
                     verify: Optional[str] = None) -> IndexGeneration:
        """Materialize the full new generation, then adopt its slice.

        The fleet reload barrier is unchanged — same registry call,
        same ack discipline — but what this slot ends up serving (and
        what the registry's materialized record pins) is the slice, so
        resident bytes stay proportional to the shard count across
        reloads.
        """
        record = self.registry.reload(
            name, source_path=source_path,
            source_mmap_mode=source_mmap_mode,
            artifact_path=artifact_path,
            artifact_mmap_mode=artifact_mmap_mode, generation=generation,
            verify=verify,
        )
        if name in self._map.ranges:
            self._full_records[name] = record
            record = slice_record(
                record, self._map.ranges_for_slot(name, self.slot))
            self.registry.restore(record)
        self._adopt_record(record)
        self.metrics.counter("admin.reloads").inc()
        return record

    def restore_index(self, record: IndexGeneration) -> IndexGeneration:
        """Roll back to ``record``, re-slicing it for this slot first."""
        if record.name in self._map.ranges:
            self._full_records[record.name] = record
            record = slice_record(
                record, self._map.ranges_for_slot(record.name, self.slot))
        return ACTService.restore_index(self, record)

    def full_record(self, name: str) -> Optional[IndexGeneration]:
        """The latest full (unsliced) generation behind a mapped name.

        The reload coordinator writes the fleet-wide side artifact from
        this — the registry's pinned record is only this slot's slice,
        and shipping a slice as the next generation would starve every
        other shard of its keys.
        """
        return self._full_records.get(name)

    # ------------------------------------------------------------------
    # Local execution (forwarded frames land here; never re-routed)
    # ------------------------------------------------------------------
    def local_query_batch(self, index_name: str, lngs: Sequence[float],
                          lats: Sequence[float], exact: bool = False,
                          budget: Optional[Budget] = None,
                          trace: Optional[Trace] = None,
                          request_id: Optional[str] = None,
                          ) -> List[QueryResult]:
        self._inflight += 1
        try:
            return ACTService.query_batch(
                self, index_name, lngs, lats, exact=exact, budget=budget,
                trace=trace, request_id=request_id)
        finally:
            self._inflight -= 1

    def local_join(self, index_name: str, lngs: Sequence[float],
                   lats: Sequence[float], exact: bool = False,
                   budget: Optional[Budget] = None,
                   trace: Optional[Trace] = None,
                   request_id: Optional[str] = None) -> np.ndarray:
        self._inflight += 1
        try:
            return ACTService.join(
                self, index_name, lngs, lats, exact=exact, budget=budget,
                trace=trace, request_id=request_id)
        finally:
            self._inflight -= 1

    # ------------------------------------------------------------------
    # Routed entry points
    # ------------------------------------------------------------------
    def query(self, index_name: str, lng: float, lat: float,
              exact: bool = False, budget: Optional[Budget] = None,
              trace: Optional[Trace] = None,
              request_id: Optional[str] = None) -> QueryResult:
        if index_name not in self._map.ranges:
            return ACTService.query(self, index_name, lng, lat,
                                    exact=exact, budget=budget,
                                    trace=trace, request_id=request_id)
        record, boundary_level = self._hot_view(index_name)
        key = shard_keys(record.index.grid, (lng,), (lat,),
                         boundary_level)
        owner = int(self._map.route(index_name, key)[0])
        if owner == self.slot:
            self._shard_local.inc()
            return ACTService.query(self, index_name, lng, lat,
                                    exact=exact, budget=budget,
                                    trace=trace, request_id=request_id)
        if self._fleet_saturated((owner,)):
            self._shard_shed.inc()
            self._queries_shed.inc()
            raise BudgetExceededError(
                "owning shard saturated; shedding at admission")
        lng_arr = np.asarray((lng,), dtype=np.float64)
        lat_arr = np.asarray((lat,), dtype=np.float64)
        results = self._forward_query(owner, index_name, lng_arr,
                                      lat_arr, exact)
        return results[0]

    def query_batch(self, index_name: str, lngs: Sequence[float],
                    lats: Sequence[float], exact: bool = False,
                    budget: Optional[Budget] = None,
                    trace: Optional[Trace] = None,
                    request_id: Optional[str] = None,
                    ) -> List[QueryResult]:
        if index_name not in self._map.ranges:
            return ACTService.query_batch(
                self, index_name, lngs, lats, exact=exact, budget=budget,
                trace=trace, request_id=request_id)
        lngs = np.asarray(lngs, dtype=np.float64)
        lats = np.asarray(lats, dtype=np.float64)
        if lngs.shape != lats.shape or lngs.ndim != 1:
            self.metrics.counter("queries.invalid").inc()
            raise InvalidRequestError(
                f"query_batch needs matching 1-D lngs/lats, got shapes "
                f"{lngs.shape} and {lats.shape}")
        n = int(lngs.shape[0])
        record, boundary_level = self._hot_view(index_name)
        keys = shard_keys(record.index.grid, lngs, lats, boundary_level)
        slots = self._map.route(index_name, keys)
        owners = np.unique(slots).tolist()
        if owners == [self.slot]:
            self._shard_local.inc(n)
            return self.local_query_batch(
                index_name, lngs, lats, exact=exact, budget=budget,
                trace=trace, request_id=request_id)
        if self._fleet_saturated(owners):
            self._shard_shed.inc(n)
            self._queries_shed.inc(n)
            raise BudgetExceededError(
                "all owning shards saturated; shedding at admission")
        start = time.perf_counter()
        out: List[Optional[QueryResult]] = [None] * n
        pending: List[Tuple[int, binproto.Client, np.ndarray]] = []
        local_pos: Optional[np.ndarray] = None
        try:
            # phase 1: pipelined fan-out to every remote owner
            for owner in owners:
                pos = np.nonzero(slots == owner)[0]
                if owner == self.slot:
                    local_pos = pos
                    continue
                chaos.fault("shard.forward", self.metrics)
                client = self._acquire_client(owner)
                try:
                    client.send_forward_query(
                        index_name, lngs[pos], lats[pos], exact=exact)
                except ServeError:
                    self._release_client(owner, client)
                    raise
                pending.append((owner, client, pos))
                self._shard_forwarded.inc(int(pos.shape[0]))
            # phase 2: the local sub-batch computes while frames fly
            if local_pos is not None and local_pos.shape[0]:
                local_results = self.local_query_batch(
                    index_name, lngs[local_pos], lats[local_pos],
                    exact=exact, budget=budget, trace=trace,
                    request_id=request_id)
                for k, result in zip(local_pos.tolist(), local_results):
                    out[k] = result
                self._shard_local.inc(int(local_pos.shape[0]))
            # phase 3: gather into request order
            while pending:
                owner, client, pos = pending.pop(0)
                _rid, sub = client.recv_results()
                self._release_client(owner, client)
                for k, result in zip(pos.tolist(), sub):
                    out[k] = result
        except BudgetExceededError:
            # already counted where it shed (locally by the superclass,
            # remotely by the owning worker) — just abandon the fan-out
            self._drop_pending(pending)
            raise
        except ServeError:
            self._drop_pending(pending)
            self._shard_forward_errors.inc()
            self._queries_errors.inc(n)
            raise
        except Exception:
            self._drop_pending(pending)
            self._queries_errors.inc(n)
            raise
        self._shard_forward_seconds.observe(time.perf_counter() - start)
        return out  # type: ignore[return-value]

    def join(self, index_name: str, lngs: Sequence[float],
             lats: Sequence[float], exact: bool = False,
             budget: Optional[Budget] = None,
             trace: Optional[Trace] = None,
             request_id: Optional[str] = None) -> np.ndarray:
        if index_name not in self._map.ranges:
            return ACTService.join(self, index_name, lngs, lats,
                                   exact=exact, budget=budget,
                                   trace=trace, request_id=request_id)
        lngs = np.asarray(lngs, dtype=np.float64)
        lats = np.asarray(lats, dtype=np.float64)
        record, boundary_level = self._hot_view(index_name)
        keys = shard_keys(record.index.grid, lngs, lats, boundary_level)
        slots = self._map.route(index_name, keys)
        owners = np.unique(slots).tolist()
        if owners == [self.slot]:
            self._shard_local.inc(int(lngs.shape[0]))
            return self.local_join(index_name, lngs, lats, exact=exact,
                                   budget=budget, trace=trace,
                                   request_id=request_id)
        if self._fleet_saturated(owners):
            self._shard_shed.inc(int(lngs.shape[0]))
            self._queries_shed.inc(int(lngs.shape[0]))
            raise BudgetExceededError(
                "all owning shards saturated; shedding at admission")
        counts = np.zeros(record.index.num_polygons, dtype=np.int64)
        pending: List[Tuple[int, binproto.Client]] = []
        try:
            local_pos: Optional[np.ndarray] = None
            for owner in owners:
                pos = np.nonzero(slots == owner)[0]
                if owner == self.slot:
                    local_pos = pos
                    continue
                chaos.fault("shard.forward", self.metrics)
                client = self._acquire_client(owner)
                try:
                    client.send_forward_join(
                        index_name, lngs[pos], lats[pos], exact=exact)
                except ServeError:
                    self._release_client(owner, client)
                    raise
                pending.append((owner, client))
                self._shard_forwarded.inc(int(pos.shape[0]))
            if local_pos is not None and local_pos.shape[0]:
                local = self.local_join(
                    index_name, lngs[local_pos], lats[local_pos],
                    exact=exact, budget=budget, trace=trace,
                    request_id=request_id)
                counts[:local.shape[0]] += local
                self._shard_local.inc(int(local_pos.shape[0]))
            while pending:
                owner, client = pending.pop(0)
                _rid, sub = client.recv_counts()
                self._release_client(owner, client)
                for pid, count in sub.items():
                    counts[pid] += count
        except ServeError:
            self._drop_pending(pending)
            self._shard_forward_errors.inc()
            raise
        except Exception:
            self._drop_pending(pending)
            raise
        return counts

    # ------------------------------------------------------------------
    # Forward plumbing
    # ------------------------------------------------------------------
    def _forward_query(self, owner: int, index_name: str,
                       lngs: np.ndarray, lats: np.ndarray,
                       exact: bool) -> List[QueryResult]:
        chaos.fault("shard.forward", self.metrics)
        client = self._acquire_client(owner)
        try:
            client.send_forward_query(index_name, lngs, lats,
                                      exact=exact)
            _rid, results = client.recv_results()
        except ServeError:
            self._shard_forward_errors.inc()
            self._discard_client(client)
            raise
        self._release_client(owner, client)
        self._shard_forwarded.inc(int(lngs.shape[0]))
        return results

    def _acquire_client(self, slot: int) -> binproto.Client:
        with self._pool_lock:
            free = self._pool.get(slot)
            if free:
                return free.pop()
        address = self._addresses.get(slot)
        if address is None:
            raise ServeError(
                f"no binary address for shard slot {slot} "
                f"(addresses cover {sorted(self._addresses)})")
        try:
            return binproto.Client(
                address[0], address[1], timeout=self._forward_timeout_s,
                retries=self._forward_retries)
        except OSError as exc:
            raise ConnectionLostError(
                f"cannot reach shard slot {slot} at "
                f"{address[0]}:{address[1]}: {exc}") from exc

    def _release_client(self, slot: int,
                        client: binproto.Client) -> None:
        with self._pool_lock:
            self._pool.setdefault(slot, []).append(client)

    @staticmethod
    def _discard_client(client: binproto.Client) -> None:
        try:
            client.close()
        except ServeError:  # pragma: no cover - close never raises
            pass

    def _drop_pending(self, pending: List) -> None:
        """Close clients whose in-flight forwards we abandoned (their
        streams owe responses a future borrower must not receive)."""
        for item in pending:
            self._discard_client(item[1])
        pending.clear()

    # ------------------------------------------------------------------
    # Fleet-aware admission control
    # ------------------------------------------------------------------
    def admission_info(self) -> dict:
        """What this worker publishes into the shared stats channel."""
        return {"inflight": int(self._inflight), "ts": time.time()}

    def shard_info(self) -> dict:
        """Per-shard snapshot block for fleet aggregation/metrics."""
        resident = 0
        owned = 0
        for name in self.registry.names():
            record = self.registry.materialized.get(name)
            if record is not None:
                resident += int(record.index.core.total_bytes)
            if name in self._map.ranges:
                owned += len(self._map.ranges_for_slot(name, self.slot))
        return {
            "slot": self.slot,
            "map_generation": self._map.generation,
            "inflight": int(self._inflight),
            "node_pool_bytes": resident,
            "ranges": owned,
            "forwarded": self._shard_forwarded.value,
            "local": self._shard_local.value,
            "shed": self._shard_shed.value,
            "forward_errors": self._shard_forward_errors.value,
        }

    def _snapshot_view(self) -> dict:
        """A briefly cached copy of the fleet snapshot dict (bounds the
        Manager IPC cost of per-batch admission checks)."""
        now = time.monotonic()
        expires, view = self._snap_cache
        if now < expires:
            return view
        snapshots = self._fleet_snapshots
        if snapshots is None:
            view = {}
        else:
            try:
                view = dict(snapshots)
            except (OSError, EOFError, BrokenPipeError):
                view = {}
        self._snap_cache = (now + _SNAPSHOT_CACHE_S, view)
        return view

    def _fleet_saturated(self, owners: Sequence[int]) -> bool:
        """True only when EVERY owning slot is verifiably saturated.

        This slot's own depth is read directly; remote depths come from
        the published snapshots. Any missing, stale, or under-threshold
        report fails open — shedding needs positive evidence from the
        whole owner set.
        """
        if self._shed_inflight <= 0 or not owners:
            return False
        view: Optional[dict] = None
        for owner in owners:
            if owner == self.slot:
                if self._inflight < self._shed_inflight:
                    return False
                continue
            if view is None:
                view = self._snapshot_view()
            snap = view.get(owner)
            if snap is None:
                snap = view.get(str(owner))
            admission = (snap or {}).get("admission")
            if not admission:
                return False
            age = time.time() - float(admission.get("ts", 0.0))
            if age > self._shed_staleness_s:
                return False
            if int(admission.get("inflight", 0)) < self._shed_inflight:
                return False
        return True

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        out = super().stats()
        out["shard"] = self.shard_info()
        return out

    def close(self) -> None:
        with self._pool_lock:
            clients = [c for free in self._pool.values() for c in free]
            self._pool.clear()
        for client in clients:
            self._discard_client(client)
        super().close()
