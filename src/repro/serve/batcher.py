"""Micro-batching engine for concurrent point queries.

One-at-a-time ``ACTIndex.query`` pays a per-point descent; the batch
engine amortizes that across a batch but needs the batch to exist. The
:class:`MicroBatcher` manufactures batches out of concurrency: callers
submit single points and get futures back, a worker thread collects
everything that arrives within a bounded window (``max_batch`` points or
``max_wait`` seconds, whichever first) and dispatches one vectorized
descent against the index's :class:`~repro.act.core.ACTCore` — the
batcher holds the grid and the core directly, so dispatch is two array
passes plus per-request decodes.

Batch formation is *adaptive*: the worker greedily drains everything
already queued (natural batches form from backlog, with zero added
latency), and only when ``max_wait > 0`` does it additionally hold an
underfull batch open waiting for stragglers. ``max_wait = 0`` — the
default — is the recommended policy: batch size tracks instantaneous
load instead of trading latency for it.

Deadlines propagate into dispatch: the flush time is the minimum of the
batching window and every member's deadline, so a tight budget shrinks
the window instead of being blown by it, and requests whose budget is
already spent at dispatch time are shed with
:class:`~repro.errors.BudgetExceededError` rather than served late.

Thread-safety: lookups only read the core's uint64 arrays (plus a benign
memoization dict), so a single worker per index, or several, may run
against one ``ACTIndex`` concurrently; the core exists from index
construction, so there is no lazy snapshot to race.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import List, Optional

import numpy as np

from ..act.index import ACTIndex
from ..errors import BudgetExceededError, ServeError
from .budget import Budget
from .metrics import MetricsRegistry

#: Poison pill that tells the worker to exit.
_SHUTDOWN = object()

#: Flush this long before the earliest member deadline, so a batch is
#: dispatched while its tightest request can still be served rather than
#: exactly when it expires.
_DISPATCH_MARGIN = 0.001

#: Batch sizes are counts, not seconds: powers of two up to the largest
#: plausible ``max_batch`` keep the histogram mergeable fleet-wide.
_BATCH_SIZE_BOUNDS = tuple(float(1 << i) for i in range(13))  # 1..4096


class _Request:
    __slots__ = ("lng", "lat", "deadline", "future", "trace", "enqueued")

    def __init__(self, lng: float, lat: float, deadline: Optional[float],
                 trace=None):
        self.lng = lng
        self.lat = lat
        self.deadline = deadline
        self.future: "Future" = Future()
        #: The submitting request's :class:`~repro.obs.trace.Trace`
        #: (sampled requests only): dispatch deposits its measured
        #: batch-wait and shared-descent durations into it.
        self.trace = trace
        self.enqueued = time.monotonic() if trace is not None else 0.0


class MicroBatcher:
    """Collects concurrent point queries and serves them in batches."""

    def __init__(self, index: ACTIndex, *, max_batch: int = 256,
                 max_wait: float = 0.0,
                 metrics: Optional[MetricsRegistry] = None,
                 name: str = "default"):
        if max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 0:
            raise ServeError(f"max_wait must be >= 0, got {max_wait}")
        self.index = index
        # dispatch runs against the columnar core and the grid directly
        self._core = index.core
        self._grid = index.grid
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.name = name
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        # families exist pre-traffic (the PR 7 invariant, checked by
        # lint rule RL004); batch_size must be created here so its
        # custom bucket ladder is the one that sticks
        self._metrics.register(
            counters=("batcher.shed", "batcher.batches",
                      "batcher.queries"))
        self._metrics.histogram("batcher.batch_size",
                                bounds=_BATCH_SIZE_BOUNDS)
        self._queue: "queue.Queue" = queue.Queue()
        self._worker: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._stopped = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "MicroBatcher":
        """Start the worker thread (idempotent)."""
        with self._lock:
            if self._stopped:
                raise ServeError(f"batcher {self.name!r} is stopped")
            if self._worker is None or not self._worker.is_alive():
                self._worker = threading.Thread(
                    target=self._run, name=f"act-batcher-{self.name}",
                    daemon=True,
                )
                self._worker.start()
        return self

    def stop(self) -> None:
        """Stop the worker; pending requests fail with ``ServeError``."""
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            worker = self._worker
        self._queue.put(_SHUTDOWN)
        if worker is not None:
            worker.join(timeout=5.0)
        while True:
            try:
                leftover = self._queue.get_nowait()
            except queue.Empty:
                break
            if leftover is not _SHUTDOWN:
                leftover.future.set_exception(
                    ServeError(f"batcher {self.name!r} shut down")
                )

    def __enter__(self) -> "MicroBatcher":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, lng: float, lat: float,
               budget: Optional[Budget] = None,
               trace=None) -> "Future":
        """Enqueue one point; the future resolves to a
        :class:`~repro.act.index.QueryResult`.

        ``trace`` (a sampled request's :class:`~repro.obs.trace.Trace`)
        receives ``batch_wait`` and ``descent`` stage deposits at
        dispatch, before the future resolves."""
        if self._stopped:
            raise ServeError(f"batcher {self.name!r} is stopped")
        if self._worker is None or not self._worker.is_alive():
            self.start()
        deadline = None if budget is None else budget.deadline
        request = _Request(lng, lat, deadline, trace=trace)
        self._queue.put(request)
        return request.future

    def query(self, lng: float, lat: float,
              budget: Optional[Budget] = None,
              timeout: Optional[float] = 30.0):
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(lng, lat, budget).result(timeout=timeout)

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            first = self._queue.get()
            if first is _SHUTDOWN:
                return
            batch = [first]
            flush_at = time.monotonic() + self.max_wait
            if first.deadline is not None:
                flush_at = min(flush_at, first.deadline - _DISPATCH_MARGIN)
            shutdown = False
            while len(batch) < self.max_batch:
                timeout = flush_at - time.monotonic()
                try:
                    if timeout <= 0:
                        # window closed: greedily drain the backlog, then
                        # dispatch without waiting for stragglers
                        nxt = self._queue.get_nowait()
                    else:
                        nxt = self._queue.get(timeout=timeout)
                except queue.Empty:
                    break
                if nxt is _SHUTDOWN:
                    shutdown = True
                    break
                batch.append(nxt)
                if nxt.deadline is not None:
                    flush_at = min(flush_at, nxt.deadline - _DISPATCH_MARGIN)
            self._dispatch(batch)
            if shutdown:
                return

    def _dispatch(self, batch: List[_Request]) -> None:
        now = time.monotonic()
        live: List[_Request] = []
        for request in batch:
            if request.deadline is not None and now >= request.deadline:
                self._metrics.counter("batcher.shed").inc()
                request.future.set_exception(BudgetExceededError(
                    "latency budget exhausted before batch dispatch"
                ))
            else:
                live.append(request)
        if not live:
            return
        try:
            dispatch_start = time.monotonic()
            lngs = np.fromiter((r.lng for r in live), dtype=np.float64,
                               count=len(live))
            lats = np.fromiter((r.lat for r in live), dtype=np.float64,
                               count=len(live))
            cells = self._grid.leaf_cells_batch(lngs, lats)
            entries = self._core.lookup_entries(cells)
            decode = self._core.decode_entry
            results = [decode(int(e)) for e in entries]
            descent_seconds = time.monotonic() - dispatch_start
        except BaseException as exc:  # propagate to every waiter
            for request in live:
                if not request.future.done():
                    request.future.set_exception(exc)
            return
        self._metrics.counter("batcher.batches").inc()
        self._metrics.counter("batcher.queries").inc(len(live))
        self._metrics.histogram("batcher.batch_size",
                                bounds=_BATCH_SIZE_BOUNDS).observe(len(live))
        for request, result in zip(live, results):
            if request.trace is not None:
                # deposit before resolving the future: the submitter
                # reads the trace only after result() returns, so this
                # write is ordered by the future's happens-before edge
                request.trace.add(
                    "batch_wait", dispatch_start - request.enqueued)
                request.trace.add("descent", descent_seconds)
            request.future.set_result(result)
